// Schedule-compilation service driver: replays a synthetic multi-tenant
// workload against the schedule service — in-process by default, or
// over TCP against a running aapc_netd front-end with --connect — and
// prints the metrics snapshot.
//
// Tenants request AAPC routines for a pool of clusters whose popularity
// follows a zipfian distribution (a few hot clusters, a long tail), and
// each request arrives under a fresh rank labeling of its cluster — the
// situation the canonicalized cache is built for: relabeled isomorphic
// topologies must coalesce onto one cached artifact. The same replay
// drives both transports, so the CI hit-rate gate holds the TCP path to
// the in-process standard.
//
// Run:  ./aapc_serviced --requests 200 --threads 8
//       ./aapc_serviced --requests 500 --threads 16 --cache-capacity 4
//       ./aapc_serviced --requests 200 --threads 8 --min-hit-rate 0.5
//       ./aapc_serviced --requests 200 --connect 127.0.0.1:18211
//       ./aapc_serviced --requests 200 --metrics-out metrics.json
//
// --min-hit-rate makes the exit status assert the cache worked (used by
// the CI smoke test); --metrics-out writes the full registry snapshot
// as JSON (obs::to_json — parse back with obs::snapshot_from_json). In
// --connect mode the snapshot is fetched from the server (its merged
// front-end + per-shard view) and hit/coalesce rates come from the
// response flags.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/common/units.hpp"
#include "aapc/netd/client.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/service/service.hpp"
#include "aapc/topology/io.hpp"
#include "workload.hpp"

namespace {

using aapc::topology::Topology;

struct Counters {
  std::atomic<std::int64_t> issued{0};
  std::atomic<std::int64_t> served{0};
  std::atomic<std::int64_t> hits{0};
  std::atomic<std::int64_t> coalesced{0};
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> compile_errors{0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace aapc;
  CliParser cli(
      "aapc_serviced: replay a zipfian multi-tenant workload against the\n"
      "schedule-compilation service and report cache/coalescing metrics.");
  cli.add_flag("requests", "total requests to issue", "200");
  cli.add_flag("threads", "concurrent tenant threads", "8");
  cli.add_flag("topologies", "distinct clusters in the tenant pool", "8");
  cli.add_flag("zipf", "zipf exponent for cluster popularity", "1.1");
  cli.add_flag("cache-capacity", "schedule-cache entries", "256");
  cli.add_flag("compiler-threads", "compiler pool workers", "4");
  cli.add_flag("queue-capacity", "compiler pool queue bound", "64");
  cli.add_flag("seed", "workload rng seed", "1");
  cli.add_flag("connect",
               "host:port of a running aapc_netd; drive it over TCP instead "
               "of the in-process service");
  cli.add_flag("min-hit-rate",
               "exit nonzero unless cache hit rate reaches this", "-1");
  cli.add_flag("metrics-out",
               "write the service metrics registry to this file as a JSON "
               "snapshot (docs/OBSERVABILITY.md)");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  const std::int64_t requests =
      static_cast<std::int64_t>(cli.get_u64("requests", 200));
  const std::int64_t threads =
      static_cast<std::int64_t>(cli.get_u64("threads", 8));
  const std::size_t pool_size = cli.get_u64("topologies", 8);
  const double zipf_s = cli.get_double("zipf", 1.1);
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const double min_hit_rate = cli.get_double("min-hit-rate", -1);
  const bool remote = cli.has("connect");
  std::string remote_host = "127.0.0.1";
  std::uint16_t remote_port = 0;
  if (remote) {
    const std::string endpoint = cli.get("connect");
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon + 1 == endpoint.size()) {
      std::cerr << "FAIL: --connect expects host:port, got \"" << endpoint
                << "\"\n";
      return 1;
    }
    remote_host = endpoint.substr(0, colon);
    remote_port = static_cast<std::uint16_t>(
        std::stoul(endpoint.substr(colon + 1)));
  }

  service::ServiceOptions options;
  options.cache_capacity = cli.get_u64("cache-capacity", 256);
  options.compiler_threads =
      static_cast<std::int32_t>(cli.get_u64("compiler-threads", 4));
  options.queue_capacity =
      static_cast<std::int32_t>(cli.get_u64("queue-capacity", 64));

  const std::vector<Topology> pool =
      examples::make_tenant_pool(pool_size, seed);
  const examples::ZipfSampler zipf(pool.size(), zipf_s);
  const Bytes sizes[] = {8_KiB, 64_KiB, 256_KiB};

  std::unique_ptr<service::ScheduleService> local;
  if (!remote) local = std::make_unique<service::ScheduleService>(options);

  Counters counters;
  std::vector<std::thread> tenants;
  tenants.reserve(static_cast<std::size_t>(threads));
  for (std::int64_t t = 0; t < threads; ++t) {
    tenants.emplace_back([&, t] {
      Rng rng(seed * 104729 + static_cast<std::uint64_t>(t));
      const std::string tenant_id = "tenant-" + std::to_string(t);
      std::unique_ptr<netd::Client> client;
      if (remote) {
        try {
          client = std::make_unique<netd::Client>(remote_host, remote_port);
        } catch (const std::exception& e) {
          std::cerr << "connect failed: " << e.what() << "\n";
          counters.compile_errors.fetch_add(1);
          return;
        }
      }
      for (;;) {
        if (counters.issued.fetch_add(1) >= requests) break;
        const Topology& base = pool[zipf.sample(rng)];
        // Every tenant sees its cluster under its own labeling.
        const Topology topo = examples::shuffled_copy(base, rng);
        const Bytes msize =
            sizes[rng.next_below(sizeof(sizes) / sizeof(sizes[0]))];
        for (;;) {
          try {
            if (remote) {
              const netd::ResponseFrame response =
                  client->compile(topo, msize, tenant_id);
              if (response.cache_hit) counters.hits.fetch_add(1);
              if (response.coalesced) counters.coalesced.fetch_add(1);
            } else {
              const service::CompiledRoutine routine =
                  local->compile(topo, msize);
              if (routine.cache_hit) counters.hits.fetch_add(1);
              if (routine.coalesced) counters.coalesced.fetch_add(1);
            }
            counters.served.fetch_add(1);
            break;
          } catch (const service::ServiceOverloaded&) {
            counters.retries.fetch_add(1);
            std::this_thread::yield();
          } catch (const netd::RemoteError& e) {
            if (e.code() == netd::ErrorCode::kOverloaded ||
                e.code() == netd::ErrorCode::kQuotaExceeded) {
              counters.retries.fetch_add(1);
              std::this_thread::sleep_for(std::chrono::duration<double>(
                  std::min(std::max(e.retry_after_seconds(), 1e-3), 0.25)));
            } else {
              counters.compile_errors.fetch_add(1);
              std::cerr << "compile failed: " << e.what() << "\n";
              break;
            }
          } catch (const std::exception& e) {
            counters.compile_errors.fetch_add(1);
            std::cerr << "compile failed: " << e.what() << "\n";
            break;
          }
        }
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();

  const std::int64_t served = counters.served.load();
  const double hit_rate =
      served > 0 ? static_cast<double>(counters.hits.load()) /
                       static_cast<double>(served)
                 : 0;
  std::cout << "workload: " << requests << " requests, " << threads
            << " tenant threads, " << pool.size() << " clusters (zipf "
            << zipf_s << "), retries after overload: "
            << counters.retries.load() << "\n\n";
  if (remote) {
    std::cout << "transport: tcp " << remote_host << ":" << remote_port
              << "\nserved " << served << ", cache hits "
              << counters.hits.load() << " (rate " << hit_rate
              << "), coalesced " << counters.coalesced.load() << "\n";
  } else {
    std::cout << local->metrics().to_string() << "\n";
  }

  if (cli.has("metrics-out")) {
    const std::string path = cli.get("metrics-out");
    std::ofstream out(path);
    if (!out.good()) {
      std::cerr << "FAIL: cannot open metrics output file " << path << "\n";
      return 1;
    }
    if (remote) {
      // The server's merged view: front-end series + per-shard service
      // series, already JSON on the wire.
      try {
        netd::Client client(remote_host, remote_port);
        out << client.fetch_metrics_json() << "\n";
      } catch (const std::exception& e) {
        std::cerr << "FAIL: metrics fetch failed: " << e.what() << "\n";
        return 1;
      }
    } else {
      out << obs::to_json(local->metrics_snapshot()) << "\n";
    }
    if (!out.good()) {
      std::cerr << "FAIL: short write to " << path << "\n";
      return 1;
    }
    std::cout << "metrics snapshot written to " << path << "\n";
  }

  if (counters.compile_errors.load() > 0 || served != requests) {
    std::cerr << "FAIL: " << counters.compile_errors.load()
              << " compile errors, " << served << "/" << requests
              << " served\n";
    return 1;
  }
  const double gate_rate = remote ? hit_rate : local->metrics().hit_rate();
  if (min_hit_rate >= 0 && gate_rate < min_hit_rate) {
    std::cerr << "FAIL: cache hit rate " << gate_rate << " below required "
              << min_hit_rate << "\n";
    return 1;
  }
  return 0;
}
