// Schedule-compilation service driver: replays a synthetic multi-tenant
// workload against service::ScheduleService and prints the metrics
// snapshot.
//
// Tenants request AAPC routines for a pool of clusters whose popularity
// follows a zipfian distribution (a few hot clusters, a long tail), and
// each request arrives under a fresh rank labeling of its cluster — the
// situation the canonicalized cache is built for: relabeled isomorphic
// topologies must coalesce onto one cached artifact.
//
// Run:  ./aapc_serviced --requests 200 --threads 8
//       ./aapc_serviced --requests 500 --threads 16 --cache-capacity 4
//       ./aapc_serviced --requests 200 --threads 8 --min-hit-rate 0.5
//       ./aapc_serviced --requests 200 --metrics-out metrics.json
//
// --min-hit-rate makes the exit status assert the cache worked (used by
// the CI smoke test); --metrics-out writes the full registry snapshot
// as JSON (obs::to_json — parse back with obs::snapshot_from_json).
#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/common/table.hpp"
#include "aapc/common/units.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/service/service.hpp"
#include "aapc/topology/generators.hpp"

namespace {

using aapc::Rng;
using aapc::topology::NodeId;
using aapc::topology::Topology;

/// The same physical cluster under a fresh rank/switch labeling.
Topology shuffled_copy(const Topology& topo, Rng& rng) {
  const std::int32_t n = topo.node_count();
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  Topology out;
  std::vector<NodeId> new_id(static_cast<std::size_t>(n));
  for (const NodeId old : order) {
    new_id[static_cast<std::size_t>(old)] =
        topo.is_machine(old) ? out.add_machine() : out.add_switch();
  }
  for (aapc::topology::LinkId l = 0; l < topo.link_count(); ++l) {
    const auto [a, b] = topo.link_endpoints(l);
    out.add_link(new_id[static_cast<std::size_t>(a)],
                 new_id[static_cast<std::size_t>(b)]);
  }
  out.finalize();
  return out;
}

/// Zipf(s) sampler over [0, n): P(i) proportional to 1/(i+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  std::size_t sample(Rng& rng) const {
    const double u = rng.next_double();
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace aapc;
  CliParser cli(
      "aapc_serviced: replay a zipfian multi-tenant workload against the\n"
      "schedule-compilation service and report cache/coalescing metrics.");
  cli.add_flag("requests", "total requests to issue", "200");
  cli.add_flag("threads", "concurrent tenant threads", "8");
  cli.add_flag("topologies", "distinct clusters in the tenant pool", "8");
  cli.add_flag("zipf", "zipf exponent for cluster popularity", "1.1");
  cli.add_flag("cache-capacity", "schedule-cache entries", "256");
  cli.add_flag("compiler-threads", "compiler pool workers", "4");
  cli.add_flag("queue-capacity", "compiler pool queue bound", "64");
  cli.add_flag("seed", "workload rng seed", "1");
  cli.add_flag("min-hit-rate",
               "exit nonzero unless cache hit rate reaches this", "-1");
  cli.add_flag("metrics-out",
               "write the service metrics registry to this file as a JSON "
               "snapshot (docs/OBSERVABILITY.md)");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  const std::int64_t requests =
      static_cast<std::int64_t>(cli.get_u64("requests", 200));
  const std::int64_t threads =
      static_cast<std::int64_t>(cli.get_u64("threads", 8));
  const std::size_t pool_size = cli.get_u64("topologies", 8);
  const double zipf_s = cli.get_double("zipf", 1.1);
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const double min_hit_rate = cli.get_double("min-hit-rate", -1);

  service::ServiceOptions options;
  options.cache_capacity = cli.get_u64("cache-capacity", 256);
  options.compiler_threads =
      static_cast<std::int32_t>(cli.get_u64("compiler-threads", 4));
  options.queue_capacity =
      static_cast<std::int32_t>(cli.get_u64("queue-capacity", 64));

  // Tenant pool: the paper's three evaluation clusters plus random
  // machine-room trees, hottest first.
  std::vector<Topology> pool;
  pool.push_back(topology::make_paper_topology_c());
  pool.push_back(topology::make_paper_topology_b());
  pool.push_back(topology::make_paper_figure1());
  Rng pool_rng(seed * 7919 + 11);
  while (pool.size() < pool_size) {
    topology::RandomTreeOptions tree;
    tree.switches = static_cast<std::int32_t>(pool_rng.next_in(1, 6));
    tree.machines = static_cast<std::int32_t>(pool_rng.next_in(4, 24));
    pool.push_back(topology::make_random_tree(pool_rng, tree));
  }
  const ZipfSampler zipf(pool.size(), zipf_s);
  const Bytes sizes[] = {8_KiB, 64_KiB, 256_KiB};

  service::ScheduleService service(options);
  std::atomic<std::int64_t> issued{0};
  std::atomic<std::int64_t> served{0};
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> compile_errors{0};
  std::vector<std::thread> tenants;
  tenants.reserve(static_cast<std::size_t>(threads));
  for (std::int64_t t = 0; t < threads; ++t) {
    tenants.emplace_back([&, t] {
      Rng rng(seed * 104729 + static_cast<std::uint64_t>(t));
      for (;;) {
        if (issued.fetch_add(1) >= requests) break;
        const Topology& base = pool[zipf.sample(rng)];
        // Every tenant sees its cluster under its own labeling.
        const Topology topo = shuffled_copy(base, rng);
        const Bytes msize =
            sizes[rng.next_below(sizeof(sizes) / sizeof(sizes[0]))];
        for (;;) {
          try {
            service.compile(topo, msize);
            served.fetch_add(1);
            break;
          } catch (const service::ServiceOverloaded&) {
            retries.fetch_add(1);
            std::this_thread::yield();
          } catch (const std::exception& e) {
            compile_errors.fetch_add(1);
            std::cerr << "compile failed: " << e.what() << "\n";
            break;
          }
        }
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();

  const service::MetricsSnapshot metrics = service.metrics();
  std::cout << "workload: " << requests << " requests, " << threads
            << " tenant threads, " << pool.size() << " clusters (zipf "
            << zipf_s << "), retries after overload: " << retries.load()
            << "\n\n"
            << metrics.to_string() << "\n";

  if (cli.has("metrics-out")) {
    const std::string path = cli.get("metrics-out");
    std::ofstream out(path);
    if (!out.good()) {
      std::cerr << "FAIL: cannot open metrics output file " << path << "\n";
      return 1;
    }
    out << obs::to_json(service.metrics_snapshot()) << "\n";
    if (!out.good()) {
      std::cerr << "FAIL: short write to " << path << "\n";
      return 1;
    }
    std::cout << "metrics snapshot written to " << path << "\n";
  }

  if (compile_errors.load() > 0 || served.load() != requests) {
    std::cerr << "FAIL: " << compile_errors.load() << " compile errors, "
              << served.load() << "/" << requests << " served\n";
    return 1;
  }
  if (min_hit_rate >= 0 && metrics.hit_rate() < min_hit_rate) {
    std::cerr << "FAIL: cache hit rate " << metrics.hit_rate()
              << " below required " << min_hit_rate << "\n";
    return 1;
  }
  return 0;
}
