// aapc_churn: churn chaos driver for the serving path.
//
// Boots an in-process aapc_netd Server whose ServerOptions::fabric is
// the bench_churn edge star, then drives open-loop zipfian load at it
// (the aapc_loadgen arrival model: arrivals scheduled on a global
// clock, latencies measured from the scheduled arrival) while a
// separate control connection injects live churn mid-load:
//   t = duration/3   kLinkDegrade on the s1-s3 trunk (--factor),
//   t = 2*duration/3 kLinkUp restoring it.
// Half the requests (--fabric-share) compile the elected fabric tree —
// the topology whose cache entries the churn invalidates; the rest
// draw from the usual zipfian tenant pool and must ride through
// unaffected.
//
// Every response for the fabric topology is timestamped with its
// (epoch, stale) marking, and — with --verify, default on — its
// schedule artifact is parsed and checked contention-free against the
// caller's topology, so a mis-patched repair fails loudly.
//
// Exits nonzero when chaos gates fail:
//   1  integrity failure (a served schedule was not contention-free)
//   2  availability (dropped requests, transport or connect failures)
//   3  staleness window above --staleness-slo-ms for either churn
//      event, or the stale-while-revalidate path never served stale
//   4  epoch bookkeeping wrong (final epoch != 2), or p99 SLO missed
//
// Run:  ./aapc_churn --connections 8 --rps 300 --duration 3
//       ./aapc_churn --connections 32 --rps 1000 --duration 6 --factor 0.25
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/schedule_io.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/flight/analyze.hpp"
#include "aapc/flight/dump.hpp"
#include "aapc/flight/recorder.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/netd/client.hpp"
#include "aapc/netd/server.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/io.hpp"
#include "workload.hpp"

namespace {

using namespace aapc;
using Clock = std::chrono::steady_clock;

/// The bench_churn edge star (see bench/bench_churn.cpp): hub s1, one
/// machine behind s3 on the trunk under churn (bridge link 0), four
/// machines each behind s0 and s2.
stp::BridgeNetwork make_edge_star() {
  stp::BridgeNetwork net;
  const stp::BridgeId s1 = net.add_bridge("s1", 0x8000'0000'0001ull);
  const stp::BridgeId s3 = net.add_bridge("s3", 0x8000'0000'0002ull);
  const stp::BridgeId s0 = net.add_bridge("s0", 0x8000'0000'0003ull);
  const stp::BridgeId s2 = net.add_bridge("s2", 0x8000'0000'0004ull);
  net.add_bridge_link(s1, s3, 19);  // bridge link 0: the churned trunk
  net.add_bridge_link(s1, s0, 19);
  net.add_bridge_link(s1, s2, 19);
  net.add_machine("c0", s3);
  for (int m = 0; m < 4; ++m) net.add_machine("a" + std::to_string(m), s0);
  for (int m = 0; m < 4; ++m) net.add_machine("b" + std::to_string(m), s2);
  return net;
}

/// One fabric-topology response, on the load generator's clock.
struct FabricSample {
  double at_seconds = 0;  // since load start
  std::uint64_t epoch = 0;
  bool stale = false;
};

struct WorkerStats {
  std::vector<double> latencies_seconds;
  std::vector<FabricSample> fabric_samples;
  std::int64_t served = 0;
  std::int64_t fabric_served = 0;
  std::int64_t stale_served = 0;
  std::int64_t integrity_failures = 0;
  std::int64_t dropped = 0;
  std::int64_t transport_errors = 0;
  std::int64_t reconnects = 0;
};

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "aapc_churn: open-loop zipfian load against an in-process aapc_netd\n"
      "server while live churn events degrade and restore a fabric trunk;\n"
      "gates availability, schedule integrity, and the staleness window.");
  cli.add_flag("connections", "concurrent TCP connections", "8");
  cli.add_flag("rps", "aggregate offered arrival rate (requests/s)", "300");
  cli.add_flag("duration", "seconds of offered load", "3");
  cli.add_flag("factor", "residual trunk fraction while degraded", "0.5");
  cli.add_flag("fabric-share",
               "fraction of requests compiling the churned fabric", "0.5");
  cli.add_flag("topologies", "distinct clusters in the tenant pool", "6");
  cli.add_flag("zipf", "zipf exponent for cluster popularity", "1.1");
  cli.add_flag("seed", "workload rng seed", "1");
  cli.add_flag("shards", "backend ScheduleService instances", "2");
  cli.add_flag("verify",
               "check every fabric schedule contention-free", "true");
  cli.add_flag("staleness-slo-ms",
               "max ms from a churn ack to the first fresh response",
               "1500");
  cli.add_flag("slo-p99-ms", "exit 4 unless p99 <= this (0 = no gate)", "0");
  cli.add_flag("metrics-out",
               "write the server registry snapshot to this file as JSON");
  cli.add_flag("flight",
               "after the load, execute the fabric schedule under the "
               "simulator (healthy, then with the trunk degraded by "
               "--factor) with the flight recorder on and dump the rings "
               "into this directory");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  const std::int64_t connections =
      static_cast<std::int64_t>(cli.get_u64("connections", 8));
  const double rps = cli.get_double("rps", 300);
  const double duration = cli.get_double("duration", 3);
  const double factor = cli.get_double("factor", 0.5);
  const double fabric_share = cli.get_double("fabric-share", 0.5);
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const bool verify = cli.get_bool("verify", true);
  const double staleness_slo_ms = cli.get_double("staleness-slo-ms", 1500);
  const double slo_p99_ms = cli.get_double("slo-p99-ms", 0);
  const std::int64_t total_requests =
      static_cast<std::int64_t>(rps * duration);
  const Bytes msize = 64_KiB;

  // The fabric and the topology its elected tree serves.
  const auto fabric = std::make_shared<const stp::BridgeNetwork>(
      make_edge_star());
  const stp::SpanningTree tree = stp::compute_spanning_tree(*fabric);
  const std::string fabric_text =
      topology::serialize_topology(tree.topology);

  const std::vector<topology::Topology> pool = examples::make_tenant_pool(
      cli.get_u64("topologies", 6), seed);
  std::vector<std::string> pool_text;
  pool_text.reserve(pool.size());
  for (const topology::Topology& topo : pool) {
    pool_text.push_back(topology::serialize_topology(topo));
  }
  const examples::ZipfSampler zipf(pool.size(), cli.get_double("zipf", 1.1));

  netd::ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // ephemeral
  options.shards = static_cast<std::int32_t>(cli.get_u64("shards", 2));
  options.fabric = fabric;
  netd::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 2;
  }
  const std::uint16_t port = server.port();

  std::atomic<std::int64_t> next_arrival{0};
  std::atomic<std::int64_t> connect_failures{0};
  std::vector<WorkerStats> stats(static_cast<std::size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(connections));
  const Clock::time_point start = Clock::now();
  const auto since_start = [start] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  for (std::int64_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerStats& mine = stats[static_cast<std::size_t>(w)];
      Rng rng(seed * 104729 + static_cast<std::uint64_t>(w));
      netd::ClientOptions copts;
      copts.retry_on_overload = true;
      std::unique_ptr<netd::Client> client;
      try {
        client = std::make_unique<netd::Client>("127.0.0.1", port, copts);
      } catch (const std::exception&) {
        connect_failures.fetch_add(1);
        return;
      }
      while (true) {
        const std::int64_t i = next_arrival.fetch_add(1);
        if (i >= total_requests) break;
        const Clock::time_point arrival =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / rps));
        std::this_thread::sleep_until(arrival);
        const bool on_fabric = rng.next_double() < fabric_share;
        const std::string& text =
            on_fabric ? fabric_text : pool_text[zipf.sample(rng)];
        try {
          const netd::ResponseFrame response =
              client->compile_serialized(text, msize, "chaos");
          mine.latencies_seconds.push_back(
              std::chrono::duration<double>(Clock::now() - arrival).count());
          ++mine.served;
          if (response.stale) ++mine.stale_served;
          if (on_fabric) {
            ++mine.fabric_served;
            mine.fabric_samples.push_back(FabricSample{
                since_start(), response.epoch, response.stale});
            if (verify) {
              try {
                const core::Schedule schedule = core::schedule_from_json(
                    response.schedule_json, tree.topology.machine_count());
                core::require_contention_free(tree.topology, schedule);
              } catch (const std::exception&) {
                ++mine.integrity_failures;
              }
            }
          }
        } catch (const netd::RemoteError&) {
          ++mine.dropped;  // overload retries exhausted, or rejected
        } catch (const std::exception&) {
          ++mine.transport_errors;
        }
      }
      mine.reconnects = client->reconnects();
    });
  }

  // The churn timeline, on its own control connection. Ack receipt is
  // the earliest instant a client could observe the new epoch, so the
  // staleness window is measured from it.
  double degrade_ack_at = -1, restore_ack_at = -1;
  std::uint64_t degrade_epoch = 0, restore_epoch = 0;
  std::string churn_error;
  std::thread churner([&] {
    try {
      netd::Client control("127.0.0.1", port);
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(duration / 3)));
      const netd::ChurnAckFrame degrade =
          control.churn(netd::ChurnKind::kLinkDegrade, 0, factor);
      degrade_ack_at = since_start();
      degrade_epoch = degrade.epoch;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(2 * duration / 3)));
      const netd::ChurnAckFrame restore =
          control.churn(netd::ChurnKind::kLinkUp, 0);
      restore_ack_at = since_start();
      restore_epoch = restore.epoch;
    } catch (const std::exception& e) {
      churn_error = e.what();
    }
  });

  for (std::thread& worker : workers) worker.join();
  churner.join();
  const double elapsed = since_start();
  server.stop();

  WorkerStats total;
  std::vector<double> latencies;
  std::vector<FabricSample> samples;
  for (const WorkerStats& s : stats) {
    latencies.insert(latencies.end(), s.latencies_seconds.begin(),
                     s.latencies_seconds.end());
    samples.insert(samples.end(), s.fabric_samples.begin(),
                   s.fabric_samples.end());
    total.served += s.served;
    total.fabric_served += s.fabric_served;
    total.stale_served += s.stale_served;
    total.integrity_failures += s.integrity_failures;
    total.dropped += s.dropped;
    total.transport_errors += s.transport_errors;
    total.reconnects += s.reconnects;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50_ms = quantile_sorted(latencies, 0.50) * 1e3;
  const double p99_ms = quantile_sorted(latencies, 0.99) * 1e3;

  // Staleness window per churn event: ack to the first fresh (stale ==
  // false) fabric response at or above the acked epoch. -1 = never.
  const auto window_ms = [&samples](double ack_at, std::uint64_t epoch) {
    if (ack_at < 0) return -1.0;
    double first = -1;
    for (const FabricSample& s : samples) {
      if (s.at_seconds >= ack_at && !s.stale && s.epoch >= epoch &&
          (first < 0 || s.at_seconds < first)) {
        first = s.at_seconds;
      }
    }
    return first < 0 ? -1.0 : (first - ack_at) * 1e3;
  };
  const double degrade_window_ms = window_ms(degrade_ack_at, degrade_epoch);
  const double restore_window_ms = window_ms(restore_ack_at, restore_epoch);

  std::cout << "{\"bench\":\"churn_chaos\",\"connections\":" << connections
            << ",\"rps_target\":" << rps
            << ",\"duration_s\":" << elapsed
            << ",\"served\":" << total.served
            << ",\"fabric_served\":" << total.fabric_served
            << ",\"stale_served\":" << total.stale_served
            << ",\"p50_ms\":" << p50_ms << ",\"p99_ms\":" << p99_ms
            << ",\"degrade_staleness_ms\":" << degrade_window_ms
            << ",\"restore_staleness_ms\":" << restore_window_ms
            << ",\"final_epoch\":" << restore_epoch
            << ",\"reconnects\":" << total.reconnects
            << ",\"dropped\":" << total.dropped
            << ",\"transport_errors\":" << total.transport_errors
            << ",\"connect_failures\":" << connect_failures.load()
            << ",\"integrity_failures\":" << total.integrity_failures
            << "}" << std::endl;

  if (cli.has("metrics-out")) {
    const std::string path = cli.get("metrics-out");
    std::ofstream out(path);
    out << obs::to_json(server.metrics_snapshot()) << "\n";
    if (!out.good()) {
      std::cerr << "FAIL: short write to " << path << "\n";
      return 2;
    }
  }

  // Post-chaos forensics: execute the schedule the server was serving
  // on the fabric it was serving it for — once healthy, once with the
  // churned trunk held at --factor — with the flight recorder wired
  // in, and keep both ring dumps. The degraded dump is what an
  // operator would feed `aapc_analyze --load` when the fabric
  // misbehaves for real.
  if (cli.has("flight")) {
    const std::string dir = cli.get("flight");
    std::filesystem::create_directories(dir);
    const topology::Topology& topo = tree.topology;
    const core::Schedule schedule = core::build_aapc_schedule(topo);
    const sync::SyncPlan plan = sync::build_sync_plan(topo, schedule);
    lowering::LoweringOptions lopts;
    lopts.precomputed_plan = &plan;
    const mpisim::ProgramSet set =
        lowering::lower_schedule(topo, schedule, msize, lopts);
    const simnet::NetworkParams net;
    for (const bool degraded : {false, true}) {
      flight::Recorder recorder(topo.machine_count());
      recorder.annotate(schedule, plan);
      mpisim::ExecutorParams exec;
      exec.flight = &recorder;
      if (degraded) {
        faults::FaultPlan fault_plan;
        fault_plan.add(faults::FaultEvent::link_degrade(0, 0, factor));
        faults::compile(fault_plan, net, topo.link_count(),
                        tree.link_of_bridge_link)
            .apply(exec);
      }
      mpisim::Executor executor(topo, net, exec);
      const mpisim::ExecutionResult result = executor.run(set);
      flight::DumpMeta meta;
      meta.effective_bandwidth = net.effective_bandwidth();
      meta.send_overhead = net.send_overhead;
      meta.recv_overhead = net.recv_overhead;
      meta.completion_time = result.completion_time;
      meta.label = degraded ? "aapc_churn --flight (trunk degraded)"
                            : "aapc_churn --flight (healthy)";
      const flight::FlightDump dump = flight::snapshot(recorder, meta);
      const std::string path =
          dir + (degraded ? "/churn_degraded.flt" : "/churn_healthy.flt");
      flight::write_dump_file(dump, path);
      const flight::AnalysisReport report =
          flight::analyze(dump, topo, &schedule, &plan, &tree);
      std::cout << "flight: wrote " << path << " ("
                << report.events_analyzed << " events); "
                << (report.verdicts.empty()
                        ? std::string("no verdict\n")
                        : str_cat(flight::verdict_kind_name(
                                      report.verdicts.front().kind),
                                  " — ", report.verdicts.front().detail,
                                  "\n"));
    }
  }

  if (total.integrity_failures > 0) {
    std::cerr << "FAIL: " << total.integrity_failures
              << " served schedules were not contention-free\n";
    return 1;
  }
  if (total.served == 0 || total.dropped > 0 || total.transport_errors > 0 ||
      connect_failures.load() > 0 || !churn_error.empty()) {
    std::cerr << "FAIL: served " << total.served << ", dropped "
              << total.dropped << ", " << total.transport_errors
              << " transport errors, " << connect_failures.load()
              << " connect failures"
              << (churn_error.empty() ? "" : ", churn: " + churn_error)
              << "\n";
    return 2;
  }
  if (total.stale_served == 0) {
    std::cerr << "FAIL: the stale-while-revalidate path never served — "
                 "churn did not land in the request window\n";
    return 3;
  }
  for (const double window : {degrade_window_ms, restore_window_ms}) {
    if (window < 0 || window > staleness_slo_ms) {
      std::cerr << "FAIL: staleness window "
                << (window < 0 ? std::string("unbounded")
                               : std::to_string(window) + " ms")
                << " against the " << staleness_slo_ms << " ms SLO\n";
      return 3;
    }
  }
  if (restore_epoch != 2) {
    std::cerr << "FAIL: final epoch " << restore_epoch << ", expected 2\n";
    return 4;
  }
  if (slo_p99_ms > 0 && p99_ms > slo_p99_ms) {
    std::cerr << "FAIL: p99 " << p99_ms << " ms above the " << slo_p99_ms
              << " ms SLO\n";
    return 4;
  }
  return 0;
}
