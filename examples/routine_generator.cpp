// The paper's tool (§5): an automatic routine generator that "takes the
// topology information as input and produces a customized MPI_Alltoall
// routine".
//
//   ./routine_generator cluster.topo > alltoall_cluster.c
//   ./routine_generator --paper b --function-name Alltoall_b
//   ./routine_generator cluster.topo --sync barrier --summary
//
// The emitted C builds against any MPI implementation; the --summary
// flag prints schedule/synchronization statistics to stderr instead of
// code to stdout.
#include <fstream>
#include <iostream>

#include "aapc/codegen/codegen.hpp"
#include "aapc/common/cli.hpp"
#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

int main(int argc, char** argv) {
  using namespace aapc;
  CliParser cli(
      "usage: routine_generator [<topology-file>] [flags]\n"
      "Generates a topology-customized MPI_Alltoall in C (to stdout).");
  cli.add_flag("paper", "use a built-in paper topology: a, b, c, or fig1");
  cli.add_flag("function-name", "name of the emitted function",
               "AAPC_Alltoall");
  cli.add_flag("sync", "pairwise | barrier | none", "pairwise");
  cli.add_flag("no-reduce", "keep redundant synchronizations", "false");
  cli.add_flag("summary", "print statistics instead of code", "false");
  cli.add_flag("output", "write the C source to this file");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  try {
    topology::Topology topo;
    if (cli.has("paper")) {
      const std::string which = cli.get("paper");
      if (which == "a") {
        topo = topology::make_paper_topology_a();
      } else if (which == "b") {
        topo = topology::make_paper_topology_b();
      } else if (which == "c") {
        topo = topology::make_paper_topology_c();
      } else if (which == "fig1") {
        topo = topology::make_paper_figure1();
      } else {
        throw InvalidArgument("unknown paper topology '" + which + "'");
      }
    } else if (!cli.positional().empty()) {
      topo = topology::load_topology_file(cli.positional().front());
    } else {
      std::cerr << cli.help_text();
      return 2;
    }

    const core::Schedule schedule = core::build_aapc_schedule(topo);
    const core::VerifyReport report = core::verify_schedule(topo, schedule);
    if (!report.ok) {
      std::cerr << "internal error: schedule failed verification:\n"
                << report.summary() << '\n';
      return 1;
    }

    codegen::CodegenOptions options;
    options.function_name = cli.get("function-name");
    const std::string sync = cli.get("sync");
    if (sync == "barrier") {
      options.lowering.sync = lowering::SyncMode::kBarrier;
    } else if (sync == "none") {
      options.lowering.sync = lowering::SyncMode::kNone;
    } else {
      options.lowering.sync = lowering::SyncMode::kPairwise;
    }
    options.lowering.reduce_redundant_syncs = !cli.get_bool("no-reduce", false);

    if (cli.get_bool("summary", false)) {
      lowering::LoweringInfo info;
      lowering::lower_schedule(topo, schedule, 64_KiB, options.lowering,
                               &info);
      std::cerr << topology::describe_topology(topo,
                                               mbps_to_bytes_per_sec(100))
                << "phases:                  " << schedule.phase_count()
                << "\ndata messages:           " << info.data_messages
                << "\nsync tokens (network):   " << info.sync_messages
                << "\nlocal wait dependencies: "
                << info.local_wait_dependencies
                << "\ndependence edges before reduction: "
                << info.sync_edges_before_reduction << '\n';
      return 0;
    }

    const std::string code = codegen::generate_alltoall_c(topo, schedule,
                                                          options);
    if (cli.has("output")) {
      std::ofstream out(cli.get("output"));
      AAPC_REQUIRE(out.good(), "cannot write '" << cli.get("output") << "'");
      out << code;
      std::cerr << "wrote " << code.size() << " bytes to "
                << cli.get("output") << '\n';
    } else {
      std::cout << code;
    }
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
