// Schedule explorer: prints the intermediate artifacts of the paper's
// algorithm for any topology — the root decomposition (§4.1), the
// extended-ring group spans (§4.2, Figure 3), the full per-phase
// assignment (§4.3, Table 4), and the synchronization plan (§5).
//
// With no arguments it walks through the paper's Figure-1 worked
// example; pass a .topo file or --paper a|b|c to explore others.
#include <iostream>

#include "aapc/common/cli.hpp"
#include "aapc/common/error.hpp"
#include "aapc/common/table.hpp"
#include "aapc/core/assign.hpp"
#include "aapc/core/global_schedule.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/stats.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

int main(int argc, char** argv) {
  using namespace aapc;
  CliParser cli(
      "usage: schedule_explorer [<topology-file>] [--paper a|b|c|fig1]");
  cli.add_flag("paper", "use a built-in paper topology", "fig1");
  cli.add_flag("max-phases", "print at most this many phases", "40");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  try {
    topology::Topology topo;
    if (!cli.positional().empty()) {
      topo = topology::load_topology_file(cli.positional().front());
    } else {
      const std::string which = cli.get("paper");
      topo = which == "a"   ? topology::make_paper_topology_a()
             : which == "b" ? topology::make_paper_topology_b()
             : which == "c" ? topology::make_paper_topology_c()
                            : topology::make_paper_figure1();
    }

    std::cout << "== topology ==\n"
              << topology::describe_topology(topo,
                                             mbps_to_bytes_per_sec(100))
              << '\n';

    // §4.1: root identification and subtree decomposition.
    const core::Decomposition dec = core::decompose(topo);
    std::cout << "== decomposition (§4.1) ==\nroot: " << topo.name(dec.root)
              << '\n';
    for (std::int32_t i = 0; i < dec.subtree_count(); ++i) {
      std::cout << "t" << i << " (" << dec.subtree_size(i) << " machines):";
      for (const topology::Rank r : dec.subtrees[i]) {
        std::cout << ' ' << topo.name(topo.machine_node(r));
      }
      std::cout << '\n';
    }

    // §4.2: extended-ring group spans (Figure 3).
    std::vector<std::int32_t> sizes;
    for (std::int32_t i = 0; i < dec.subtree_count(); ++i) {
      sizes.push_back(dec.subtree_size(i));
    }
    const core::GlobalSchedule global(sizes);
    std::cout << "\n== global message scheduling (§4.2) ==\ntotal phases: "
              << global.total_phases() << '\n';
    TextTable spans;
    spans.set_header({"group", "first phase", "last phase", "messages"});
    for (std::int32_t i = 0; i < dec.subtree_count(); ++i) {
      for (std::int32_t j = 0; j < dec.subtree_count(); ++j) {
        if (i == j) continue;
        const std::int64_t start = global.group_start(i, j);
        const std::int64_t length = global.group_length(i, j);
        spans.add_row({"t" + std::to_string(i) + "->t" + std::to_string(j),
                       std::to_string(start),
                       std::to_string(start + length - 1),
                       std::to_string(length)});
      }
    }
    std::cout << spans.render();

    // §4.3: the assignment (Table 4 for the fig1 default).
    const core::Schedule schedule = core::build_aapc_schedule(topo);
    const core::VerifyReport report = core::verify_schedule(topo, schedule);
    std::cout << "\n== per-phase assignment (§4.3) ==\n";
    const auto max_phases = static_cast<std::int32_t>(
        cli.get_u64("max-phases", 40));
    std::int32_t printed = 0;
    for (std::int32_t p = 0; p < schedule.phase_count() && printed < max_phases;
         ++p, ++printed) {
      std::cout << "phase " << p << ":";
      for (const core::ScheduledMessage& sm : schedule.phase(p)) {
        std::cout << ' ' << topo.name(topo.machine_node(sm.message.src))
                  << "->" << topo.name(topo.machine_node(sm.message.dst));
      }
      std::cout << '\n';
    }
    if (schedule.phase_count() > max_phases) {
      std::cout << "... (" << schedule.phase_count() - max_phases
                << " more phases; use --max-phases)\n";
    }
    std::cout << "verification: " << report.summary() << '\n';

    // Schedule shape statistics.
    std::cout << "\n== schedule statistics ==\n"
              << core::compute_schedule_stats(topo, schedule).to_string();

    // §5: synchronization plan.
    lowering::LoweringInfo info;
    lowering::lower_schedule(topo, schedule, 64_KiB, {}, &info);
    const sync::SyncPlan plan = sync::build_sync_plan(topo, schedule);
    const sync::PlanAnalysis analysis =
        sync::analyze_plan(plan, schedule.message_count());
    std::cout << "\n== synchronization (§5) ==\n"
              << "dependence edges before reduction: "
              << info.sync_edges_before_reduction << '\n'
              << "network sync tokens after reduction: "
              << info.sync_messages << '\n'
              << "same-sender local waits: " << info.local_wait_dependencies
              << '\n'
              << "critical dependency chain: "
              << analysis.critical_path_messages << " messages (of "
              << schedule.message_count() << ")\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
