// Spanning-tree demo: the §3 substrate assumption made concrete.
//
// Ethernet switches block redundant links via the spanning tree
// protocol, which is why the scheduler may assume a tree. This example
// builds a redundantly-wired machine room (a ring of four switches with
// a cross link), runs the 802.1D-style election, shows which links end
// up blocked, and then schedules AAPC on the resulting tree.
//
// Run:  ./stp_demo
#include <iostream>

#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/topology/io.hpp"

int main() {
  using namespace aapc;

  // A machine room wired for redundancy: ring sw0-sw1-sw2-sw3-sw0 plus
  // a diagonal sw0-sw2, six machines per access switch (sw1..sw3).
  stp::BridgeNetwork lan;
  const stp::BridgeId sw0 = lan.add_bridge("sw0", 0x1000);  // core switch
  const stp::BridgeId sw1 = lan.add_bridge("sw1", 0x2001);
  const stp::BridgeId sw2 = lan.add_bridge("sw2", 0x2002);
  const stp::BridgeId sw3 = lan.add_bridge("sw3", 0x2003);
  struct LinkInfo {
    std::int32_t id;
    const char* name;
  };
  const LinkInfo links[] = {
      {lan.add_bridge_link(sw0, sw1, 19), "sw0-sw1"},
      {lan.add_bridge_link(sw1, sw2, 19), "sw1-sw2"},
      {lan.add_bridge_link(sw2, sw3, 19), "sw2-sw3"},
      {lan.add_bridge_link(sw3, sw0, 19), "sw3-sw0"},
      {lan.add_bridge_link(sw0, sw2, 19), "sw0-sw2 (diagonal)"},
  };
  int machine = 0;
  for (const stp::BridgeId sw : {sw1, sw2, sw3}) {
    for (int i = 0; i < 6; ++i) {
      lan.add_machine("n" + std::to_string(machine++), sw);
    }
  }

  std::cout << "bridged LAN: 4 switches, 5 inter-switch links (2 redundant), "
            << lan.machine_count() << " machines\n\n";

  const stp::SpanningTree tree = stp::compute_spanning_tree(lan);
  std::cout << "elected root bridge: " << lan.bridge_name(tree.root_bridge)
            << "\nlink states:\n";
  for (const LinkInfo& link : links) {
    std::cout << "  " << link.name << ": "
              << (tree.forwarding[link.id] ? "forwarding" : "BLOCKED")
              << '\n';
  }
  std::cout << "root path costs:";
  for (stp::BridgeId b = 0; b < lan.bridge_count(); ++b) {
    std::cout << ' ' << lan.bridge_name(b) << '=' << tree.root_path_cost[b];
  }
  std::cout << "\n\nactive forwarding topology:\n"
            << topology::serialize_topology(tree.topology) << '\n';

  const core::Schedule schedule = core::build_aapc_schedule(tree.topology);
  const core::VerifyReport report =
      core::verify_schedule(tree.topology, schedule);
  std::cout << "AAPC schedule on the elected tree: "
            << schedule.phase_count() << " phases ("
            << report.summary() << ")\n\n";

  harness::ExperimentConfig config;
  config.msizes = {128_KiB};
  const auto suite = harness::standard_suite(tree.topology);
  std::cout << harness::run_experiment(tree.topology,
                                       "AAPC on the elected tree", suite,
                                       config)
                   .to_string();
  return 0;
}
