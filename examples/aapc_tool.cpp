// aapc_tool — the whole pipeline as one command-line multi-tool.
//
//   aapc_tool describe   <topo>            loads, bottleneck, peak
//   aapc_tool dot        <topo>            Graphviz rendering
//   aapc_tool schedule   <topo> [--json]   build + verify (+ JSON dump)
//   aapc_tool codegen    <topo> [...]      customized MPI_Alltoall in C
//   aapc_tool simulate   <topo> [...]      LAM vs MPICH vs Ours sweep
//   aapc_tool validate   <topo> --schedule-json file
//                                          verify an external schedule
//
// <topo> is a .topo file path or one of the built-ins: paper-a,
// paper-b, paper-c, fig1.
#include <fstream>
#include <iostream>
#include <sstream>

#include "aapc/codegen/codegen.hpp"
#include "aapc/common/cli.hpp"
#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/schedule_io.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/stats.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

namespace {

using namespace aapc;

topology::Topology load(const std::string& spec) {
  if (spec == "paper-a") return topology::make_paper_topology_a();
  if (spec == "paper-b") return topology::make_paper_topology_b();
  if (spec == "paper-c") return topology::make_paper_topology_c();
  if (spec == "fig1") return topology::make_paper_figure1();
  return topology::load_topology_file(spec);
}

int usage() {
  std::cerr
      << "usage: aapc_tool <describe|dot|schedule|codegen|simulate|validate>"
      << " <topology> [flags]\n"
      << "  topology: a .topo file or paper-a | paper-b | paper-c | fig1\n"
      << "  schedule: --json            also print the schedule as JSON\n"
      << "  codegen:  --function-name N --sync pairwise|barrier|none\n"
      << "  simulate: --msizes 8K,...   sweep sizes (default paper sweep)\n"
      << "  validate: --schedule-json F verify an externally-built "
         "schedule\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string topo_spec = argv[2];

  CliParser cli("aapc_tool " + command);
  cli.add_flag("json", "print the schedule as JSON", "false");
  cli.add_flag("function-name", "emitted C function name", "AAPC_Alltoall");
  cli.add_flag("sync", "pairwise | barrier | none", "pairwise");
  cli.add_flag("msizes", "comma-separated sizes",
               "8K,16K,32K,64K,128K,256K");
  cli.add_flag("schedule-json", "schedule JSON file to validate");
  if (!cli.parse(argc - 2, argv + 2)) {
    std::cout << cli.help_text();
    return 0;
  }

  try {
    const topology::Topology topo = load(topo_spec);
    if (command == "describe") {
      std::cout << topology::describe_topology(topo,
                                               mbps_to_bytes_per_sec(100));
      return 0;
    }
    if (command == "dot") {
      std::cout << topology::to_dot(topo);
      return 0;
    }
    if (command == "schedule") {
      const core::Schedule schedule = core::build_aapc_schedule(topo);
      const core::VerifyReport report = core::verify_schedule(topo, schedule);
      std::cout << core::compute_schedule_stats(topo, schedule).to_string()
                << "verification: " << report.summary() << '\n';
      if (cli.get_bool("json", false)) {
        std::cout << core::schedule_to_json(schedule, topo.machine_count())
                  << '\n';
      }
      return report.ok ? 0 : 1;
    }
    if (command == "codegen") {
      codegen::CodegenOptions options;
      options.function_name = cli.get("function-name");
      const std::string sync = cli.get("sync");
      options.lowering.sync = sync == "barrier"
                                  ? lowering::SyncMode::kBarrier
                                  : sync == "none"
                                        ? lowering::SyncMode::kNone
                                        : lowering::SyncMode::kPairwise;
      const core::Schedule schedule = core::build_aapc_schedule(topo);
      std::cout << codegen::generate_alltoall_c(topo, schedule, options);
      return 0;
    }
    if (command == "simulate") {
      harness::ExperimentConfig config;
      config.msizes.clear();
      for (const std::string& token : split(cli.get("msizes"), ',')) {
        config.msizes.push_back(parse_size(token));
      }
      const auto suite = harness::standard_suite(topo);
      std::cout << harness::run_experiment(topo, "aapc_tool simulate",
                                           suite, config)
                       .to_string();
      return 0;
    }
    if (command == "validate") {
      AAPC_REQUIRE(cli.has("schedule-json"),
                   "validate requires --schedule-json <file>");
      std::ifstream in(cli.get("schedule-json"));
      AAPC_REQUIRE(in.good(), "cannot open '" << cli.get("schedule-json")
                                              << "'");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const core::Schedule schedule =
          core::schedule_from_json(buffer.str(), topo.machine_count());
      const core::VerifyReport report = core::verify_schedule(topo, schedule);
      std::cout << report.summary() << '\n';
      return report.ok ? 0 : 1;
    }
    return usage();
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
