// aapc_analyze: closed-loop fault localization over the flight
// recorder (docs/OBSERVABILITY.md §flight-recorder).
//
// Runs the scheduled alltoall of a two-switch bridged fabric (4+4
// machines, one trunk = bridge link 0) with the flight recorder wired
// into the executor, injects a fault, snapshots the rings — also when
// the run aborts or stalls; that is the point of a flight recorder —
// and asks flight::analyze() to name the culprit.
//
//   aapc_analyze --inject straggler|degrade|down|lossy|none
//       built-in fault of that class; verifies the top-ranked verdict
//       names the injected culprit and exits nonzero on a miss (the
//       ctest closed-loop smokes)
//   aapc_analyze --plan plan.json
//       scripted faults::FaultPlan (JSON schema in
//       faults/fault_plan.hpp; link ids are *bridge* links of the
//       fabric, translated through the elected spanning tree); prints
//       one "verdict:" line per finding — CI greps these for the
//       injected link and rank — and exits nonzero if any injected
//       culprit goes unnamed
//   aapc_analyze --load dump.flt
//       offline: analyze an existing dump taken on the same fabric
//
// Options: --msize 32K, --ring 4096, --severity 3.0, --json (print the
// full report as JSON), --out DIR (write the dump + report there).
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/flight/analyze.hpp"
#include "aapc/flight/dump.hpp"
#include "aapc/flight/recorder.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/sync/sync_plan.hpp"

using namespace aapc;

namespace {

/// The demo fabric: two bridges joined by one trunk (bridge link 0),
/// four machines on each side. Small enough that every fault class
/// localizes in milliseconds, big enough that the trunk matters.
struct Fabric {
  stp::BridgeNetwork net;
  stp::SpanningTree tree;
  std::int32_t trunk = 0;  // bridge link index of the trunk
};

Fabric make_fabric() {
  Fabric f;
  const stp::BridgeId s0 = f.net.add_bridge("s0", 0x8000'0000'0001ull);
  const stp::BridgeId s1 = f.net.add_bridge("s1", 0x8000'0000'0002ull);
  f.trunk = f.net.add_bridge_link(s0, s1);
  for (int i = 0; i < 8; ++i) {
    f.net.add_machine(str_cat("m", i), i < 4 ? s0 : s1);
  }
  f.tree = stp::compute_spanning_tree(f.net);
  return f;
}

/// Everything one recorded run produces. The schedule/plan pair is kept
/// because the analyzer needs the *same* sync plan the lowering used —
/// token tags are numbered by position in plan.edges.
struct RecordedRun {
  core::Schedule schedule;
  sync::SyncPlan plan;
  flight::FlightDump dump;
  std::string failure;  // exception text when the run threw
};

RecordedRun run_recorded(const Fabric& fabric, Bytes msize,
                         std::uint32_t ring_capacity,
                         mpisim::ExecutorParams exec, std::string label) {
  const topology::Topology& topo = fabric.tree.topology;
  RecordedRun run;
  run.schedule = core::build_aapc_schedule(topo);
  run.plan = sync::build_sync_plan(topo, run.schedule);

  lowering::LoweringOptions lopts;
  lopts.precomputed_plan = &run.plan;
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, run.schedule, msize, lopts);

  flight::RecorderParams rparams;
  rparams.ring_capacity = ring_capacity;
  flight::Recorder recorder(topo.machine_count(), rparams);
  recorder.annotate(run.schedule, run.plan);
  exec.flight = &recorder;

  const simnet::NetworkParams net;
  flight::DumpMeta meta;
  meta.backend = exec.backend == mpisim::NetworkBackendKind::kPacket ? 1 : 0;
  // The analyzer normalizes drain excess against the run's own healthy
  // population, so the fluid calibration is a fine baseline for the
  // packet backend too.
  meta.effective_bandwidth = net.effective_bandwidth();
  meta.send_overhead = net.send_overhead;
  meta.recv_overhead = net.recv_overhead;
  meta.sync_tag_base = recorder.sync_tag_base();
  meta.label = std::move(label);

  mpisim::Executor executor(topo, net, exec);
  try {
    const mpisim::ExecutionResult result = executor.run(set);
    meta.completion_time = result.completion_time;
    meta.retransmissions = result.packet.retransmissions;
    meta.segments_lost = result.packet.segments_lost;
  } catch (const std::exception& error) {
    run.failure = error.what();  // the rings survived; dump them anyway
  }
  run.dump = flight::snapshot(recorder, std::move(meta));
  return run;
}

void write_artifacts(const RecordedRun& run,
                     const flight::AnalysisReport& report,
                     const std::string& out_dir, const std::string& stem) {
  std::filesystem::create_directories(out_dir);
  const std::string dump_path = str_cat(out_dir, "/", stem, ".flt");
  flight::write_dump_file(run.dump, dump_path);
  const std::string report_path = str_cat(out_dir, "/", stem, ".json");
  std::ofstream out(report_path);
  out << report.to_json() << '\n';
  AAPC_REQUIRE(out.good(), "cannot write " << report_path);
  std::cout << "wrote " << dump_path << " and " << report_path << '\n';
}

void print_report(const RecordedRun& run,
                  const flight::AnalysisReport& report, bool json) {
  if (!run.failure.empty()) {
    std::cout << "run outcome: " << run.failure << "\n\n";
  }
  std::cout << report.summary();
  for (const flight::Verdict& v : report.verdicts) {
    std::cout << "verdict: " << flight::verdict_kind_name(v.kind) << ' '
              << v.detail << '\n';
  }
  if (json) std::cout << report.to_json() << '\n';
}

/// Did any verdict of a link-culprit kind name this topology link?
bool names_link(const std::vector<flight::Verdict>& verdicts,
                topology::LinkId link) {
  for (const flight::Verdict& v : verdicts) {
    if (v.kind != flight::VerdictKind::kStragglerRank && v.link == link) {
      return true;
    }
  }
  return false;
}

bool names_rank(const std::vector<flight::Verdict>& verdicts,
                topology::Rank rank) {
  for (const flight::Verdict& v : verdicts) {
    if (v.kind == flight::VerdictKind::kStragglerRank && v.rank == rank) {
      return true;
    }
  }
  return false;
}

int run_inject(const std::string& kind, Bytes msize,
               std::uint32_t ring_capacity, double severity, bool json,
               const std::string& out_dir) {
  const Fabric fabric = make_fabric();
  const topology::Topology& topo = fabric.tree.topology;
  const topology::LinkId trunk_link =
      fabric.tree.link_of_bridge_link[static_cast<std::size_t>(fabric.trunk)];

  const simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  faults::FaultPlan plan;
  const topology::Rank straggler = 2;
  if (kind == "straggler") {
    plan.add(faults::FaultEvent::node_slowdown(0, straggler,
                                               severity > 1 ? severity : 3.0));
  } else if (kind == "degrade") {
    plan.add(faults::FaultEvent::link_degrade(0, fabric.trunk, 0.4));
  } else if (kind == "down") {
    plan.add(faults::FaultEvent::link_down(0, fabric.trunk));
    exec.transfer_timeout = milliseconds(40.0);
    exec.transfer_max_retries = 2;
  } else if (kind == "lossy") {
    exec.backend = mpisim::NetworkBackendKind::kPacket;
    // Heavy Bernoulli loss on both trunk directions: every crossing
    // transfer pays retransmissions, so even the trunk's *fastest*
    // transfer stays slow (what the analyzer keys on).
    exec.packet.faults.edge_loss = {{2 * trunk_link, 0.15},
                                    {2 * trunk_link + 1, 0.15}};
  } else {
    AAPC_REQUIRE(kind == "none", "unknown --inject class " << kind);
  }
  faults::compile(plan, net, topo.link_count(), fabric.tree.link_of_bridge_link)
      .apply(exec);

  const RecordedRun run = run_recorded(fabric, msize, ring_capacity, exec,
                                       str_cat("aapc_analyze --inject ", kind));
  const flight::AnalysisReport report = flight::analyze(
      run.dump, topo, &run.schedule, &run.plan, &fabric.tree);
  print_report(run, report, json);
  if (!out_dir.empty()) {
    write_artifacts(run, report, out_dir, str_cat("inject_", kind));
  }

  // Closed loop: the top-ranked verdict must name the injected culprit.
  std::string miss;
  if (kind == "none") {
    if (!report.verdicts.empty()) miss = "expected a healthy (empty) verdict";
  } else if (report.verdicts.empty()) {
    miss = "no verdicts";
  } else {
    const flight::Verdict& top = report.verdicts.front();
    if (kind == "straggler" &&
        (top.kind != flight::VerdictKind::kStragglerRank ||
         top.rank != straggler)) {
      miss = str_cat("expected straggler rank ", straggler);
    } else if (kind == "degrade" &&
               (top.kind != flight::VerdictKind::kDegradedLink ||
                top.link != trunk_link)) {
      miss = str_cat("expected degraded link ", trunk_link);
    } else if (kind == "down" &&
               (top.kind != flight::VerdictKind::kDownLink ||
                top.link != trunk_link)) {
      miss = str_cat("expected down link ", trunk_link);
    } else if (kind == "lossy" &&
               (top.kind != flight::VerdictKind::kLossyTransport ||
                top.link != trunk_link)) {
      miss = str_cat("expected lossy transport on link ", trunk_link);
    }
  }
  if (!miss.empty()) {
    std::cout << "FAIL: " << miss << '\n';
    return 1;
  }
  std::cout << "PASS: analyzer localized the injected fault (" << kind
            << ")\n";
  return 0;
}

int run_plan(const std::string& path, Bytes msize,
             std::uint32_t ring_capacity, bool json,
             const std::string& out_dir) {
  std::ifstream in(path);
  AAPC_REQUIRE(in.good(), "cannot open fault plan " << path);
  std::ostringstream text;
  text << in.rdbuf();
  const faults::FaultPlan plan = faults::fault_plan_from_json(text.str());

  const Fabric fabric = make_fabric();
  const topology::Topology& topo = fabric.tree.topology;
  const simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  // Watchdog on: a plan that downs a link without recovery should end
  // in TransferAborted (and a dump), not an endless stall.
  exec.transfer_timeout = milliseconds(40.0);
  exec.transfer_max_retries = 2;
  faults::compile(plan, net, topo.link_count(), fabric.tree.link_of_bridge_link)
      .apply(exec);

  const RecordedRun run = run_recorded(fabric, msize, ring_capacity, exec,
                                       str_cat("aapc_analyze --plan ", path));
  const flight::AnalysisReport report = flight::analyze(
      run.dump, topo, &run.schedule, &run.plan, &fabric.tree);
  print_report(run, report, json);
  if (!out_dir.empty()) write_artifacts(run, report, out_dir, "plan");

  // Every culprit the plan injects must be named by some verdict.
  const faults::FaultSummary injected =
      faults::summarize(plan, fabric.net.bridge_link_count());
  int misses = 0;
  auto check = [&](bool named, const std::string& what) {
    std::cout << (named ? "  localized: " : "  MISSED: ") << what << '\n';
    if (!named) ++misses;
  };
  std::cout << "closed-loop check against the injected plan:\n";
  for (const std::int32_t bridge_link : injected.degraded_links) {
    const topology::LinkId link =
        fabric.tree.link_of_bridge_link[static_cast<std::size_t>(bridge_link)];
    check(link >= 0 && names_link(report.verdicts, link),
          str_cat("degraded bridge link ", bridge_link));
  }
  for (const std::int32_t bridge_link : injected.down_links) {
    const topology::LinkId link =
        fabric.tree.link_of_bridge_link[static_cast<std::size_t>(bridge_link)];
    check(link >= 0 && names_link(report.verdicts, link),
          str_cat("down bridge link ", bridge_link));
  }
  for (const topology::Rank rank : injected.straggler_ranks) {
    check(names_rank(report.verdicts, rank), str_cat("straggler rank ", rank));
  }
  if (misses > 0) {
    std::cout << "FAIL: " << misses << " injected culprit(s) not localized\n";
    return 1;
  }
  std::cout << "PASS: every injected culprit localized\n";
  return 0;
}

int run_load(const std::string& path, bool json) {
  const flight::FlightDump dump = flight::read_dump_file(path);
  const Fabric fabric = make_fabric();
  const topology::Topology& topo = fabric.tree.topology;
  AAPC_REQUIRE(dump.meta.rank_count == topo.machine_count(),
               "dump has " << dump.meta.rank_count
                           << " ranks; aapc_analyze --load assumes the "
                              "built-in 4+4 fabric");
  // Rebuild the schedule/plan the fabric's runs use, so the dependence
  // graph and phase attribution are available offline too.
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const sync::SyncPlan plan = sync::build_sync_plan(topo, schedule);
  const flight::AnalysisReport report =
      flight::analyze(dump, topo, &schedule, &plan, &fabric.tree);
  std::cout << "dump \"" << dump.meta.label << "\": "
            << dump.meta.rank_count << " ranks, " << report.events_analyzed
            << " events (" << report.events_dropped << " overwritten)\n";
  std::cout << report.summary();
  for (const flight::Verdict& v : report.verdicts) {
    std::cout << "verdict: " << flight::verdict_kind_name(v.kind) << ' '
              << v.detail << '\n';
  }
  if (json) std::cout << report.to_json() << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Closed-loop fault localization: runs the scheduled alltoall of a "
      "two-switch fabric with the flight recorder on, injects a fault, "
      "and verifies flight::analyze() names the culprit.");
  cli.add_flag("inject",
               "fault class to inject and verify: straggler, degrade, "
               "down, lossy, or none");
  cli.add_flag("plan",
               "faults::FaultPlan JSON file (bridge-link ids); prints "
               "verdicts and checks every injected culprit is localized");
  cli.add_flag("load", "analyze an existing dump file offline");
  cli.add_flag("msize", "per-pair message size (default 32K)");
  cli.add_flag("ring", "recorder ring capacity per rank (default 4096)");
  cli.add_flag("severity", "straggler CPU slowdown factor (default 3.0)");
  cli.add_flag("json", "print the full analysis report as JSON");
  cli.add_flag("out", "directory to write the dump and report into");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }
  const Bytes msize = parse_size(cli.get_or("msize", "32K"));
  const std::uint32_t ring_capacity =
      static_cast<std::uint32_t>(cli.get_u64("ring", 4096));
  const double severity = cli.get_double("severity", 3.0);
  const bool json = cli.get_bool("json", false);
  const std::string out_dir = cli.get_or("out", "");

  try {
    if (cli.has("load")) return run_load(cli.get("load"), json);
    if (cli.has("plan")) {
      return run_plan(cli.get("plan"), msize, ring_capacity, json, out_dir);
    }
    return run_inject(cli.get_or("inject", "none"), msize, ring_capacity,
                      severity, json, out_dir);
  } catch (const std::exception& error) {
    std::cerr << "aapc_analyze: " << error.what() << '\n';
    return 2;
  }
}
