// aapc_loadgen: open-loop zipfian load generator for aapc_netd.
//
// Drives `--connections` persistent TCP connections against a running
// front-end at an aggregate arrival rate of `--rps` requests/second.
// Arrivals are scheduled on a global clock *before* workers pick them
// up (open-loop: a slow server does not slow the offered load, it
// accumulates queueing delay), and every latency is measured from the
// scheduled arrival time, so coordinated omission cannot hide
// overload. Cluster popularity is zipfian over a pool of tenant
// topologies (the same pool as aapc_serviced).
//
// With --verify (default on) every response's schedule artifact is
// compared byte-for-byte against an in-process ScheduleService::compile
// for the same topology and message size — the wire must be a
// semantics-preserving transport, not approximately one.
//
// Reports exact p50/p99/p999 over all request latencies, prints one
// JSON result line (the bench/baselines/BENCH_netd.json format), and
// exits nonzero when gates fail:
//   1  integrity failure (response differs from the in-process artifact)
//   2  p99 above --slo-p99-ms
//   3  cache hit rate below --min-hit-rate
//   4  transport/compile errors or nothing served
//
// Run:  ./aapc_loadgen --port 18211 --connections 64 --rps 200 --duration 5
//       ./aapc_loadgen --port 18211 --connections 1000 --rps 2000
//           --duration 3 --slo-p99-ms 500 --min-hit-rate 0.9
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/common/units.hpp"
#include "aapc/core/schedule_io.hpp"
#include "aapc/netd/client.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/service/service.hpp"
#include "aapc/topology/io.hpp"
#include "workload.hpp"

namespace {

using namespace aapc;
using Clock = std::chrono::steady_clock;

struct Expected {
  std::string schedule_json;
  std::vector<topology::Rank> to_canonical;
};

struct WorkerStats {
  std::vector<double> latencies_seconds;
  std::int64_t served = 0;
  std::int64_t cache_hits = 0;
  std::int64_t coalesced = 0;
  std::int64_t integrity_failures = 0;
  std::int64_t rejected_overload = 0;
  std::int64_t rejected_quota = 0;
  std::int64_t rejected_other = 0;
  std::int64_t retries = 0;
  std::int64_t dropped = 0;  // retry budget exhausted
  std::int64_t transport_errors = 0;
};

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "aapc_loadgen: open-loop zipfian load generator for the aapc_netd\n"
      "front-end; verifies every response against the in-process service\n"
      "and reports p50/p99/p999 against an SLO.");
  cli.add_flag("host", "server address", "127.0.0.1");
  cli.add_flag("port", "server port", "18211");
  cli.add_flag("connections", "concurrent TCP connections", "64");
  cli.add_flag("rps", "aggregate offered arrival rate (requests/s)", "200");
  cli.add_flag("duration", "seconds of offered load", "5");
  cli.add_flag("requests",
               "total requests (0 = rps x duration)", "0");
  cli.add_flag("topologies", "distinct clusters in the tenant pool", "8");
  cli.add_flag("zipf", "zipf exponent for cluster popularity", "1.1");
  cli.add_flag("tenants", "distinct tenant ids cycled over workers", "4");
  cli.add_flag("seed", "workload rng seed", "1");
  cli.add_flag("kind",
               "collective kind (alltoall, allgather, reduce_scatter, "
               "sparse_alltoall)",
               "alltoall");
  cli.add_flag("verify",
               "compare every response to the in-process artifact", "true");
  cli.add_flag("max-retries",
               "retries per request after overload/quota rejects", "8");
  cli.add_flag("slo-p99-ms", "exit 2 unless p99 <= this (0 = no gate)", "0");
  cli.add_flag("min-hit-rate",
               "exit 3 unless cache hit rate reaches this", "-1");
  cli.add_flag("metrics-out",
               "write the client-side obs registry to this file as JSON");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  const std::string host = cli.get_or("host", "127.0.0.1");
  const std::uint16_t port =
      static_cast<std::uint16_t>(cli.get_u64("port", 18211));
  const std::int64_t connections =
      static_cast<std::int64_t>(cli.get_u64("connections", 64));
  const double rps = cli.get_double("rps", 200);
  const double duration = cli.get_double("duration", 5);
  std::int64_t total_requests =
      static_cast<std::int64_t>(cli.get_u64("requests", 0));
  if (total_requests <= 0) {
    total_requests = static_cast<std::int64_t>(rps * duration);
  }
  const std::size_t pool_size = cli.get_u64("topologies", 8);
  const double zipf_s = cli.get_double("zipf", 1.1);
  const std::int64_t tenants =
      static_cast<std::int64_t>(cli.get_u64("tenants", 4));
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const bool verify = cli.get_bool("verify", true);
  const core::CollectiveKind kind =
      core::parse_collective_kind(cli.get_or("kind", "alltoall"));
  const std::int64_t max_retries =
      static_cast<std::int64_t>(cli.get_u64("max-retries", 8));
  const double slo_p99_ms = cli.get_double("slo-p99-ms", 0);
  const double min_hit_rate = cli.get_double("min-hit-rate", -1);
  const Bytes sizes[] = {8_KiB, 64_KiB, 256_KiB};
  constexpr std::size_t kSizeCount = sizeof(sizes) / sizeof(sizes[0]);

  // Tenant pool, serialized once per entry (the wire format is the
  // docs/FORMATS.md §1 text). Labelings are fixed per pool entry so
  // the expected artifact is precomputable; the relabeling path over
  // the wire is exercised by aapc_serviced --connect.
  const std::vector<topology::Topology> pool =
      examples::make_tenant_pool(pool_size, seed);
  std::vector<std::string> pool_text;
  pool_text.reserve(pool.size());
  for (const topology::Topology& topo : pool) {
    pool_text.push_back(topology::serialize_topology(topo));
  }
  const examples::ZipfSampler zipf(pool.size(), zipf_s);

  // Sparse requests use a radius-1 ring neighborhood per cluster (the
  // halo-exchange shape) — deterministic, so the expected artifact
  // below and every worker agree on the pattern.
  std::vector<core::SparseNeighbors> pool_neighbors(pool.size());
  if (kind == core::CollectiveKind::kSparseAlltoall) {
    for (std::size_t p = 0; p < pool.size(); ++p) {
      const auto n = pool[p].machine_count();
      pool_neighbors[p].resize(static_cast<std::size_t>(n));
      for (topology::Rank r = 0; r < n; ++r) {
        pool_neighbors[p][static_cast<std::size_t>(r)] = {(r + 1) % n,
                                                          (r + n - 1) % n};
      }
    }
  }

  // Ground truth: the in-process service result for every (cluster,
  // size class) cell. Responses must match byte-for-byte.
  std::vector<std::vector<Expected>> expected;
  if (verify) {
    service::ScheduleService reference;
    expected.resize(pool.size());
    for (std::size_t p = 0; p < pool.size(); ++p) {
      for (std::size_t s = 0; s < kSizeCount; ++s) {
        const service::CompiledRoutine routine =
            reference.compile(pool[p], sizes[s], kind, pool_neighbors[p]);
        Expected cell;
        cell.schedule_json = core::schedule_to_json(
            routine.schedule, pool[p].machine_count());
        cell.to_canonical = routine.to_canonical;
        expected[p].push_back(std::move(cell));
      }
    }
  }

  obs::Registry registry;
  obs::Histogram& request_seconds = registry.histogram(
      "aapc_loadgen_request_seconds",
      "Open-loop request latency (from scheduled arrival to response)");
  obs::Counter& served_total =
      registry.counter("aapc_loadgen_served_total", "Responses received");
  obs::Counter& integrity_failures_total = registry.counter(
      "aapc_loadgen_integrity_failures_total",
      "Responses that differed from the in-process artifact");

  std::atomic<std::int64_t> next_arrival{0};
  std::vector<WorkerStats> stats(static_cast<std::size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(connections));
  std::atomic<std::int64_t> connect_failures{0};
  const Clock::time_point start = Clock::now();

  for (std::int64_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerStats& mine = stats[static_cast<std::size_t>(w)];
      Rng rng(seed * 104729 + static_cast<std::uint64_t>(w));
      const std::string tenant = "bench-" + std::to_string(w % tenants);
      std::unique_ptr<netd::Client> client;
      try {
        client = std::make_unique<netd::Client>(host, port);
      } catch (const std::exception&) {
        connect_failures.fetch_add(1);
        return;
      }
      while (true) {
        const std::int64_t i = next_arrival.fetch_add(1);
        if (i >= total_requests) return;
        const Clock::time_point arrival =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / rps));
        std::this_thread::sleep_until(arrival);
        const std::size_t p = zipf.sample(rng);
        const std::size_t s =
            static_cast<std::size_t>(rng.next_below(kSizeCount));
        std::int64_t attempts = 0;
        while (true) {
          try {
            const netd::ResponseFrame response = client->compile_serialized(
                pool_text[p], sizes[s], tenant, kind, pool_neighbors[p]);
            const double latency =
                std::chrono::duration<double>(Clock::now() - arrival).count();
            mine.latencies_seconds.push_back(latency);
            request_seconds.observe(latency);
            served_total.inc();
            ++mine.served;
            if (response.cache_hit) ++mine.cache_hits;
            if (response.coalesced) ++mine.coalesced;
            if (verify) {
              const Expected& want = expected[p][s];
              if (response.schedule_json != want.schedule_json ||
                  response.to_canonical != want.to_canonical) {
                ++mine.integrity_failures;
                integrity_failures_total.inc();
              }
            }
            break;
          } catch (const netd::RemoteError& e) {
            if (e.code() == netd::ErrorCode::kOverloaded) {
              ++mine.rejected_overload;
            } else if (e.code() == netd::ErrorCode::kQuotaExceeded) {
              ++mine.rejected_quota;
            } else {
              ++mine.rejected_other;
            }
            if (e.code() != netd::ErrorCode::kOverloaded &&
                e.code() != netd::ErrorCode::kQuotaExceeded) {
              ++mine.dropped;  // not retryable
              break;
            }
            if (++attempts > max_retries) {
              ++mine.dropped;
              break;
            }
            ++mine.retries;
            // Honor the server's hint, capped so the open-loop clock
            // is not starved by one hot key.
            const double backoff =
                std::min(std::max(e.retry_after_seconds(), 1e-3), 0.25);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
          } catch (const std::exception&) {
            ++mine.transport_errors;
            try {
              client = std::make_unique<netd::Client>(host, port);
            } catch (const std::exception&) {
              connect_failures.fetch_add(1);
              return;  // server unreachable; worker gives up
            }
            if (++attempts > max_retries) {
              ++mine.dropped;
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerStats total;
  std::vector<double> latencies;
  for (const WorkerStats& s : stats) {
    latencies.insert(latencies.end(), s.latencies_seconds.begin(),
                     s.latencies_seconds.end());
    total.served += s.served;
    total.cache_hits += s.cache_hits;
    total.coalesced += s.coalesced;
    total.integrity_failures += s.integrity_failures;
    total.rejected_overload += s.rejected_overload;
    total.rejected_quota += s.rejected_quota;
    total.rejected_other += s.rejected_other;
    total.retries += s.retries;
    total.dropped += s.dropped;
    total.transport_errors += s.transport_errors;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50_ms = quantile_sorted(latencies, 0.50) * 1e3;
  const double p99_ms = quantile_sorted(latencies, 0.99) * 1e3;
  const double p999_ms = quantile_sorted(latencies, 0.999) * 1e3;
  const double achieved_rps =
      elapsed > 0 ? static_cast<double>(total.served) / elapsed : 0;
  const double hit_rate =
      total.served > 0
          ? static_cast<double>(total.cache_hits) /
                static_cast<double>(total.served)
          : 0;

  // One JSON line, the BENCH_netd.json trajectory format.
  std::cout << "{\"bench\":\"netd_loadgen\",\"connections\":" << connections
            << ",\"rps_target\":" << rps
            << ",\"rps_achieved\":" << achieved_rps
            << ",\"duration_s\":" << elapsed
            << ",\"served\":" << total.served
            << ",\"p50_ms\":" << p50_ms << ",\"p99_ms\":" << p99_ms
            << ",\"p999_ms\":" << p999_ms
            << ",\"hit_rate\":" << hit_rate
            << ",\"coalesced\":" << total.coalesced
            << ",\"rejected_overload\":" << total.rejected_overload
            << ",\"rejected_quota\":" << total.rejected_quota
            << ",\"rejected_other\":" << total.rejected_other
            << ",\"retries\":" << total.retries
            << ",\"dropped\":" << total.dropped
            << ",\"transport_errors\":" << total.transport_errors
            << ",\"connect_failures\":" << connect_failures.load()
            << ",\"integrity_failures\":" << total.integrity_failures
            << "}" << std::endl;

  if (cli.has("metrics-out")) {
    const std::string path = cli.get("metrics-out");
    std::ofstream out(path);
    if (!out.good()) {
      std::cerr << "FAIL: cannot open metrics output file " << path << "\n";
      return 4;
    }
    out << obs::to_json(registry.snapshot()) << "\n";
    if (!out.good()) {
      std::cerr << "FAIL: short write to " << path << "\n";
      return 4;
    }
  }

  if (total.integrity_failures > 0) {
    std::cerr << "FAIL: " << total.integrity_failures
              << " responses differed from the in-process artifact\n";
    return 1;
  }
  if (slo_p99_ms > 0 && p99_ms > slo_p99_ms) {
    std::cerr << "FAIL: p99 " << p99_ms << " ms above the " << slo_p99_ms
              << " ms SLO\n";
    return 2;
  }
  if (min_hit_rate >= 0 && hit_rate < min_hit_rate) {
    std::cerr << "FAIL: cache hit rate " << hit_rate << " below required "
              << min_hit_rate << "\n";
    return 3;
  }
  if (total.served == 0 || total.transport_errors > 0 ||
      connect_failures.load() > 0) {
    std::cerr << "FAIL: served " << total.served << ", "
              << total.transport_errors << " transport errors, "
              << connect_failures.load() << " connect failures\n";
    return 4;
  }
  return 0;
}
