// Shared synthetic-workload pieces for the service drivers
// (aapc_serviced, aapc_loadgen): the zipfian tenant-pool model — a few
// hot clusters, a long tail — and the relabeling shuffle that makes
// every request arrive under a fresh rank labeling of its cluster.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "aapc/common/rng.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::examples {

/// The same physical cluster under a fresh rank/switch labeling.
inline topology::Topology shuffled_copy(const topology::Topology& topo,
                                        Rng& rng) {
  using topology::NodeId;
  const std::int32_t n = topo.node_count();
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  topology::Topology out;
  std::vector<NodeId> new_id(static_cast<std::size_t>(n));
  for (const NodeId old : order) {
    new_id[static_cast<std::size_t>(old)] =
        topo.is_machine(old) ? out.add_machine() : out.add_switch();
  }
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    const auto [a, b] = topo.link_endpoints(l);
    out.add_link(new_id[static_cast<std::size_t>(a)],
                 new_id[static_cast<std::size_t>(b)]);
  }
  out.finalize();
  return out;
}

/// Zipf(s) sampler over [0, n): P(i) proportional to 1/(i+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  std::size_t sample(Rng& rng) const {
    const double u = rng.next_double();
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

/// Tenant pool: the paper's three evaluation clusters plus random
/// machine-room trees, hottest first. Deterministic in `seed`.
inline std::vector<topology::Topology> make_tenant_pool(std::size_t pool_size,
                                                        std::uint64_t seed) {
  std::vector<topology::Topology> pool;
  pool.push_back(topology::make_paper_topology_c());
  pool.push_back(topology::make_paper_topology_b());
  pool.push_back(topology::make_paper_figure1());
  Rng pool_rng(seed * 7919 + 11);
  while (pool.size() < pool_size) {
    topology::RandomTreeOptions tree;
    tree.switches = static_cast<std::int32_t>(pool_rng.next_in(1, 6));
    tree.machines = static_cast<std::int32_t>(pool_rng.next_in(4, 24));
    pool.push_back(topology::make_random_tree(pool_rng, tree));
  }
  return pool;
}

}  // namespace aapc::examples
