// Trace viewer: runs one AAPC algorithm with tracing enabled and shows
// what the network actually did — an ASCII Gantt chart per rank, a
// per-link utilization report, and optional Chrome-trace / CSV dumps
// (load the JSON at chrome://tracing or https://ui.perfetto.dev).
//
//   ./trace_viewer --paper c --algorithm ours --msize 64K
//   ./trace_viewer --algorithm lam --chrome-json /tmp/lam.json
#include <fstream>
#include <iostream>

#include "aapc/baselines/baselines.hpp"
#include "aapc/common/cli.hpp"
#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/trace/trace.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

int main(int argc, char** argv) {
  using namespace aapc;
  CliParser cli("usage: trace_viewer [<topology-file>] [flags]");
  cli.add_flag("paper", "built-in topology: a, b, c, or fig1", "fig1");
  cli.add_flag("algorithm", "ours | ours-nosync | lam | mpich", "ours");
  cli.add_flag("msize", "message size", "64K");
  cli.add_flag("width", "gantt chart width", "100");
  cli.add_flag("chrome-json", "write Chrome trace-event JSON here");
  cli.add_flag("csv", "write per-message CSV here");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  try {
    topology::Topology topo;
    if (!cli.positional().empty()) {
      topo = topology::load_topology_file(cli.positional().front());
    } else {
      const std::string which = cli.get("paper");
      topo = which == "a"   ? topology::make_paper_topology_a()
             : which == "b" ? topology::make_paper_topology_b()
             : which == "c" ? topology::make_paper_topology_c()
                            : topology::make_paper_figure1();
    }
    const Bytes msize = parse_size(cli.get("msize"));

    mpisim::ProgramSet set;
    const std::string algorithm = cli.get("algorithm");
    if (algorithm == "lam") {
      set = baselines::lam_alltoall(topo.machine_count(), msize);
    } else if (algorithm == "mpich") {
      set = baselines::mpich_alltoall(topo.machine_count(), msize);
    } else {
      const core::Schedule schedule = core::build_aapc_schedule(topo);
      lowering::LoweringOptions options;
      if (algorithm == "ours-nosync") {
        options.sync = lowering::SyncMode::kNone;
      } else {
        AAPC_REQUIRE(algorithm == "ours",
                     "unknown algorithm '" << algorithm << "'");
      }
      set = lowering::lower_schedule(topo, schedule, msize, options);
    }

    simnet::NetworkParams net;
    mpisim::ExecutorParams exec;
    exec.record_trace = true;
    mpisim::Executor executor(topo, net, exec);
    const mpisim::ExecutionResult result = executor.run(set);

    std::cout << "algorithm " << set.name << " on " << topo.machine_count()
              << " machines, msize " << format_size(msize) << "B\n"
              << "completion: "
              << format_double(to_milliseconds(result.completion_time), 2)
              << " ms, " << result.message_count << " messages, peak "
              << result.network_stats.max_concurrent_flows
              << " concurrent flows\n"
              << "max overlapping contending transfers: "
              << trace::max_overlapping_contending_transfers(topo,
                                                             result.trace)
              << " (1 = perfectly serialized)\n\n";

    trace::GanttOptions gantt;
    gantt.width = static_cast<std::int32_t>(cli.get_u64("width", 100));
    std::cout << trace::ascii_gantt(result.trace, topo.machine_count(),
                                    gantt)
              << "\nlink utilization\n"
              << trace::link_utilization_report(
                     topo, result.network_stats, net.effective_bandwidth(),
                     result.completion_time);

    if (cli.has("chrome-json")) {
      std::ofstream out(cli.get("chrome-json"));
      out << trace::to_chrome_json(result.trace);
      std::cout << "\nwrote Chrome trace to " << cli.get("chrome-json")
                << '\n';
    }
    if (cli.has("csv")) {
      std::ofstream out(cli.get("csv"));
      out << trace::to_csv(result.trace);
      std::cout << "wrote CSV to " << cli.get("csv") << '\n';
    }
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
