// aapc_netd: the TCP serving front-end for the schedule-compilation
// service. Binds a listening socket, spawns the epoll event loops and
// the sharded ScheduleService backend, and serves the binary protocol
// of docs/NETD.md until --duration elapses or SIGINT/SIGTERM arrives;
// shutdown drains in-flight compilations (bounded by
// --drain-deadline) before closing connections.
//
// Run:  ./aapc_netd --port 18211
//       ./aapc_netd --port 18211 --shards 4 --dispatch-threads 8
//       ./aapc_netd --port 18211 --tenant-rate 100 --tenant-burst 32
//       ./aapc_netd --port 18211 --duration 10 --metrics-out netd.json
//       ./aapc_netd --port 18211 --fabric-switches 3 --fabric-machines 4
//
// --fabric-switches > 0 stands up a star bridged fabric behind the
// serving path (a hub plus that many leaf switches, --fabric-machines
// machines each): the server elects its spanning tree, binds the
// canonical hash into every shard's topology-epoch feed, and accepts
// kChurnEvent frames (docs/NETD.md §churn) naming trunk bridge links
// 0..switches-1.
//
// The bound port is printed as "listening on <host>:<port>" before
// serving starts (flushed, so a harness can scrape it when --port 0
// picked an ephemeral port). --metrics-out writes the merged registry
// snapshot — front-end series plus per-shard aapc_service_* series —
// at shutdown.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>

#include "aapc/common/cli.hpp"
#include "aapc/netd/server.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/stp/stp.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_release); }

}  // namespace

int main(int argc, char** argv) {
  using namespace aapc;
  CliParser cli(
      "aapc_netd: TCP front-end serving compiled AAPC schedules over the\n"
      "length-prefixed binary protocol of docs/NETD.md.");
  cli.add_flag("host", "listen address", "127.0.0.1");
  cli.add_flag("port", "listen port (0 = ephemeral)", "18211");
  cli.add_flag("event-loops", "epoll event-loop threads", "2");
  cli.add_flag("dispatch-threads", "compile dispatch workers", "4");
  cli.add_flag("shards", "backend ScheduleService instances", "2");
  cli.add_flag("dispatch-queue", "dispatch queue bound", "256");
  cli.add_flag("max-connections", "concurrent connection cap", "4096");
  cli.add_flag("tenant-rate",
               "per-tenant requests/second quota (0 disables)", "0");
  cli.add_flag("tenant-burst", "per-tenant burst allowance", "64");
  cli.add_flag("cache-capacity", "schedule-cache entries per shard", "256");
  cli.add_flag("compiler-threads", "compiler pool workers per shard", "2");
  cli.add_flag("queue-capacity", "compiler pool queue bound per shard", "64");
  cli.add_flag("fabric-switches",
               "leaf switches of the churnable star fabric (0 = no fabric, "
               "churn frames rejected)", "0");
  cli.add_flag("fabric-machines", "machines per fabric leaf switch", "4");
  cli.add_flag("duration",
               "seconds to serve before exiting (0 = until SIGINT)", "0");
  cli.add_flag("drain-deadline",
               "max seconds to drain in-flight work on shutdown", "10");
  cli.add_flag("metrics-out",
               "write the merged registry snapshot (front-end + per-shard "
               "service series) to this file as JSON at shutdown");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  netd::ServerOptions options;
  options.host = cli.get_or("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(cli.get_u64("port", 18211));
  options.event_loops = static_cast<std::int32_t>(cli.get_u64("event-loops", 2));
  options.dispatch_threads =
      static_cast<std::int32_t>(cli.get_u64("dispatch-threads", 4));
  options.shards = static_cast<std::int32_t>(cli.get_u64("shards", 2));
  options.dispatch_queue_capacity =
      static_cast<std::int32_t>(cli.get_u64("dispatch-queue", 256));
  options.admission.max_connections =
      static_cast<std::int64_t>(cli.get_u64("max-connections", 4096));
  options.admission.tenant_rate = cli.get_double("tenant-rate", 0);
  options.admission.tenant_burst = cli.get_double("tenant-burst", 64);
  options.service.cache_capacity = cli.get_u64("cache-capacity", 256);
  options.service.compiler_threads =
      static_cast<std::int32_t>(cli.get_u64("compiler-threads", 2));
  options.service.queue_capacity =
      static_cast<std::int32_t>(cli.get_u64("queue-capacity", 64));
  options.drain_deadline_seconds = cli.get_double("drain-deadline", 10);
  const double duration = cli.get_double("duration", 0);

  const std::int64_t fabric_switches =
      static_cast<std::int64_t>(cli.get_u64("fabric-switches", 0));
  const std::int64_t fabric_machines =
      static_cast<std::int64_t>(cli.get_u64("fabric-machines", 4));
  if (fabric_switches > 0) {
    stp::BridgeNetwork fabric;
    const stp::BridgeId hub = fabric.add_bridge("hub", 0x8000'0000'0001ull);
    for (std::int64_t s = 0; s < fabric_switches; ++s) {
      const stp::BridgeId leaf = fabric.add_bridge(
          "s" + std::to_string(s),
          0x8000'0000'0002ull + static_cast<std::uint64_t>(s));
      fabric.add_bridge_link(hub, leaf, 19);  // trunk = bridge link s
      for (std::int64_t m = 0; m < fabric_machines; ++m) {
        fabric.add_machine("m" + std::to_string(s) + "_" + std::to_string(m),
                           leaf);
      }
    }
    options.fabric =
        std::make_shared<const stp::BridgeNetwork>(std::move(fabric));
  }

  netd::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
  std::cout << "listening on " << options.host << ":" << server.port()
            << std::endl;  // flush: harnesses scrape the bound port

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  const auto started = std::chrono::steady_clock::now();
  while (!g_stop.load(std::memory_order_acquire)) {
    if (duration > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
                .count() >= duration) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "draining..." << std::endl;
  server.stop();

  const obs::RegistrySnapshot snapshot = server.metrics_snapshot();
  std::cout << "served "
            << static_cast<std::int64_t>(
                   snapshot.total("aapc_netd_requests_total"))
            << " requests over "
            << static_cast<std::int64_t>(
                   snapshot.value("aapc_netd_connections_total"))
            << " connections\n";
  if (cli.has("metrics-out")) {
    const std::string path = cli.get("metrics-out");
    std::ofstream out(path);
    if (!out.good()) {
      std::cerr << "FAIL: cannot open metrics output file " << path << "\n";
      return 1;
    }
    out << obs::to_json(snapshot) << "\n";
    if (!out.good()) {
      std::cerr << "FAIL: short write to " << path << "\n";
      return 1;
    }
    std::cout << "metrics snapshot written to " << path << "\n";
  }
  return 0;
}
