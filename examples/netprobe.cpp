// Network probe: characterizes the simulator the way one would
// calibrate a real cluster with microbenchmarks — effective goodput as
// a function of concurrent flow count for each contention mechanism.
// These are the curves EXPERIMENTS.md's calibration table refers to.
//
// Run:  ./netprobe
#include <iostream>

#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

/// Aggregate goodput (Mbps) of `flows` simultaneous transfers described
/// by (src, dst) rank pairs, each moving `bytes`.
double measure(const topology::Topology& topo,
               const simnet::NetworkParams& params,
               const std::vector<std::pair<topology::Rank, topology::Rank>>&
                   flows,
               Bytes bytes) {
  simnet::FluidNetwork network(topo, params);
  for (const auto& [src, dst] : flows) {
    network.add_flow(topo.machine_node(src), topo.machine_node(dst), bytes,
                     0);
  }
  std::vector<simnet::FlowId> completed;
  while (!network.idle()) {
    network.advance_to(network.next_event_time(), completed);
  }
  const double total =
      static_cast<double>(bytes) * static_cast<double>(flows.size());
  return bytes_per_sec_to_mbps(total / network.now());
}

}  // namespace

int main() {
  const simnet::NetworkParams params;  // the calibrated defaults
  const Bytes bytes = 1_MiB;

  std::cout << "simnet contention curves (calibrated defaults, "
            << format_double(
                   bytes_per_sec_to_mbps(params.effective_bandwidth()), 1)
            << " Mbps effective per link direction)\n\n";

  // 1. Incast: k senders, one receiver, one switch.
  {
    const topology::Topology topo = topology::make_single_switch(25);
    TextTable table;
    table.set_header({"senders -> 1 receiver", "aggregate Mbps",
                      "efficiency"});
    for (const int k : {1, 2, 4, 8, 16, 23}) {
      std::vector<std::pair<topology::Rank, topology::Rank>> flows;
      for (int i = 0; i < k; ++i) {
        flows.emplace_back(static_cast<topology::Rank>(i + 1), 0);
      }
      const double mbps = measure(topo, params, flows, bytes);
      table.add_row({std::to_string(k), format_double(mbps, 1),
                     format_double(
                         mbps / bytes_per_sec_to_mbps(
                                    params.effective_bandwidth()),
                         2)});
    }
    std::cout << "incast (many-to-one)\n" << table.render() << '\n';
  }

  // 2. Trunk multiplexing: k disjoint flows across one switch-switch
  // link.
  {
    const topology::Topology topo = topology::make_chain({24, 24});
    TextTable table;
    table.set_header({"flows across trunk", "aggregate Mbps",
                      "efficiency"});
    for (const int k : {1, 2, 4, 8, 16, 24}) {
      std::vector<std::pair<topology::Rank, topology::Rank>> flows;
      for (int i = 0; i < k; ++i) {
        flows.emplace_back(static_cast<topology::Rank>(i),
                           static_cast<topology::Rank>(24 + i));
      }
      const double mbps = measure(topo, params, flows, bytes);
      table.add_row({std::to_string(k), format_double(mbps, 1),
                     format_double(
                         mbps / bytes_per_sec_to_mbps(
                                    params.effective_bandwidth()),
                         2)});
    }
    std::cout << "trunk multiplexing (disjoint endpoints)\n"
              << table.render() << '\n';
  }

  // 3. Switch fabric: k disjoint same-switch pairs.
  {
    const topology::Topology topo = topology::make_single_switch(48);
    TextTable table;
    table.set_header({"disjoint pairs in one switch", "aggregate Mbps",
                      "per-flow efficiency"});
    for (const int k : {1, 4, 8, 12, 18, 24}) {
      std::vector<std::pair<topology::Rank, topology::Rank>> flows;
      for (int i = 0; i < k; ++i) {
        flows.emplace_back(static_cast<topology::Rank>(2 * i),
                           static_cast<topology::Rank>(2 * i + 1));
      }
      const double mbps = measure(topo, params, flows, bytes);
      table.add_row(
          {std::to_string(k), format_double(mbps, 1),
           format_double(mbps / (k * bytes_per_sec_to_mbps(
                                         params.effective_bandwidth())),
                         2)});
    }
    std::cout << "switch fabric saturation\n" << table.render() << '\n';
  }

  // 4. Duplex: one pair, one vs two directions.
  {
    const topology::Topology topo = topology::make_single_switch(2);
    const double one =
        measure(topo, params, {{0, 1}}, bytes);
    const double both =
        measure(topo, params, {{0, 1}, {1, 0}}, bytes);
    std::cout << "end-host duplex\n"
              << "one direction:  " << format_double(one, 1) << " Mbps\n"
              << "both directions: " << format_double(both, 1)
              << " Mbps aggregate ("
              << format_double(both / (2 * one), 2)
              << " of 2x one-way)\n";
  }
  // 5. Hot-path structure counters: a staggered all-to-all on paper
  // topology C, reported straight from NetworkStats. pending_heap_pushes
  // counts deferred activations (heap traffic); max_active_rows is the
  // high-water mark of the active-row set progressive filling walks —
  // the effective problem size per rate recomputation, independent of
  // topology size.
  {
    const topology::Topology topo = topology::make_paper_topology_c();
    simnet::FluidNetwork network(topo, params);
    const std::int32_t machines = topo.machine_count();
    std::int64_t added = 0;
    for (topology::Rank src = 0; src < machines; ++src) {
      for (topology::Rank dst = 0; dst < machines; ++dst) {
        if (src == dst) continue;
        network.add_flow(topo.machine_node(src), topo.machine_node(dst),
                         64_KiB, 1e-4 * static_cast<double>(src));
        ++added;
      }
    }
    std::vector<simnet::FlowId> completed;
    while (!network.idle()) {
      network.advance_to(network.next_event_time(), completed);
    }
    const simnet::NetworkStats& stats = network.stats();
    TextTable table;
    table.set_header({"hot-path counter", "value"});
    table.add_row({"flows completed", std::to_string(stats.completed_flows)});
    table.add_row({"rate recomputations",
                   std::to_string(stats.rate_recomputations)});
    table.add_row({"max concurrent flows",
                   std::to_string(stats.max_concurrent_flows)});
    table.add_row({"pending-heap pushes",
                   std::to_string(stats.pending_heap_pushes)});
    table.add_row({"max active capacity rows",
                   std::to_string(stats.max_active_rows)});
    std::cout << "\nsimulator hot-path statistics (staggered all-to-all, "
              << "paper topology C, " << added << " flows)\n"
              << table.render();
  }
  return 0;
}
