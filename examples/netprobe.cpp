// Network probe: characterizes the simulator the way one would
// calibrate a real cluster with microbenchmarks — effective goodput as
// a function of concurrent flow count for each contention mechanism.
// These are the curves EXPERIMENTS.md's calibration table refers to.
//
// Run:  ./netprobe
//       ./netprobe --faults=demo            (scripted fault timeline)
//       ./netprobe --faults=plan.json       (see faults/fault_plan.hpp
//                                            for the JSON schema; link
//                                            ids are topology LinkIds)
//       ./netprobe --loss-sweep             (scheduled alltoall over the
//                                            lossy packet backend; exits
//                                            nonzero on any integrity
//                                            violation — the CI smoke)
//       ./netprobe --metrics                (run the scheduled alltoall
//                                            and print the metrics
//                                            registry as Prometheus
//                                            text — docs/OBSERVABILITY.md)
//       ./netprobe --flight=DIR             (same run with the flight
//                                            recorder on; writes the
//                                            ring dump into DIR and
//                                            prints the analyzer's
//                                            verdict — see
//                                            docs/OBSERVABILITY.md
//                                            §flight-recorder)
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "aapc/common/cli.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/flight/analyze.hpp"
#include "aapc/flight/dump.hpp"
#include "aapc/flight/recorder.hpp"
#include "aapc/harness/loss_sweep.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/packetsim/packet_network.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

/// Aggregate goodput (Mbps) of `flows` simultaneous transfers described
/// by (src, dst) rank pairs, each moving `bytes`.
double measure(const topology::Topology& topo,
               const simnet::NetworkParams& params,
               const std::vector<std::pair<topology::Rank, topology::Rank>>&
                   flows,
               Bytes bytes) {
  simnet::FluidNetwork network(topo, params);
  for (const auto& [src, dst] : flows) {
    network.add_flow(topo.machine_node(src), topo.machine_node(dst), bytes,
                     0);
  }
  std::vector<simnet::FlowId> completed;
  while (!network.idle()) {
    network.advance_to(network.next_event_time(), completed);
  }
  const double total =
      static_cast<double>(bytes) * static_cast<double>(flows.size());
  return bytes_per_sec_to_mbps(total / network.now());
}

/// Fault-injection probe: four flows across the trunk of a two-switch
/// chain while the plan's capacity timeline plays out. Prints the
/// aggregate-rate timeline (one row per simulation event) and the fault
/// markers; if the plan leaves the network unable to progress (links
/// down with no scripted recovery), reports the stuck flows instead of
/// spinning.
int run_fault_probe(const std::string& spec) {
  const topology::Topology topo = topology::make_chain({4, 4});
  // The trunk: the only switch-to-switch link of the chain.
  topology::LinkId trunk = -1;
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    if (!topo.is_machine(topo.edge_source(2 * l)) &&
        !topo.is_machine(topo.edge_target(2 * l))) {
      trunk = l;
      break;
    }
  }

  faults::FaultPlan plan;
  if (spec == "demo") {
    plan.add(faults::FaultEvent::link_degrade(milliseconds(30), trunk, 0.4))
        .add(faults::FaultEvent::link_down(milliseconds(60), trunk))
        .add(faults::FaultEvent::link_up(milliseconds(90), trunk));
  } else {
    std::ifstream in(spec);
    AAPC_REQUIRE(in.good(), "cannot open fault plan " << spec);
    std::ostringstream text;
    text << in.rdbuf();
    plan = faults::fault_plan_from_json(text.str());
  }

  const simnet::NetworkParams params;
  // Plan links ARE topology LinkIds here (identity map — netprobe runs
  // on a plain tree, no bridge election in between).
  const faults::CompiledFaults compiled =
      faults::compile(plan, params, topo.link_count());
  std::cout << "fault probe: 4 flows across the trunk (link "
            << trunk << ") of a 4+4 chain, plan \"" << spec << "\"\n";
  for (const mpisim::FaultMarker& marker : compiled.markers) {
    std::cout << "  plan: " << format_double(to_milliseconds(marker.time), 1)
              << "ms " << marker.label << '\n';
  }

  simnet::FluidNetwork network(topo, params);
  for (const simnet::LinkCapacityEvent& event : compiled.capacity_events) {
    network.schedule_capacity_change(event.when, event.link,
                                     event.bandwidth_bytes_per_sec);
  }
  std::vector<simnet::FlowId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(network.add_flow(topo.machine_node(i),
                                   topo.machine_node(4 + i), 512_KiB, 0));
  }

  TextTable timeline;
  timeline.set_header({"t (ms)", "in flight", "aggregate Mbps"});
  std::vector<simnet::FlowId> completed;
  while (!network.idle()) {
    const SimTime next = network.next_event_time();
    if (next == simnet::kNever) {
      // Stuck-flow guard: nothing will ever complete. Name the flows.
      std::cout << timeline.render();
      std::cout << "STUCK at " << format_double(to_milliseconds(network.now()), 1)
                << "ms — no future event; the plan leaves these flows at "
                   "rate 0 with no scripted recovery:\n";
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const double remaining = network.flow_remaining(ids[i]);
        if (remaining > 0 && network.flow_rate(ids[i]) <= 0) {
          std::cout << "  flow " << i << ": rank " << i << " -> rank "
                    << 4 + i << ", "
                    << format_double(remaining, 0) << " bytes undelivered\n";
        }
      }
      return 1;
    }
    network.advance_to(next, completed);
    double aggregate = 0;
    std::int32_t in_flight = 0;
    for (const simnet::FlowId id : ids) {
      if (network.flow_remaining(id) > 0) ++in_flight;
      aggregate += network.flow_rate(id);
    }
    timeline.add_row({format_double(to_milliseconds(network.now()), 2),
                      std::to_string(in_flight),
                      format_double(bytes_per_sec_to_mbps(aggregate), 1)});
  }
  std::cout << timeline.render();
  std::cout << "all flows drained at "
            << format_double(to_milliseconds(network.now()), 1) << "ms; "
            << network.stats().capacity_changes
            << " capacity change(s) applied\n";
  return 0;
}

/// Loss-sweep smoke: the scheduled alltoall of a 4+4 chain executed
/// over the lossy packet backend (harness::run_loss_sweep), then one
/// direct packet scenario at 1% loss showing *which* flows suffered —
/// per-message retransmission counts and the per-port peak queue
/// depths that aggregate totals hide. Exits nonzero on any integrity
/// violation.
int run_loss_sweep_probe() {
  const topology::Topology topo = topology::make_chain({4, 4});
  harness::LossSweepConfig config;
  config.msize = 16_KiB;
  const harness::LossSweepReport report =
      harness::run_loss_sweep(topo, "4+4 chain", config);
  std::cout << report.to_string() << "\n\n";

  // Per-flow detail: 7 trunk flows under 1% Bernoulli loss,
  // selective repeat.
  packetsim::PacketNetworkParams params;
  params.transport = packetsim::PacketNetworkParams::Transport::kSelectiveRepeat;
  params.faults.loss_rate = 0.01;
  std::vector<packetsim::PacketMessage> messages;
  for (topology::Rank s = 0; s < 4; ++s) {
    messages.push_back({s, static_cast<topology::Rank>(4 + s), 256_KiB, 0});
  }
  for (topology::Rank s = 1; s < 4; ++s) {
    messages.push_back({s, 0, 256_KiB, 0});
  }
  const packetsim::PacketResult result =
      packetsim::simulate_packets(topo, messages, params);
  TextTable flows;
  flows.set_header({"flow", "completion (ms)", "retransmissions"});
  for (std::size_t m = 0; m < messages.size(); ++m) {
    flows.add_row({str_cat("rank ", messages[m].src, " -> rank ",
                           messages[m].dst),
                   format_double(to_milliseconds(result.completion[m]), 2),
                   std::to_string(result.message_retransmissions[m])});
  }
  std::cout << "per-flow fault detail (7 flows, 1% loss, selective repeat)\n"
            << flows.render();
  TextTable queues;
  queues.set_header({"directed edge", "peak queue (segments)"});
  for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
    if (result.peak_queue_segments[static_cast<std::size_t>(e)] < 2) continue;
    queues.add_row(
        {str_cat(topo.name(topo.edge_source(e)), " -> ",
                 topo.name(topo.edge_target(e))),
         std::to_string(
             result.peak_queue_segments[static_cast<std::size_t>(e)])});
  }
  std::cout << "\ncongested ports (peak queue >= 2)\n" << queues.render()
            << "peak occupancy overall: " << result.peak_queue_occupancy
            << " segments; " << result.segments_lost << " segments lost, "
            << result.retransmissions << " retransmissions\n";

  if (!report.all_ok()) {
    std::cout << "\nFAIL: integrity violation in the loss sweep\n";
    return 1;
  }
  std::cout << "\nPASS: every transfer delivered exactly once at every "
               "loss rate\n";
  return 0;
}

/// Metrics probe: one scheduled alltoall on paper topology C with the
/// executor's metrics sink wired to a registry, exposed as Prometheus
/// text on stdout (scrape-shaped; also the CI smoke for the text
/// exporter). The same registry run twice would accumulate — counters
/// are cumulative across runs by design.
int run_metrics_probe() {
  const topology::Topology topo = topology::make_paper_topology_c();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, schedule, 32_KiB, {});

  obs::Registry registry;
  const simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.metrics = &registry;
  mpisim::Executor executor(topo, net, exec);
  const mpisim::ExecutionResult result = executor.run(set);

  std::cout << obs::to_prometheus_text(registry.snapshot());
  if (!result.integrity.ok()) {
    std::cerr << "FAIL: integrity violation in the metrics probe run\n";
    return 1;
  }
  return 0;
}

/// Flight probe: the scheduled alltoall on paper topology C with the
/// flight recorder wired in; writes the ring dump into `dir` and runs
/// the analyzer on it (a healthy run — the analyzer should stay
/// silent). The dump is `aapc_analyze --load` / flight::read_dump_file
/// material.
int run_flight_probe(const std::string& dir) {
  const topology::Topology topo = topology::make_paper_topology_c();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  // The analyzer needs the same sync plan the lowering used (token tags
  // are numbered by position in plan.edges), so build it once and share.
  const sync::SyncPlan plan = sync::build_sync_plan(topo, schedule);
  lowering::LoweringOptions lopts;
  lopts.precomputed_plan = &plan;
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, schedule, 32_KiB, lopts);

  flight::Recorder recorder(topo.machine_count());
  recorder.annotate(schedule, plan);
  const simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.flight = &recorder;
  mpisim::Executor executor(topo, net, exec);
  const mpisim::ExecutionResult result = executor.run(set);

  flight::DumpMeta meta;
  meta.effective_bandwidth = net.effective_bandwidth();
  meta.send_overhead = net.send_overhead;
  meta.recv_overhead = net.recv_overhead;
  meta.completion_time = result.completion_time;
  meta.label = "netprobe --flight";
  const flight::FlightDump dump = flight::snapshot(recorder, meta);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/netprobe.flt";
  flight::write_dump_file(dump, path);

  const flight::AnalysisReport report =
      flight::analyze(dump, topo, &schedule, &plan);
  std::cout << "flight probe: wrote " << path << " ("
            << report.events_analyzed << " events, "
            << report.transfers_observed << " transfers)\n"
            << report.summary();
  if (!result.integrity.ok()) {
    std::cerr << "FAIL: integrity violation in the flight probe run\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Characterizes the simulator's contention curves; with --faults, "
      "replays a scripted link-fault timeline against trunk flows.");
  cli.add_flag("faults",
               "fault plan: a JSON file (see faults/fault_plan.hpp) or "
               "'demo' for a built-in degrade/down/up timeline");
  cli.add_flag("loss-sweep",
               "run the scheduled alltoall over the lossy packet backend "
               "and audit end-to-end integrity (nonzero exit on violation)");
  cli.add_flag("metrics",
               "run the scheduled alltoall with the metrics registry wired "
               "in and print it as Prometheus text exposition");
  cli.add_flag("flight",
               "run the scheduled alltoall with the flight recorder on and "
               "write the ring dump into this directory");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }
  if (cli.has("faults")) return run_fault_probe(cli.get("faults"));
  if (cli.has("loss-sweep")) return run_loss_sweep_probe();
  if (cli.has("metrics")) return run_metrics_probe();
  if (cli.has("flight")) return run_flight_probe(cli.get("flight"));

  const simnet::NetworkParams params;  // the calibrated defaults
  const Bytes bytes = 1_MiB;

  std::cout << "simnet contention curves (calibrated defaults, "
            << format_double(
                   bytes_per_sec_to_mbps(params.effective_bandwidth()), 1)
            << " Mbps effective per link direction)\n\n";

  // 1. Incast: k senders, one receiver, one switch.
  {
    const topology::Topology topo = topology::make_single_switch(25);
    TextTable table;
    table.set_header({"senders -> 1 receiver", "aggregate Mbps",
                      "efficiency"});
    for (const int k : {1, 2, 4, 8, 16, 23}) {
      std::vector<std::pair<topology::Rank, topology::Rank>> flows;
      for (int i = 0; i < k; ++i) {
        flows.emplace_back(static_cast<topology::Rank>(i + 1), 0);
      }
      const double mbps = measure(topo, params, flows, bytes);
      table.add_row({std::to_string(k), format_double(mbps, 1),
                     format_double(
                         mbps / bytes_per_sec_to_mbps(
                                    params.effective_bandwidth()),
                         2)});
    }
    std::cout << "incast (many-to-one)\n" << table.render() << '\n';
  }

  // 2. Trunk multiplexing: k disjoint flows across one switch-switch
  // link.
  {
    const topology::Topology topo = topology::make_chain({24, 24});
    TextTable table;
    table.set_header({"flows across trunk", "aggregate Mbps",
                      "efficiency"});
    for (const int k : {1, 2, 4, 8, 16, 24}) {
      std::vector<std::pair<topology::Rank, topology::Rank>> flows;
      for (int i = 0; i < k; ++i) {
        flows.emplace_back(static_cast<topology::Rank>(i),
                           static_cast<topology::Rank>(24 + i));
      }
      const double mbps = measure(topo, params, flows, bytes);
      table.add_row({std::to_string(k), format_double(mbps, 1),
                     format_double(
                         mbps / bytes_per_sec_to_mbps(
                                    params.effective_bandwidth()),
                         2)});
    }
    std::cout << "trunk multiplexing (disjoint endpoints)\n"
              << table.render() << '\n';
  }

  // 3. Switch fabric: k disjoint same-switch pairs.
  {
    const topology::Topology topo = topology::make_single_switch(48);
    TextTable table;
    table.set_header({"disjoint pairs in one switch", "aggregate Mbps",
                      "per-flow efficiency"});
    for (const int k : {1, 4, 8, 12, 18, 24}) {
      std::vector<std::pair<topology::Rank, topology::Rank>> flows;
      for (int i = 0; i < k; ++i) {
        flows.emplace_back(static_cast<topology::Rank>(2 * i),
                           static_cast<topology::Rank>(2 * i + 1));
      }
      const double mbps = measure(topo, params, flows, bytes);
      table.add_row(
          {std::to_string(k), format_double(mbps, 1),
           format_double(mbps / (k * bytes_per_sec_to_mbps(
                                         params.effective_bandwidth())),
                         2)});
    }
    std::cout << "switch fabric saturation\n" << table.render() << '\n';
  }

  // 4. Duplex: one pair, one vs two directions.
  {
    const topology::Topology topo = topology::make_single_switch(2);
    const double one =
        measure(topo, params, {{0, 1}}, bytes);
    const double both =
        measure(topo, params, {{0, 1}, {1, 0}}, bytes);
    std::cout << "end-host duplex\n"
              << "one direction:  " << format_double(one, 1) << " Mbps\n"
              << "both directions: " << format_double(both, 1)
              << " Mbps aggregate ("
              << format_double(both / (2 * one), 2)
              << " of 2x one-way)\n";
  }
  // 5. Hot-path structure counters: a staggered all-to-all on paper
  // topology C, reported straight from NetworkStats. pending_heap_pushes
  // counts deferred activations (heap traffic); max_active_rows is the
  // high-water mark of the active-row set progressive filling walks —
  // the effective problem size per rate recomputation, independent of
  // topology size.
  {
    const topology::Topology topo = topology::make_paper_topology_c();
    simnet::FluidNetwork network(topo, params);
    const std::int32_t machines = topo.machine_count();
    std::int64_t added = 0;
    for (topology::Rank src = 0; src < machines; ++src) {
      for (topology::Rank dst = 0; dst < machines; ++dst) {
        if (src == dst) continue;
        network.add_flow(topo.machine_node(src), topo.machine_node(dst),
                         64_KiB, 1e-4 * static_cast<double>(src));
        ++added;
      }
    }
    std::vector<simnet::FlowId> completed;
    while (!network.idle()) {
      network.advance_to(network.next_event_time(), completed);
    }
    const simnet::NetworkStats& stats = network.stats();
    TextTable table;
    table.set_header({"hot-path counter", "value"});
    table.add_row({"flows completed", std::to_string(stats.completed_flows)});
    table.add_row({"rate recomputations",
                   std::to_string(stats.rate_recomputations)});
    table.add_row({"max concurrent flows",
                   std::to_string(stats.max_concurrent_flows)});
    table.add_row({"pending-heap pushes",
                   std::to_string(stats.pending_heap_pushes)});
    table.add_row({"max active capacity rows",
                   std::to_string(stats.max_active_rows)});
    std::cout << "\nsimulator hot-path statistics (staggered all-to-all, "
              << "paper topology C, " << added << " flows)\n"
              << table.render();
  }
  return 0;
}
