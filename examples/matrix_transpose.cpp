// Matrix transpose — the paper's motivating workload class (§1: AAPC
// "appears in many high performance applications, including matrix
// transpose, multi-dimensional convolution, and data redistribution").
//
// A dense N x N matrix of doubles is row-partitioned over the cluster's
// machines. Transposing it requires every machine to send a distinct
// block to every other machine: exactly MPI_Alltoall with
// msize = (N/P)^2 * 8 bytes. This example sweeps matrix sizes on the
// paper's chain topology (c) and reports transpose time under LAM,
// MPICH, and the generated routine.
//
// Run:  ./matrix_transpose [--matrix-sizes 1024,2048,4096] [--paper c]
#include <iostream>

#include "aapc/common/cli.hpp"
#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

int main(int argc, char** argv) {
  using namespace aapc;
  CliParser cli("Distributed matrix transpose via AAPC.");
  cli.add_flag("matrix-sizes", "comma-separated N for N x N matrices",
               "1024,2048,4096,8192");
  cli.add_flag("paper", "topology: a, b, or c", "c");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  const std::string which = cli.get("paper");
  const topology::Topology topo =
      which == "a"   ? topology::make_paper_topology_a()
      : which == "b" ? topology::make_paper_topology_b()
                     : topology::make_paper_topology_c();
  const std::int64_t machines = topo.machine_count();

  std::cout << "transposing N x N doubles over " << machines
            << " machines on paper topology (" << which << ")\n"
            << "block per machine pair: (N/P)^2 * 8 bytes\n\n";

  const auto suite = harness::standard_suite(topo);
  harness::ExperimentConfig config;

  TextTable table;
  table.set_header({"N", "block", "LAM", "MPICH", "Ours", "best"});
  for (const std::string& token : split(cli.get("matrix-sizes"), ',')) {
    const std::int64_t n = static_cast<std::int64_t>(parse_u64(token));
    const std::int64_t rows_per_machine = n / machines;
    if (rows_per_machine == 0) {
      std::cerr << "skipping N=" << n << " (fewer rows than machines)\n";
      continue;
    }
    const Bytes block_bytes = static_cast<Bytes>(
        rows_per_machine * rows_per_machine * 8);
    std::vector<std::string> row{std::to_string(n),
                                 format_size(block_bytes) + "B"};
    std::string best;
    double best_time = 1e300;
    for (const harness::NamedAlgorithm& algo : suite) {
      const harness::RunResult result =
          harness::run_algorithm(topo, algo, block_bytes, config);
      row.push_back(format_double(to_milliseconds(result.completion), 1) +
                    "ms");
      if (result.completion < best_time) {
        best_time = result.completion;
        best = algo.name;
      }
    }
    row.push_back(best);
    table.add_row(std::move(row));
  }
  std::cout << table.render()
            << "\nLarge matrices (large blocks) are where the generated "
               "routine wins —\nexactly the paper's 'message size is "
               "usually large' regime (§1).\n";
  return 0;
}
