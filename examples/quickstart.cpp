// Quickstart: the whole library in one page.
//
//   1. describe an Ethernet switched cluster (tree of switches+machines),
//   2. build the contention-free AAPC schedule (the paper's algorithm),
//   3. verify it independently,
//   4. simulate it against LAM's and MPICH's Alltoall,
//   5. emit the customized MPI_Alltoall C routine.
//
// Run:  ./quickstart
#include <iostream>

#include "aapc/codegen/codegen.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/io.hpp"

int main() {
  using namespace aapc;

  // 1. A small cluster: two 100 Mbps switches, five machines.
  const topology::Topology topo = topology::parse_topology(R"(
    switch s0
    switch s1
    link s0 s1
    machine n0 s0
    machine n1 s0
    machine n2 s0
    machine n3 s1
    machine n4 s1
  )");
  std::cout << topology::describe_topology(topo, mbps_to_bytes_per_sec(100))
            << '\n';

  // 2. The paper's scheduler: |M0| * (|M| - |M0|) contention-free phases.
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  std::cout << "schedule (" << schedule.phase_count() << " phases):\n"
            << schedule.to_string(topo) << '\n';

  // 3. Independent verification of the §4 Theorem conditions.
  const core::VerifyReport report = core::verify_schedule(topo, schedule);
  std::cout << "verification: " << report.summary() << "\n\n";

  // 4. Simulate MPI_Alltoall at 128 KB per pair: LAM vs MPICH vs ours.
  harness::ExperimentConfig config;
  config.msizes = {128_KiB};
  const auto suite = harness::standard_suite(topo);
  const harness::ExperimentReport experiment =
      harness::run_experiment(topo, "quickstart cluster", suite, config);
  std::cout << experiment.to_string() << '\n';

  // 5. The generated C routine (first lines).
  const std::string code = codegen::generate_alltoall_c(topo, schedule);
  std::cout << "generated routine (" << code.size() << " bytes of C):\n";
  std::size_t lines = 0;
  for (std::size_t i = 0; i < code.size() && lines < 14; ++i) {
    std::cout << code[i];
    if (code[i] == '\n') ++lines;
  }
  std::cout << "...\n";
  return 0;
}
