// Tests for the spanning tree election (the §3 substrate assumption).
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/stp/stp.hpp"

namespace aapc::stp {
namespace {

TEST(StpTest, RootIsLowestBridgeId) {
  BridgeNetwork net;
  const BridgeId a = net.add_bridge("a", 300);
  const BridgeId b = net.add_bridge("b", 100);
  const BridgeId c = net.add_bridge("c", 200);
  net.add_bridge_link(a, b);
  net.add_bridge_link(b, c);
  net.add_machine("m0", a);
  net.add_machine("m1", c);
  const SpanningTree tree = compute_spanning_tree(net);
  EXPECT_EQ(tree.root_bridge, b);
}

TEST(StpTest, RingBlocksExactlyOneLink) {
  BridgeNetwork net;
  const BridgeId a = net.add_bridge("a", 1);
  const BridgeId b = net.add_bridge("b", 2);
  const BridgeId c = net.add_bridge("c", 3);
  net.add_bridge_link(a, b, 19);
  net.add_bridge_link(b, c, 19);
  net.add_bridge_link(c, a, 19);
  net.add_machine("m0", a);
  net.add_machine("m1", b);
  net.add_machine("m2", c);
  const SpanningTree tree = compute_spanning_tree(net);
  std::int32_t forwarding = 0;
  for (const bool f : tree.forwarding) forwarding += f ? 1 : 0;
  EXPECT_EQ(forwarding, 2);
  // The blocked link is b-c (both reach the root a directly).
  EXPECT_TRUE(tree.forwarding[0]);
  EXPECT_FALSE(tree.forwarding[1]);
  EXPECT_TRUE(tree.forwarding[2]);
  EXPECT_EQ(tree.topology.switch_count(), 3);
  EXPECT_EQ(tree.topology.machine_count(), 3);
  EXPECT_EQ(tree.topology.link_count(), 5);  // 2 bridge + 3 machine links
}

TEST(StpTest, ParallelLinksKeepOne) {
  BridgeNetwork net;
  const BridgeId a = net.add_bridge("a", 1);
  const BridgeId b = net.add_bridge("b", 2);
  net.add_bridge_link(a, b, 19);
  net.add_bridge_link(a, b, 19);  // redundant uplink
  net.add_machine("m0", a);
  net.add_machine("m1", b);
  const SpanningTree tree = compute_spanning_tree(net);
  EXPECT_NE(tree.forwarding[0], tree.forwarding[1]);
  // The lower link id wins the tie.
  EXPECT_TRUE(tree.forwarding[0]);
}

TEST(StpTest, CostsSteerTheTree) {
  // Square a-b-d-c-a; direct a-d link is expensive. d must reach the
  // root a through b (cheapest), not through the expensive direct link.
  BridgeNetwork net;
  const BridgeId a = net.add_bridge("a", 1);
  const BridgeId b = net.add_bridge("b", 2);
  const BridgeId c = net.add_bridge("c", 3);
  const BridgeId d = net.add_bridge("d", 4);
  const std::int32_t ab = net.add_bridge_link(a, b, 4);
  const std::int32_t bd = net.add_bridge_link(b, d, 4);
  const std::int32_t ac = net.add_bridge_link(a, c, 19);
  const std::int32_t cd = net.add_bridge_link(c, d, 19);
  const std::int32_t ad = net.add_bridge_link(a, d, 100);
  net.add_machine("m0", a);
  net.add_machine("m1", d);
  const SpanningTree tree = compute_spanning_tree(net);
  EXPECT_TRUE(tree.forwarding[ab]);
  EXPECT_TRUE(tree.forwarding[bd]);
  EXPECT_TRUE(tree.forwarding[ac]);   // c's root port
  EXPECT_FALSE(tree.forwarding[cd]);
  EXPECT_FALSE(tree.forwarding[ad]);
  EXPECT_EQ(tree.root_path_cost[d], 8);
}

TEST(StpTest, TieBreaksOnNeighborBridgeId) {
  // d reaches the root a at equal cost via b (id 2) or c (id 3): the
  // 802.1D tie-break picks the lower sender bridge id, b.
  BridgeNetwork net;
  const BridgeId a = net.add_bridge("a", 1);
  const BridgeId b = net.add_bridge("b", 2);
  const BridgeId c = net.add_bridge("c", 3);
  const BridgeId d = net.add_bridge("d", 4);
  net.add_bridge_link(a, b, 10);
  net.add_bridge_link(a, c, 10);
  const std::int32_t db = net.add_bridge_link(d, b, 10);
  const std::int32_t dc = net.add_bridge_link(d, c, 10);
  net.add_machine("m0", a);
  net.add_machine("m1", d);
  const SpanningTree tree = compute_spanning_tree(net);
  EXPECT_TRUE(tree.forwarding[db]);
  EXPECT_FALSE(tree.forwarding[dc]);
}

TEST(StpTest, DisconnectedBridgeRejected) {
  BridgeNetwork net;
  net.add_bridge("a", 1);
  net.add_bridge("b", 2);
  net.add_machine("m0", 0);
  net.add_machine("m1", 1);
  EXPECT_THROW(compute_spanning_tree(net), aapc::InvalidArgument);
}

TEST(StpTest, DuplicateBridgeIdRejected) {
  BridgeNetwork net;
  net.add_bridge("a", 7);
  EXPECT_THROW(net.add_bridge("b", 7), aapc::InvalidArgument);
}

TEST(StpTest, InvalidLinksRejected) {
  BridgeNetwork net;
  const BridgeId a = net.add_bridge("a", 1);
  EXPECT_THROW(net.add_bridge_link(a, a), aapc::InvalidArgument);
  EXPECT_THROW(net.add_bridge_link(a, 5), aapc::InvalidArgument);
  EXPECT_THROW(net.add_machine("m", 9), aapc::InvalidArgument);
}

TEST(StpTest, ElectedTreeFeedsTheScheduler) {
  // End to end: redundant mesh of 4 switches, 3 machines each -> STP
  // tree -> optimal contention-free schedule.
  BridgeNetwork net;
  std::vector<BridgeId> bridges;
  for (int i = 0; i < 4; ++i) {
    bridges.push_back(net.add_bridge("sw" + std::to_string(i),
                                     static_cast<std::uint64_t>(i + 1)));
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      net.add_bridge_link(bridges[i], bridges[j], 19);  // full mesh
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int m = 0; m < 3; ++m) {
      net.add_machine("n" + std::to_string(3 * i + m), bridges[i]);
    }
  }
  const SpanningTree tree = compute_spanning_tree(net);
  // Full mesh on the root: every other bridge hangs directly off it.
  EXPECT_EQ(tree.root_bridge, 0);
  const core::Schedule schedule = core::build_aapc_schedule(tree.topology);
  const core::VerifyReport report =
      core::verify_schedule(tree.topology, schedule);
  EXPECT_TRUE(report.ok) << report.summary();
}

}  // namespace
}  // namespace aapc::stp
