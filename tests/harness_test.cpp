// Unit tests for the experiment harness (table rendering, throughput
// math, suite construction) and the topology DOT export.
#include <gtest/gtest.h>

#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

namespace aapc::harness {
namespace {

using topology::make_paper_figure1;
using topology::Topology;

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.msizes = {8_KiB, 64_KiB};
  return config;
}

TEST(HarnessTest, StandardSuiteNamesAndOrder) {
  const Topology topo = make_paper_figure1();
  const auto suite = standard_suite(topo);
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].name, "LAM");
  EXPECT_EQ(suite[1].name, "MPICH");
  EXPECT_EQ(suite[2].name, "Ours");
}

TEST(HarnessTest, ReportTablesHaveOneRowPerSize) {
  const Topology topo = make_paper_figure1();
  const ExperimentReport report = run_experiment(
      topo, "unit", standard_suite(topo), tiny_config());
  EXPECT_EQ(report.completion_table().row_count(), 2u);
  EXPECT_EQ(report.throughput_table().row_count(), 2u);
  const std::string csv = report.completion_table().render_csv();
  EXPECT_NE(csv.find("msize,LAM,MPICH,Ours"), std::string::npos);
  EXPECT_NE(csv.find("8KB"), std::string::npos);
}

TEST(HarnessTest, PeakMatchesTopologyFormula) {
  const Topology topo = topology::make_paper_topology_c();
  const ExperimentConfig config = tiny_config();
  const ExperimentReport report =
      run_experiment(topo, "unit", {}, config);
  EXPECT_NEAR(report.peak_mbps, 387.5, 1e-6);
}

TEST(HarnessTest, RunAlgorithmReportsMessageCount) {
  const Topology topo = make_paper_figure1();
  const auto suite = standard_suite(topo);
  const RunResult lam = run_algorithm(topo, suite[0], 8_KiB, tiny_config());
  EXPECT_EQ(lam.msize, 8_KiB);
  EXPECT_EQ(lam.messages, 30);
  EXPECT_EQ(lam.algorithm, "LAM");
}

TEST(HarnessTest, MsizeSweepIsMonotoneInCompletion) {
  const Topology topo = make_paper_figure1();
  const auto suite = standard_suite(topo);
  ExperimentConfig config;
  config.msizes = {8_KiB, 32_KiB, 128_KiB};
  const ExperimentReport report =
      run_experiment(topo, "unit", suite, config);
  for (std::size_t algo = 0; algo < suite.size(); ++algo) {
    for (std::size_t s = 1; s < config.msizes.size(); ++s) {
      EXPECT_GT(report.results[s][algo].completion,
                report.results[s - 1][algo].completion)
          << suite[algo].name;
    }
  }
}

TEST(HarnessTest, CustomAlgorithmEntry) {
  const Topology topo = make_paper_figure1();
  const std::int32_t ranks = topo.machine_count();
  NamedAlgorithm custom{"custom", [ranks](Bytes msize) {
    mpisim::ProgramSet set;
    set.name = "custom";
    set.programs.resize(ranks);
    for (topology::Rank r = 0; r < ranks; ++r) {
      set.programs[r].ops.push_back(mpisim::Op::copy(msize));
    }
    return set;
  }};
  const RunResult result =
      run_algorithm(topo, custom, 1_MiB, tiny_config());
  EXPECT_EQ(result.messages, 0);
  EXPECT_GT(result.completion, 0);
}

}  // namespace
}  // namespace aapc::harness

namespace aapc::topology {
namespace {

TEST(TopologyDotTest, DotContainsNodesAndBottleneck) {
  const Topology topo = make_paper_figure1();
  const std::string dot = to_dot(topo);
  EXPECT_NE(dot.find("graph cluster {"), std::string::npos);
  EXPECT_NE(dot.find("\"s1\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"n5\" [shape=ellipse]"), std::string::npos);
  EXPECT_NE(dot.find("\"s0\" -- \"s1\""), std::string::npos);
  // The bottleneck (s0, s1) load-9 link is drawn bold.
  EXPECT_NE(dot.find("label=\"9\", penwidth=3"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(TopologyDotTest, SingleMachineDotOmitsLoads) {
  const Topology topo = make_single_switch(1);
  const std::string dot = to_dot(topo);
  EXPECT_EQ(dot.find("label"), std::string::npos);
  EXPECT_NE(dot.find("\"n0\""), std::string::npos);
}

}  // namespace
}  // namespace aapc::topology
