// Tests for the JSON schedule serialization.
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/core/schedule_io.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::make_paper_figure1;
using topology::make_single_switch;
using topology::Topology;

TEST(ScheduleIoTest, RoundTripPreservesPhases) {
  const Topology topo = make_paper_figure1();
  const Schedule original = build_aapc_schedule(topo);
  const std::string json = schedule_to_json(original, topo.machine_count());
  const Schedule loaded = schedule_from_json(json, topo.machine_count());
  ASSERT_EQ(loaded.phase_count(), original.phase_count());
  const auto loaded_phases = loaded.phase_lists();
  const auto original_phases = original.phase_lists();
  for (std::int32_t p = 0; p < original.phase_count(); ++p) {
    EXPECT_EQ(loaded_phases[static_cast<std::size_t>(p)],
              original_phases[static_cast<std::size_t>(p)])
        << "phase " << p;
  }
  // The loaded schedule still verifies against the topology.
  const VerifyReport report = verify_schedule(topo, loaded);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ScheduleIoTest, GoldenFormat) {
  const Schedule schedule = Schedule::from_phase_lists(
      {{Message{0, 1}, Message{1, 2}}, {}, {Message{2, 0}}});
  EXPECT_EQ(schedule_to_json(schedule, 3),
            "{\"machines\":3,\"phases\":[[[0,1],[1,2]],[],[[2,0]]]}");
}

TEST(ScheduleIoTest, ParsesWithWhitespace) {
  const Schedule schedule = schedule_from_json(R"(
    {
      "machines": 3,
      "phases": [
        [ [0, 1], [1, 2] ],
        [ [2, 0] ]
      ]
    }
  )");
  ASSERT_EQ(schedule.phase_count(), 2);
  EXPECT_EQ(schedule.phase_size(0), 2);
  EXPECT_EQ(schedule.messages.size(), 3u);
  EXPECT_EQ(schedule.messages[2].phase, 1);
}

TEST(ScheduleIoTest, EmptySchedule) {
  const Schedule schedule =
      schedule_from_json("{\"machines\":4,\"phases\":[]}");
  EXPECT_EQ(schedule.phase_count(), 0);
  EXPECT_EQ(schedule_to_json(schedule, 4),
            "{\"machines\":4,\"phases\":[]}");
}

TEST(ScheduleIoTest, RejectsMalformedInput) {
  EXPECT_THROW(schedule_from_json(""), InvalidArgument);
  EXPECT_THROW(schedule_from_json("{\"machines\":3}"), InvalidArgument);
  EXPECT_THROW(schedule_from_json("{\"phases\":[]}"), InvalidArgument);
  EXPECT_THROW(schedule_from_json("{\"machines\":3,\"phases\":[[[0]]]}"),
               InvalidArgument);
  EXPECT_THROW(schedule_from_json("{\"machines\":3,\"bogus\":1,\"phases\":[]}"),
               InvalidArgument);
  EXPECT_THROW(
      schedule_from_json("{\"machines\":3,\"phases\":[]} trailing"),
      InvalidArgument);
}

TEST(ScheduleIoTest, RejectsRanksOutOfRange) {
  EXPECT_THROW(schedule_from_json("{\"machines\":2,\"phases\":[[[0,5]]]}"),
               InvalidArgument);
  EXPECT_THROW(schedule_from_json("{\"machines\":2,\"phases\":[[[-1,0]]]}"),
               InvalidArgument);
}

TEST(ScheduleIoTest, MachineCountMismatchRejected) {
  const std::string json = "{\"machines\":4,\"phases\":[]}";
  EXPECT_NO_THROW(schedule_from_json(json));
  EXPECT_NO_THROW(schedule_from_json(json, 4));
  EXPECT_THROW(schedule_from_json(json, 5), InvalidArgument);
}

TEST(ScheduleIoTest, LargeScheduleRoundTrip) {
  const Topology topo = make_single_switch(16);
  const Schedule original = build_aapc_schedule(topo);
  const Schedule loaded = schedule_from_json(
      schedule_to_json(original, 16), 16);
  EXPECT_EQ(loaded.message_count(), original.message_count());
  EXPECT_TRUE(verify_schedule(topo, loaded).ok);
}

}  // namespace
}  // namespace aapc::core
