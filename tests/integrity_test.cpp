// The end-to-end data-integrity ledger: fingerprint binding, the
// exactly-once audit, each violation class (missing, duplicated,
// corrupted, misdelivered), and the executor wiring — including the
// watchdog-retry path, which must still deliver exactly once.
#include <gtest/gtest.h>

#include <string>

#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/mpisim/integrity.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::mpisim {
namespace {

using topology::make_chain;
using topology::make_single_switch;
using topology::Topology;

TEST(FingerprintTest, DeterministicAndSensitiveToEveryField) {
  const Fingerprint base = message_fingerprint(3, 7, 42, 65536, 0x5EED);
  EXPECT_EQ(base, message_fingerprint(3, 7, 42, 65536, 0x5EED));
  EXPECT_NE(base, message_fingerprint(4, 7, 42, 65536, 0x5EED));  // src
  EXPECT_NE(base, message_fingerprint(3, 8, 42, 65536, 0x5EED));  // dst
  EXPECT_NE(base, message_fingerprint(3, 7, 43, 65536, 0x5EED));  // tag
  EXPECT_NE(base, message_fingerprint(3, 7, 42, 65537, 0x5EED));  // bytes
  EXPECT_NE(base, message_fingerprint(3, 7, 42, 65536, 0x5EEE));  // salt
  // Swapping src and dst must not collide: the mix is chained, not a
  // symmetric combination.
  EXPECT_NE(message_fingerprint(3, 7, 42, 65536, 0x5EED),
            message_fingerprint(7, 3, 42, 65536, 0x5EED));
}

TEST(DeliveryLedgerTest, ExactlyOnceDeliveryAudit) {
  DeliveryLedger ledger;
  const DeliveryLedger::EntryId a = ledger.record_send(0, 1, 5, 1024);
  const DeliveryLedger::EntryId b = ledger.record_send(1, 0, 5, 1024);
  ledger.record_delivery(a, 0, 1, 5, 1024);
  ledger.record_delivery(b, 1, 0, 5, 1024);
  const IntegrityReport report = ledger.report();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.expected, 2);
  EXPECT_EQ(report.delivered, 2);
  EXPECT_EQ(report.summary().find("ok"), 0u) << report.summary();
}

TEST(DeliveryLedgerTest, MissingDeliveryIsFlagged) {
  DeliveryLedger ledger;
  const DeliveryLedger::EntryId a = ledger.record_send(0, 1, 0, 4096);
  ledger.record_send(2, 3, 0, 4096);  // never delivered
  ledger.record_delivery(a, 0, 1, 0, 4096);
  const IntegrityReport report = ledger.report();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.missing, 1);
  EXPECT_EQ(report.duplicated, 0);
  EXPECT_NE(report.summary().find("missing"), std::string::npos)
      << report.summary();
}

TEST(DeliveryLedgerTest, DuplicateDeliveryIsFlagged) {
  DeliveryLedger ledger;
  const DeliveryLedger::EntryId a = ledger.record_send(0, 1, 0, 4096);
  ledger.record_delivery(a, 0, 1, 0, 4096);
  ledger.record_delivery(a, 0, 1, 0, 4096);  // delivered twice
  const IntegrityReport report = ledger.report();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.duplicated, 1);
  EXPECT_EQ(report.missing, 0);
  EXPECT_NE(report.summary().find("duplicated"), std::string::npos)
      << report.summary();
}

TEST(DeliveryLedgerTest, CorruptedFingerprintIsFlagged) {
  DeliveryLedger ledger;
  const DeliveryLedger::EntryId a = ledger.record_send(0, 1, 0, 4096);
  // Right endpoints, wrong checksum: a corrupted payload.
  ledger.record_delivery_with_fingerprint(a, 0, 1, 0, 4096, 0xBADBADBADull);
  const IntegrityReport report = ledger.report();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.corrupted, 1);
  EXPECT_EQ(report.misdelivered, 0);
  EXPECT_NE(report.summary().find("corrupted"), std::string::npos)
      << report.summary();
}

TEST(DeliveryLedgerTest, MisdeliveryIsFlaggedNotCorruption) {
  DeliveryLedger ledger;
  const DeliveryLedger::EntryId a = ledger.record_send(0, 1, 0, 4096);
  // The receiver's view names the wrong destination rank — a transfer
  // bound to the wrong request pair, distinct from payload corruption.
  ledger.record_delivery(a, 0, 2, 0, 4096);
  const IntegrityReport report = ledger.report();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.misdelivered, 1);
  EXPECT_EQ(report.corrupted, 0);
  EXPECT_NE(report.summary().find("misdelivered"), std::string::npos)
      << report.summary();
}

TEST(DeliveryLedgerTest, RetriesAreAuditedButNotViolations) {
  DeliveryLedger ledger;
  const DeliveryLedger::EntryId a = ledger.record_send(0, 1, 0, 4096);
  ledger.record_retry(a);
  ledger.record_retry(a);
  ledger.record_delivery(a, 0, 1, 0, 4096);
  const IntegrityReport report = ledger.report();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.retried, 2);
}

TEST(IntegrityExecutorTest, LoweredAlltoallAuditsEveryTransfer) {
  const Topology topo = make_single_switch(6);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet programs =
      lowering::lower_schedule(topo, schedule, 16384);
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  Executor executor(topo, {}, exec);
  const ExecutionResult result = executor.run(programs);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.summary();
  // Every matched transfer — data and sync messages alike — is stamped
  // and audited.
  EXPECT_EQ(result.integrity.expected, result.message_count);
  EXPECT_EQ(result.integrity.delivered, result.message_count);
  EXPECT_EQ(result.integrity.retried, 0);
}

TEST(IntegrityExecutorTest, WatchdogRetryStillDeliversExactlyOnce) {
  // Mirror of ExecutorFaultsTest.WatchdogRetriesThroughTransientOutage:
  // the trunk goes down mid-transfer and comes back at 100 ms, the
  // watchdog reposts — the ledger must see the retry and exactly one
  // delivery, not a duplicate.
  const Topology topo = make_chain({1, 1});
  topology::LinkId trunk = -1;
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    if (!topo.is_machine(topo.edge_source(2 * l)) &&
        !topo.is_machine(topo.edge_target(2 * l))) {
      trunk = l;
    }
  }
  ASSERT_GE(trunk, 0);
  const simnet::NetworkParams net;
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  exec.capacity_events = {{0.001, trunk, 0.0},
                          {0.100, trunk, net.link_bandwidth_bytes_per_sec}};
  exec.transfer_timeout = 0.03;
  exec.transfer_max_retries = 10;
  Executor executor(topo, net, exec);

  ProgramSet set;
  set.name = "one-transfer";
  Program sender;
  sender.ops = {Op::isend(1, 100'000, 0), Op::wait_all()};
  Program receiver;
  receiver.ops = {Op::irecv(0, 100'000, 0), Op::wait_all()};
  set.programs = {sender, receiver};

  const ExecutionResult result = executor.run(set);
  EXPECT_GE(result.transfer_retries, 1);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.summary();
  EXPECT_EQ(result.integrity.expected, 1);
  EXPECT_EQ(result.integrity.delivered, 1);
  EXPECT_EQ(result.integrity.retried, result.transfer_retries);
}

}  // namespace
}  // namespace aapc::mpisim
