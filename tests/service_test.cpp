// End-to-end schedule-compilation service tests: cache hits across
// isomorphic relabelings, in-flight request coalescing (the acceptance
// bar: 64 concurrent requests for one canonical key perform exactly one
// compilation), backpressure rejection, metrics accounting, and
// executability of the rewritten programs on the caller's topology.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "aapc/common/rng.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/service/service.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::service {
namespace {

using topology::NodeId;
using topology::Rank;
using topology::Topology;

/// Node-order relabeling of `topo` (same tree, fresh labels/ranks).
Topology shuffled_copy(const Topology& topo, Rng& rng) {
  const std::int32_t n = topo.node_count();
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  Topology out;
  std::vector<NodeId> new_id(static_cast<std::size_t>(n));
  for (const NodeId old : order) {
    new_id[static_cast<std::size_t>(old)] =
        topo.is_machine(old) ? out.add_machine() : out.add_switch();
  }
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    const auto [a, b] = topo.link_endpoints(l);
    out.add_link(new_id[static_cast<std::size_t>(a)],
                 new_id[static_cast<std::size_t>(b)]);
  }
  out.finalize();
  return out;
}

TEST(ScheduleServiceTest, ColdThenWarm) {
  ScheduleService service;
  const Topology topo = topology::make_paper_topology_b();
  const CompiledRoutine cold = service.compile(topo, 64_KiB);
  EXPECT_FALSE(cold.cache_hit);
  const CompiledRoutine warm = service.compile(topo, 64_KiB);
  EXPECT_TRUE(warm.cache_hit);
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.requests, 2);
  EXPECT_EQ(metrics.cache_hits, 1);
  EXPECT_EQ(metrics.compilations, 1);
  EXPECT_EQ(warm.schedule.phase_count(), topo.aapc_load());
}

TEST(ScheduleServiceTest, SizeClassesShareScheduleNotEntry) {
  ScheduleService service;
  const Topology topo = topology::make_paper_topology_a();
  const CompiledRoutine at_48k = service.compile(topo, 48_KiB);
  // 48 KiB rounds up to the 64 KiB class.
  EXPECT_EQ(at_48k.entry->class_bytes, 64_KiB);
  const CompiledRoutine at_64k = service.compile(topo, 64_KiB);
  EXPECT_TRUE(at_64k.cache_hit);  // same class
  const CompiledRoutine at_128k = service.compile(topo, 128_KiB);
  EXPECT_FALSE(at_128k.cache_hit);  // next class compiles anew
  EXPECT_EQ(service.metrics().compilations, 2);
}

TEST(ScheduleServiceTest, IsomorphicRelabelingsHitOneEntry) {
  ScheduleService service;
  Rng rng(2024);
  const Topology base = topology::make_paper_topology_c();
  const CompiledRoutine first = service.compile(base, 32_KiB);
  EXPECT_FALSE(first.cache_hit);
  for (int trial = 0; trial < 6; ++trial) {
    const Topology relabeled = shuffled_copy(base, rng);
    const CompiledRoutine served = service.compile(relabeled, 32_KiB);
    EXPECT_TRUE(served.cache_hit) << "trial " << trial;
    // The rewritten schedule must satisfy the paper's Theorem on the
    // caller's labeling, not just the canonical one.
    EXPECT_NO_THROW(core::require_contention_free(relabeled, served.schedule));
    const core::VerifyReport report =
        core::verify_schedule(relabeled, served.schedule);
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_EQ(served.schedule.phase_count(), relabeled.aapc_load());
  }
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.compilations, 1);
  EXPECT_EQ(metrics.cache_hits, 6);
}

TEST(ScheduleServiceTest, RewrittenProgramsExecuteOnCallerTopology) {
  ScheduleService service;
  Rng rng(7);
  const Topology base = topology::make_paper_figure1();
  service.compile(base, 16_KiB);  // populate
  const Topology relabeled = shuffled_copy(base, rng);
  const CompiledRoutine served = service.compile(relabeled, 16_KiB);
  EXPECT_TRUE(served.cache_hit);
  // The relabeled program set runs to completion on the caller's
  // topology with exactly-once delivery (the executor's integrity
  // ledger throws otherwise).
  mpisim::Executor executor(relabeled, simnet::NetworkParams{},
                            mpisim::ExecutorParams{});
  const mpisim::ExecutionResult result = executor.run(served.programs);
  EXPECT_GT(result.completion_time, 0);
  EXPECT_TRUE(result.integrity.ok());
}

TEST(ScheduleServiceTest, CoalescingCompilesExactlyOnce) {
  // The acceptance bar: 64 concurrent requests for one canonical key
  // perform exactly 1 compilation; the other 63 either hit the cache
  // (arrived after publication) or coalesce onto the in-flight future.
  ServiceOptions options;
  options.compiler_threads = 4;
  ScheduleService service(options);
  const Topology topo = topology::make_paper_topology_b();
  constexpr int kRequests = 64;
  std::atomic<int> hits{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kRequests);
  for (int t = 0; t < kRequests; ++t) {
    threads.emplace_back([&service, &topo, &hits, &failures] {
      try {
        const CompiledRoutine routine = service.compile(topo, 64_KiB);
        if (routine.cache_hit) hits.fetch_add(1);
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.requests, kRequests);
  EXPECT_EQ(metrics.compilations, 1);
  EXPECT_EQ(metrics.cache_hits + metrics.coalesced_waits + 1, kRequests);
  EXPECT_EQ(metrics.rejected, 0);
}

TEST(ScheduleServiceTest, ManyTopologiesConcurrently) {
  // Concurrency smoke across distinct keys (run under TSan in CI):
  // every distinct (topology, class) compiles at most once.
  ServiceOptions options;
  options.compiler_threads = 4;
  options.queue_capacity = 256;
  ScheduleService service(options);
  std::vector<Topology> topologies;
  topologies.push_back(topology::make_single_switch(6));
  topologies.push_back(topology::make_star({3, 3}));
  topologies.push_back(topology::make_chain({2, 2, 2}));
  topologies.push_back(topology::make_paper_figure1());
  constexpr int kThreads = 8;
  constexpr int kIterations = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const Topology& topo =
            topologies[static_cast<std::size_t>((t + i) % 4)];
        try {
          const CompiledRoutine routine = service.compile(topo, 32_KiB);
          if (routine.schedule.phase_count() != topo.aapc_load()) {
            failures.fetch_add(1);
          }
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.requests, kThreads * kIterations);
  EXPECT_LE(metrics.compilations, 4);
}

TEST(ScheduleServiceTest, BackpressureRejectsWithRetryAfter) {
  // One worker, queue capacity 1, and distinct topologies so nothing
  // coalesces: the third simultaneous compilation has nowhere to go.
  ServiceOptions options;
  options.compiler_threads = 1;
  options.queue_capacity = 1;
  ScheduleService service(options);
  std::vector<Topology> topologies;
  for (int machines = 16; machines <= 40; machines += 2) {
    topologies.push_back(topology::make_single_switch(machines));
  }
  std::atomic<int> rejected{0};
  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    threads.emplace_back([&, t] {
      try {
        service.compile(topologies[t], 64_KiB);
        served.fetch_add(1);
      } catch (const ServiceOverloaded& overloaded) {
        EXPECT_GT(overloaded.retry_after_seconds(), 0);
        rejected.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(served.load() + rejected.load(),
            static_cast<int>(topologies.size()));
  // With 13 concurrent compilations against 1 worker + 1 queue slot,
  // some must be rejected — and the metrics must agree.
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(service.metrics().rejected, rejected.load());
  // Rejected keys retry successfully once the backlog drains.
  for (const Topology& topo : topologies) {
    for (;;) {
      try {
        service.compile(topo, 64_KiB);
        break;
      } catch (const ServiceOverloaded&) {
        std::this_thread::yield();
      }
    }
  }
  EXPECT_EQ(service.metrics().hash_collisions, 0);
}

TEST(ScheduleServiceTest, SizeClassMath) {
  EXPECT_EQ(ScheduleService::size_class(1), 0u);
  EXPECT_EQ(ScheduleService::size_class(2), 1u);
  EXPECT_EQ(ScheduleService::size_class(3), 2u);
  EXPECT_EQ(ScheduleService::size_class(4), 2u);
  EXPECT_EQ(ScheduleService::size_class(64_KiB), 16u);
  EXPECT_EQ(ScheduleService::size_class(64_KiB + 1), 17u);
  EXPECT_EQ(ScheduleService::size_class_bytes(16), 64_KiB);
  EXPECT_THROW(ScheduleService::size_class(0), InvalidArgument);
}

TEST(ScheduleServiceTest, SizeClassBoundariesTableDriven) {
  // Pin the bucketing contract at every boundary: class c covers
  // (2^(c-1), 2^c], so 2^k maps to k and 2^k + 1 tips into k + 1 —
  // an off-by-one here silently merges or splits cache entries.
  struct Case {
    Bytes msize;
    std::uint32_t want;
  };
  std::vector<Case> cases{{1, 0}};
  for (std::uint32_t k = 1; k <= 62; ++k) {
    const Bytes pow = Bytes{1} << k;
    // 2^k - 1: still class k for k >= 2 (for k == 1 it is exactly 1,
    // which is class 0 — the only size class 0 covers).
    if (k >= 2) cases.push_back({pow - 1, k});
    cases.push_back({pow, k});      // exact power: class k
    if (k < 62) cases.push_back({pow + 1, k + 1});  // tips over
  }
  for (const Case& c : cases) {
    EXPECT_EQ(ScheduleService::size_class(c.msize), c.want)
        << "msize=" << c.msize;
    // Round-trip: the representative size of the class covers msize.
    EXPECT_GE(ScheduleService::size_class_bytes(
                  ScheduleService::size_class(c.msize)),
              c.msize)
        << "msize=" << c.msize;
  }
  // (2^0, 2^1] edge: class 1's open lower bound excludes 1.
  EXPECT_EQ(ScheduleService::size_class_bytes(0), Bytes{1});
  EXPECT_THROW(ScheduleService::size_class(0), InvalidArgument);
  EXPECT_THROW(ScheduleService::size_class_bytes(63), InvalidArgument);
}

TEST(ScheduleServiceTest, SizeClassRejectsOversizedRequests) {
  // Regression: sizes above 2^62 used to pass entry validation and
  // blow up later (size_class_bytes range check, or shift overflow in
  // the class search loop). They must be rejected up front.
  EXPECT_EQ(ScheduleService::size_class(Bytes{1} << 62), 62u);
  EXPECT_EQ(ScheduleService::size_class((Bytes{1} << 62) - 1), 62u);
  EXPECT_THROW(ScheduleService::size_class((Bytes{1} << 62) + 1),
               InvalidArgument);
  EXPECT_THROW(ScheduleService::size_class(std::numeric_limits<Bytes>::max()),
               InvalidArgument);
  try {
    ScheduleService::size_class((Bytes{1} << 62) + 1);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("largest size class"),
              std::string::npos);
  }
}

TEST(ScheduleServiceTest, CompileLatencyReservoirStaysBounded) {
  // Regression: the latency buffer used to grow by one entry per
  // compilation forever (and retry_after_hint fully sorted a copy of
  // it under the metrics lock). It is now a fixed-capacity ring.
  ServiceOptions options;
  options.cache_capacity = 2;  // force continuous evictions/compiles
  options.cache_shards = 1;
  ScheduleService service(options);
  std::vector<Topology> topologies;
  for (int machines = 4; machines <= 9; ++machines) {
    topologies.push_back(topology::make_single_switch(machines));
  }
  std::int64_t compiles = 0;
  for (int round = 0; round < 3; ++round) {
    for (const Topology& topo : topologies) {
      service.compile(topo, 8_KiB);
      ++compiles;
      EXPECT_LE(service.latency_reservoir_size(),
                ScheduleService::kLatencyReservoirCapacity);
    }
  }
  // The tiny cache can hold 2 of 6 topologies: most requests recompile,
  // yet the reservoir never exceeds its capacity while the metrics
  // histogram still counts every compilation.
  EXPECT_GT(service.metrics().compilations, 6);
  EXPECT_EQ(service.latency_reservoir_size(),
            std::min<std::size_t>(
                static_cast<std::size_t>(service.metrics().compilations),
                ScheduleService::kLatencyReservoirCapacity));
}

TEST(ScheduleServiceTest, MetricsSnapshotExposesRegistrySeries) {
  ScheduleService service;
  service.compile(topology::make_paper_figure1(), 8_KiB);
  service.compile(topology::make_paper_figure1(), 8_KiB);  // cache hit
  const obs::RegistrySnapshot snap = service.metrics_snapshot();
  // requests is labeled per collective kind; both of these landed on
  // the alltoall series and total() sums all kinds.
  EXPECT_EQ(snap.total("aapc_service_requests_total"), 2.0);
  EXPECT_EQ(snap.value("aapc_service_requests_total",
                       obs::Labels{{"kind", "alltoall"}}),
            2.0);
  EXPECT_EQ(snap.value("aapc_service_requests_total",
                       obs::Labels{{"kind", "allgather"}}),
            0.0);
  EXPECT_GE(snap.value("aapc_service_cache_hits_total"), 1.0);
  // 2, not 1: the compiling request re-checks the cache after winning
  // the in-flight race (the "late hit" path), and that lookup counts.
  EXPECT_EQ(snap.value("aapc_service_cache_misses_total"), 2.0);
  EXPECT_EQ(snap.value("aapc_service_cache_entries"), 1.0);
  const obs::SeriesSnapshot* compile =
      snap.find("aapc_service_compile_seconds");
  ASSERT_NE(compile, nullptr);
  EXPECT_EQ(compile->histogram.count, 1);
  // The typed MetricsSnapshot is a view over the same registry.
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.requests, 2);
  EXPECT_EQ(metrics.compilations, 1);
  EXPECT_EQ(metrics.compile_max_seconds, compile->histogram.max);
}

TEST(ScheduleServiceTest, MetricsTableRenders) {
  ScheduleService service;
  service.compile(topology::make_paper_figure1(), 8_KiB);
  const std::string rendered = service.metrics().to_string();
  EXPECT_NE(rendered.find("requests"), std::string::npos);
  EXPECT_NE(rendered.find("compile p95"), std::string::npos);
}

}  // namespace
}  // namespace aapc::service
