// Tests for trace recording and rendering — including the strongest
// end-to-end check in the repo: under pair-wise synchronization, no two
// contending data transfers ever overlap in simulated time.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "aapc/baselines/baselines.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/trace/trace.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::trace {
namespace {

using topology::make_paper_figure1;
using topology::make_single_switch;
using topology::Topology;

mpisim::ExecutionResult run_traced(const Topology& topo,
                                   const mpisim::ProgramSet& set,
                                   SimTime jitter = 0) {
  simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.record_trace = true;
  exec.wakeup_jitter_max = jitter;
  mpisim::Executor executor(topo, net, exec);
  return executor.run(set);
}

TEST(TraceTest, RecordsEveryMatchedMessage) {
  const Topology topo = make_single_switch(4);
  const mpisim::ProgramSet set = baselines::lam_alltoall(4, 8_KiB);
  const mpisim::ExecutionResult result = run_traced(topo, set);
  EXPECT_EQ(static_cast<std::int64_t>(result.trace.size()),
            result.message_count);
  for (const mpisim::MessageTrace& m : result.trace) {
    EXPECT_GE(m.end, m.start);
    EXPECT_GE(m.delivered, m.end);
    EXPECT_FALSE(m.is_sync);
    EXPECT_EQ(m.bytes, 8_KiB);
  }
}

TEST(TraceTest, TraceOffByDefault) {
  const Topology topo = make_single_switch(4);
  simnet::NetworkParams net;
  mpisim::Executor executor(topo, net, {});
  const mpisim::ExecutionResult result =
      executor.run(baselines::lam_alltoall(4, 8_KiB));
  EXPECT_TRUE(result.trace.empty());
}

TEST(TraceTest, SyncTokensMarked) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, schedule, 32_KiB);
  const mpisim::ExecutionResult result = run_traced(topo, set);
  std::int64_t syncs = 0;
  std::int64_t data = 0;
  for (const mpisim::MessageTrace& m : result.trace) {
    (m.is_sync ? syncs : data) += 1;
  }
  EXPECT_EQ(data, 30);
  EXPECT_GT(syncs, 0);
}

TEST(TraceTest, PairwiseSyncSerializesContendingTransfers) {
  // The §5 guarantee, observed end to end in the simulator: two data
  // transfers sharing a directed tree edge never overlap in time.
  for (const Topology& topo :
       {make_paper_figure1(), make_single_switch(8),
        topology::make_chain({4, 4}), topology::make_star({5, 4, 2})}) {
    const core::Schedule schedule = core::build_aapc_schedule(topo);
    const mpisim::ProgramSet set =
        lowering::lower_schedule(topo, schedule, 64_KiB);
    // With OS jitter enabled: the sync must serialize regardless of
    // skew, not just in lockstep.
    const mpisim::ExecutionResult result = run_traced(topo, set, 1e-3);
    EXPECT_EQ(max_overlapping_contending_transfers(topo, result.trace), 1)
        << topo.machine_count() << " machines";
  }
}

TEST(TraceTest, NoSyncModeDoesOverlap) {
  // Control for the previous test: without synchronization the same
  // schedule's transfers do collide.
  const Topology topo = make_single_switch(8);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  lowering::LoweringOptions options;
  options.sync = lowering::SyncMode::kNone;
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, schedule, 64_KiB, options);
  const mpisim::ExecutionResult result = run_traced(topo, set);
  EXPECT_GT(max_overlapping_contending_transfers(topo, result.trace), 1);
}

TEST(TraceTest, BarrierModeAlsoSerializes) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  lowering::LoweringOptions options;
  options.sync = lowering::SyncMode::kBarrier;
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, schedule, 64_KiB, options);
  const mpisim::ExecutionResult result = run_traced(topo, set, 1e-3);
  EXPECT_EQ(max_overlapping_contending_transfers(topo, result.trace), 1);
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  const Topology topo = make_single_switch(3);
  const mpisim::ExecutionResult result =
      run_traced(topo, baselines::lam_alltoall(3, 4_KiB));
  const std::string csv = to_csv(result.trace);
  EXPECT_NE(csv.find("src,dst,bytes"), std::string::npos);
  // header + 6 messages.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
}

TEST(TraceTest, ChromeJsonIsWellFormedEnough) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ExecutionResult result = run_traced(
      topo, lowering::lower_schedule(topo, schedule, 16_KiB));
  const std::string json = to_chrome_json(result.trace);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // durations
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // sync marks
  // Balanced braces/brackets.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceTest, AsciiGanttShape) {
  const Topology topo = make_single_switch(3);
  const mpisim::ExecutionResult result =
      run_traced(topo, baselines::lam_alltoall(3, 64_KiB));
  GanttOptions options;
  options.width = 40;
  const std::string chart = ascii_gantt(result.trace, 3, options);
  EXPECT_NE(chart.find('#'), std::string::npos);
  // One header line + 3 rank rows.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 4);
}

TEST(TraceTest, EmptyTraceGantt) {
  EXPECT_NE(ascii_gantt({}, 2).find("empty"), std::string::npos);
}

TEST(TraceTest, LinkUtilizationReport) {
  const Topology topo = make_single_switch(3);
  simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.record_trace = true;
  exec.wakeup_jitter_max = 0;
  mpisim::Executor executor(topo, net, exec);
  const mpisim::ExecutionResult result =
      executor.run(baselines::lam_alltoall(3, 64_KiB));
  const std::string report = link_utilization_report(
      topo, result.network_stats, net.effective_bandwidth(),
      result.completion_time);
  EXPECT_NE(report.find("n0->s0"), std::string::npos);
  EXPECT_NE(report.find('%'), std::string::npos);
}

/// Strict recursive-descent parser for the Chrome trace-event JSON the
/// renderer emits: validates the whole document and flattens each
/// element of "traceEvents" into string/number fields (nested "args"
/// keys become "args.<key>"). Any syntax error throws.
class ChromeTraceParser {
 public:
  struct Event {
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;
  };

  explicit ChromeTraceParser(std::string text) : text_(std::move(text)) {}

  std::vector<Event> parse() {
    std::vector<Event> events;
    expect('{');
    const std::string key = parse_string();
    if (key != "traceEvents") throw std::runtime_error("bad top key");
    expect(':');
    expect('[');
    skip_space();
    if (!consume(']')) {
      do {
        events.push_back(parse_event());
      } while (consume(','));
      expect(']');
    }
    expect('}');
    skip_space();
    if (pos_ != text_.size()) throw std::runtime_error("trailing content");
    return events;
  }

 private:
  Event parse_event(const std::string& prefix = "", Event* into = nullptr) {
    Event event;
    Event& out = into ? *into : event;
    expect('{');
    do {
      const std::string key = prefix + parse_string();
      expect(':');
      skip_space();
      if (peek() == '"') {
        out.strings[key] = parse_string();
      } else if (peek() == '{') {
        parse_event(key + ".", &out);
      } else {
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        out.numbers[key] = std::strtod(begin, &end);
        if (end == begin) throw std::runtime_error("bad number");
        pos_ += static_cast<std::size_t>(end - begin);
      }
    } while (consume(','));
    expect('}');
    return out;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            c = static_cast<char>(
                std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: throw std::runtime_error("unknown escape");
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  char peek() {
    skip_space();
    if (pos_ >= text_.size()) throw std::runtime_error("eof");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected ") + c);
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

TEST(TraceTest, ChromeJsonParsesAndRoundTripsEventCounts) {
  // Synthetic trace with every event class the renderer emits: data
  // transfers (with and without retry annotations), a sync token, and
  // fault markers whose labels need escaping.
  std::vector<mpisim::MessageTrace> trace;
  trace.push_back(
      mpisim::MessageTrace{0, 1, 4096, 0, 0.001, 0.002, 0.0021, false, 2});
  trace.push_back(
      mpisim::MessageTrace{1, 2, 8192, 3, 0.002, 0.004, 0.0041, false, 0});
  trace.push_back(mpisim::MessageTrace{2, 0, 4, mpisim::kSyncTag, 0.003,
                                       0.003, 0.0031, true, 0});
  const std::string tricky_label = "retry 1/3: \"quoted\"\nwith\tcontrol";
  std::vector<mpisim::FaultMarker> markers;
  markers.push_back(mpisim::FaultMarker{0.0015, "link 0 down"});
  markers.push_back(mpisim::FaultMarker{0.0025, tricky_label});

  const std::string json = to_chrome_json(trace, markers);
  const std::vector<ChromeTraceParser::Event> events =
      ChromeTraceParser(json).parse();
  ASSERT_EQ(events.size(), trace.size() + markers.size());

  std::int64_t durations = 0;
  std::int64_t instants = 0;
  std::int64_t faults = 0;
  std::int64_t retried = 0;
  for (const ChromeTraceParser::Event& event : events) {
    const std::string ph = event.strings.at("ph");
    if (ph == "X") {
      ++durations;
      EXPECT_TRUE(event.numbers.count("args.bytes"));
    } else {
      EXPECT_EQ(ph, "i");
      ++instants;
    }
    if (event.strings.count("cat") && event.strings.at("cat") == "fault") {
      ++faults;
      EXPECT_EQ(event.strings.at("s"), "g");  // global scope
      EXPECT_EQ(event.strings.at("tid"), "faults");
    }
    if (event.numbers.count("args.retries")) {
      ++retried;
      EXPECT_EQ(event.numbers.at("args.retries"), 2);
    }
  }
  EXPECT_EQ(durations, 2);  // the two data transfers
  EXPECT_EQ(instants, 3);   // sync token + two fault markers
  EXPECT_EQ(faults, 2);
  EXPECT_EQ(retried, 1);  // retries emitted only when > 0
  // The escaped marker label survives the round trip.
  EXPECT_EQ(events.back().strings.at("name"), tricky_label);
  // Marker timestamps are microseconds.
  EXPECT_NEAR(events.back().numbers.at("ts"), 2500.0, 1e-6);
}

TEST(TraceTest, ChromeJsonEscapesBackslashesAndControlChars) {
  // Labels exercising every escape class the renderer must handle:
  // backslashes (alone and before a quote), embedded quotes, and the
  // control range that only \uXXXX can express. Each must survive a
  // render -> parse round trip byte-for-byte.
  const std::vector<std::string> labels = {
      "path\\with\\backslashes",
      "backslash-then-quote \\\" tricky",
      "trailing backslash \\",
      std::string("nul\0inside", 10),
      "\x01\x02\x1f unit separators",
      "mixed \"q\" \\b\\ \t\n\r \x0b\x0c end",
  };
  std::vector<mpisim::FaultMarker> markers;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    markers.push_back(
        mpisim::FaultMarker{0.001 * static_cast<double>(i + 1), labels[i]});
  }
  const std::string json =
      to_chrome_json(std::vector<mpisim::MessageTrace>{}, markers);
  // Raw control bytes must never reach the output; only their escapes.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20) << "raw control byte";
  }
  const std::vector<ChromeTraceParser::Event> events =
      ChromeTraceParser(json).parse();
  ASSERT_EQ(events.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(events[i].strings.at("name"), labels[i]) << "label " << i;
  }
}

TEST(TraceTest, ChromeJsonMarkerOverloadMatchesBaseWhenEmpty) {
  const Topology topo = make_single_switch(3);
  const mpisim::ExecutionResult result =
      run_traced(topo, baselines::lam_alltoall(3, 8_KiB));
  EXPECT_EQ(to_chrome_json(result.trace),
            to_chrome_json(result.trace, {}));
}

TEST(TraceTest, ChromeJsonFullRunParses) {
  // The end-to-end render of a real run must be valid JSON — parsed
  // strictly, not just brace-balanced — and keep one event per message.
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ExecutionResult result = run_traced(
      topo, lowering::lower_schedule(topo, schedule, 16_KiB));
  const std::vector<ChromeTraceParser::Event> events =
      ChromeTraceParser(to_chrome_json(result.trace)).parse();
  EXPECT_EQ(events.size(), result.trace.size());
}

TEST(TraceTest, OverlapDetectorCountsConcurrentFlows) {
  // Two same-edge transfers overlapping in time must be detected even
  // without running the executor.
  const Topology topo = make_single_switch(3);
  std::vector<mpisim::MessageTrace> trace;
  trace.push_back(mpisim::MessageTrace{0, 1, 10, 0, 0.0, 1.0, 1.0, false});
  trace.push_back(mpisim::MessageTrace{0, 2, 10, 0, 0.5, 1.5, 1.5, false});
  EXPECT_EQ(max_overlapping_contending_transfers(topo, trace), 2);
  // Back-to-back (half-open) intervals do not count as overlap.
  trace[1].start = 1.0;
  EXPECT_EQ(max_overlapping_contending_transfers(topo, trace), 1);
}

}  // namespace
}  // namespace aapc::trace
