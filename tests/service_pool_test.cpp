// Compiler-pool unit tests: execution, bounded-queue backpressure, and
// shutdown draining. (Coalescing lives in the service layer and is
// covered by service_test.cpp.)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "aapc/service/compiler_pool.hpp"

namespace aapc::service {
namespace {

TEST(CompilerPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> executed{0};
  {
    CompilerPool pool(4, 64);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&executed] { executed.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(executed.load(), 50);
}

TEST(CompilerPoolTest, StatsCountSubmissions) {
  CompilerPool pool(2, 16);
  std::atomic<int> executed{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&executed] { executed.fetch_add(1); });
  }
  // Spin until the queue drains (bounded by the test timeout).
  while (executed.load() < 10) std::this_thread::yield();
  const CompilerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 10);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.peak_queue_depth, 0);
}

TEST(CompilerPoolTest, SaturatedQueueRejects) {
  // One worker blocked on a latch; queue capacity 2. The third queued
  // submission must throw PoolSaturated, and the counter must show it.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  CompilerPool pool(1, 2);
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  // Wait until the worker has picked up the blocking task, so both
  // subsequent submissions sit in the queue.
  while (pool.stats().queue_depth > 0) std::this_thread::yield();
  pool.submit([] {});
  pool.submit([] {});
  EXPECT_THROW(pool.submit([] {}), PoolSaturated);
  EXPECT_EQ(pool.stats().rejected, 1);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
}

TEST(CompilerPoolTest, RejectsInvalidConfig) {
  EXPECT_THROW(CompilerPool(0, 4), InvalidArgument);
  EXPECT_THROW(CompilerPool(2, 0), InvalidArgument);
}

TEST(CompilerPoolTest, ParallelismActuallyOverlaps) {
  // With 4 workers, 4 tasks that each wait for all 4 to start can only
  // finish if they run concurrently.
  CompilerPool pool(4, 8);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      started.fetch_add(1);
      while (started.load() < 4) std::this_thread::yield();
      finished.fetch_add(1);
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (finished.load() < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(finished.load(), 4);
}

TEST(CompilerPoolTest, BackgroundLaneRunsAfterEveryForegroundTask) {
  // One worker parked on a latch; background tasks enqueued *before*
  // the foreground ones must still execute after all of them — workers
  // consult the background lane only when the foreground queue is empty.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;
  std::mutex order_mutex;
  std::atomic<int> done{0};
  auto record = [&](int tag) {
    return [&, tag] {
      const std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
      done.fetch_add(1);
    };
  };
  {
    CompilerPool pool(1, 8, 8);
    pool.submit([&] {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release; });
    });
    while (pool.stats().queue_depth > 0) std::this_thread::yield();
    EXPECT_TRUE(pool.try_submit_background(record(100)));
    EXPECT_TRUE(pool.try_submit_background(record(101)));
    pool.submit(record(1));
    pool.submit(record(2));
    {
      const std::lock_guard<std::mutex> lock(mutex);
      release = true;
    }
    cv.notify_all();
    while (done.load() < 4) std::this_thread::yield();
    const CompilerPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.background_submitted, 2);
    EXPECT_EQ(stats.background_executed, 2);
    EXPECT_EQ(stats.executed, 3);  // latch task + the two foreground tags
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 100);
  EXPECT_EQ(order[3], 101);
}

TEST(CompilerPoolTest, BackgroundLaneIsBoundedAndIndependent) {
  // Background overflow drops (returns false) without consuming any
  // foreground capacity, and a full foreground queue still rejects via
  // PoolSaturated with the background lane untouched.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  CompilerPool pool(1, 2, 2);
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  while (pool.stats().queue_depth > 0) std::this_thread::yield();
  EXPECT_TRUE(pool.try_submit_background([] {}));
  EXPECT_TRUE(pool.try_submit_background([] {}));
  EXPECT_FALSE(pool.try_submit_background([] {}));  // lane full: dropped
  EXPECT_EQ(pool.stats().background_rejected, 1);
  // The foreground queue still has its full capacity.
  pool.submit([] {});
  pool.submit([] {});
  EXPECT_THROW(pool.submit([] {}), PoolSaturated);
  EXPECT_EQ(pool.stats().background_queue_depth, 2);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
}

}  // namespace
}  // namespace aapc::service
