// Randomized end-to-end property tests for the paper's Theorem: for any
// tree topology, the generated schedule (1) realizes every AAPC message
// exactly once, (2) is contention-free in every phase, and (3) uses
// exactly aapc_load(topology) phases.
#include <gtest/gtest.h>

#include "aapc/common/rng.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::make_chain;
using topology::make_paper_topology_a;
using topology::make_paper_topology_b;
using topology::make_paper_topology_c;
using topology::make_random_tree;
using topology::make_star;
using topology::RandomTreeOptions;
using topology::Topology;

void expect_theorem_holds(const Topology& topo) {
  const Schedule schedule = build_aapc_schedule(topo);
  const VerifyReport report = verify_schedule(topo, schedule);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.max_edge_multiplicity, 1);
  EXPECT_EQ(schedule.phase_count(), topo.aapc_load());
}

TEST(ScheduleTheoremTest, PaperTopologies) {
  expect_theorem_holds(make_paper_topology_a());
  expect_theorem_holds(make_paper_topology_b());
  expect_theorem_holds(make_paper_topology_c());
  expect_theorem_holds(topology::make_paper_figure1());
}

TEST(ScheduleTheoremTest, StarsAndChains) {
  expect_theorem_holds(make_star({4, 4, 4}));
  expect_theorem_holds(make_star({7, 5, 3, 1}));
  expect_theorem_holds(make_star({1, 1, 1}));
  expect_theorem_holds(make_chain({2, 2, 2, 2, 2}));
  expect_theorem_holds(make_chain({10, 1, 1}));
  expect_theorem_holds(make_chain({5, 0, 0, 5}));
  expect_theorem_holds(make_chain({1, 0, 2}));
}

TEST(ScheduleTheoremTest, EqualSubtreeSizes) {
  // |M0| = |M1| ties exercise the deterministic tie-breaking and the
  // i = 1 step-5 case where |M(i-1)| == |Mi|.
  expect_theorem_holds(make_star({6, 6}));
  expect_theorem_holds(make_star({6, 6, 6, 6, 6}));
}

class ScheduleTheoremRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleTheoremRandomTest, RandomTrees) {
  Rng rng(GetParam() * 7919 + 13);
  RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(1, 12));
  options.machines = static_cast<std::int32_t>(rng.next_in(3, 36));
  options.max_switch_degree = static_cast<std::int32_t>(rng.next_in(1, 5));
  const Topology topo = make_random_tree(rng, options);
  expect_theorem_holds(topo);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleTheoremRandomTest,
                         ::testing::Range<std::uint64_t>(0, 120));

class ScheduleStep6RandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleStep6RandomTest, RotateVariantOnRandomTrees) {
  Rng rng(GetParam() * 104729 + 7);
  RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(2, 8));
  options.machines = static_cast<std::int32_t>(rng.next_in(4, 28));
  const Topology topo = make_random_tree(rng, options);
  SchedulerOptions sched;
  sched.assignment.step6 = AssignmentOptions::Step6Pattern::kRotate;
  const Schedule schedule = build_aapc_schedule(topo, sched);
  const VerifyReport report = verify_schedule(topo, schedule);
  EXPECT_TRUE(report.ok) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleStep6RandomTest,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(ScheduleStressTest, WideSingleSwitch) {
  expect_theorem_holds(topology::make_single_switch(64));
}

TEST(ScheduleStressTest, DeepChain) {
  expect_theorem_holds(make_chain({3, 2, 1, 2, 3, 1, 2, 4}));
}

TEST(ScheduleStressTest, LargeTwoLevel) {
  expect_theorem_holds(make_star({16, 12, 9, 5, 3, 2, 1}));
}

TEST(ScheduleStressTest, VeryWideSingleSwitch) {
  // 128 machines: 127 phases, 16256 messages — schedule + full
  // verification must stay fast (sub-second).
  expect_theorem_holds(topology::make_single_switch(128));
}

TEST(ScheduleStressTest, LargeChainCluster) {
  // 96 machines over a chain: 48*48 = 2304 phases.
  expect_theorem_holds(make_chain({48, 48}));
}

TEST(ScheduleStressTest, DeepBinaryTreeCluster) {
  expect_theorem_holds(topology::make_binary_tree(4, 3));  // 24 machines
}

}  // namespace
}  // namespace aapc::core
