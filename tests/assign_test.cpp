// Tests for the Figure-4 global/local message assignment, pinned to the
// paper's worked example (Table 4) and the structural claims of §4.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "aapc/core/assign.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::make_paper_figure1;
using topology::make_single_switch;
using topology::Topology;

// Helpers to express messages in the paper's t_{i,x} coordinates for the
// Figure-1 example (t0 = {n0,n1,n2}, t1 = {n3,n4}, t2 = {n5}).
constexpr Rank kT0[] = {0, 1, 2};
constexpr Rank kT1[] = {3, 4};
constexpr Rank kT2[] = {1000, 5};  // kT2[1] unused sentinel guard

Message msg(Rank src, Rank dst) { return Message{src, dst}; }

bool phase_contains(const Schedule& schedule, std::int32_t phase,
                    Message message) {
  const PhaseSpan span = schedule.phase(phase);
  return std::any_of(
      span.begin(), span.end(),
      [&](const ScheduledMessage& sm) { return sm.message == message; });
}

TEST(AssignTest, PaperTable4GlobalMessages) {
  // The full §4.3 worked example. Expected placement follows the paper's
  // formulas (Figure 3 spans + step rules). Note: the paper's printed
  // Table 4 shows t2->t1 in phases 6-7, but the group-start formula in
  // §4.2 (which Figure 3 follows, and which Step 4's receiver-alignment
  // requires) puts that group at phases 7-8; we pin to the formulas.
  const Topology topo = make_paper_figure1();
  const Schedule schedule =
      assign_messages(decompose_at(topo, *topo.find_node("s1")));
  ASSERT_EQ(schedule.phase_count(), 9);

  // t0 -> t1 (phases 0..5, rotate senders, aligned receivers).
  EXPECT_TRUE(phase_contains(schedule, 0, msg(kT0[0], kT1[1])));
  EXPECT_TRUE(phase_contains(schedule, 1, msg(kT0[1], kT1[0])));
  EXPECT_TRUE(phase_contains(schedule, 2, msg(kT0[2], kT1[1])));
  EXPECT_TRUE(phase_contains(schedule, 3, msg(kT0[0], kT1[0])));
  EXPECT_TRUE(phase_contains(schedule, 4, msg(kT0[1], kT1[1])));
  EXPECT_TRUE(phase_contains(schedule, 5, msg(kT0[2], kT1[0])));
  // t0 -> t2 (phases 6..8).
  EXPECT_TRUE(phase_contains(schedule, 6, msg(kT0[0], kT2[1])));
  EXPECT_TRUE(phase_contains(schedule, 7, msg(kT0[1], kT2[1])));
  EXPECT_TRUE(phase_contains(schedule, 8, msg(kT0[2], kT2[1])));
  // t1 -> t2 (phases 0..1, broadcast).
  EXPECT_TRUE(phase_contains(schedule, 0, msg(kT1[0], kT2[1])));
  EXPECT_TRUE(phase_contains(schedule, 1, msg(kT1[1], kT2[1])));
  // t2 -> t0 (phases 0..2, Table-3 receivers round 0: shift 1).
  EXPECT_TRUE(phase_contains(schedule, 0, msg(kT2[1], kT0[1])));
  EXPECT_TRUE(phase_contains(schedule, 1, msg(kT2[1], kT0[2])));
  EXPECT_TRUE(phase_contains(schedule, 2, msg(kT2[1], kT0[0])));
  // t1 -> t0 (phases 3..8; rounds 1 and 2: shifts 2 and 0).
  EXPECT_TRUE(phase_contains(schedule, 3, msg(kT1[0], kT0[2])));
  EXPECT_TRUE(phase_contains(schedule, 4, msg(kT1[0], kT0[0])));
  EXPECT_TRUE(phase_contains(schedule, 5, msg(kT1[0], kT0[1])));
  EXPECT_TRUE(phase_contains(schedule, 6, msg(kT1[1], kT0[0])));
  EXPECT_TRUE(phase_contains(schedule, 7, msg(kT1[1], kT0[1])));
  EXPECT_TRUE(phase_contains(schedule, 8, msg(kT1[1], kT0[2])));
  // t2 -> t1 (phases 7..8 per the §4.2 start formula).
  EXPECT_TRUE(phase_contains(schedule, 7, msg(kT2[1], kT1[0])));
  EXPECT_TRUE(phase_contains(schedule, 8, msg(kT2[1], kT1[1])));
}

TEST(AssignTest, PaperTable4LocalMessages) {
  const Topology topo = make_paper_figure1();
  const Schedule schedule =
      assign_messages(decompose_at(topo, *topo.find_node("s1")));
  // t0 locals embedded in phases 0..5 (Step 3).
  EXPECT_TRUE(phase_contains(schedule, 0, msg(kT0[1], kT0[0])));
  EXPECT_TRUE(phase_contains(schedule, 1, msg(kT0[2], kT0[1])));
  EXPECT_TRUE(phase_contains(schedule, 2, msg(kT0[0], kT0[2])));
  EXPECT_TRUE(phase_contains(schedule, 3, msg(kT0[2], kT0[0])));
  EXPECT_TRUE(phase_contains(schedule, 4, msg(kT0[0], kT0[1])));
  EXPECT_TRUE(phase_contains(schedule, 5, msg(kT0[1], kT0[2])));
  // t1 locals in the t1 -> t0 span (Step 5, as narrated in §4.3).
  EXPECT_TRUE(phase_contains(schedule, 4, msg(kT1[1], kT1[0])));
  EXPECT_TRUE(phase_contains(schedule, 7, msg(kT1[0], kT1[1])));
}

TEST(AssignTest, PaperExampleVerifies) {
  const Topology topo = make_paper_figure1();
  const Schedule schedule = build_aapc_schedule(topo);
  const VerifyReport report = verify_schedule(topo, schedule);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.max_edge_multiplicity, 1);
}

TEST(AssignTest, ScopesAreLabelledCorrectly) {
  const Topology topo = make_paper_figure1();
  const Decomposition dec = decompose_at(topo, *topo.find_node("s1"));
  const Schedule schedule = assign_messages(dec);
  for (const ScheduledMessage& sm : schedule.messages) {
    const bool same_subtree =
        dec.subtree_of[sm.message.src] == dec.subtree_of[sm.message.dst];
    EXPECT_EQ(sm.scope == MessageScope::kLocal, same_subtree)
        << sm.message.src << "->" << sm.message.dst;
  }
}

TEST(AssignTest, SingleSwitchReducesToRingLikeSchedule) {
  // All-singleton subtrees: N-1 phases, each phase a perfect permutation
  // (every machine sends once and receives once).
  const Topology topo = make_single_switch(8);
  const Schedule schedule = build_aapc_schedule(topo);
  ASSERT_EQ(schedule.phase_count(), 7);
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    ASSERT_EQ(schedule.phase_size(p), 8);
    std::set<Rank> senders;
    std::set<Rank> receivers;
    for (const ScheduledMessage& sm : schedule.phase(p)) {
      EXPECT_TRUE(senders.insert(sm.message.src).second);
      EXPECT_TRUE(receivers.insert(sm.message.dst).second);
    }
  }
}

TEST(AssignTest, AtMostOneLocalPerSubtreePerPhase) {
  // §4.3: "by scheduling at most one local message in each subtree" the
  // algorithm stays topology-agnostic inside subtrees.
  const Topology topo = topology::make_chain({4, 3, 2});
  const Decomposition dec = decompose(topo);
  const Schedule schedule = assign_messages(dec);
  std::map<std::pair<std::int32_t, std::int32_t>, int> locals_in_phase;
  for (const ScheduledMessage& sm : schedule.messages) {
    if (sm.scope != MessageScope::kLocal) continue;
    const std::int32_t subtree = dec.subtree_of[sm.message.src];
    EXPECT_EQ(dec.subtree_of[sm.message.dst], subtree);
    const int count = ++locals_in_phase[std::make_pair(sm.phase, subtree)];
    EXPECT_EQ(count, 1) << "two locals in subtree " << subtree << " phase "
                        << sm.phase;
  }
}

TEST(AssignTest, Step3LocalsFitInFirstM0Window) {
  const Topology topo = topology::make_chain({4, 3, 2});
  const Decomposition dec = decompose(topo);
  const std::int32_t m0 = dec.subtree_size(0);
  const Schedule schedule = assign_messages(dec);
  for (const ScheduledMessage& sm : schedule.messages) {
    if (sm.scope == MessageScope::kLocal &&
        dec.subtree_of[sm.message.src] == 0) {
      EXPECT_LT(sm.phase, m0 * (m0 - 1));
    }
  }
}

TEST(AssignTest, Step6RotateVariantAlsoVerifies) {
  const Topology topo = topology::make_chain({4, 3, 2});
  AssignmentOptions options;
  options.step6 = AssignmentOptions::Step6Pattern::kRotate;
  const Schedule schedule = assign_messages(decompose(topo), options);
  const VerifyReport report = verify_schedule(topo, schedule);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(AssignTest, TrivialSizes) {
  EXPECT_EQ(build_aapc_schedule(make_single_switch(1)).phase_count(), 0);
  const Schedule two = build_aapc_schedule(make_single_switch(2));
  ASSERT_EQ(two.phase_count(), 1);
  EXPECT_EQ(two.phase_size(0), 2);
  const VerifyReport report =
      verify_schedule(make_single_switch(2), two);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(AssignTest, VerifierCatchesPlantedContention) {
  // Sanity-check the verifier itself: moving a message into a phase that
  // already uses its uplink must be reported.
  const Topology topo = make_paper_figure1();
  auto phases = build_aapc_schedule(topo).phase_lists();
  // Find two messages with the same source in different phases and merge
  // them into one phase: the shared (machine -> switch) edge contends.
  Message victim{-1, -1};
  for (const Message& m0 : phases[0]) {
    for (const Message& m1 : phases[1]) {
      if (m1.src == m0.src) victim = m1;
    }
  }
  ASSERT_NE(victim.src, -1);
  phases[0].push_back(victim);
  auto& p1 = phases[1];
  p1.erase(std::find(p1.begin(), p1.end(), victim));
  const VerifyReport report =
      verify_schedule(topo, Schedule::from_phase_lists(phases));
  EXPECT_FALSE(report.ok);
  EXPECT_GE(report.max_edge_multiplicity, 2);
}

TEST(AssignTest, VerifierCatchesMissingAndDuplicateMessages) {
  const Topology topo = make_paper_figure1();
  auto phases = build_aapc_schedule(topo).phase_lists();
  phases[0].pop_back();
  VerifyReport report =
      verify_schedule(topo, Schedule::from_phase_lists(phases));
  EXPECT_FALSE(report.ok);

  auto duplicated = build_aapc_schedule(topo).phase_lists();
  duplicated[2].push_back(duplicated[5].front());
  report = verify_schedule(topo, Schedule::from_phase_lists(duplicated));
  EXPECT_FALSE(report.ok);
}

TEST(AssignTest, VerifierCatchesWrongPhaseCount) {
  const Topology topo = make_paper_figure1();
  auto phases = build_aapc_schedule(topo).phase_lists();
  phases.emplace_back();  // padding phase
  const Schedule schedule = Schedule::from_phase_lists(phases);
  VerifyReport report = verify_schedule(topo, schedule);
  EXPECT_FALSE(report.ok);
  VerifyOptions lax;
  lax.require_optimal_phase_count = false;
  report = verify_schedule(topo, schedule, lax);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(AssignTest, ScheduleToStringMentionsMachines) {
  const Topology topo = make_paper_figure1();
  const Schedule schedule = build_aapc_schedule(topo);
  const std::string text = schedule.to_string(topo);
  EXPECT_NE(text.find("phase 0:"), std::string::npos);
  EXPECT_NE(text.find("n0->"), std::string::npos);
}

}  // namespace
}  // namespace aapc::core
