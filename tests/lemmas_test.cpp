// The technical-report lemmas (§4) as explicit randomized property
// tests, beyond the end-to-end Theorem check in schedule_property_test:
//
//  Lemma 2:  extended-ring phases never double-book a root link
//            (covered structurally in global_schedule_test; here the
//            root-link claim is checked on real schedules).
//  Lemma 4:  global messages alone are contention-free in every phase.
//  Step 1/4 alignment: at every phase of every group into subtree tj,
//            the receiver is the *designated* receiver
//            t_{j,(p - P) mod |Mj|}.
//  Step 5 feasibility: every subtree's local messages fit inside the
//            phases of its group toward the preceding subtree.
#include <gtest/gtest.h>

#include "aapc/common/rng.hpp"
#include "aapc/core/assign.hpp"
#include "aapc/core/global_schedule.hpp"
#include "aapc/core/patterns.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::Topology;

struct Fixture {
  Topology topo;
  Decomposition dec;
  Schedule schedule;
  std::vector<std::int32_t> sizes;
  std::int64_t total_phases;
};

Fixture make_fixture(std::uint64_t seed) {
  Rng rng(seed * 6361 + 11);
  topology::RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(1, 8));
  options.machines = static_cast<std::int32_t>(rng.next_in(4, 24));
  Fixture fixture{topology::make_random_tree(rng, options), {}, {}, {}, 0};
  fixture.dec = decompose(fixture.topo);
  fixture.schedule = assign_messages(fixture.dec);
  for (std::int32_t i = 0; i < fixture.dec.subtree_count(); ++i) {
    fixture.sizes.push_back(fixture.dec.subtree_size(i));
  }
  fixture.total_phases = fixture.dec.total_phases();
  return fixture;
}

class LemmaRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LemmaRandomTest, Lemma4GlobalMessagesAloneAreContentionFree) {
  const Fixture fixture = make_fixture(GetParam());
  // Rebuild a schedule holding only the global messages and check
  // per-phase edge-disjointness.
  for (std::int32_t p = 0; p < fixture.schedule.phase_count(); ++p) {
    std::vector<std::int32_t> edge_use(
        static_cast<std::size_t>(fixture.topo.directed_edge_count()), 0);
    for (const ScheduledMessage& sm : fixture.schedule.phase(p)) {
      const Message& m = sm.message;
      if (fixture.dec.subtree_of[m.src] == fixture.dec.subtree_of[m.dst]) {
        continue;  // local
      }
      for (const topology::EdgeId e :
           fixture.topo.path(fixture.topo.machine_node(m.src),
                             fixture.topo.machine_node(m.dst))) {
        EXPECT_EQ(++edge_use[static_cast<std::size_t>(e)], 1);
      }
    }
  }
}

TEST_P(LemmaRandomTest, Lemma2NoTwoGroupsUseARootLinkPerPhase) {
  const Fixture fixture = make_fixture(GetParam());
  // Per phase: each subtree sends at most one global message and
  // receives at most one (its root link is double-booked otherwise).
  const std::int32_t k = fixture.dec.subtree_count();
  for (std::int32_t p = 0; p < fixture.schedule.phase_count(); ++p) {
    std::vector<std::int32_t> sending(k, 0);
    std::vector<std::int32_t> receiving(k, 0);
    for (const ScheduledMessage& sm : fixture.schedule.phase(p)) {
      const Message& m = sm.message;
      const std::int32_t si = fixture.dec.subtree_of[m.src];
      const std::int32_t di = fixture.dec.subtree_of[m.dst];
      if (si == di) continue;
      EXPECT_EQ(++sending[si], 1);
      EXPECT_EQ(++receiving[di], 1);
    }
  }
}

TEST_P(LemmaRandomTest, DesignatedReceiverAlignmentHolds) {
  // §4.3: for every group tu -> tj with j >= 1 and (u == 0 or u > j),
  // the receiver at global phase p is t_{j,(p - P) mod |Mj|}. The two
  // exempt group families: Step-2 groups into t0 (their receivers
  // follow the Table-3 round mapping instead) and Step-6 groups
  // (0 < u < j, scheduling freedom).
  const Fixture fixture = make_fixture(GetParam());
  const GlobalSchedule global(fixture.sizes);
  const std::int64_t P = fixture.total_phases;
  for (std::int64_t p = 0; p < P; ++p) {
    for (const ScheduledMessage& sm :
         fixture.schedule.phase(static_cast<std::int32_t>(p))) {
      const Message& m = sm.message;
      const std::int32_t u = fixture.dec.subtree_of[m.src];
      const std::int32_t j = fixture.dec.subtree_of[m.dst];
      if (u == j) continue;
      if (j == 0) continue;          // Step 2: Table-3 mapping instead
      if (u != 0 && u < j) continue;  // Step 6: alignment not required
      const std::int32_t mj = fixture.sizes[j];
      EXPECT_EQ(fixture.dec.index_in_subtree[m.dst],
                static_cast<std::int32_t>(positive_mod(p - P, mj)))
          << "group t" << u << "->t" << j << " at phase " << p;
    }
  }
}

TEST_P(LemmaRandomTest, Step5LocalsLiveInsideTheirGroupSpan) {
  const Fixture fixture = make_fixture(GetParam());
  const GlobalSchedule global(fixture.sizes);
  for (const ScheduledMessage& sm : fixture.schedule.messages) {
    if (sm.scope != MessageScope::kLocal) continue;
    const std::int32_t i = fixture.dec.subtree_of[sm.message.src];
    if (i == 0) {
      // Step 3: first |M0|*(|M0|-1) phases.
      const std::int64_t m0 = fixture.sizes[0];
      EXPECT_LT(sm.phase, m0 * (m0 - 1));
    } else {
      // Step 5: the span of t_i -> t_{i-1}.
      const std::int64_t start = global.group_start(i, i - 1);
      const std::int64_t length = global.group_length(i, i - 1);
      EXPECT_GE(sm.phase, start);
      EXPECT_LT(sm.phase, start + length);
    }
  }
}

TEST_P(LemmaRandomTest, EverySubtreeSendsGloballyInEveryPhaseOfT0) {
  // Step 1's rotate senders: subtree t0 sends exactly one global
  // message in every phase, and each t0 machine appears once per
  // aligned |M0| window (the property Step 2's Table-3 mapping needs).
  const Fixture fixture = make_fixture(GetParam());
  const std::int64_t P = fixture.total_phases;
  const std::int32_t m0 = fixture.sizes[0];
  std::vector<std::int32_t> sender_at_phase(static_cast<std::size_t>(P), -1);
  for (const ScheduledMessage& sm : fixture.schedule.messages) {
    if (sm.scope != MessageScope::kGlobal) continue;
    if (fixture.dec.subtree_of[sm.message.src] != 0) continue;
    ASSERT_EQ(sender_at_phase[static_cast<std::size_t>(sm.phase)], -1);
    sender_at_phase[static_cast<std::size_t>(sm.phase)] =
        fixture.dec.index_in_subtree[sm.message.src];
  }
  for (std::int64_t window = 0; window < P / m0; ++window) {
    std::vector<char> seen(static_cast<std::size_t>(m0), 0);
    for (std::int64_t p = window * m0; p < (window + 1) * m0; ++p) {
      const std::int32_t sender =
          sender_at_phase[static_cast<std::size_t>(p)];
      ASSERT_NE(sender, -1) << "t0 idle at phase " << p;
      EXPECT_EQ(seen[static_cast<std::size_t>(sender)], 0);
      seen[static_cast<std::size_t>(sender)] = 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaRandomTest,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace aapc::core
