// Tests for the LAM and MPICH baseline algorithms (§6): exact posting
// orders, dispatcher size thresholds, and end-to-end delivery.
#include <gtest/gtest.h>

#include <set>

#include "aapc/baselines/baselines.hpp"
#include "aapc/common/error.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::baselines {
namespace {

using mpisim::Op;
using mpisim::OpKind;
using mpisim::Program;
using mpisim::ProgramSet;
using topology::make_single_switch;
using topology::Topology;

std::vector<topology::Rank> send_order(const Program& program) {
  std::vector<topology::Rank> order;
  for (const Op& op : program.ops) {
    if (op.kind == OpKind::kIsend) order.push_back(op.peer);
  }
  return order;
}

std::vector<topology::Rank> recv_order(const Program& program) {
  std::vector<topology::Rank> order;
  for (const Op& op : program.ops) {
    if (op.kind == OpKind::kIrecv) order.push_back(op.peer);
  }
  return order;
}

void expect_full_exchange(const ProgramSet& set, std::int32_t ranks) {
  ASSERT_EQ(set.rank_count(), ranks);
  for (topology::Rank r = 0; r < ranks; ++r) {
    const auto sends = send_order(set.programs[r]);
    const auto recvs = recv_order(set.programs[r]);
    EXPECT_EQ(sends.size(), static_cast<std::size_t>(ranks - 1));
    EXPECT_EQ(recvs.size(), static_cast<std::size_t>(ranks - 1));
    EXPECT_EQ(std::set<topology::Rank>(sends.begin(), sends.end()).size(),
              sends.size());
    EXPECT_EQ(std::set<topology::Rank>(recvs.begin(), recvs.end()).size(),
              recvs.size());
  }
}

TEST(BaselinesTest, LamSendOrderIsZeroToN) {
  const ProgramSet set = lam_alltoall(5, 1024);
  expect_full_exchange(set, 5);
  // Rank 2 sends in order 0, 1, 3, 4 (self skipped).
  EXPECT_EQ(send_order(set.programs[2]),
            (std::vector<topology::Rank>{0, 1, 3, 4}));
}

TEST(BaselinesTest, MpichOrderedStartsAfterSelf) {
  const ProgramSet set = mpich_ordered_alltoall(5, 1024);
  expect_full_exchange(set, 5);
  // Rank 2 sends in order 3, 4, 0, 1.
  EXPECT_EQ(send_order(set.programs[2]),
            (std::vector<topology::Rank>{3, 4, 0, 1}));
}

TEST(BaselinesTest, PairwiseUsesXorPartners) {
  const ProgramSet set = mpich_pairwise_alltoall(8, 1024);
  expect_full_exchange(set, 8);
  // Rank 3 partners: 3^1=2, 3^2=1, 3^3=0, 3^4=7, 3^5=6, 3^6=5, 3^7=4.
  EXPECT_EQ(send_order(set.programs[3]),
            (std::vector<topology::Rank>{2, 1, 0, 7, 6, 5, 4}));
  // Each step is a blocking sendrecv: irecv, isend, wait, wait.
  const Program& p = set.programs[0];
  ASSERT_GE(p.ops.size(), 5u);
  EXPECT_EQ(p.ops[0].kind, OpKind::kCopy);
  EXPECT_EQ(p.ops[1].kind, OpKind::kIrecv);
  EXPECT_EQ(p.ops[2].kind, OpKind::kIsend);
  EXPECT_EQ(p.ops[3].kind, OpKind::kWait);
  EXPECT_EQ(p.ops[4].kind, OpKind::kWait);
}

TEST(BaselinesTest, PairwiseRequiresPowerOfTwo) {
  EXPECT_THROW(mpich_pairwise_alltoall(24, 1024), InvalidArgument);
  EXPECT_NO_THROW(mpich_pairwise_alltoall(32, 1024));
}

TEST(BaselinesTest, RingSendsForwardReceivesBackward) {
  const ProgramSet set = mpich_ring_alltoall(5, 1024);
  expect_full_exchange(set, 5);
  EXPECT_EQ(send_order(set.programs[1]),
            (std::vector<topology::Rank>{2, 3, 4, 0}));
  EXPECT_EQ(recv_order(set.programs[1]),
            (std::vector<topology::Rank>{0, 4, 3, 2}));
}

TEST(BaselinesTest, DispatcherPicksBySizeAndNodeCount) {
  // <= 32 KB: ordered nonblocking regardless of node count.
  {
    const ProgramSet set = mpich_alltoall(24, 32768);
    // Ordered algorithm posts everything then waits once.
    std::int64_t waits = 0;
    for (const Op& op : set.programs[0].ops) {
      if (op.kind == OpKind::kWait) ++waits;
    }
    EXPECT_EQ(waits, 0);
  }
  // > 32 KB, power of two: pairwise (xor partners).
  {
    const ProgramSet set = mpich_alltoall(32, 65536);
    EXPECT_EQ(send_order(set.programs[3])[0], 3 ^ 1);
  }
  // > 32 KB, non power of two: ring.
  {
    const ProgramSet set = mpich_alltoall(24, 65536);
    EXPECT_EQ(send_order(set.programs[3])[0], 4);
    EXPECT_EQ(recv_order(set.programs[3])[0], 2);
  }
}

TEST(BaselinesTest, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(32));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(24));
  EXPECT_FALSE(is_power_of_two(-4));
}

TEST(BaselinesTest, AllBaselinesExecuteOnSimulator) {
  const Topology topo = make_single_switch(6);
  simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  mpisim::Executor executor(topo, net, exec);
  for (const ProgramSet& set :
       {lam_alltoall(6, 4096), mpich_ordered_alltoall(6, 4096),
        mpich_ring_alltoall(6, 65536)}) {
    const mpisim::ExecutionResult result = executor.run(set);
    EXPECT_EQ(result.message_count, 30) << set.name;
    EXPECT_GT(result.completion_time, 0) << set.name;
  }
}

TEST(BaselinesTest, PairwiseExecutesOnPowerOfTwoCluster) {
  const Topology topo = make_single_switch(8);
  simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  mpisim::Executor executor(topo, net, exec);
  const mpisim::ExecutionResult result =
      executor.run(mpich_pairwise_alltoall(8, 65536));
  EXPECT_EQ(result.message_count, 56);
}

TEST(BaselinesTest, SingleRankDegenerates) {
  const ProgramSet set = lam_alltoall(1, 1024);
  ASSERT_EQ(set.rank_count(), 1);
  // Only the self copy remains.
  EXPECT_EQ(set.programs[0].request_count(), 0);
}

}  // namespace
}  // namespace aapc::baselines
