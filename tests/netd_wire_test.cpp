// Wire-protocol tests for the aapc_netd framing layer (netd/wire.hpp,
// docs/NETD.md): encode/decode round-trips, and the defensive paths —
// truncated headers, oversized declared lengths, bad magic, version
// mismatch, unknown types, trailing payload bytes, byte-by-byte
// delivery, and randomized garbage. Malformed input must throw
// ProtocolError (and poison the decoder); it must never crash, hang,
// or yield a half-parsed frame.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "aapc/common/rng.hpp"
#include "aapc/common/units.hpp"
#include "aapc/netd/wire.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

namespace aapc::netd {
namespace {

void patch_u8(std::string& bytes, std::size_t offset, std::uint8_t value) {
  bytes[offset] = static_cast<char>(value);
}

void patch_u32(std::string& bytes, std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

RequestFrame sample_request() {
  RequestFrame request;
  request.request_id = 42;
  request.message_bytes = 64_KiB;
  request.tenant = "tenant-7";
  request.topology_text =
      topology::serialize_topology(topology::make_paper_figure1());
  return request;
}

/// Feeds a byte string and expects exactly one complete frame.
Frame decode_single(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  std::optional<Frame> frame = decoder.next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
  return *frame;
}

TEST(NetdWireTest, RequestRoundTrip) {
  const RequestFrame request = sample_request();
  const Frame frame = decode_single(encode_request(request));
  EXPECT_EQ(frame.header.type, FrameType::kRequest);
  EXPECT_EQ(frame.header.request_id, 42u);
  const RequestFrame decoded = decode_request(frame);
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.message_bytes, request.message_bytes);
  EXPECT_EQ(decoded.tenant, request.tenant);
  EXPECT_EQ(decoded.topology_text, request.topology_text);
}

TEST(NetdWireTest, RequestV3RoundTripWithKindAndNeighbors) {
  RequestFrame request = sample_request();
  request.kind = core::CollectiveKind::kSparseAlltoall;
  request.neighbors = {{1, 2}, {0}, {0, 1}};
  const Frame frame = decode_single(encode_request(request));
  EXPECT_EQ(frame.header.version, kProtocolVersion);
  const RequestFrame decoded = decode_request(frame);
  EXPECT_EQ(decoded.kind, core::CollectiveKind::kSparseAlltoall);
  EXPECT_EQ(decoded.neighbors, request.neighbors);
  // Non-sparse kinds carry an empty neighbor block.
  for (const core::CollectiveKind kind :
       {core::CollectiveKind::kAlltoall, core::CollectiveKind::kAllgather,
        core::CollectiveKind::kReduceScatter}) {
    RequestFrame plain = sample_request();
    plain.kind = kind;
    const RequestFrame back = decode_request(decode_single(
        encode_request(plain)));
    EXPECT_EQ(back.kind, kind);
    EXPECT_TRUE(back.neighbors.empty());
  }
}

TEST(NetdWireTest, LegacyV2RequestDecodesAsAlltoall) {
  const std::string bytes = encode_request_v2(sample_request());
  const Frame frame = decode_single(bytes);
  EXPECT_EQ(frame.header.version, kLegacyProtocolVersion);
  const RequestFrame decoded = decode_request(frame);
  EXPECT_EQ(decoded.kind, core::CollectiveKind::kAlltoall);
  EXPECT_TRUE(decoded.neighbors.empty());
  EXPECT_EQ(decoded.tenant, "tenant-7");
  // The v2 layout cannot express any other kind.
  RequestFrame sparse = sample_request();
  sparse.kind = core::CollectiveKind::kAllgather;
  EXPECT_THROW((void)encode_request_v2(sparse), Error);
}

TEST(NetdWireTest, BadKindByteIsInvalidRequestNotStreamPoison) {
  // With an empty neighbor block the kind byte sits 8 bytes from the
  // end: u8 kind, u8 + u16 reserved, u32 set count (0).
  std::string bytes = encode_request(sample_request());
  patch_u8(bytes, bytes.size() - 8, 9);
  FrameDecoder decoder;
  decoder.feed(bytes);
  decoder.feed(encode_metrics_request(99));
  std::optional<Frame> bad = decoder.next();
  ASSERT_TRUE(bad.has_value());
  // A well-framed request with a garbage kind byte is a bad *request*,
  // not a torn stream: InvalidArgument, and the decoder keeps going.
  EXPECT_THROW((void)decode_request(*bad), InvalidArgument);
  std::optional<Frame> next = decoder.next();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->header.type, FrameType::kMetricsRequest);
  EXPECT_EQ(next->header.request_id, 99u);
}

TEST(NetdWireTest, NeighborBlockOnNonSparseKindRejected) {
  RequestFrame request = sample_request();
  request.kind = core::CollectiveKind::kSparseAlltoall;
  request.neighbors = {{1}, {0}};
  // encode_request refuses the combination up front...
  RequestFrame bad = request;
  bad.kind = core::CollectiveKind::kAllgather;
  EXPECT_THROW((void)encode_request(bad), Error);
  // ...so forge it on the wire: re-stamp the kind byte of a sparse
  // request that carries two singleton sets (tail: kind u8 + 3 reserved
  // bytes + count u32 + 2 x (degree u32 + 1 id u32) = 24 bytes).
  std::string bytes = encode_request(request);
  patch_u8(bytes, bytes.size() - 24,
           static_cast<std::uint8_t>(core::CollectiveKind::kAllgather));
  EXPECT_THROW((void)decode_request(decode_single(bytes)), InvalidArgument);
}

TEST(NetdWireTest, ResponseRoundTrip) {
  ResponseFrame response;
  response.request_id = 7;
  response.cache_hit = true;
  response.coalesced = false;
  response.stale = true;
  response.shard = 3;
  response.canonical_hash = 0xdeadbeefcafef00dull;
  response.epoch = 41;
  response.to_canonical = {2, 0, 1, 3};
  response.schedule_json = "{\"phases\":[]}";
  const ResponseFrame decoded =
      decode_response(decode_single(encode_response(response)));
  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_FALSE(decoded.coalesced);
  EXPECT_TRUE(decoded.stale);
  EXPECT_EQ(decoded.shard, 3u);
  EXPECT_EQ(decoded.canonical_hash, 0xdeadbeefcafef00dull);
  EXPECT_EQ(decoded.epoch, 41u);
  EXPECT_EQ(decoded.to_canonical, response.to_canonical);
  EXPECT_EQ(decoded.schedule_json, response.schedule_json);
}

TEST(NetdWireTest, ChurnEventRoundTrip) {
  ChurnEventFrame event;
  event.request_id = 13;
  event.kind = ChurnKind::kLinkDegrade;
  event.link = 4;
  event.factor = 0.375;  // exact in binary: survives the bit-cast
  const Frame frame = decode_single(encode_churn_event(event));
  EXPECT_EQ(frame.header.type, FrameType::kChurnEvent);
  const ChurnEventFrame decoded = decode_churn_event(frame);
  EXPECT_EQ(decoded.request_id, 13u);
  EXPECT_EQ(decoded.kind, ChurnKind::kLinkDegrade);
  EXPECT_EQ(decoded.link, 4);
  EXPECT_EQ(decoded.factor, 0.375);
}

TEST(NetdWireTest, ChurnAckRoundTrip) {
  ChurnAckFrame ack;
  ack.request_id = 14;
  ack.epoch = 9;
  ack.invalidated = 3;
  ack.reelected = true;
  const ChurnAckFrame decoded =
      decode_churn_ack(decode_single(encode_churn_ack(ack)));
  EXPECT_EQ(decoded.request_id, 14u);
  EXPECT_EQ(decoded.epoch, 9u);
  EXPECT_EQ(decoded.invalidated, 3u);
  EXPECT_TRUE(decoded.reelected);
}

TEST(NetdWireTest, ChurnEventValidatesKindAndFactor) {
  ChurnEventFrame event;
  event.request_id = 1;
  event.kind = ChurnKind::kLinkDegrade;
  event.link = 0;
  event.factor = 0.5;
  // Unknown kind byte.
  {
    std::string bytes = encode_churn_event(event);
    patch_u8(bytes, kHeaderSize, 7);
    EXPECT_THROW((void)decode_churn_event(decode_single(bytes)),
                 ProtocolError);
  }
  // Factor outside [0, 1] and non-finite bit patterns.
  for (const double bad :
       {-0.25, 1.5, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()}) {
    ChurnEventFrame invalid = event;
    invalid.factor = bad;
    EXPECT_THROW(
        (void)decode_churn_event(decode_single(encode_churn_event(invalid))),
        ProtocolError);
  }
}

TEST(NetdWireTest, ErrorRoundTrip) {
  ErrorFrame error;
  error.request_id = 9;
  error.code = ErrorCode::kOverloaded;
  error.retry_after_ms = 125;
  error.message = "compiler pool saturated";
  const ErrorFrame decoded =
      decode_error(decode_single(encode_error(error)));
  EXPECT_EQ(decoded.request_id, 9u);
  EXPECT_EQ(decoded.code, ErrorCode::kOverloaded);
  EXPECT_EQ(decoded.retry_after_ms, 125u);
  EXPECT_EQ(decoded.message, error.message);
}

TEST(NetdWireTest, MetricsRoundTrip) {
  const Frame request = decode_single(encode_metrics_request(11));
  EXPECT_EQ(request.header.type, FrameType::kMetricsRequest);
  EXPECT_EQ(request.header.request_id, 11u);
  EXPECT_EQ(request.header.payload_length, 0u);
  const std::string json = "{\"metrics\":[]}";
  EXPECT_EQ(decode_metrics_response(
                decode_single(encode_metrics_response(11, json))),
            json);
}

TEST(NetdWireTest, WrongFrameTypeForDecoderRejected) {
  const Frame frame = decode_single(encode_request(sample_request()));
  EXPECT_THROW((void)decode_response(frame), ProtocolError);
  EXPECT_THROW((void)decode_error(frame), ProtocolError);
  EXPECT_THROW((void)decode_metrics_response(frame), ProtocolError);
}

TEST(NetdWireTest, TruncatedHeaderWaitsForMoreBytes) {
  const std::string bytes = encode_request(sample_request());
  FrameDecoder decoder;
  decoder.feed(bytes.substr(0, kHeaderSize - 1));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), kHeaderSize - 1);
  // The remainder completes the frame; nothing was lost.
  decoder.feed(bytes.substr(kHeaderSize - 1));
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(decode_request(*frame).tenant, "tenant-7");
}

TEST(NetdWireTest, ByteByByteDeliveryYieldsIntactFrames) {
  const RequestFrame request = sample_request();
  std::string stream = encode_request(request);
  stream += encode_metrics_request(43);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char byte : stream) {
    decoder.feed(std::string_view(&byte, 1));
    while (std::optional<Frame> frame = decoder.next()) {
      frames.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(decode_request(frames[0]).topology_text, request.topology_text);
  EXPECT_EQ(frames[1].header.type, FrameType::kMetricsRequest);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetdWireTest, MidFrameStateIsVisible) {
  const std::string bytes = encode_request(sample_request());
  FrameDecoder decoder;
  decoder.feed(bytes.substr(0, bytes.size() - 1));
  EXPECT_FALSE(decoder.next().has_value());
  // A peer hanging up now would be a mid-frame disconnect: the server
  // detects it exactly through buffered() > 0.
  EXPECT_GT(decoder.buffered(), 0u);
}

TEST(NetdWireTest, BadMagicPoisonsTheDecoder) {
  std::string bytes = encode_request(sample_request());
  patch_u8(bytes, 0, 0x00);
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_THROW((void)decoder.next(), ProtocolError);
  // The stream cannot be resynchronized: even valid bytes fed later
  // must keep failing rather than yield frames from a torn stream.
  decoder.feed(encode_metrics_request(1));
  EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(NetdWireTest, VersionMismatchRejected) {
  // Both a future version and the retired v1 (the response frame
  // changed shape in v2, so a v1 peer cannot be spoken to).
  for (const std::uint8_t version :
       {static_cast<std::uint8_t>(kProtocolVersion + 1),
        static_cast<std::uint8_t>(1)}) {
    std::string bytes = encode_request(sample_request());
    patch_u8(bytes, 4, version);
    FrameDecoder decoder;
    decoder.feed(bytes);
    try {
      (void)decoder.next();
      FAIL() << "expected ProtocolError for version " << int(version);
    } catch (const ProtocolError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }
}

TEST(NetdWireTest, UnknownFrameTypeRejected) {
  std::string bytes = encode_request(sample_request());
  patch_u8(bytes, 5, 9);
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(NetdWireTest, OversizedDeclaredLengthRejectedBeforeBuffering) {
  std::string bytes = encode_request(sample_request());
  patch_u32(bytes, 16, kMaxPayload + 1);
  FrameDecoder decoder;
  // Only the header arrives; the decoder must reject from the declared
  // length alone instead of waiting to buffer 16 MiB + 1.
  decoder.feed(bytes.substr(0, kHeaderSize));
  EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(NetdWireTest, TrailingPayloadBytesRejected) {
  RequestFrame request = sample_request();
  std::string bytes = encode_request(request);
  bytes.push_back('\0');
  patch_u32(bytes, 16,
            static_cast<std::uint32_t>(bytes.size() - kHeaderSize));
  const Frame frame = decode_single(bytes);
  EXPECT_THROW((void)decode_request(frame), ProtocolError);
}

TEST(NetdWireTest, OverlongTenantRejected) {
  RequestFrame request = sample_request();
  request.tenant.assign(kMaxTenantLength + 1, 'x');
  const Frame frame = decode_single(encode_request(request));
  EXPECT_THROW((void)decode_request(frame), ProtocolError);
}

class NetdWireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetdWireFuzzTest, GarbageBytesNeverCrashTheDecoder) {
  Rng rng(GetParam() * 2654435761u + 3);
  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder;
    const std::size_t length = static_cast<std::size_t>(rng.next_in(1, 128));
    std::string bytes;
    bytes.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(rng.next_below(256)));
    }
    // Occasionally lead with real magic so the fuzzer reaches the
    // version/type/length checks, not just the magic check.
    if (rng.next_below(2) == 0 && bytes.size() >= 4) {
      patch_u32(bytes, 0, kMagic);
    }
    try {
      std::size_t offset = 0;
      while (offset < bytes.size()) {
        const std::size_t chunk = std::min(
            bytes.size() - offset,
            static_cast<std::size_t>(rng.next_in(1, 16)));
        decoder.feed(std::string_view(bytes).substr(offset, chunk));
        offset += chunk;
        while (decoder.next().has_value()) {
        }
      }
    } catch (const ProtocolError&) {
      // Typed rejection is the expected outcome for garbage.
    }
  }
}

TEST_P(NetdWireFuzzTest, RandomPayloadsUnderValidHeadersNeverCrash) {
  Rng rng(GetParam() * 40503 + 5);
  for (int round = 0; round < 50; ++round) {
    Frame frame;
    frame.header.type =
        static_cast<FrameType>(1 + rng.next_below(7));
    frame.header.request_id = rng.next_u64();
    const std::size_t length = static_cast<std::size_t>(rng.next_in(0, 96));
    frame.payload.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      frame.payload.push_back(static_cast<char>(rng.next_below(256)));
    }
    frame.header.payload_length =
        static_cast<std::uint32_t>(frame.payload.size());
    try {
      switch (frame.header.type) {
        case FrameType::kRequest:
          (void)decode_request(frame);
          break;
        case FrameType::kResponse:
          (void)decode_response(frame);
          break;
        case FrameType::kError:
          (void)decode_error(frame);
          break;
        case FrameType::kMetricsResponse:
          (void)decode_metrics_response(frame);
          break;
        case FrameType::kChurnEvent:
          (void)decode_churn_event(frame);
          break;
        case FrameType::kChurnAck:
          (void)decode_churn_ack(frame);
          break;
        case FrameType::kMetricsRequest:
          break;  // no payload decoder
      }
    } catch (const ProtocolError&) {
      // Typed rejection, never a crash.
    } catch (const InvalidArgument&) {
      // decode_request: well-framed payload, semantically bad request
      // (garbage kind byte / neighbor block) — connection-preserving.
    }
  }
}

TEST_P(NetdWireFuzzTest, RandomV3KindAndNeighborBlocksNeverCrash) {
  Rng rng(GetParam() * 6364136223846793005ull + 11);
  const std::string topology_text =
      topology::serialize_topology(topology::make_single_switch(4));
  for (int round = 0; round < 100; ++round) {
    // A valid v2-shaped prefix followed by a randomized v3 tail: the
    // kind byte, reserved bytes, and neighbor block all take arbitrary
    // values. Decode must yield a request, InvalidArgument (bad kind,
    // misplaced neighbors), or ProtocolError (bounds/truncation) —
    // never a crash or hang.
    std::string bytes = encode_request_v2(sample_request());
    std::string tail;
    const std::size_t tail_length =
        static_cast<std::size_t>(rng.next_in(0, 40));
    for (std::size_t i = 0; i < tail_length; ++i) {
      tail.push_back(static_cast<char>(rng.next_below(256)));
    }
    bytes += tail;
    patch_u8(bytes, 4, kProtocolVersion);  // claim v3
    patch_u32(bytes, 16,
              static_cast<std::uint32_t>(bytes.size() - kHeaderSize));
    FrameDecoder decoder;
    decoder.feed(bytes);
    try {
      std::optional<Frame> frame = decoder.next();
      ASSERT_TRUE(frame.has_value());
      const RequestFrame decoded = decode_request(*frame);
      EXPECT_TRUE(core::collective_kind_valid(
          static_cast<std::uint8_t>(decoded.kind)));
    } catch (const ProtocolError&) {
    } catch (const InvalidArgument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetdWireFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace aapc::netd
