// Tests for the packet-level simulator: wire-time arithmetic, queueing,
// drop/retransmit recovery, and the emergent incast collapse that the
// fluid model's calibrated penalties stand in for.
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/packetsim/packet_network.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::packetsim {
namespace {

using topology::make_chain;
using topology::make_single_switch;
using topology::Topology;

PacketNetworkParams fast_params() {
  PacketNetworkParams params;
  params.link_latency = 0;
  params.ack_latency = 0;
  params.segment_overhead = 0;
  return params;
}

TEST(PacketSimTest, SingleFlowApproachesWireSpeed) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params = fast_params();
  params.segment_payload = 1250;  // 0.1 ms per segment at 12.5 MB/s
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'250'000, 0}}, params);
  // 1000 segments, two store-and-forward hops: the pipeline drains in
  // ~(1000 + 1) segment times.
  EXPECT_NEAR(result.makespan, 0.1001, 1e-5);
  EXPECT_EQ(result.segments_dropped, 0);
  EXPECT_EQ(result.retransmissions, 0);
  EXPECT_NEAR(result.goodput_bytes_per_sec, 12.5e6, 0.05e6);
}

TEST(PacketSimTest, HeaderOverheadReducesGoodput) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params = fast_params();
  params.segment_payload = 1460;
  params.segment_overhead = 78;  // ~5% headers
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'460'000, 0}}, params);
  EXPECT_NEAR(result.goodput_bytes_per_sec, 12.5e6 * 1460 / 1538, 0.1e6);
}

TEST(PacketSimTest, TwoFlowsShareALink) {
  const Topology topo = make_single_switch(3);
  PacketNetworkParams params = fast_params();
  // Two flows into one receiver with windows small enough not to
  // overflow: fair interleaving, combined wire speed.
  params.window_segments = 4;
  const PacketResult result = simulate_packets(
      topo,
      {PacketMessage{0, 2, 625'000, 0}, PacketMessage{1, 2, 625'000, 0}},
      params);
  EXPECT_EQ(result.segments_dropped, 0);
  EXPECT_NEAR(result.makespan, 0.1, 5e-3);  // 1.25 MB over 12.5 MB/s
}

TEST(PacketSimTest, OverflowDropsAndRecovers) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params = fast_params();
  params.queue_capacity_segments = 4;  // tiny switch buffers
  params.window_segments = 8;
  params.retransmit_timeout = 5e-3;
  // 8-to-1 incast into a 4-segment buffer: drops are inevitable, but
  // everything must still complete via retransmission.
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 100'000, 0});
  }
  const PacketResult result = simulate_packets(topo, messages, params);
  EXPECT_GT(result.segments_dropped, 0);
  EXPECT_GT(result.retransmissions, 0);
  for (const SimTime completion : result.completion) {
    EXPECT_GT(completion, 0);
  }
}

TEST(PacketSimTest, IncastCollapseEmerges) {
  // The headline property: goodput vs fan-in falls the way the fluid
  // model's eta_node curve assumes — monotonically, and substantially
  // below wire speed at 16-way incast.
  const Topology topo = make_single_switch(24);
  PacketNetworkParams params;  // realistic defaults
  auto goodput = [&](int senders) {
    std::vector<PacketMessage> messages;
    for (int s = 1; s <= senders; ++s) {
      messages.push_back(
          PacketMessage{static_cast<topology::Rank>(s), 0, 500'000, 0});
    }
    return simulate_packets(topo, messages, params).goodput_bytes_per_sec;
  };
  const double one = goodput(1);
  const double four = goodput(4);
  const double sixteen = goodput(16);
  EXPECT_GT(one, 11.0e6);          // near wire speed
  EXPECT_LT(four, one * 1.01);     // no gain from fan-in
  EXPECT_LT(sixteen, 0.75 * one);  // collapse well under way
  EXPECT_LT(sixteen, four);
}

TEST(PacketSimTest, ContentionFreePairsDoNotInterfere) {
  // Disjoint pairs across a chain do not share ports: wire speed each,
  // no drops — the packet-level form of "contention-free phases run at
  // full link rate".
  const Topology topo = make_chain({4, 4});
  PacketNetworkParams params = fast_params();
  std::vector<PacketMessage> messages;
  for (int i = 0; i < 4; ++i) {
    // Same-switch pairs: n0->n1, n2->n3 on s0; n4->n5, n6->n7 on s1.
    messages.push_back(PacketMessage{static_cast<topology::Rank>(2 * i),
                                     static_cast<topology::Rank>(2 * i + 1),
                                     500'000, 0});
  }
  const PacketResult result = simulate_packets(topo, messages, params);
  EXPECT_EQ(result.segments_dropped, 0);
  EXPECT_NEAR(result.goodput_bytes_per_sec, 4 * 12.5e6, 1.5e6);
}

TEST(PacketSimTest, StaggeredStartsRespectStartTimes) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params = fast_params();
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 125'000, 0.5}}, params);
  EXPECT_GT(result.completion[0], 0.5);
}

TEST(PacketSimTest, DeterministicAcrossRuns) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params;
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  const PacketResult a = simulate_packets(topo, messages, params);
  const PacketResult b = simulate_packets(topo, messages, params);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.segments_dropped, b.segments_dropped);
}

TEST(PacketSimTest, AimdAdaptsUnderTrunkMultiplexing) {
  // Eight flows over one trunk: the fixed window over-stalls (shared
  // queue overflows and whole windows time out together); AIMD backs
  // off and recovers quickly, keeping goodput high.
  const Topology topo = make_chain({8, 8});
  std::vector<PacketMessage> messages;
  for (int s = 0; s < 8; ++s) {
    messages.push_back(PacketMessage{static_cast<topology::Rank>(s),
                                     static_cast<topology::Rank>(8 + s),
                                     500'000, 0});
  }
  PacketNetworkParams fixed;  // defaults = fixed window
  PacketNetworkParams aimd;
  aimd.transport = PacketNetworkParams::Transport::kAimd;
  aimd.window_segments = 32;  // AIMD cap, not a fixed burst
  const PacketResult fixed_result = simulate_packets(topo, messages, fixed);
  const PacketResult aimd_result = simulate_packets(topo, messages, aimd);
  EXPECT_GT(aimd_result.goodput_bytes_per_sec,
            fixed_result.goodput_bytes_per_sec);
  // AIMD suffers far fewer retransmissions.
  EXPECT_LT(aimd_result.retransmissions, fixed_result.retransmissions);
}

TEST(PacketSimTest, AimdSingleFlowStillReachesWireSpeed) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params = fast_params();
  params.transport = PacketNetworkParams::Transport::kAimd;
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'460'000, 0}}, params);
  // The window opens from 2; after the ramp the flow saturates the
  // link, so goodput is within ~15% of wire speed for a 1000-segment
  // transfer.
  EXPECT_GT(result.goodput_bytes_per_sec, 0.85 * 12.5e6);
  EXPECT_EQ(result.segments_dropped, 0);
}

TEST(PacketSimTest, MalformedMessagesRejected) {
  const Topology topo = make_single_switch(2);
  EXPECT_THROW(
      simulate_packets(topo, {PacketMessage{0, 0, 100, 0}}),
      InvalidArgument);
  EXPECT_THROW(
      simulate_packets(topo, {PacketMessage{0, 1, 0, 0}}),
      InvalidArgument);
}

}  // namespace
}  // namespace aapc::packetsim
