// Tests for the packet-level simulator: wire-time arithmetic, queueing,
// drop/retransmit recovery, and the emergent incast collapse that the
// fluid model's calibrated penalties stand in for.
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/packetsim/packet_network.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::packetsim {
namespace {

using topology::make_chain;
using topology::make_single_switch;
using topology::Topology;

PacketNetworkParams fast_params() {
  PacketNetworkParams params;
  params.link_latency = 0;
  params.ack_latency = 0;
  params.segment_overhead = 0;
  return params;
}

TEST(PacketSimTest, SingleFlowApproachesWireSpeed) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params = fast_params();
  params.segment_payload = 1250;  // 0.1 ms per segment at 12.5 MB/s
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'250'000, 0}}, params);
  // 1000 segments, two store-and-forward hops: the pipeline drains in
  // ~(1000 + 1) segment times.
  EXPECT_NEAR(result.makespan, 0.1001, 1e-5);
  EXPECT_EQ(result.segments_dropped, 0);
  EXPECT_EQ(result.retransmissions, 0);
  EXPECT_NEAR(result.goodput_bytes_per_sec, 12.5e6, 0.05e6);
}

TEST(PacketSimTest, HeaderOverheadReducesGoodput) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params = fast_params();
  params.segment_payload = 1460;
  params.segment_overhead = 78;  // ~5% headers
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'460'000, 0}}, params);
  EXPECT_NEAR(result.goodput_bytes_per_sec, 12.5e6 * 1460 / 1538, 0.1e6);
}

TEST(PacketSimTest, TwoFlowsShareALink) {
  const Topology topo = make_single_switch(3);
  PacketNetworkParams params = fast_params();
  // Two flows into one receiver with windows small enough not to
  // overflow: fair interleaving, combined wire speed.
  params.window_segments = 4;
  const PacketResult result = simulate_packets(
      topo,
      {PacketMessage{0, 2, 625'000, 0}, PacketMessage{1, 2, 625'000, 0}},
      params);
  EXPECT_EQ(result.segments_dropped, 0);
  EXPECT_NEAR(result.makespan, 0.1, 5e-3);  // 1.25 MB over 12.5 MB/s
}

TEST(PacketSimTest, OverflowDropsAndRecovers) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params = fast_params();
  params.queue_capacity_segments = 4;  // tiny switch buffers
  params.window_segments = 8;
  params.retransmit_timeout = 5e-3;
  // 8-to-1 incast into a 4-segment buffer: drops are inevitable, but
  // everything must still complete via retransmission.
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 100'000, 0});
  }
  const PacketResult result = simulate_packets(topo, messages, params);
  EXPECT_GT(result.segments_dropped, 0);
  EXPECT_GT(result.retransmissions, 0);
  for (const SimTime completion : result.completion) {
    EXPECT_GT(completion, 0);
  }
}

TEST(PacketSimTest, IncastCollapseEmerges) {
  // The headline property: goodput vs fan-in falls the way the fluid
  // model's eta_node curve assumes — monotonically, and substantially
  // below wire speed at 16-way incast.
  const Topology topo = make_single_switch(24);
  PacketNetworkParams params;  // realistic defaults
  auto goodput = [&](int senders) {
    std::vector<PacketMessage> messages;
    for (int s = 1; s <= senders; ++s) {
      messages.push_back(
          PacketMessage{static_cast<topology::Rank>(s), 0, 500'000, 0});
    }
    return simulate_packets(topo, messages, params).goodput_bytes_per_sec;
  };
  const double one = goodput(1);
  const double four = goodput(4);
  const double sixteen = goodput(16);
  EXPECT_GT(one, 11.0e6);          // near wire speed
  EXPECT_LT(four, one * 1.01);     // no gain from fan-in
  EXPECT_LT(sixteen, 0.75 * one);  // collapse well under way
  EXPECT_LT(sixteen, four);
}

TEST(PacketSimTest, ContentionFreePairsDoNotInterfere) {
  // Disjoint pairs across a chain do not share ports: wire speed each,
  // no drops — the packet-level form of "contention-free phases run at
  // full link rate".
  const Topology topo = make_chain({4, 4});
  PacketNetworkParams params = fast_params();
  std::vector<PacketMessage> messages;
  for (int i = 0; i < 4; ++i) {
    // Same-switch pairs: n0->n1, n2->n3 on s0; n4->n5, n6->n7 on s1.
    messages.push_back(PacketMessage{static_cast<topology::Rank>(2 * i),
                                     static_cast<topology::Rank>(2 * i + 1),
                                     500'000, 0});
  }
  const PacketResult result = simulate_packets(topo, messages, params);
  EXPECT_EQ(result.segments_dropped, 0);
  EXPECT_NEAR(result.goodput_bytes_per_sec, 4 * 12.5e6, 1.5e6);
}

TEST(PacketSimTest, StaggeredStartsRespectStartTimes) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params = fast_params();
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 125'000, 0.5}}, params);
  EXPECT_GT(result.completion[0], 0.5);
}

TEST(PacketSimTest, DeterministicAcrossRuns) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params;
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  const PacketResult a = simulate_packets(topo, messages, params);
  const PacketResult b = simulate_packets(topo, messages, params);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.segments_dropped, b.segments_dropped);
}

TEST(PacketSimTest, AimdAdaptsUnderTrunkMultiplexing) {
  // Eight flows over one trunk: the fixed window over-stalls (shared
  // queue overflows and whole windows time out together); AIMD backs
  // off and recovers quickly, keeping goodput high.
  const Topology topo = make_chain({8, 8});
  std::vector<PacketMessage> messages;
  for (int s = 0; s < 8; ++s) {
    messages.push_back(PacketMessage{static_cast<topology::Rank>(s),
                                     static_cast<topology::Rank>(8 + s),
                                     500'000, 0});
  }
  PacketNetworkParams fixed;  // defaults = fixed window
  PacketNetworkParams aimd;
  aimd.transport = PacketNetworkParams::Transport::kAimd;
  aimd.window_segments = 32;  // AIMD cap, not a fixed burst
  const PacketResult fixed_result = simulate_packets(topo, messages, fixed);
  const PacketResult aimd_result = simulate_packets(topo, messages, aimd);
  EXPECT_GT(aimd_result.goodput_bytes_per_sec,
            fixed_result.goodput_bytes_per_sec);
  // AIMD suffers far fewer retransmissions.
  EXPECT_LT(aimd_result.retransmissions, fixed_result.retransmissions);
}

TEST(PacketSimTest, AimdSingleFlowStillReachesWireSpeed) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params = fast_params();
  params.transport = PacketNetworkParams::Transport::kAimd;
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'460'000, 0}}, params);
  // The window opens from 2; after the ramp the flow saturates the
  // link, so goodput is within ~15% of wire speed for a 1000-segment
  // transfer.
  EXPECT_GT(result.goodput_bytes_per_sec, 0.85 * 12.5e6);
  EXPECT_EQ(result.segments_dropped, 0);
}

TEST(PacketSimTest, MalformedMessagesRejected) {
  const Topology topo = make_single_switch(2);
  EXPECT_THROW(
      simulate_packets(topo, {PacketMessage{0, 0, 100, 0}}),
      InvalidArgument);
  EXPECT_THROW(
      simulate_packets(topo, {PacketMessage{0, 1, 0, 0}}),
      InvalidArgument);
}

// ---- zero-fault contract ----

// Golden outputs captured from the pre-fault simulator (17 significant
// digits). The all-rates-zero fault config must perform no RNG draw, so
// every double here must match BIT FOR BIT — EXPECT_EQ on doubles is
// deliberate. If this test fails, the fault machinery leaked into the
// fault-free event stream.
TEST(PacketSimGoldenTest, ZeroFaultConfigIsBitIdenticalIncast) {
  const Topology topo = make_single_switch(9);
  const PacketNetworkParams params;  // defaults: all fault rates zero
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  const PacketResult result = simulate_packets(topo, messages, params);
  EXPECT_EQ(result.makespan, 0.3893422400000025);
  EXPECT_EQ(result.segments_sent, 1441);
  EXPECT_EQ(result.segments_dropped, 345);
  EXPECT_EQ(result.retransmissions, 345);
  EXPECT_EQ(result.segments_lost, 0);
  EXPECT_EQ(result.segments_corrupted, 0);
  EXPECT_EQ(result.goodput_bytes_per_sec, 4109495.0293602608);
  const std::vector<SimTime> golden = {
      0.02338760000000005,  0.38909616000000247, 0.33653912000000064,
      0.38577408000000196,  0.3893422400000025,  0.26451584000000206,
      0.38109856000000125,  0.34908920000000254};
  ASSERT_EQ(result.completion.size(), golden.size());
  for (std::size_t m = 0; m < golden.size(); ++m) {
    EXPECT_EQ(result.completion[m], golden[m]) << "message " << m;
  }
}

TEST(PacketSimGoldenTest, ZeroFaultConfigIsBitIdenticalAimdTrunk) {
  const Topology topo = make_chain({4, 4});
  PacketNetworkParams params;
  params.transport = PacketNetworkParams::Transport::kAimd;
  std::vector<PacketMessage> messages;
  for (topology::Rank s = 0; s < 4; ++s) {
    messages.push_back(PacketMessage{s, static_cast<topology::Rank>(4 + s),
                                     300'000, 1e-4 * s});
  }
  const PacketResult result = simulate_packets(topo, messages, params);
  EXPECT_EQ(result.makespan, 0.10459900000000125);
  EXPECT_EQ(result.segments_sent, 860);
  EXPECT_EQ(result.segments_dropped, 12);
  EXPECT_EQ(result.retransmissions, 36);
  EXPECT_EQ(result.goodput_bytes_per_sec, 11472385.013240907);
  EXPECT_EQ(result.completion[3], 0.10459900000000125);
}

TEST(PacketSimGoldenTest, ZeroFaultConfigIsBitIdenticalSingleFlow) {
  const Topology topo = make_single_switch(2);
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, PacketNetworkParams{});
  EXPECT_EQ(result.makespan, 0.084415440000000452);
  EXPECT_EQ(result.segments_sent, 685);
  EXPECT_EQ(result.segments_dropped, 0);
  EXPECT_EQ(result.goodput_bytes_per_sec, 11846174.112223957);
}

// An inert Gilbert-Elliott chain (transition probability zero) must not
// draw either, even with burst loss rates configured.
TEST(PacketSimGoldenTest, InertGilbertElliottChainDrawsNothing) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams faulty;
  faulty.faults.ge_p_good_to_bad = 0.0;  // chain never leaves good
  faulty.faults.ge_loss_rate = 0.9;
  const PacketResult clean = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, PacketNetworkParams{});
  const PacketResult inert = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, faulty);
  EXPECT_EQ(clean.makespan, inert.makespan);
  EXPECT_EQ(clean.segments_sent, inert.segments_sent);
  EXPECT_FALSE(faulty.faults.active());
}

// ---- stochastic faults ----

TEST(PacketSimFaultTest, SameSeedIsBitIdentical) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params;
  params.faults.loss_rate = 0.01;
  params.faults.jitter_max = microseconds(20.0);
  params.faults.corruption_rate = 0.002;
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  const PacketResult a = simulate_packets(topo, messages, params);
  const PacketResult b = simulate_packets(topo, messages, params);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.segments_sent, b.segments_sent);
  EXPECT_EQ(a.segments_lost, b.segments_lost);
  EXPECT_EQ(a.segments_corrupted, b.segments_corrupted);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.message_retransmissions, b.message_retransmissions);
  EXPECT_GT(a.segments_lost, 0);
}

TEST(PacketSimFaultTest, DifferentSeedDiffers) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params;
  params.faults.loss_rate = 0.02;
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  PacketNetworkParams other = params;
  other.faults.seed = params.faults.seed + 1;
  const PacketResult a = simulate_packets(topo, messages, params);
  const PacketResult b = simulate_packets(topo, messages, other);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(PacketSimFaultTest, BernoulliLossIsRecovered) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params;
  params.faults.loss_rate = 0.05;
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, params);
  EXPECT_GT(result.segments_lost, 0);
  EXPECT_GE(result.retransmissions, result.segments_lost);
  EXPECT_GT(result.completion[0], 0);  // completed despite the losses
  const PacketResult clean = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, PacketNetworkParams{});
  EXPECT_GT(result.makespan, clean.makespan);
}

TEST(PacketSimFaultTest, EdgeLossOverrideConcentratesLoss) {
  // Loss only on the n0 -> switch uplink: the reverse transfer rides
  // clean links and must see zero retransmissions.
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params;
  params.faults.loss_rate = 0.0;
  const auto uplink = topo.path(topo.machine_node(0),
                                topo.machine_node(1)).front();
  params.faults.edge_loss.emplace_back(uplink, 0.05);
  const PacketResult result = simulate_packets(
      topo,
      {PacketMessage{0, 1, 500'000, 0}, PacketMessage{1, 0, 500'000, 0}},
      params);
  EXPECT_TRUE(params.faults.active());
  EXPECT_GT(result.message_retransmissions[0], 0);
  EXPECT_EQ(result.message_retransmissions[1], 0);
}

TEST(PacketSimFaultTest, GilbertElliottBurstsLoseAndRecover) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params;
  params.faults.ge_p_good_to_bad = 0.01;
  params.faults.ge_p_bad_to_good = 0.2;
  params.faults.ge_loss_rate = 0.5;  // heavy loss while bursting
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, params);
  EXPECT_GT(result.segments_lost, 0);
  EXPECT_GT(result.completion[0], 0);
}

TEST(PacketSimFaultTest, CorruptionCountedSeparatelyFromLossAndDrops) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params;
  params.faults.corruption_rate = 0.03;
  const PacketResult result = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, params);
  EXPECT_GT(result.segments_corrupted, 0);
  EXPECT_EQ(result.segments_lost, 0);
  EXPECT_EQ(result.segments_dropped, 0);
  EXPECT_GE(result.retransmissions, result.segments_corrupted);
  EXPECT_GT(result.completion[0], 0);
}

TEST(PacketSimFaultTest, JitterDelaysButDelivers) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params;
  params.faults.jitter_max = microseconds(50.0);
  const PacketResult jittered = simulate_packets(
      topo, {PacketMessage{0, 1, 500'000, 0}}, params);
  const PacketResult clean = simulate_packets(
      topo, {PacketMessage{0, 1, 500'000, 0}}, PacketNetworkParams{});
  EXPECT_GT(jittered.completion[0], 0);
  EXPECT_NE(jittered.makespan, clean.makespan);
}

TEST(PacketSimFaultTest, SelectiveRepeatDegradesMoreGracefully) {
  // The acceptance comparison in miniature: 1% Bernoulli loss on one
  // large flow. Fixed window stalls behind every hole until the 40 ms
  // RTO; selective repeat keeps the pipe full and fast-retransmits.
  const Topology topo = make_single_switch(2);
  PacketNetworkParams fixed;
  fixed.faults.loss_rate = 0.01;
  PacketNetworkParams sack = fixed;
  sack.transport = PacketNetworkParams::Transport::kSelectiveRepeat;
  const PacketResult fixed_result = simulate_packets(
      topo, {PacketMessage{0, 1, 2'000'000, 0}}, fixed);
  const PacketResult sack_result = simulate_packets(
      topo, {PacketMessage{0, 1, 2'000'000, 0}}, sack);
  EXPECT_LT(sack_result.makespan, 0.5 * fixed_result.makespan);
}

TEST(PacketSimFaultTest, SelectiveRepeatCleanMatchesFixedWindow) {
  // With no losses the SACK window never has a hole, so the transport
  // behaves exactly like a fixed window of the same size.
  const Topology topo = make_single_switch(2);
  PacketNetworkParams sack;
  sack.transport = PacketNetworkParams::Transport::kSelectiveRepeat;
  const PacketResult a = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, PacketNetworkParams{});
  const PacketResult b = simulate_packets(
      topo, {PacketMessage{0, 1, 1'000'000, 0}}, sack);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.segments_sent, b.segments_sent);
}

TEST(PacketSimFaultTest, InvalidFaultRatesRejected) {
  const Topology topo = make_single_switch(2);
  PacketNetworkParams params;
  params.faults.loss_rate = 1.0;  // must be < 1
  EXPECT_THROW(simulate_packets(topo, {PacketMessage{0, 1, 100, 0}}, params),
               InvalidArgument);
  params.faults.loss_rate = 0.0;
  params.faults.edge_loss.emplace_back(999, 0.5);  // nonexistent edge
  EXPECT_THROW(simulate_packets(topo, {PacketMessage{0, 1, 100, 0}}, params),
               InvalidArgument);
}

// ---- per-message counters, livelock diagnostic, incremental API ----

TEST(PacketSimResultTest, PerMessageRetransmissionsSumToTotal) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params;
  params.faults.loss_rate = 0.01;
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  const PacketResult result = simulate_packets(topo, messages, params);
  std::int64_t sum = 0;
  for (const std::int32_t r : result.message_retransmissions) sum += r;
  EXPECT_EQ(sum, result.retransmissions);
  EXPECT_GT(result.retransmissions, 0);
}

TEST(PacketSimResultTest, PeakQueueTracksCongestedPort) {
  const Topology topo = make_single_switch(9);
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  const PacketResult result =
      simulate_packets(topo, messages, PacketNetworkParams{});
  ASSERT_EQ(result.peak_queue_segments.size(),
            static_cast<std::size_t>(topo.directed_edge_count()));
  std::int32_t max_peak = 0;
  for (const std::int32_t p : result.peak_queue_segments) {
    max_peak = std::max(max_peak, p);
  }
  EXPECT_EQ(result.peak_queue_occupancy, max_peak);
  // The incast port (switch -> receiver) hits the drop-tail cap.
  const PacketNetworkParams params;
  EXPECT_EQ(result.peak_queue_occupancy, params.queue_capacity_segments);
}

TEST(PacketSimResultTest, EventCapDiagnosticNamesStuckMessages) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params;
  params.max_events = 200;  // far too few for 8 x 137 segments
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  try {
    simulate_packets(topo, messages, params);
    FAIL() << "expected the event-cap diagnostic";
  } catch (const Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("event cap"), std::string::npos) << what;
    EXPECT_NE(what.find("rank"), std::string::npos) << what;
    EXPECT_NE(what.find("outstanding"), std::string::npos) << what;
  }
}

TEST(PacketNetworkTest, IncrementalMatchesBatch) {
  const Topology topo = make_single_switch(9);
  PacketNetworkParams params;
  params.faults.loss_rate = 0.005;
  std::vector<PacketMessage> messages;
  for (topology::Rank src = 1; src <= 8; ++src) {
    messages.push_back(PacketMessage{src, 0, 200'000, 0});
  }
  const PacketResult batch = simulate_packets(topo, messages, params);

  PacketNetwork network(topo, params);
  for (const PacketMessage& m : messages) {
    network.add_message(m.src, m.dst, m.bytes, m.start);
  }
  // Drive via the executor-style event loop instead of one big run.
  std::vector<PacketNetwork::MessageId> completed;
  while (network.next_event_time() != PacketNetwork::kNoEvent) {
    network.advance_to(network.next_event_time(), completed);
  }
  EXPECT_EQ(completed.size(), messages.size());
  const PacketResult incremental = network.result();
  EXPECT_EQ(batch.makespan, incremental.makespan);
  EXPECT_EQ(batch.segments_sent, incremental.segments_sent);
  EXPECT_EQ(batch.completion, incremental.completion);
}

TEST(PacketNetworkTest, MessagesCanJoinARunningSimulation) {
  const Topology topo = make_single_switch(3);
  PacketNetwork network(topo, PacketNetworkParams{});
  const auto first = network.add_message(0, 2, 100'000, 0);
  std::vector<PacketNetwork::MessageId> completed;
  network.advance_to(0.01, completed);
  const auto second = network.add_message(1, 2, 100'000, network.now());
  while (network.next_event_time() != PacketNetwork::kNoEvent) {
    network.advance_to(network.next_event_time(), completed);
  }
  EXPECT_TRUE(network.message_complete(first));
  EXPECT_TRUE(network.message_complete(second));
  EXPECT_EQ(network.completed_count(), 2);
}

TEST(PacketNetworkTest, CancelStopsRetransmissionAndCompletion) {
  const Topology topo = make_single_switch(3);
  PacketNetworkParams params;
  params.faults.loss_rate = 0.01;
  PacketNetwork network(topo, params);
  const auto keep = network.add_message(0, 2, 200'000, 0);
  const auto drop = network.add_message(1, 2, 200'000, 0);
  std::vector<PacketNetwork::MessageId> completed;
  network.advance_to(0.005, completed);
  EXPECT_TRUE(network.cancel_message(drop));
  EXPECT_FALSE(network.cancel_message(drop));  // already canceled
  while (network.next_event_time() != PacketNetwork::kNoEvent) {
    network.advance_to(network.next_event_time(), completed);
  }
  EXPECT_TRUE(network.message_complete(keep));
  EXPECT_FALSE(network.message_complete(drop));
  EXPECT_EQ(network.completed_count(), 1);
  EXPECT_EQ(network.message_remaining_bytes(drop), 0);  // canceled
}

}  // namespace
}  // namespace aapc::packetsim
