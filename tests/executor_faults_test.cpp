// Executor under injected faults: transfer watchdog (timeout, retry,
// abort), crash-stop ranks, stragglers, the named-rank stall
// diagnostic, and bit-exact zero-fault behaviour.
#include <gtest/gtest.h>

#include <string>

#include "aapc/baselines/baselines.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::mpisim {
namespace {

using topology::make_chain;
using topology::make_single_switch;
using topology::Topology;

topology::LinkId trunk_link(const Topology& topo) {
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    if (!topo.is_machine(topo.edge_source(2 * l)) &&
        !topo.is_machine(topo.edge_target(2 * l))) {
      return l;
    }
  }
  return -1;
}

/// rank 0 sends one message across the chain trunk to rank 1.
ProgramSet one_transfer(Bytes bytes) {
  ProgramSet set;
  set.name = "one-transfer";
  Program sender;
  sender.ops = {Op::isend(1, bytes, 0), Op::wait_all()};
  Program receiver;
  receiver.ops = {Op::irecv(0, bytes, 0), Op::wait_all()};
  set.programs = {sender, receiver};
  return set;
}

TEST(ExecutorFaultsTest, WatchdogAbortsOnPermanentlyDownLink) {
  const Topology topo = make_chain({1, 1});
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  exec.capacity_events = {{0.0, trunk_link(topo), 0.0}};  // down forever
  exec.transfer_timeout = 0.05;
  exec.transfer_max_retries = 2;
  Executor executor(topo, {}, exec);
  try {
    executor.run(one_transfer(1'000'000));
    FAIL() << "expected TransferAborted";
  } catch (const TransferAborted& aborted) {
    const std::string what = aborted.what();
    // The abort names the endpoints and the exhausted retry budget —
    // a named-rank diagnostic, not a hang.
    EXPECT_NE(what.find("rank 0 -> rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("3 attempt(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("retries exhausted"), std::string::npos) << what;
  }
}

TEST(ExecutorFaultsTest, WatchdogRetriesThroughTransientOutage) {
  const Topology topo = make_chain({1, 1});
  const topology::LinkId trunk = trunk_link(topo);
  const simnet::NetworkParams net;
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  exec.record_trace = true;
  // Outage shortly after the transfer starts; restored at 100 ms.
  exec.capacity_events = {{0.001, trunk, 0.0},
                          {0.100, trunk, net.link_bandwidth_bytes_per_sec}};
  // The timeout must cover a healthy transfer (100 KB ≈ 8.6 ms at wire
  // speed) so only the outage triggers the watchdog.
  exec.transfer_timeout = 0.03;
  exec.transfer_max_retries = 10;
  Executor executor(topo, net, exec);
  const ExecutionResult result = executor.run(one_transfer(100'000));
  EXPECT_GE(result.transfer_retries, 1);
  EXPECT_EQ(result.transfer_timeouts, result.transfer_retries);
  EXPECT_GT(result.completion_time, 0.100);  // waited out the outage
  // The trace annotates the reposted transfer with its retry count, and
  // each retry leaves a timeline marker.
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_GE(result.trace[0].retries, 1);
  bool saw_retry_marker = false;
  for (const FaultMarker& marker : result.fault_markers) {
    if (marker.label.find("retry") != std::string::npos) {
      saw_retry_marker = true;
    }
  }
  EXPECT_TRUE(saw_retry_marker);
}

TEST(ExecutorFaultsTest, DownLinkWithoutWatchdogStallsWithDiagnostic) {
  const Topology topo = make_chain({1, 1});
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  exec.capacity_events = {{0.0, trunk_link(topo), 0.0}};
  Executor executor(topo, {}, exec);  // transfer_timeout = 0: no watchdog
  try {
    executor.run(one_transfer(1'000'000));
    FAIL() << "expected ExecutionStalled";
  } catch (const ExecutionStalled& stalled) {
    const std::string what = stalled.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("stuck transfer: rank 0 -> rank 1"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("link down?"), std::string::npos) << what;
  }
}

TEST(ExecutorFaultsTest, DeadlockDiagnosticNamesPendingRequests) {
  // Satellite: a mismatched program set must fail with a diagnostic
  // naming the blocked ranks and their pending operations.
  const Topology topo = make_single_switch(2);
  ProgramSet set;
  set.name = "mismatched";
  Program p0;
  p0.ops = {Op::irecv(1, 4096, 7), Op::wait_all()};
  Program p1;  // never sends
  p1.ops = {Op::irecv(0, 4096, 9), Op::wait_all()};
  set.programs = {p0, p1};
  Executor executor(topo, {}, {});
  try {
    executor.run(set);
    FAIL() << "expected ExecutionStalled";
  } catch (const ExecutionStalled& stalled) {
    const std::string what = stalled.what();
    EXPECT_NE(what.find("mismatched"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("recv from rank 1 tag=7"), std::string::npos) << what;
    EXPECT_NE(what.find("recv from rank 0 tag=9"), std::string::npos) << what;
    EXPECT_NE(what.find("(unmatched)"), std::string::npos) << what;
  }
}

TEST(ExecutorFaultsTest, CrashedRankStallsNamingIt) {
  const Topology topo = make_single_switch(2);
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  exec.rank_faults = {RankFault{1, 1.0, 0, /*crash_time=*/0.0}};
  Executor executor(topo, {}, exec);
  try {
    executor.run(one_transfer(1'000'000));
    FAIL() << "expected ExecutionStalled";
  } catch (const ExecutionStalled& stalled) {
    EXPECT_NE(std::string(stalled.what()).find("rank 1: crashed"),
              std::string::npos)
        << stalled.what();
  }
}

TEST(ExecutorFaultsTest, StragglerSlowdownInflatesCompletion) {
  const Topology topo = make_single_switch(4);
  const ProgramSet set = baselines::lam_alltoall(4, 32_KiB);
  ExecutorParams exec;
  exec.wakeup_jitter_max = milliseconds(0.5);
  Executor healthy(topo, {}, exec);
  const SimTime t_healthy = healthy.run(set).completion_time;

  ExecutorParams slow = exec;
  slow.rank_faults = {RankFault{0, 20.0, 0.0, simnet::kNever}};
  Executor straggling(topo, {}, slow);
  const SimTime t_slow = straggling.run(set).completion_time;
  EXPECT_GT(t_slow, 1.5 * t_healthy);
}

TEST(ExecutorFaultsTest, SlowdownOnsetOnlyAffectsLaterWork) {
  // Onset far past completion: the straggler never materializes and the
  // run is bit-identical to the healthy one.
  const Topology topo = make_single_switch(4);
  const ProgramSet set = baselines::lam_alltoall(4, 32_KiB);
  ExecutorParams exec;
  Executor healthy(topo, {}, exec);
  const SimTime t_healthy = healthy.run(set).completion_time;

  ExecutorParams late = exec;
  late.rank_faults = {RankFault{0, 20.0, /*onset=*/1e6, simnet::kNever}};
  Executor unaffected(topo, {}, late);
  EXPECT_EQ(unaffected.run(set).completion_time, t_healthy);
}

TEST(ExecutorFaultsTest, EmptyFaultPlanIsBitIdentical) {
  // The acceptance bar for the whole subsystem: compiling and applying
  // an EMPTY plan (plus enabling the watchdog on a healthy network)
  // changes nothing, to the last bit.
  const Topology topo = make_single_switch(6);
  const ProgramSet set = baselines::lam_alltoall(6, 64_KiB);
  ExecutorParams exec;
  exec.record_trace = true;
  Executor baseline(topo, {}, exec);
  const ExecutionResult before = baseline.run(set);

  ExecutorParams faulty = exec;
  faults::CompiledFaults compiled =
      faults::compile(faults::FaultPlan{}, {}, topo.link_count());
  compiled.apply(faulty);
  faulty.transfer_timeout = 1e6;  // armed, never fires
  Executor after_executor(topo, {}, faulty);
  const ExecutionResult after = after_executor.run(set);

  EXPECT_EQ(before.completion_time, after.completion_time);
  EXPECT_EQ(before.rank_finish, after.rank_finish);
  EXPECT_EQ(before.message_count, after.message_count);
  EXPECT_EQ(after.transfer_timeouts, 0);
  EXPECT_EQ(after.transfer_retries, 0);
  EXPECT_TRUE(after.fault_markers.empty());
  ASSERT_EQ(before.trace.size(), after.trace.size());
  for (std::size_t i = 0; i < before.trace.size(); ++i) {
    EXPECT_EQ(before.trace[i].start, after.trace[i].start);
    EXPECT_EQ(before.trace[i].end, after.trace[i].end);
    EXPECT_EQ(after.trace[i].retries, 0);
  }
}

TEST(ExecutorFaultsTest, FaultRunsAreDeterministic) {
  // Identical plan + identical seeds => identical runs, bit for bit.
  const Topology topo = make_chain({2, 2});
  const ProgramSet set = baselines::lam_alltoall(4, 64_KiB);
  faults::FaultPlan plan;
  plan.add(faults::FaultEvent::link_degrade(0.01, trunk_link(topo), 0.5))
      .add(faults::FaultEvent::node_slowdown(0.0, 2, 3.0));
  auto run = [&] {
    ExecutorParams exec;
    exec.record_trace = true;
    exec.transfer_timeout = 10.0;
    faults::compile(plan, {}, topo.link_count()).apply(exec);
    Executor executor(topo, {}, exec);
    return executor.run(set);
  };
  const ExecutionResult a = run();
  const ExecutionResult b = run();
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.rank_finish, b.rank_finish);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].start, b.trace[i].start);
    EXPECT_EQ(a.trace[i].end, b.trace[i].end);
  }
  ASSERT_EQ(a.fault_markers.size(), b.fault_markers.size());
  for (std::size_t i = 0; i < a.fault_markers.size(); ++i) {
    EXPECT_EQ(a.fault_markers[i].time, b.fault_markers[i].time);
    EXPECT_EQ(a.fault_markers[i].label, b.fault_markers[i].label);
  }
}

TEST(ExecutorFaultsTest, MarkersSortedByTime) {
  const Topology topo = make_chain({1, 1});
  const topology::LinkId trunk = trunk_link(topo);
  const simnet::NetworkParams net;
  ExecutorParams exec;
  // Deliberately unsorted marker input.
  exec.fault_markers = {{0.5, "late"}, {0.0, "early"}};
  exec.capacity_events = {{0.001, trunk, 0.0},
                          {0.05, trunk, net.link_bandwidth_bytes_per_sec}};
  exec.transfer_timeout = 0.02;
  exec.transfer_max_retries = 10;
  Executor executor(topo, net, exec);
  const ExecutionResult result = executor.run(one_transfer(100'000));
  ASSERT_GE(result.fault_markers.size(), 2u);
  for (std::size_t i = 1; i < result.fault_markers.size(); ++i) {
    EXPECT_LE(result.fault_markers[i - 1].time, result.fault_markers[i].time);
  }
}

}  // namespace
}  // namespace aapc::mpisim
