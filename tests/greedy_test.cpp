// Tests for the generic (irregular-pattern) greedy scheduler and the
// irregular-size lowering.
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/greedy.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/trace/trace.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::make_chain;
using topology::make_paper_figure1;
using topology::make_single_switch;
using topology::Topology;

VerifyOptions lax() {
  VerifyOptions options;
  options.require_optimal_phase_count = false;
  return options;
}

TEST(GreedyTest, AapcPatternHasAllOrderedPairs) {
  const Topology topo = make_single_switch(5);
  const Pattern pattern = aapc_pattern(topo);
  EXPECT_EQ(pattern.size(), 20u);
}

TEST(GreedyTest, PatternLoadMatchesTopologyLoadForAapc) {
  for (const Topology& topo :
       {make_single_switch(6), make_chain({3, 4}), make_paper_figure1()}) {
    EXPECT_EQ(pattern_load(topo, aapc_pattern(topo)), topo.aapc_load());
  }
}

TEST(GreedyTest, SchedulesAreContentionFree) {
  const Topology topo = make_paper_figure1();
  const Pattern pattern = aapc_pattern(topo);
  for (const auto order :
       {GreedyOptions::Order::kInput, GreedyOptions::Order::kLongestPathFirst,
        GreedyOptions::Order::kBottleneckFirst}) {
    GreedyOptions options;
    options.order = order;
    const Schedule schedule = greedy_schedule(topo, pattern, options);
    const VerifyReport report = verify_schedule(topo, schedule, lax());
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_GE(schedule.phase_count(), topo.aapc_load());
  }
}

TEST(GreedyTest, NeverBeatsTheOptimalSchedulerOnAapc) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    topology::RandomTreeOptions options;
    options.switches = static_cast<std::int32_t>(rng.next_in(1, 6));
    options.machines = static_cast<std::int32_t>(rng.next_in(3, 16));
    const Topology topo = topology::make_random_tree(rng, options);
    const Schedule greedy = greedy_schedule(topo, aapc_pattern(topo));
    const Schedule optimal = build_aapc_schedule(topo);
    EXPECT_GE(greedy.phase_count(), optimal.phase_count());
    // Greedy still lower-bounded by the pattern load.
    EXPECT_GE(greedy.phase_count(), topo.aapc_load());
  }
}

TEST(GreedyTest, IrregularPatternScheduled) {
  // A sparse neighbor-exchange pattern: machine i talks to i+1 only.
  const Topology topo = make_chain({3, 3});
  Pattern pattern;
  for (Rank r = 0; r + 1 < topo.machine_count(); ++r) {
    pattern.push_back(Message{r, static_cast<Rank>(r + 1)});
    pattern.push_back(Message{static_cast<Rank>(r + 1), r});
  }
  const Schedule schedule = greedy_schedule(topo, pattern);
  VerifyOptions options = lax();
  const VerifyReport report = verify_schedule(topo, schedule, options);
  // Coverage check (1) expects full AAPC, so only use the contention
  // result here.
  EXPECT_EQ(report.max_edge_multiplicity, 1);
  EXPECT_EQ(schedule.message_count(),
            static_cast<std::int64_t>(pattern.size()));
}

TEST(GreedyTest, DuplicateMessagesLandInDistinctPhases) {
  const Topology topo = make_single_switch(3);
  const Pattern pattern{Message{0, 1}, Message{0, 1}, Message{0, 1}};
  const Schedule schedule = greedy_schedule(topo, pattern);
  EXPECT_EQ(schedule.phase_count(), 3);
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    EXPECT_EQ(schedule.phase_size(p), 1);
  }
}

TEST(GreedyTest, EmptyPattern) {
  const Topology topo = make_single_switch(3);
  const Schedule schedule = greedy_schedule(topo, {});
  EXPECT_EQ(schedule.phase_count(), 0);
}

TEST(GreedyTest, RejectsSelfAndOutOfRange) {
  const Topology topo = make_single_switch(3);
  EXPECT_THROW(greedy_schedule(topo, {Message{1, 1}}), InvalidArgument);
  EXPECT_THROW(greedy_schedule(topo, {Message{0, 9}}), InvalidArgument);
}

TEST(GreedyTest, GreedyScheduleLowersAndRuns) {
  // Full pipeline for an irregular pattern: greedy schedule -> pairwise
  // sync lowering -> simulation; serialization holds.
  const Topology topo = make_chain({4, 4});
  Pattern pattern;
  Rng rng(3);
  for (int i = 0; i < 24; ++i) {
    const auto src = static_cast<Rank>(rng.next_below(8));
    const auto dst = static_cast<Rank>(rng.next_below(8));
    if (src != dst) pattern.push_back(Message{src, dst});
  }
  const Schedule schedule = greedy_schedule(topo, pattern);
  lowering::LoweringOptions options;
  options.include_self_copy = false;
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, schedule, 64_KiB, options);
  mpisim::ExecutorParams exec;
  exec.record_trace = true;
  mpisim::Executor executor(topo, {}, exec);
  const mpisim::ExecutionResult result = executor.run(set);
  EXPECT_EQ(trace::max_overlapping_contending_transfers(topo, result.trace),
            1);
}

TEST(PatternBuildersTest, ScatterLoadAndOptimalGreedy) {
  // Scatter from one machine: load = |M|-1 on the root uplink; greedy
  // first-fit is optimal here (one message per phase crosses the root
  // uplink, everything else is forced).
  const Topology topo = make_single_switch(6);
  const Pattern pattern = scatter_pattern(topo, 2);
  EXPECT_EQ(pattern.size(), 5u);
  EXPECT_EQ(pattern_load(topo, pattern), 5);
  const Schedule schedule = greedy_schedule(topo, pattern);
  EXPECT_EQ(schedule.phase_count(), 5);
}

TEST(PatternBuildersTest, GatherMirrorsScatter) {
  const Topology topo = make_chain({3, 3});
  const Pattern scatter = scatter_pattern(topo, 0);
  const Pattern gather = gather_pattern(topo, 0);
  ASSERT_EQ(scatter.size(), gather.size());
  EXPECT_EQ(pattern_load(topo, scatter), pattern_load(topo, gather));
  for (std::size_t i = 0; i < scatter.size(); ++i) {
    EXPECT_EQ(scatter[i].src, gather[i].dst);
    EXPECT_EQ(scatter[i].dst, gather[i].src);
  }
}

TEST(PatternBuildersTest, NeighborExchangeCounts) {
  const Topology topo = make_single_switch(6);
  // Radius 1: 2 messages per rank.
  EXPECT_EQ(neighbor_exchange_pattern(topo, 1).size(), 12u);
  // Radius 3 on 6 ranks: the +3 and -3 neighbors coincide -> 5/rank.
  EXPECT_EQ(neighbor_exchange_pattern(topo, 3).size(), 30u);
  // Radius |M|-1 covers the full AAPC pattern.
  EXPECT_EQ(neighbor_exchange_pattern(topo, 5).size(),
            aapc_pattern(topo).size());
}

TEST(PatternBuildersTest, NeighborExchangeSchedulesOnChain) {
  const Topology topo = make_chain({4, 4});
  const Pattern pattern = neighbor_exchange_pattern(topo, 2);
  const Schedule schedule = greedy_schedule(topo, pattern);
  const VerifyReport report = verify_schedule(topo, schedule, lax());
  EXPECT_EQ(report.max_edge_multiplicity, 1);
  EXPECT_GE(schedule.phase_count(), pattern_load(topo, pattern));
  // The halo pattern is far lighter than full AAPC.
  EXPECT_LT(schedule.phase_count(), topo.aapc_load());
}

TEST(PatternVerifierTest, AcceptsGreedySchedules) {
  const Topology topo = make_chain({4, 4});
  const Pattern pattern = neighbor_exchange_pattern(topo, 2);
  const Schedule schedule = greedy_schedule(topo, pattern);
  const VerifyReport report =
      verify_schedule_pattern(topo, schedule, pattern);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(PatternVerifierTest, DetectsMissingAndExtraMessages) {
  const Topology topo = make_single_switch(4);
  const Pattern pattern{Message{0, 1}, Message{2, 3}};
  const Schedule schedule = greedy_schedule(topo, pattern);
  // Drop one message.
  auto missing = schedule.phase_lists();
  missing[0].pop_back();
  EXPECT_FALSE(verify_schedule_pattern(
                   topo, Schedule::from_phase_lists(missing), pattern)
                   .ok);
  // Add an unexpected one.
  auto extra = schedule.phase_lists();
  extra.push_back({Message{1, 0}});
  EXPECT_FALSE(verify_schedule_pattern(
                   topo, Schedule::from_phase_lists(extra), pattern)
                   .ok);
}

TEST(PatternVerifierTest, CountsMultiplicity) {
  const Topology topo = make_single_switch(3);
  const Pattern pattern{Message{0, 1}, Message{0, 1}};
  const Schedule schedule = greedy_schedule(topo, pattern);
  EXPECT_TRUE(verify_schedule_pattern(topo, schedule, pattern).ok);
  // The same schedule does not satisfy a single-copy pattern.
  EXPECT_FALSE(
      verify_schedule_pattern(topo, schedule, {Message{0, 1}}).ok);
}

TEST(PatternVerifierTest, PhaseCountBelowLoadRejected) {
  const Topology topo = make_single_switch(3);
  // Two messages from rank 0 forced into one phase: contention AND a
  // phase count below the pattern load.
  const Schedule schedule =
      Schedule::from_phase_lists({{Message{0, 1}, Message{0, 2}}});
  const Pattern pattern{Message{0, 1}, Message{0, 2}};
  const VerifyReport report =
      verify_schedule_pattern(topo, schedule, pattern);
  EXPECT_FALSE(report.ok);
  EXPECT_GE(report.max_edge_multiplicity, 2);
}

TEST(PatternBuildersTest, InvalidArgumentsRejected) {
  const Topology topo = make_single_switch(4);
  EXPECT_THROW(scatter_pattern(topo, 9), InvalidArgument);
  EXPECT_THROW(gather_pattern(topo, -1), InvalidArgument);
  EXPECT_THROW(neighbor_exchange_pattern(topo, 0), InvalidArgument);
  EXPECT_THROW(neighbor_exchange_pattern(topo, 4), InvalidArgument);
}

}  // namespace
}  // namespace aapc::core

namespace aapc::lowering {
namespace {

using topology::make_paper_figure1;
using topology::Topology;

TEST(IrregularLoweringTest, SizesFollowTheMatrix) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const std::size_t machines = 6;
  std::vector<Bytes> sizes(machines * machines, 0);
  for (std::size_t src = 0; src < machines; ++src) {
    for (std::size_t dst = 0; dst < machines; ++dst) {
      sizes[src * machines + dst] = 1000 * (src + 1) + dst;
    }
  }
  const mpisim::ProgramSet set =
      lower_schedule_irregular(topo, schedule, sizes);
  for (core::Rank src = 0; src < 6; ++src) {
    for (const mpisim::Op& op : set.programs[src].ops) {
      if (op.kind == mpisim::OpKind::kIsend &&
          op.tag < mpisim::kSyncTag) {
        EXPECT_EQ(op.bytes, 1000u * (src + 1) + op.peer);
      }
      if (op.kind == mpisim::OpKind::kCopy) {
        EXPECT_EQ(op.bytes, 1000u * (src + 1) + src);
      }
    }
  }
}

TEST(IrregularLoweringTest, ZeroEntriesBecomeMinimalMessages) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  std::vector<Bytes> sizes(36, 0);
  const mpisim::ProgramSet set =
      lower_schedule_irregular(topo, schedule, sizes);
  mpisim::Executor executor(topo, {}, {});
  EXPECT_NO_THROW(executor.run(set));
}

TEST(IrregularLoweringTest, RunsEndToEndWithSkewedSizes) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  std::vector<Bytes> sizes(36, 1_KiB);
  // One hot sender.
  for (std::size_t dst = 0; dst < 6; ++dst) sizes[dst] = 256_KiB;
  const mpisim::ProgramSet set =
      lower_schedule_irregular(topo, schedule, sizes);
  EXPECT_EQ(set.name, "ours-irregular");
  mpisim::Executor executor(topo, {}, {});
  const mpisim::ExecutionResult result = executor.run(set);
  EXPECT_GT(result.completion_time, 0);
}

TEST(IrregularLoweringTest, WrongMatrixSizeRejected) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  EXPECT_THROW(lower_schedule_irregular(topo, schedule, {1, 2, 3}),
               aapc::InvalidArgument);
}

}  // namespace
}  // namespace aapc::lowering
