// Tests for the heterogeneous-link (weighted bottleneck) scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/greedy.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/core/weighted.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::make_chain;
using topology::make_paper_figure1;
using topology::make_single_switch;
using topology::Topology;

VerifyOptions lax() {
  VerifyOptions options;
  options.require_optimal_phase_count = false;
  return options;
}

LinkRates nominal(const Topology& topo) {
  return LinkRates(static_cast<std::size_t>(topo.link_count()), 1.0);
}

bool same_schedule(const Schedule& a, const Schedule& b) {
  return a.messages == b.messages && a.phase_begin == b.phase_begin;
}

TEST(WeightedTest, UniformRatesReturnThePaperScheduleVerbatim) {
  for (const Topology& topo :
       {make_single_switch(6), make_chain({3, 4}), make_paper_figure1()}) {
    const Schedule paper = build_aapc_schedule(topo);
    const Schedule weighted = build_aapc_schedule_weighted(topo, nominal(topo));
    EXPECT_TRUE(same_schedule(paper, weighted));
    // Any uniform rate, not just 1.0, is the unweighted model.
    const Schedule half = build_aapc_schedule_weighted(
        topo, LinkRates(static_cast<std::size_t>(topo.link_count()), 0.5));
    EXPECT_TRUE(same_schedule(paper, half));
  }
}

TEST(WeightedTest, NominalWeightedLoadEqualsPatternLoad) {
  for (const Topology& topo :
       {make_single_switch(5), make_chain({4, 3}), make_paper_figure1()}) {
    const Pattern pattern = aapc_pattern(topo);
    EXPECT_DOUBLE_EQ(weighted_pattern_load(topo, pattern, nominal(topo)),
                     static_cast<double>(pattern_load(topo, pattern)));
  }
}

TEST(WeightedTest, NominalCostEqualsPhaseCount) {
  const Topology topo = make_chain({3, 3});
  const Schedule schedule = build_aapc_schedule(topo);
  EXPECT_DOUBLE_EQ(weighted_schedule_cost(topo, schedule, nominal(topo)),
                   static_cast<double>(schedule.phase_count()));
}

TEST(WeightedTest, RejectsDownLinksAndBadRateVectors) {
  const Topology topo = make_single_switch(4);
  LinkRates rates = nominal(topo);
  rates[0] = 0.0;
  EXPECT_THROW(build_aapc_schedule_weighted(topo, rates), InvalidArgument);
  EXPECT_THROW(
      build_aapc_schedule_weighted(topo, LinkRates{1.0}),
      InvalidArgument);
}

TEST(WeightedTest, SchedulesAreContentionFreeAndAboveTheWeightedBound) {
  Rng rng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    topology::RandomTreeOptions options;
    options.switches = static_cast<std::int32_t>(rng.next_in(1, 5));
    options.machines = static_cast<std::int32_t>(rng.next_in(4, 14));
    const Topology topo = topology::make_random_tree(rng, options);
    LinkRates rates = nominal(topo);
    for (double& r : rates) {
      const std::uint64_t pick = rng.next_in(0, 3);
      r = pick == 0 ? 0.25 : (pick == 1 ? 0.5 : 1.0);
    }
    const Pattern pattern = aapc_pattern(topo);
    const Schedule schedule = build_aapc_schedule_weighted(topo, rates);
    const VerifyReport report =
        verify_schedule_pattern(topo, schedule, pattern, lax());
    EXPECT_TRUE(report.ok) << report.summary();
    const double load = weighted_pattern_load(topo, pattern, rates);
    const double cost = weighted_schedule_cost(topo, schedule, rates);
    EXPECT_GE(cost, load - 1e-9);
  }
}

TEST(WeightedTest, NeverCostsMoreThanSchedulingRateBlind) {
  Rng rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    topology::RandomTreeOptions options;
    options.switches = static_cast<std::int32_t>(rng.next_in(1, 4));
    options.machines = static_cast<std::int32_t>(rng.next_in(4, 12));
    const Topology topo = topology::make_random_tree(rng, options);
    LinkRates rates = nominal(topo);
    for (double& r : rates) r = rng.next_in(0, 2) == 0 ? 0.5 : 1.0;
    const Schedule blind = build_aapc_schedule(topo);
    const Schedule weighted = build_aapc_schedule_weighted(topo, rates);
    EXPECT_LE(weighted_schedule_cost(topo, weighted, rates),
              weighted_schedule_cost(topo, blind, rates) + 1e-9);
  }
}

TEST(WeightedTest, GreedyAlignsSlowTrafficOfDegradedAccessLinks) {
  // Two switches, three machines each; the access links of one machine
  // per switch degrade to 1/4 speed. The rate-blind schedules smear the
  // slow machines' messages over many phases (each such phase costs 4x);
  // the slowest-first greedy concentrates them into few shared slow
  // phases. The weighted scheduler must be at least as cheap as both
  // rate-blind baselines, and strictly cheaper than the rate-blind
  // greedy it replaces on the repair path.
  const Topology topo = make_chain({3, 3});
  LinkRates rates = nominal(topo);
  // Access links of machine 0 (switch 0) and machine 3 (switch 1).
  const topology::LinkId slow_a =
      topo.edge_link(topo.edge_between(topo.machine_node(0),
                                       topo.parent(topo.machine_node(0))));
  const topology::LinkId slow_b =
      topo.edge_link(topo.edge_between(topo.machine_node(3),
                                       topo.parent(topo.machine_node(3))));
  rates[static_cast<std::size_t>(slow_a)] = 0.25;
  rates[static_cast<std::size_t>(slow_b)] = 0.25;

  const Pattern pattern = aapc_pattern(topo);
  const Schedule weighted = build_aapc_schedule_weighted(topo, rates);
  const Schedule blind_greedy = greedy_schedule(topo, pattern);
  const double weighted_cost = weighted_schedule_cost(topo, weighted, rates);
  const double greedy_cost = weighted_schedule_cost(topo, blind_greedy, rates);
  EXPECT_LT(weighted_cost, greedy_cost);
  EXPECT_GE(weighted_cost,
            weighted_pattern_load(topo, pattern, rates) - 1e-9);
}

TEST(WeightedTest, SlownessFollowsTheMinimumRateOnThePath) {
  const Topology topo = make_chain({2, 2});
  LinkRates rates = nominal(topo);
  // Degrade the trunk: cross-switch messages slow down, local ones not.
  topology::LinkId trunk = -1;
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    const auto [a, b] = topo.link_endpoints(l);
    if (!topo.is_machine(a) && !topo.is_machine(b)) trunk = l;
  }
  ASSERT_GE(trunk, 0);
  rates[static_cast<std::size_t>(trunk)] = 0.5;
  EXPECT_DOUBLE_EQ(message_slowness(topo, Message{0, 1}, rates), 1.0);
  EXPECT_DOUBLE_EQ(message_slowness(topo, Message{0, 2}, rates), 2.0);
}

}  // namespace
}  // namespace aapc::core
