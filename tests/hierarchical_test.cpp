// Tests for the hierarchical/parallel message assignment: bit-identity
// with the flat Figure-4 path on random trees, determinism under a
// multi-threaded task runner, and the peak-bound (min-phase optimality)
// check on hierarchical schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/hierarchical.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::make_fat_tree;
using topology::make_paper_figure1;
using topology::make_random_tree;
using topology::make_single_switch;
using topology::Topology;

/// A deliberately adversarial runner: four threads pull tasks from a
/// shared cursor in whatever interleaving the scheduler produces, so any
/// cross-task ordering dependence shows up as a flaky diff against the
/// sequential output.
void threaded_runner(const std::vector<Task>& tasks) {
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= tasks.size()) return;
      tasks[i]();
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(drain);
  for (std::thread& t : threads) t.join();
}

void expect_bit_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.phase_begin, b.phase_begin);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    ASSERT_EQ(a.messages[i], b.messages[i]) << "arena index " << i;
  }
}

TEST(HierarchicalTest, MatchesFlatOnPaperExample) {
  const Topology topo = make_paper_figure1();
  const Decomposition dec = decompose_at(topo, *topo.find_node("s1"));
  expect_bit_identical(assign_messages(dec),
                       assign_messages_hierarchical(dec));
}

TEST(HierarchicalTest, MatchesFlatOnSingleSwitch) {
  const Topology topo = make_single_switch(16);
  const Decomposition dec = decompose(topo);
  expect_bit_identical(assign_messages(dec),
                       assign_messages_hierarchical(dec));
}

TEST(HierarchicalTest, MatchesFlatOnBothStep6Patterns) {
  const Topology topo = topology::make_chain({4, 3, 2});
  const Decomposition dec = decompose(topo);
  for (const auto pattern : {AssignmentOptions::Step6Pattern::kBroadcast,
                             AssignmentOptions::Step6Pattern::kRotate}) {
    AssignmentOptions options;
    options.step6 = pattern;
    expect_bit_identical(assign_messages(dec, options),
                         assign_messages_hierarchical(dec, options));
  }
}

class HierarchicalRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HierarchicalRandomTest, FlatEquivalenceOnRandomTrees) {
  // Property: hierarchical == flat, bit for bit, on random trees up to
  // 256 ranks — including under a threaded runner with tiny tasks (to
  // force many task boundaries) and the verifier's full §4 conditions
  // (coverage, contention-freeness, peak-bound phase count).
  Rng rng(GetParam());
  topology::RandomTreeOptions topt;
  topt.switches = static_cast<std::int32_t>(rng.next_in(2, 12));
  topt.machines = static_cast<std::int32_t>(rng.next_in(3, 256));
  const Topology topo = make_random_tree(rng, topt);
  const Decomposition dec = decompose(topo);

  const Schedule flat = assign_messages(dec);
  const Schedule sequential = assign_messages_hierarchical(dec);
  expect_bit_identical(flat, sequential);

  HierarchicalOptions small_tasks;
  small_tasks.messages_per_task = 64;
  const Schedule parallel =
      assign_messages_hierarchical(dec, small_tasks, threaded_runner);
  expect_bit_identical(flat, parallel);

  const VerifyReport report = verify_schedule(topo, parallel);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(parallel.phase_count(), topo.aapc_load());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalRandomTest,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(HierarchicalTest, ParallelRunsAreMutuallyIdentical) {
  // Determinism golden: repeated threaded runs must agree with each
  // other exactly (not only with the flat path).
  const Topology topo = make_fat_tree(2, 3, 4);
  const Decomposition dec = decompose(topo);
  HierarchicalOptions small_tasks;
  small_tasks.messages_per_task = 32;
  const Schedule first =
      assign_messages_hierarchical(dec, small_tasks, threaded_runner);
  for (int run = 0; run < 3; ++run) {
    expect_bit_identical(
        first, assign_messages_hierarchical(dec, small_tasks,
                                            threaded_runner));
  }
}

TEST(HierarchicalTest, PeakBoundHoldsOnHierarchicalSchedules) {
  // The merge across the root must not cost phases: the hierarchical
  // schedule meets the theoretical minimum |M0|*(|M|-|M0|) = aapc_load
  // exactly (the verifier's optimal-phase-count condition), on shapes
  // with deep subtrees and very unbalanced subtree sizes.
  for (const Topology& topo :
       {make_fat_tree(3, 2, 5), topology::make_star({12, 1, 1, 1}),
        topology::make_binary_tree(4, 3)}) {
    const Decomposition dec = decompose(topo);
    const Schedule schedule =
        assign_messages_hierarchical(dec, AssignmentOptions{},
                                     threaded_runner);
    EXPECT_EQ(schedule.phase_count(), topo.aapc_load());
    EXPECT_EQ(schedule.phase_count(), dec.total_phases());
    const VerifyReport report = verify_schedule(topo, schedule);
    EXPECT_TRUE(report.ok) << report.summary();
  }
}

TEST(HierarchicalTest, SchedulerOptionsRouteThroughHierarchicalPath) {
  const Topology topo = topology::make_chain({5, 4, 3});
  SchedulerOptions options;
  options.hierarchical = true;
  options.runner = threaded_runner;
  expect_bit_identical(build_aapc_schedule(topo),
                       build_aapc_schedule(topo, options));
}

TEST(HierarchicalTest, TaskErrorsSurfaceAfterJoin) {
  // A runner that drops tasks on the floor must be detected (the staged
  // arena would be partially unwritten), not silently accepted.
  const Topology topo = make_single_switch(8);
  const Decomposition dec = decompose(topo);
  const TaskRunner lossy = [](const std::vector<Task>& tasks) {
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i) tasks[i]();
  };
  HierarchicalOptions small_tasks;
  small_tasks.messages_per_task = 8;
  EXPECT_THROW(assign_messages_hierarchical(dec, small_tasks, lossy),
               Error);
}

}  // namespace
}  // namespace aapc::core
