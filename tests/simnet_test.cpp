// Unit tests for the fluid-flow network model: rate allocation, event
// processing, and the three contention mechanisms (edge losses, machine
// duplex cap, switch fabric cap).
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::simnet {
namespace {

using topology::make_chain;
using topology::make_single_switch;
using topology::Topology;

/// Params with every loss mechanism disabled: exact max-min fair sharing
/// at 12.5 MB/s per direction.
NetworkParams ideal_params() {
  NetworkParams params;
  params.protocol_efficiency = 1.0;
  params.node_contention_penalty = 0.0;
  params.trunk_contention_penalty = 0.0;
  params.node_efficiency_floor = 1.0;
  params.trunk_efficiency_floor = 1.0;
  params.duplex_efficiency = 1.0;
  params.switch_fabric_links = 1e9;
  return params;
}

/// Runs the network until idle; returns completion times per flow id.
std::vector<SimTime> drain(FluidNetwork& network, std::size_t flow_count) {
  std::vector<SimTime> completion(flow_count, -1);
  std::vector<FlowId> completed;
  while (!network.idle()) {
    const SimTime next = network.next_event_time();
    EXPECT_NE(next, kNever) << "network stuck with active flows";
    if (next == kNever) break;
    completed.clear();
    network.advance_to(next, completed);
    for (const FlowId id : completed) {
      completion[static_cast<std::size_t>(id)] = network.now();
    }
  }
  return completion;
}

TEST(FluidNetworkTest, SingleFlowFullRate) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, ideal_params());
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 12'500'000, 0);
  std::vector<SimTime> done;
  drain(network, 1);
  EXPECT_NEAR(network.now(), 1.0, 1e-9);  // 12.5 MB at 12.5 MB/s
}

TEST(FluidNetworkTest, TwoFlowsShareSourceUplink) {
  const Topology topo = make_single_switch(3);
  FluidNetwork network(topo, ideal_params());
  // Same source, two destinations: the source uplink halves each rate.
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 12'500'000, 0);
  network.add_flow(topo.machine_node(0), topo.machine_node(2), 12'500'000, 0);
  drain(network, 2);
  EXPECT_NEAR(network.now(), 2.0, 1e-9);
}

TEST(FluidNetworkTest, OppositeDirectionsDoNotContend) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, ideal_params());
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 12'500'000, 0);
  network.add_flow(topo.machine_node(1), topo.machine_node(0), 12'500'000, 0);
  drain(network, 2);
  EXPECT_NEAR(network.now(), 1.0, 1e-9);  // duplex links
}

TEST(FluidNetworkTest, MaxMinGivesLeftoverToUnbottleneckedFlow) {
  // Machines n0,n1 on s0; n2,n3 on s1. Flows: A n0->n2, B n1->n2
  // (share n2's downlink, 0.5 each), C n1->n3... C shares n1's uplink
  // with B. Max-min: A=0.5, B=0.5, C=0.5 (n1 uplink not saturated).
  // Replace C with n0->n3: A,B bottlenecked at n2 downlink (0.5 each);
  // trunk carries A,B,C; C can use the remaining trunk capacity? Trunk
  // capacity 1.0 shared by 3 flows: fair share 1/3 < 0.5, so the trunk
  // is the global bottleneck: all three get 1/3... max-min: trunk
  // saturates first at 1/3 each.
  const Topology topo = make_chain({2, 2});
  FluidNetwork network(topo, ideal_params());
  const double mb = 12'500'000;
  network.add_flow(topo.machine_node(0), topo.machine_node(2), mb, 0);
  network.add_flow(topo.machine_node(1), topo.machine_node(2), mb, 0);
  network.add_flow(topo.machine_node(0), topo.machine_node(3), mb, 0);
  drain(network, 3);
  EXPECT_NEAR(network.now(), 3.0, 1e-9);
}

TEST(FluidNetworkTest, MaxMinUnevenAllocation) {
  // n0->n2 and n1->n2 share n2's downlink; n3 gets a dedicated flow
  // n0->n3 of half the size. Trunk: 3 flows. Max-min on trunk: 1/3
  // each; n2 downlink: 2 flows (1/3 each, not saturated: capacity 1).
  // After the small flow (6.25 MB at 1/3 rate -> t=1.5) finishes, the
  // remaining two flows split the trunk at 1/2: remaining 12.5-6.25*...
  const Topology topo = make_chain({2, 2});
  FluidNetwork network(topo, ideal_params());
  const double mb = 12'500'000;
  const FlowId a =
      network.add_flow(topo.machine_node(0), topo.machine_node(2), mb, 0);
  const FlowId b =
      network.add_flow(topo.machine_node(1), topo.machine_node(2), mb, 0);
  const FlowId c = network.add_flow(topo.machine_node(0), topo.machine_node(3),
                                    mb / 2, 0);
  const std::vector<SimTime> completion = drain(network, 3);
  // c finishes first: 6.25 MB at 12.5/3 MB/s = 1.5 s.
  EXPECT_NEAR(completion[c], 1.5, 1e-9);
  // a and b: 1.5 s at 1/3 rate moved 6.25 MB; remaining 6.25 MB at 1/2
  // rate takes 1.0 s -> total 2.5 s.
  EXPECT_NEAR(completion[a], 2.5, 1e-9);
  EXPECT_NEAR(completion[b], 2.5, 1e-9);
}

TEST(FluidNetworkTest, PendingFlowActivatesLater) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, ideal_params());
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 12'500'000,
                   2.0);
  EXPECT_NEAR(network.next_event_time(), 2.0, 1e-12);
  drain(network, 1);
  EXPECT_NEAR(network.now(), 3.0, 1e-9);
}

TEST(FluidNetworkTest, IncastPenaltyReducesGoodput) {
  NetworkParams params = ideal_params();
  params.node_contention_penalty = 0.1;
  params.node_efficiency_floor = 0.1;
  const Topology topo = make_single_switch(3);
  FluidNetwork network(topo, params);
  // Two senders into one receiver: eta(2) = 1/1.1, so each flow runs at
  // (12.5/1.1)/2 MB/s and 12.5 MB take 2.2 s.
  network.add_flow(topo.machine_node(0), topo.machine_node(2), 12'500'000, 0);
  network.add_flow(topo.machine_node(1), topo.machine_node(2), 12'500'000, 0);
  drain(network, 2);
  EXPECT_NEAR(network.now(), 2.2, 1e-9);
}

TEST(FluidNetworkTest, TrunkFloorBoundsCollapse) {
  NetworkParams params = ideal_params();
  params.trunk_contention_penalty = 1.0;  // brutal per-flow loss
  params.trunk_efficiency_floor = 0.5;    // ... but floored at 50%
  const Topology topo = make_chain({4, 4});
  FluidNetwork network(topo, params);
  // 4 parallel trunk flows, distinct endpoints: trunk efficiency floors
  // at 0.5 -> aggregate 6.25 MB/s, 4 x 12.5 MB takes 8 s.
  for (int i = 0; i < 4; ++i) {
    network.add_flow(topo.machine_node(i), topo.machine_node(4 + i),
                     12'500'000, 0);
  }
  drain(network, 4);
  EXPECT_NEAR(network.now(), 8.0, 1e-9);
}

TEST(FluidNetworkTest, DuplexCapBindsWhenSendingAndReceiving) {
  NetworkParams params = ideal_params();
  params.duplex_efficiency = 0.75;
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, params);
  // n0 <-> n1 both ways: each machine moves 2 flows; combined cap
  // 2 * 12.5 * 0.75 = 18.75 MB/s -> 9.375 MB/s per flow.
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 12'500'000, 0);
  network.add_flow(topo.machine_node(1), topo.machine_node(0), 12'500'000, 0);
  drain(network, 2);
  EXPECT_NEAR(network.now(), 12.5 / 9.375, 1e-9);
}

TEST(FluidNetworkTest, FabricCapLimitsBusySwitch) {
  NetworkParams params = ideal_params();
  params.switch_fabric_links = 2.0;  // switch sustains 2 links' worth
  const Topology topo = make_single_switch(8);
  FluidNetwork network(topo, params);
  // 4 disjoint pairs: links could run all 4 at full rate, but the
  // fabric allows 2 x 12.5 MB/s total -> each flow 12.5/2 = 6.25 MB/s...
  // fabric capacity 25 MB/s over 4 flows = 6.25 MB/s each.
  for (int i = 0; i < 4; ++i) {
    network.add_flow(topo.machine_node(2 * i), topo.machine_node(2 * i + 1),
                     12'500'000, 0);
  }
  drain(network, 4);
  EXPECT_NEAR(network.now(), 2.0, 1e-9);
}

TEST(FluidNetworkTest, StatsAccounting) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, ideal_params());
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 1'000'000, 0);
  network.add_flow(topo.machine_node(1), topo.machine_node(0), 2'000'000, 0);
  drain(network, 2);
  EXPECT_EQ(network.stats().completed_flows, 2);
  EXPECT_EQ(network.stats().max_concurrent_flows, 2);
  double total_edge_bytes = 0;
  for (const double bytes : network.stats().edge_bytes) {
    total_edge_bytes += bytes;
  }
  // Each flow crosses 2 directed edges.
  EXPECT_NEAR(total_edge_bytes, 2.0 * (1'000'000 + 2'000'000), 1.0);
  EXPECT_GT(network.aggregate_throughput(), 0);
}

TEST(FluidNetworkTest, ZeroByteFlowCompletesAtActivation) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, ideal_params());
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 0, 1.0);
  drain(network, 1);
  EXPECT_NEAR(network.now(), 1.0, 1e-9);
}

TEST(FluidNetworkTest, RejectsMalformedFlows) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, ideal_params());
  EXPECT_THROW(
      network.add_flow(topo.machine_node(0), topo.machine_node(0), 10, 0),
      InvalidArgument);
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 100, 5.0);
  std::vector<FlowId> completed;
  network.advance_to(5.0, completed);
  EXPECT_THROW(
      network.add_flow(topo.machine_node(1), topo.machine_node(0), 10, 1.0),
      InvalidArgument);  // starts in the past
}

TEST(FluidNetworkTest, FlowHops) {
  const Topology topo = make_chain({1, 0, 1});
  FluidNetwork network(topo, ideal_params());
  const FlowId f =
      network.add_flow(topo.machine_node(0), topo.machine_node(1), 10, 0);
  EXPECT_EQ(network.flow_hops(f), 4);  // n0-s0-s1-s2-n1
}

TEST(FluidNetworkTest, RatesReallocateOnArrival) {
  // A flow running alone at full rate is slowed when a second flow
  // arrives on its path mid-transfer.
  const Topology topo = make_single_switch(3);
  FluidNetwork network(topo, ideal_params());
  const double mb = 12'500'000;
  const FlowId a =
      network.add_flow(topo.machine_node(0), topo.machine_node(2), mb, 0);
  // Second flow into the same receiver arrives at t=0.5.
  const FlowId b =
      network.add_flow(topo.machine_node(1), topo.machine_node(2), mb, 0.5);
  const std::vector<SimTime> completion = drain(network, 2);
  // a: 0.5 s at full rate (6.25 MB), then splits 50/50: remaining
  // 6.25 MB at 6.25 MB/s -> finishes at 1.5 s.
  EXPECT_NEAR(completion[a], 1.5, 1e-9);
  // b: at a's completion it has moved 6.25 MB; then full rate: 1.5 + 0.5.
  EXPECT_NEAR(completion[b], 2.0, 1e-9);
}

TEST(FluidNetworkTest, LinkBandwidthOverrides) {
  // A gigabit trunk between the switches: the trunk no longer limits a
  // single cross-switch flow; the 100 Mbps access links do.
  NetworkParams params = ideal_params();
  const Topology topo = make_chain({1, 1});
  // Link ids: 0 = s0-s1 trunk, then machine links.
  params.link_bandwidth_overrides = {{0, mbps_to_bytes_per_sec(1000.0)}};
  FluidNetwork network(topo, params);
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 12'500'000, 0);
  drain(network, 1);
  EXPECT_NEAR(network.now(), 1.0, 1e-9);  // access link bound
}

TEST(FluidNetworkTest, FastTrunkRemovesTheBottleneck) {
  // Two cross-trunk flows with distinct endpoints: at 100 Mbps the
  // trunk halves each flow; at 1 Gbps both run at access speed.
  const Topology topo = make_chain({2, 2});
  const double mb = 12'500'000;
  {
    FluidNetwork network(topo, ideal_params());
    network.add_flow(topo.machine_node(0), topo.machine_node(2), mb, 0);
    network.add_flow(topo.machine_node(1), topo.machine_node(3), mb, 0);
    drain(network, 2);
    EXPECT_NEAR(network.now(), 2.0, 1e-9);
  }
  {
    NetworkParams params = ideal_params();
    params.link_bandwidth_overrides = {{0, mbps_to_bytes_per_sec(1000.0)}};
    FluidNetwork network(topo, params);
    network.add_flow(topo.machine_node(0), topo.machine_node(2), mb, 0);
    network.add_flow(topo.machine_node(1), topo.machine_node(3), mb, 0);
    drain(network, 2);
    EXPECT_NEAR(network.now(), 1.0, 1e-9);
  }
}

TEST(FluidNetworkTest, DuplexCapFollowsAccessLinkOverride) {
  NetworkParams params = ideal_params();
  params.duplex_efficiency = 0.75;
  const Topology topo = make_single_switch(2);
  // n0's access link (link id 0) upgraded to 200 Mbps.
  params.link_bandwidth_overrides = {{0, mbps_to_bytes_per_sec(200.0)},
                                     {1, mbps_to_bytes_per_sec(200.0)}};
  FluidNetwork network(topo, params);
  // Bidirectional pair at 200 Mbps links with duplex 0.75: each flow
  // capped at 2*25e6*0.75/2 = 18.75 MB/s.
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 18'750'000, 0);
  network.add_flow(topo.machine_node(1), topo.machine_node(0), 18'750'000, 0);
  drain(network, 2);
  EXPECT_NEAR(network.now(), 1.0, 1e-9);
}

}  // namespace
}  // namespace aapc::simnet
