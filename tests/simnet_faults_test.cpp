// Time-varying link capacities and flow cancellation in the fluid
// network — the simnet half of the fault-injection subsystem.
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::simnet {
namespace {

using topology::make_chain;
using topology::make_single_switch;
using topology::Topology;

/// The switch-to-switch link of a chain (netprobe uses the same scan).
topology::LinkId trunk_link(const Topology& topo) {
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    if (!topo.is_machine(topo.edge_source(2 * l)) &&
        !topo.is_machine(topo.edge_target(2 * l))) {
      return l;
    }
  }
  return -1;
}

SimTime drain(FluidNetwork& network) {
  std::vector<FlowId> completed;
  while (!network.idle()) {
    const SimTime next = network.next_event_time();
    if (next == kNever) break;
    network.advance_to(next, completed);
  }
  return network.now();
}

TEST(ParamsTest, LinkCapacitiesAppliesOverrides) {
  NetworkParams params;
  params.link_bandwidth_overrides = {{2, 5.0e6}};
  const std::vector<double> caps = params.link_capacities(4);
  ASSERT_EQ(caps.size(), 4u);
  EXPECT_EQ(caps[0], params.link_bandwidth_bytes_per_sec);
  EXPECT_EQ(caps[2], 5.0e6);
  EXPECT_EQ(caps[3], params.link_bandwidth_bytes_per_sec);
}

TEST(ParamsTest, LinkCapacitiesRejectsBadOverride) {
  NetworkParams params;
  params.link_bandwidth_overrides = {{7, 5.0e6}};
  EXPECT_THROW(params.link_capacities(4), InvalidArgument);
}

TEST(FaultNetworkTest, ImmediateCapacityChangeScalesRate) {
  const Topology topo = make_chain({1, 1});
  const topology::LinkId trunk = trunk_link(topo);
  ASSERT_GE(trunk, 0);
  const NetworkParams params;
  const Bytes bytes = 1'000'000;

  FluidNetwork healthy(topo, params);
  std::vector<FlowId> completed;
  healthy.add_flow(topo.machine_node(0), topo.machine_node(1), bytes, 0);
  const SimTime t_healthy = drain(healthy);

  FluidNetwork degraded(topo, params);
  degraded.set_link_capacity(trunk,
                             params.link_bandwidth_bytes_per_sec / 2.0);
  degraded.add_flow(topo.machine_node(0), topo.machine_node(1), bytes, 0);
  const SimTime t_degraded = drain(degraded);

  EXPECT_NEAR(t_degraded, 2.0 * t_healthy, 1e-9);
  EXPECT_EQ(degraded.stats().capacity_changes, 1);
  EXPECT_EQ(degraded.link_capacity(trunk),
            params.link_bandwidth_bytes_per_sec / 2.0);
}

TEST(FaultNetworkTest, ScheduledChangeIsASimulationEvent) {
  const Topology topo = make_chain({1, 1});
  const topology::LinkId trunk = trunk_link(topo);
  const NetworkParams params;
  const double rate = params.effective_bandwidth();
  const Bytes bytes = 1'000'000;

  FluidNetwork network(topo, params);
  network.add_flow(topo.machine_node(0), topo.machine_node(1), bytes, 0);
  const SimTime t_change = 0.5 * static_cast<double>(bytes) / rate;
  network.schedule_capacity_change(t_change, trunk,
                                   params.link_bandwidth_bytes_per_sec / 2.0);
  // The scheduled change preempts the nominal completion.
  EXPECT_NEAR(network.next_event_time(), t_change, 1e-12);
  const SimTime done = drain(network);
  // Half the bytes at full rate, half at half rate.
  EXPECT_NEAR(done, t_change + 0.5 * static_cast<double>(bytes) / (rate / 2),
              1e-9);
  EXPECT_EQ(network.stats().capacity_changes, 1);
}

TEST(FaultNetworkTest, DownLinkStallsAndRecovers) {
  const Topology topo = make_chain({1, 1});
  const topology::LinkId trunk = trunk_link(topo);
  const NetworkParams params;
  FluidNetwork network(topo, params);
  const FlowId flow =
      network.add_flow(topo.machine_node(0), topo.machine_node(1),
                       1'000'000, 0);
  std::vector<FlowId> completed;
  network.advance_to(0, completed);
  EXPECT_GT(network.flow_rate(flow), 0);

  network.set_link_capacity(trunk, 0);
  EXPECT_EQ(network.flow_rate(flow), 0);
  EXPECT_GT(network.flow_remaining(flow), 0);
  EXPECT_FALSE(network.idle());
  // Nothing will ever complete while the link is down.
  EXPECT_EQ(network.next_event_time(), kNever);

  network.set_link_capacity(trunk, params.link_bandwidth_bytes_per_sec);
  EXPECT_GT(network.flow_rate(flow), 0);
  drain(network);
  EXPECT_TRUE(network.idle());
  EXPECT_EQ(network.stats().completed_flows, 1);
}

TEST(FaultNetworkTest, CancelPendingFlow) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, {});
  const FlowId flow = network.add_flow(topo.machine_node(0),
                                       topo.machine_node(1), 1000, 1.0);
  EXPECT_TRUE(network.cancel_flow(flow));
  EXPECT_TRUE(network.idle());
  EXPECT_EQ(network.stats().canceled_flows, 1);
  EXPECT_EQ(network.flow_remaining(flow), 0);
  // Advancing past the (stale) activation entry must not resurrect it.
  std::vector<FlowId> completed;
  network.advance_to(2.0, completed);
  EXPECT_TRUE(completed.empty());
  EXPECT_TRUE(network.idle());
  // Double cancel is a no-op.
  EXPECT_FALSE(network.cancel_flow(flow));
}

TEST(FaultNetworkTest, CancelActiveFlowCreditsMovedBytes) {
  const Topology topo = make_single_switch(2);
  const NetworkParams params;
  FluidNetwork network(topo, params);
  const FlowId flow = network.add_flow(topo.machine_node(0),
                                       topo.machine_node(1), 1'000'000, 0);
  std::vector<FlowId> completed;
  const SimTime halfway =
      0.5 * 1'000'000 / params.effective_bandwidth();
  network.advance_to(halfway, completed);
  EXPECT_TRUE(completed.empty());
  EXPECT_TRUE(network.cancel_flow(flow));
  EXPECT_TRUE(network.idle());
  EXPECT_EQ(network.stats().canceled_flows, 1);
  EXPECT_EQ(network.flow_rate(flow), 0);
  // The bytes moved before cancellation stay on the path accounting.
  double moved = 0;
  for (const double b : network.stats().edge_bytes) moved += b;
  EXPECT_NEAR(moved / 2.0, 500'000, 1.0);  // 2 directed edges on the path
}

TEST(FaultNetworkTest, ScheduledChangeInPastThrows) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, {});
  std::vector<FlowId> completed;
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 1000, 0);
  network.advance_to(network.next_event_time(), completed);
  EXPECT_GT(network.now(), 0);
  EXPECT_THROW(network.schedule_capacity_change(network.now() / 2, 0, 1.0e6),
               InvalidArgument);
}

TEST(FaultNetworkTest, RestorationEventWakesStuckFlow) {
  // down at t1, up at t2, both scheduled ahead of time: the flow stalls
  // during [t1, t2] and completes late by exactly the outage.
  const Topology topo = make_chain({1, 1});
  const topology::LinkId trunk = trunk_link(topo);
  const NetworkParams params;
  const double rate = params.effective_bandwidth();
  const Bytes bytes = 1'000'000;
  const SimTime t_nominal = static_cast<double>(bytes) / rate;
  const SimTime t1 = 0.25 * t_nominal;
  const SimTime t2 = t1 + 0.5;

  FluidNetwork network(topo, params);
  network.schedule_capacity_change(t1, trunk, 0.0);
  network.schedule_capacity_change(t2, trunk,
                                   params.link_bandwidth_bytes_per_sec);
  network.add_flow(topo.machine_node(0), topo.machine_node(1), bytes, 0);
  const SimTime done = drain(network);
  EXPECT_NEAR(done, t_nominal + (t2 - t1), 1e-9);
  EXPECT_EQ(network.stats().capacity_changes, 2);
}

TEST(FaultNetworkTest, ZeroScheduledChangesBitIdentical) {
  // The fault path must be inert when unused: same flows, same times,
  // exactly (==, not near) the pre-fault behaviour.
  const Topology topo = make_single_switch(4);
  const NetworkParams params;
  auto run = [&](bool touch_fault_api) {
    FluidNetwork network(topo, params);
    std::vector<SimTime> times;
    for (topology::Rank src = 0; src < 4; ++src) {
      for (topology::Rank dst = 0; dst < 4; ++dst) {
        if (src == dst) continue;
        network.add_flow(topo.machine_node(src), topo.machine_node(dst),
                         64_KiB, 1e-5 * src);
      }
    }
    if (touch_fault_api) {
      // Scheduling nothing and querying capacities must not perturb.
      for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
        (void)network.link_capacity(l);
      }
    }
    std::vector<FlowId> completed;
    while (!network.idle()) {
      network.advance_to(network.next_event_time(), completed);
      times.push_back(network.now());
    }
    return times;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace aapc::simnet
