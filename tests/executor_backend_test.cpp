// The NetworkBackend seam: the same lowered program set (data messages
// plus pair-wise sync tokens) executes over the fluid model and over
// the segment-level packet model, and the two runs agree on the
// schedule's phase structure. Also covers packet-backend runs under
// loss and the backend's rejection of fluid-only fault events.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::mpisim {
namespace {

using topology::make_chain;
using topology::make_single_switch;
using topology::Topology;

/// Per-sender sequence of schedule phases, in the order the sender's
/// data messages actually activated in the executed trace (stable on
/// ties by trace index, which follows posting order).
std::vector<std::vector<std::int32_t>> sender_phase_sequences(
    const core::Schedule& schedule, const ExecutionResult& result,
    std::int32_t ranks) {
  std::map<std::pair<Rank, Rank>, std::int32_t> phase_of;
  for (const core::ScheduledMessage& m : schedule.messages) {
    phase_of[{m.message.src, m.message.dst}] = m.phase;
  }
  std::vector<std::vector<std::pair<SimTime, std::int32_t>>> timed(ranks);
  for (const MessageTrace& trace : result.trace) {
    if (trace.is_sync || trace.src == trace.dst) continue;
    const auto it = phase_of.find({trace.src, trace.dst});
    if (it == phase_of.end()) continue;
    timed[trace.src].emplace_back(trace.start, it->second);
  }
  std::vector<std::vector<std::int32_t>> sequences(ranks);
  for (std::int32_t r = 0; r < ranks; ++r) {
    std::stable_sort(timed[r].begin(), timed[r].end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (const auto& [start, phase] : timed[r]) {
      sequences[r].push_back(phase);
    }
  }
  return sequences;
}

TEST(ExecutorBackendTest, FluidAndPacketAgreeOnPhaseStructure) {
  const Topology topo = make_chain({3, 3});
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet programs =
      lowering::lower_schedule(topo, schedule, 8192);
  const std::int32_t ranks = topo.machine_count();

  ExecutorParams fluid;
  fluid.wakeup_jitter_max = 0;
  fluid.record_trace = true;
  Executor fluid_executor(topo, {}, fluid);
  const ExecutionResult fluid_result = fluid_executor.run(programs);

  ExecutorParams packet = fluid;
  packet.backend = NetworkBackendKind::kPacket;
  Executor packet_executor(topo, {}, packet);
  const ExecutionResult packet_result = packet_executor.run(programs);

  // Both models complete the full routine with a clean audit.
  EXPECT_TRUE(fluid_result.integrity.ok()) << fluid_result.integrity.summary();
  EXPECT_TRUE(packet_result.integrity.ok())
      << packet_result.integrity.summary();
  EXPECT_EQ(fluid_result.message_count, packet_result.message_count);
  EXPECT_FALSE(fluid_result.packet.used);
  EXPECT_TRUE(packet_result.packet.used);
  EXPECT_GT(packet_result.packet.segments_sent, 0);
  EXPECT_EQ(packet_result.packet.segments_lost, 0);  // zero-fault run

  // The pair-wise synchronization forces phase order per sender; both
  // backends must execute each sender's data messages in the same —
  // non-decreasing — phase sequence, and every (src, dst) pair appears.
  const auto fluid_phases =
      sender_phase_sequences(schedule, fluid_result, ranks);
  const auto packet_phases =
      sender_phase_sequences(schedule, packet_result, ranks);
  for (std::int32_t r = 0; r < ranks; ++r) {
    EXPECT_EQ(fluid_phases[r].size(),
              static_cast<std::size_t>(ranks - 1))
        << "rank " << r;
    EXPECT_TRUE(std::is_sorted(fluid_phases[r].begin(), fluid_phases[r].end()))
        << "rank " << r << " fluid phase order";
    EXPECT_TRUE(
        std::is_sorted(packet_phases[r].begin(), packet_phases[r].end()))
        << "rank " << r << " packet phase order";
    EXPECT_EQ(fluid_phases[r], packet_phases[r]) << "rank " << r;
  }
}

TEST(ExecutorBackendTest, PacketBackendCompletesUnderLoss) {
  const Topology topo = make_single_switch(6);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet programs =
      lowering::lower_schedule(topo, schedule, 32768);

  ExecutorParams clean;
  clean.wakeup_jitter_max = 0;
  clean.backend = NetworkBackendKind::kPacket;
  clean.packet.transport =
      packetsim::PacketNetworkParams::Transport::kSelectiveRepeat;
  Executor clean_executor(topo, {}, clean);
  const ExecutionResult clean_result = clean_executor.run(programs);

  ExecutorParams lossy = clean;
  lossy.packet.faults.loss_rate = 0.01;
  Executor lossy_executor(topo, {}, lossy);
  const ExecutionResult lossy_result = lossy_executor.run(programs);

  // Loss costs retransmissions and time, never integrity.
  EXPECT_TRUE(lossy_result.integrity.ok())
      << lossy_result.integrity.summary();
  EXPECT_EQ(lossy_result.integrity.delivered, lossy_result.message_count);
  EXPECT_GT(lossy_result.packet.segments_lost, 0);
  EXPECT_GT(lossy_result.packet.retransmissions, 0);
  EXPECT_GT(lossy_result.completion_time, clean_result.completion_time);
}

TEST(ExecutorBackendTest, PacketRunsAreDeterministic) {
  const Topology topo = make_single_switch(5);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet programs =
      lowering::lower_schedule(topo, schedule, 16384);
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  exec.backend = NetworkBackendKind::kPacket;
  exec.packet.faults.loss_rate = 1e-3;

  Executor first(topo, {}, exec);
  Executor second(topo, {}, exec);
  const ExecutionResult a = first.run(programs);
  const ExecutionResult b = second.run(programs);
  EXPECT_EQ(a.completion_time, b.completion_time);  // bit-identical
  EXPECT_EQ(a.packet.segments_lost, b.packet.segments_lost);
  EXPECT_EQ(a.packet.retransmissions, b.packet.retransmissions);
}

TEST(ExecutorBackendTest, PacketBackendRejectsCapacityFaultEvents) {
  const Topology topo = make_single_switch(4);
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  exec.backend = NetworkBackendKind::kPacket;
  exec.capacity_events = {{0.001, 0, 0.0}};
  Executor executor(topo, {}, exec);

  ProgramSet set;
  set.name = "ping";
  Program sender;
  sender.ops = {Op::isend(1, 4096, 0), Op::wait_all()};
  Program receiver;
  receiver.ops = {Op::irecv(0, 4096, 0), Op::wait_all()};
  Program idle;
  set.programs = {sender, receiver, idle, idle};

  EXPECT_THROW(executor.run(set), InvalidArgument);
}

}  // namespace
}  // namespace aapc::mpisim
