// Tests for the large-topology generators (switch fabrics, fat trees,
// random LANs): structure, expected node counts, and determinism under
// a fixed seed.
#include <gtest/gtest.h>

#include <set>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

namespace aapc::topology {
namespace {

TEST(SwitchFabricTest, CountsMatchLevelProduct) {
  const Topology topo = make_switch_fabric({3, 4}, 5);
  // Switches: 1 root + 3 + 12 = 16; machines: 12 leaves x 5.
  EXPECT_EQ(topo.switch_count(), 16);
  EXPECT_EQ(topo.machine_count(), 60);
  // A tree: links = nodes - 1.
  EXPECT_EQ(topo.link_count(), topo.node_count() - 1);
}

TEST(SwitchFabricTest, EmptyFanoutIsSingleSwitch) {
  const Topology topo = make_switch_fabric({}, 7);
  EXPECT_EQ(topo.switch_count(), 1);
  EXPECT_EQ(topo.machine_count(), 7);
}

TEST(SwitchFabricTest, MachinesSitAtMaxDepth) {
  const Topology topo = make_switch_fabric({2, 2}, 3);
  for (Rank r = 0; r < topo.machine_count(); ++r) {
    const NodeId node = topo.machine_node(r);
    // Root (depth 0) -> level 1 -> level 2 -> machine (depth 3).
    EXPECT_EQ(topo.path(topo.machine_node(0), node).empty(), r == 0);
    EXPECT_EQ(topo.depth(node), 3);
  }
}

TEST(SwitchFabricTest, SchedulesContentionFree) {
  const Topology topo = make_switch_fabric({2, 3}, 2);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const core::VerifyReport report = core::verify_schedule(topo, schedule);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(schedule.phase_count(), topo.aapc_load());
}

TEST(FatTreeTest, PaperScaleShape) {
  // The 4096-host configuration used by the scale benchmark, shrunk
  // proportionally (2 pods x 4 edges x 8 hosts).
  const Topology topo = make_fat_tree(2, 4, 8);
  EXPECT_EQ(topo.switch_count(), 1 + 2 + 8);
  EXPECT_EQ(topo.machine_count(), 64);
  // Every pod subtree holds edges_per_pod * hosts_per_edge machines.
  const NodeId root = topo.machine_node(0);
  (void)root;
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  EXPECT_TRUE(core::verify_schedule(topo, schedule).ok);
}

TEST(FatTreeTest, FourKRankConfigurationCounts) {
  // Don't schedule here (that's bench_schedgen_scale's job); just check
  // the generator produces the advertised 4096 hosts quickly.
  const Topology topo = make_fat_tree(8, 16, 32);
  EXPECT_EQ(topo.machine_count(), 4096);
  EXPECT_EQ(topo.switch_count(), 1 + 8 + 128);
}

TEST(RandomLanTest, CountsAndConnectivity) {
  Rng rng(7);
  RandomLanOptions options;
  options.switches = 40;
  options.machines = 300;
  const Topology topo = make_random_lan(rng, options);
  EXPECT_EQ(topo.switch_count(), 40);
  EXPECT_EQ(topo.machine_count(), 300);
  EXPECT_EQ(topo.link_count(), topo.node_count() - 1);
  // Connectivity: every machine has a path to machine 0.
  for (Rank r = 1; r < topo.machine_count(); ++r) {
    EXPECT_FALSE(
        topo.path(topo.machine_node(0), topo.machine_node(r)).empty());
  }
}

TEST(RandomLanTest, DeterministicUnderFixedSeed) {
  RandomLanOptions options;
  options.switches = 32;
  options.machines = 200;
  Rng rng_a(123);
  Rng rng_b(123);
  const Topology a = make_random_lan(rng_a, options);
  const Topology b = make_random_lan(rng_b, options);
  EXPECT_EQ(to_dot(a), to_dot(b));
  Rng rng_c(124);
  const Topology c = make_random_lan(rng_c, options);
  EXPECT_NE(to_dot(a), to_dot(c));
}

TEST(RandomLanTest, RespectsDegreeCap) {
  Rng rng(9);
  RandomLanOptions options;
  options.switches = 64;
  options.machines = 64;
  options.max_switch_degree = 3;
  const Topology topo = make_random_lan(rng, options);
  // Switch-to-switch fanout is capped; machine attachments are not.
  std::vector<std::int32_t> switch_children(
      static_cast<std::size_t>(topo.node_count()), 0);
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.is_machine(n)) continue;
    for (const NodeId w : topo.neighbors(n)) {
      if (!topo.is_machine(w) && topo.parent(w) == n) {
        ++switch_children[static_cast<std::size_t>(n)];
      }
    }
  }
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (!topo.is_machine(n)) {
      EXPECT_LE(switch_children[static_cast<std::size_t>(n)],
                options.max_switch_degree)
          << "switch " << topo.name(n);
    }
  }
}

TEST(RandomLanTest, SchedulesContentionFree) {
  Rng rng(21);
  RandomLanOptions options;
  options.switches = 12;
  options.machines = 40;
  const Topology topo = make_random_lan(rng, options);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const core::VerifyReport report = core::verify_schedule(topo, schedule);
  EXPECT_TRUE(report.ok) << report.summary();
}

}  // namespace
}  // namespace aapc::topology
