// Flight-recorder subsystem tests: ring semantics (overwrite-oldest,
// concurrent snapshot coherence), dump round-trip and validation,
// schedule annotation, executor wiring (events recorded, simulation
// unperturbed), the shared stall/abort diagnostics, and closed-loop
// localization — including from a partially overwritten ring.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/flight/analyze.hpp"
#include "aapc/flight/dump.hpp"
#include "aapc/flight/recorder.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::flight {
namespace {

using topology::Topology;

Event make_event(double time) {
  Event e;
  e.kind = EventKind::kSendPost;
  e.peer = 1;
  e.tag = 0;
  e.bytes = 64;
  e.time = time;
  e.aux = time - 1;
  return e;
}

TEST(RingTest, RetainsEventsInOrder) {
  Ring ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 5; ++i) ring.push(make_event(i));
  std::vector<Event> out;
  EXPECT_EQ(ring.snapshot(out), 0u);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(out[i].time, i);
  EXPECT_EQ(ring.pushed(), 5u);
}

TEST(RingTest, OverwriteKeepsMostRecent) {
  Ring ring(8);
  for (int i = 0; i < 20; ++i) ring.push(make_event(i));
  std::vector<Event> out;
  EXPECT_EQ(ring.snapshot(out), 12u);  // 20 pushed, 8 retained
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out[i].time, 12 + i);
}

TEST(RingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Ring(5).capacity(), 8u);
  EXPECT_EQ(Ring(0).capacity(), 8u);  // minimum
  EXPECT_EQ(Ring(4096).capacity(), 4096u);
  EXPECT_EQ(Ring(4097).capacity(), 8192u);
}

TEST(RingTest, ConcurrentSnapshotNeverTearsEntries) {
  // One writer (the executor's single thread), one reader snapshotting
  // mid-run. Every retained entry must be internally consistent and
  // the retained window must be contiguous most-recent events. Run
  // under TSan this also proves the memory-order discipline.
  Ring ring(64);
  constexpr int kTotal = 200'000;
  std::thread writer([&ring] {
    for (int i = 0; i < kTotal; ++i) {
      Event e;
      e.kind = EventKind::kSendComplete;
      e.peer = i;        // mirrors time: a torn entry breaks the pair
      e.bytes = i;
      e.time = i;
      e.aux = i;
      ring.push(e);
    }
  });
  std::vector<Event> out;
  for (int round = 0; round < 200; ++round) {
    ring.snapshot(out);
    for (std::size_t j = 0; j < out.size(); ++j) {
      ASSERT_EQ(out[j].peer, static_cast<std::int32_t>(out[j].time));
      ASSERT_EQ(out[j].bytes, static_cast<std::int64_t>(out[j].time));
      if (j > 0) {
        ASSERT_EQ(out[j].time, out[j - 1].time + 1);
      }
    }
  }
  writer.join();
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 64u);
  EXPECT_DOUBLE_EQ(out.back().time, kTotal - 1);
}

TEST(RecorderTest, AnnotationStampsDataSyncAndRecvSide) {
  const Topology topo = topology::make_chain({2, 2});
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const sync::SyncPlan plan = sync::build_sync_plan(topo, schedule);
  Recorder recorder(topo.machine_count());
  recorder.annotate(schedule, plan);

  const core::ScheduledMessage& first = schedule.messages.front();
  // Sender-side data event: (rank=src, peer=dst).
  recorder.record(first.message.src, EventKind::kSendPost, first.message.dst,
                  0, 1024, 1.0, 0.5);
  // Receiver-side data event: (rank=dst, peer=src) — coordinates swap.
  recorder.record(first.message.dst, EventKind::kRecvComplete,
                  first.message.src, 0, 1024, 2.0, 1.0);
  std::vector<Event> out;
  recorder.snapshot_rank(first.message.src, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].phase, first.phase);
  EXPECT_EQ(out[0].message, 0);
  recorder.snapshot_rank(first.message.dst, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].phase, first.phase);
  EXPECT_EQ(out[0].message, 0);

  if (!plan.edges.empty()) {
    const sync::SyncEdge& edge = plan.edges.front();
    const core::ScheduledMessage& gated =
        schedule.messages[static_cast<std::size_t>(edge.to)];
    recorder.record(gated.message.src, EventKind::kSyncRelease,
                    schedule.messages[static_cast<std::size_t>(edge.from)]
                        .message.src,
                    recorder.sync_tag_base() + 0, 4, 3.0, 2.5);
    recorder.snapshot_rank(gated.message.src, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].phase, gated.phase);
    EXPECT_EQ(out[0].message, edge.to);
  }
}

TEST(RecorderTest, PublishMetricsExportsSeries) {
  Recorder recorder(2);
  recorder.record(0, EventKind::kSendPost, 1, 0, 64, 1.0, 0.5);
  recorder.record(1, EventKind::kRecvPost, 0, 0, 64, 1.0, 0.5);
  obs::Registry registry;
  recorder.publish_metrics(registry);
  const std::string text = obs::to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("aapc_flight_events_total"), std::string::npos);
  EXPECT_NE(text.find("aapc_flight_dropped_total"), std::string::npos);
}

FlightDump sample_dump() {
  Recorder recorder(3, RecorderParams{.ring_capacity = 16});
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < 5 + r; ++i) {
      recorder.record(r, EventKind::kSendPost, (r + 1) % 3, r, 100 * i,
                      0.25 * i, 0.125 * i);
    }
  }
  DumpMeta meta;
  meta.backend = 1;
  meta.effective_bandwidth = 11.625e6;
  meta.send_overhead = 60e-6;
  meta.recv_overhead = 15e-6;
  meta.completion_time = 1.25;
  meta.retransmissions = 7;
  meta.segments_lost = 3;
  meta.label = "unit test dump";
  return snapshot(recorder, meta);
}

TEST(DumpTest, EncodeDecodeRoundTrip) {
  const FlightDump dump = sample_dump();
  const FlightDump decoded = decode_dump(encode_dump(dump));
  EXPECT_EQ(decoded.meta.rank_count, 3);
  EXPECT_EQ(decoded.meta.ring_capacity, 16u);
  EXPECT_EQ(decoded.meta.backend, 1);
  EXPECT_DOUBLE_EQ(decoded.meta.effective_bandwidth, 11.625e6);
  EXPECT_EQ(decoded.meta.retransmissions, 7);
  EXPECT_EQ(decoded.meta.label, "unit test dump");
  ASSERT_EQ(decoded.ranks.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    const RankLog& log = decoded.ranks[static_cast<std::size_t>(r)];
    const RankLog& orig = dump.ranks[static_cast<std::size_t>(r)];
    ASSERT_EQ(log.events.size(), orig.events.size());
    for (std::size_t i = 0; i < log.events.size(); ++i) {
      EXPECT_EQ(log.events[i].kind, orig.events[i].kind);
      EXPECT_EQ(log.events[i].peer, orig.events[i].peer);
      EXPECT_EQ(log.events[i].bytes, orig.events[i].bytes);
      EXPECT_DOUBLE_EQ(log.events[i].time, orig.events[i].time);
      EXPECT_DOUBLE_EQ(log.events[i].aux, orig.events[i].aux);
    }
  }
}

TEST(DumpTest, FileRoundTrip) {
  const FlightDump dump = sample_dump();
  const std::string path = testing::TempDir() + "flight_test_dump.flt";
  write_dump_file(dump, path);
  const FlightDump loaded = read_dump_file(path);
  EXPECT_EQ(loaded.meta.label, dump.meta.label);
  EXPECT_EQ(loaded.ranks.size(), dump.ranks.size());
}

TEST(DumpTest, DecodeRejectsCorruption) {
  const std::string good = encode_dump(sample_dump());
  // Bad magic.
  std::string bad = good;
  bad[0] ^= 0xFF;
  EXPECT_THROW(decode_dump(bad), InvalidArgument);
  // Unknown version (bytes 8..9, little-endian u16).
  bad = good;
  bad[8] = 0x7F;
  EXPECT_THROW(decode_dump(bad), InvalidArgument);
  // Truncations at every prefix length must throw, never crash.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(decode_dump(good.substr(0, len)), InvalidArgument);
  }
  // Trailing garbage.
  EXPECT_THROW(decode_dump(good + "x"), InvalidArgument);
}

/// Lowers the scheduled alltoall of `topo` with an annotated recorder
/// attached; returns the program set and fills schedule/plan.
mpisim::ProgramSet lower_annotated(const Topology& topo, Bytes msize,
                                   core::Schedule& schedule,
                                   sync::SyncPlan& plan) {
  schedule = core::build_aapc_schedule(topo);
  plan = sync::build_sync_plan(topo, schedule);
  lowering::LoweringOptions lopts;
  lopts.precomputed_plan = &plan;
  return lowering::lower_schedule(topo, schedule, msize, lopts);
}

TEST(ExecutorWiringTest, RecordsAnnotatedEventsWithoutPerturbing) {
  const Topology topo = topology::make_chain({4, 4});
  core::Schedule schedule;
  sync::SyncPlan plan;
  const mpisim::ProgramSet set =
      lower_annotated(topo, 32_KiB, schedule, plan);
  const simnet::NetworkParams net;

  mpisim::Executor plain(topo, net, {});
  const mpisim::ExecutionResult without = plain.run(set);

  Recorder recorder(topo.machine_count());
  recorder.annotate(schedule, plan);
  mpisim::ExecutorParams exec;
  exec.flight = &recorder;
  mpisim::Executor recorded(topo, net, exec);
  const mpisim::ExecutionResult with = recorded.run(set);

  // The recorder must not influence the simulation at all.
  EXPECT_EQ(with.completion_time, without.completion_time);
  ASSERT_EQ(with.rank_finish.size(), without.rank_finish.size());
  for (std::size_t r = 0; r < with.rank_finish.size(); ++r) {
    EXPECT_EQ(with.rank_finish[r], without.rank_finish[r]);
  }

  EXPECT_GT(recorder.total_recorded(), 0u);
  std::vector<Event> events;
  bool saw[8] = {};
  for (topology::Rank r = 0; r < topo.machine_count(); ++r) {
    recorder.snapshot_rank(r, events);
    for (const Event& e : events) {
      saw[static_cast<int>(e.kind)] = true;
      if (e.tag < recorder.sync_tag_base() &&
          (e.kind == EventKind::kSendPost ||
           e.kind == EventKind::kSendComplete)) {
        // Every data event is annotated with its schedule coordinates.
        EXPECT_GE(e.phase, 0);
        EXPECT_GE(e.message, 0);
      }
    }
  }
  EXPECT_TRUE(saw[static_cast<int>(EventKind::kSendPost)]);
  EXPECT_TRUE(saw[static_cast<int>(EventKind::kRecvPost)]);
  EXPECT_TRUE(saw[static_cast<int>(EventKind::kSendComplete)]);
  EXPECT_TRUE(saw[static_cast<int>(EventKind::kRecvComplete)]);
  EXPECT_TRUE(saw[static_cast<int>(EventKind::kSyncWait)] ||
              saw[static_cast<int>(EventKind::kSyncRelease)]);
}

TEST(DiagnosticsTest, StallCarriesTypedDiagnosticMatchingWhat) {
  const Topology topo = topology::make_single_switch(2);
  mpisim::ProgramSet set;
  set.name = "deadlock";
  mpisim::Program sender;
  sender.ops = {mpisim::Op::isend(1, 1024, 0), mpisim::Op::wait_all()};
  set.programs = {sender, mpisim::Program{}};
  mpisim::Executor executor(topo, {}, {});
  try {
    executor.run(set);
    FAIL() << "expected ExecutionStalled";
  } catch (const mpisim::ExecutionStalled& e) {
    // One formatting path: what() IS the typed diagnostic's rendering.
    EXPECT_EQ(std::string(e.what()), e.diagnostic().to_string());
    ASSERT_FALSE(e.diagnostic().blocked.empty());
    EXPECT_EQ(e.diagnostic().blocked.front().rank, 0);
    ASSERT_FALSE(e.diagnostic().blocked.front().pending.empty());
    EXPECT_NE(std::string(e.what()).find("(unmatched)"), std::string::npos);
  }
}

TEST(DiagnosticsTest, AbortCarriesTypedDiagnosticMatchingWhat) {
  const Topology topo = topology::make_chain({1, 1});
  // The only switch-switch link is down from the start; the watchdog
  // retries the cross transfer and gives up.
  topology::LinkId trunk = -1;
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    if (!topo.is_machine(topo.edge_source(2 * l)) &&
        !topo.is_machine(topo.edge_target(2 * l))) {
      trunk = l;
    }
  }
  ASSERT_GE(trunk, 0);
  faults::FaultPlan plan;
  plan.add(faults::FaultEvent::link_down(0, trunk));
  const simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.transfer_timeout = milliseconds(5.0);
  exec.transfer_max_retries = 1;
  faults::compile(plan, net, topo.link_count()).apply(exec);

  mpisim::ProgramSet set;
  set.name = "cross";
  mpisim::Program sender;
  sender.ops = {mpisim::Op::isend(1, 32768, 0), mpisim::Op::wait_all()};
  mpisim::Program receiver;
  receiver.ops = {mpisim::Op::irecv(0, 32768, 0), mpisim::Op::wait_all()};
  set.programs = {sender, receiver};
  mpisim::Executor executor(topo, net, exec);
  try {
    executor.run(set);
    FAIL() << "expected TransferAborted";
  } catch (const mpisim::TransferAborted& e) {
    EXPECT_EQ(std::string(e.what()), e.diagnostic().to_string());
    EXPECT_EQ(e.diagnostic().transfer.src, 0);
    EXPECT_EQ(e.diagnostic().transfer.dst, 1);
    EXPECT_EQ(e.diagnostic().attempts, 2);  // original + 1 retry
    EXPECT_NE(std::string(e.what()).find("retries exhausted"),
              std::string::npos);
  }
}

TEST(StpTest, BridgeLinkOfInvertsLinkOfBridgeLink) {
  stp::BridgeNetwork net;
  const stp::BridgeId a = net.add_bridge("a", 1);
  const stp::BridgeId b = net.add_bridge("b", 2);
  net.add_bridge_link(a, b, 19);
  net.add_bridge_link(a, b, 19);  // redundant, blocked by the election
  net.add_machine("m0", a);
  net.add_machine("m1", b);
  const stp::SpanningTree tree = stp::compute_spanning_tree(net);
  for (std::size_t i = 0; i < tree.link_of_bridge_link.size(); ++i) {
    const topology::LinkId link = tree.link_of_bridge_link[i];
    if (link < 0) continue;  // blocked
    EXPECT_EQ(tree.bridge_link_of(link), static_cast<std::int32_t>(i));
  }
  // Machine access links realize no bridge link.
  for (const topology::LinkId access : tree.machine_access_link) {
    EXPECT_EQ(tree.bridge_link_of(access), -1);
  }
  EXPECT_EQ(tree.bridge_link_of(-1), -1);
}

TEST(SyncPlanTest, BuildAdjacencyListsAndValidates) {
  sync::SyncPlan plan;
  plan.edges = {{0, 1}, {0, 2}, {1, 2}};
  const sync::PlanAdjacency adjacency = sync::build_adjacency(plan, 3);
  EXPECT_EQ(adjacency.out[0], (std::vector<std::int32_t>{1, 2}));
  EXPECT_EQ(adjacency.in[2], (std::vector<std::int32_t>{0, 1}));
  EXPECT_TRUE(adjacency.in[0].empty());

  sync::SyncPlan backward;
  backward.edges = {{2, 1}};
  EXPECT_THROW(sync::build_adjacency(backward, 3), InvalidArgument);
  sync::SyncPlan out_of_range;
  out_of_range.edges = {{0, 5}};
  EXPECT_THROW(sync::build_adjacency(out_of_range, 3), InvalidArgument);
}

TEST(FaultSummaryTest, SummarizesEndState) {
  faults::FaultPlan plan;
  plan.add(faults::FaultEvent::link_degrade(0, 0, 0.5))
      .add(faults::FaultEvent::link_down(milliseconds(1), 1))
      .add(faults::FaultEvent::link_up(milliseconds(2), 1))  // restored
      .add(faults::FaultEvent::link_down(milliseconds(3), 2))
      .add(faults::FaultEvent::node_slowdown(0, 2, 3.0))
      .add(faults::FaultEvent::node_crash(milliseconds(1), 3));
  const faults::FaultSummary summary = faults::summarize(plan, 3);
  EXPECT_EQ(summary.degraded_links, (std::vector<std::int32_t>{0}));
  EXPECT_EQ(summary.down_links, (std::vector<std::int32_t>{2}));
  EXPECT_EQ(summary.straggler_ranks, (std::vector<topology::Rank>{2}));
  EXPECT_EQ(summary.crashed_ranks, (std::vector<topology::Rank>{3}));
}

/// Runs the chain alltoall under `plan` with ring capacity `ring` and
/// returns the analysis (identity link map: plan links are LinkIds).
AnalysisReport run_and_analyze(const Topology& topo,
                               const faults::FaultPlan& plan,
                               std::uint32_t ring, FlightDump* dump_out) {
  core::Schedule schedule;
  sync::SyncPlan sync_plan;
  const mpisim::ProgramSet set =
      lower_annotated(topo, 32_KiB, schedule, sync_plan);
  Recorder recorder(topo.machine_count(), RecorderParams{.ring_capacity = ring});
  recorder.annotate(schedule, sync_plan);
  const simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.flight = &recorder;
  faults::compile(plan, net, topo.link_count()).apply(exec);
  mpisim::Executor executor(topo, net, exec);
  const mpisim::ExecutionResult result = executor.run(set);
  DumpMeta meta;
  meta.effective_bandwidth = net.effective_bandwidth();
  meta.send_overhead = net.send_overhead;
  meta.recv_overhead = net.recv_overhead;
  meta.completion_time = result.completion_time;
  const FlightDump dump = snapshot(recorder, meta);
  if (dump_out != nullptr) *dump_out = dump;
  return analyze(dump, topo, &schedule, &sync_plan);
}

TEST(ClosedLoopTest, LateStragglerLocalizedFromOverwrittenRing) {
  const Topology topo = topology::make_chain({4, 4});
  // Healthy run first, to place the fault onset late in the run.
  const AnalysisReport healthy =
      run_and_analyze(topo, {}, 4096, nullptr);
  EXPECT_TRUE(healthy.verdicts.empty());
  EXPECT_EQ(healthy.events_dropped, 0);
  const double completion = healthy.critical_path_span;
  ASSERT_GT(completion, 0);

  // A straggler that only turns on mid-run (after the early phases
  // have already posted), recorded into tiny rings: the early healthy
  // events are overwritten, and the recent-window estimate still
  // catches the late factor. Onset must land while the rank still has
  // posts left — each rank finishes posting well before the tail of
  // the run drains, so "late" here is relative to the post timeline.
  const double onset = completion * 0.3;
  faults::FaultPlan plan;
  plan.add(faults::FaultEvent::node_slowdown(onset, 2, 4.0));
  FlightDump dump;
  const AnalysisReport report = run_and_analyze(topo, plan, 16, &dump);
  EXPECT_GT(report.events_dropped, 0);
  // The retained window is the most-recent events: the last event of
  // the straggler's ring must postdate the fault onset.
  const RankLog& log = dump.ranks[2];
  ASSERT_FALSE(log.events.empty());
  EXPECT_GT(log.events.back().time, onset);
  ASSERT_FALSE(report.verdicts.empty());
  bool found = false;
  for (const Verdict& v : report.verdicts) {
    if (v.kind == VerdictKind::kStragglerRank && v.rank == 2) found = true;
  }
  EXPECT_TRUE(found) << report.summary();
}

TEST(ClosedLoopTest, DegradedTrunkLocalizedOnPlainChain) {
  const Topology topo = topology::make_chain({4, 4});
  topology::LinkId trunk = -1;
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    if (!topo.is_machine(topo.edge_source(2 * l)) &&
        !topo.is_machine(topo.edge_target(2 * l))) {
      trunk = l;
    }
  }
  ASSERT_GE(trunk, 0);
  faults::FaultPlan plan;
  plan.add(faults::FaultEvent::link_degrade(0, trunk, 0.3));
  const AnalysisReport report = run_and_analyze(topo, plan, 4096, nullptr);
  ASSERT_FALSE(report.verdicts.empty());
  EXPECT_EQ(report.verdicts.front().kind, VerdictKind::kDegradedLink);
  EXPECT_EQ(report.verdicts.front().link, trunk);
  EXPECT_NEAR(report.verdicts.front().severity, 1.0 / 0.3, 0.5);
}

}  // namespace
}  // namespace aapc::flight
