// End-to-end integration: topology -> schedule -> sync -> lowering ->
// simulation, compared against the baselines, reproducing the paper's
// qualitative claims on its three experimental topologies.
#include <gtest/gtest.h>

#include "aapc/common/rng.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::harness {
namespace {

using topology::make_paper_topology_a;
using topology::make_paper_topology_b;
using topology::make_paper_topology_c;
using topology::Topology;

SimTime completion(const Topology& topo, const NamedAlgorithm& algo,
                   Bytes msize, const ExperimentConfig& config) {
  return run_algorithm(topo, algo, msize, config).completion;
}

TEST(IntegrationTest, StandardSuiteRunsOnPaperFigure1) {
  const Topology topo = topology::make_paper_figure1();
  const auto suite = standard_suite(topo);
  ASSERT_EQ(suite.size(), 3u);
  ExperimentConfig config;
  config.msizes = {8_KiB, 64_KiB};
  const ExperimentReport report =
      run_experiment(topo, "figure-1 cluster", suite, config);
  EXPECT_EQ(report.results.size(), 2u);
  for (const auto& row : report.results) {
    for (const RunResult& result : row) {
      EXPECT_GT(result.completion, 0) << result.algorithm;
      EXPECT_GT(result.throughput_mbps, 0) << result.algorithm;
      EXPECT_LE(result.throughput_mbps, report.peak_mbps * 1.0001)
          << result.algorithm << ": aggregate throughput cannot beat the "
          << "theoretical peak";
    }
  }
  const std::string text = report.to_string();
  EXPECT_NE(text.find("completion time"), std::string::npos);
  EXPECT_NE(text.find("Peak"), std::string::npos);
}

TEST(IntegrationTest, GeneratedRoutineWinsAtLargeSizesOnAllTopologies) {
  // The headline claim: "consistently outperforms ... when the message
  // size is sufficiently large" (§6), here at 256 KB.
  ExperimentConfig config;
  for (const Topology& topo :
       {make_paper_topology_a(), make_paper_topology_b(),
        make_paper_topology_c()}) {
    const auto suite = standard_suite(topo);
    const SimTime lam = completion(topo, suite[0], 256_KiB, config);
    const SimTime mpich = completion(topo, suite[1], 256_KiB, config);
    const SimTime ours = completion(topo, suite[2], 256_KiB, config);
    EXPECT_LT(ours, lam) << topo.machine_count() << " machines";
    EXPECT_LT(ours, mpich * 1.05)
        << "at 256 KB the generated routine must at least match MPICH";
  }
}

TEST(IntegrationTest, GeneratedRoutineLosesAtSmallSizes) {
  // §6: per-phase synchronization overhead dominates at 8 KB, where the
  // unscheduled algorithms win (Fig. 6-8, first rows).
  ExperimentConfig config;
  for (const Topology& topo :
       {make_paper_topology_a(), make_paper_topology_b(),
        make_paper_topology_c()}) {
    const auto suite = standard_suite(topo);
    const SimTime mpich = completion(topo, suite[1], 8_KiB, config);
    const SimTime ours = completion(topo, suite[2], 8_KiB, config);
    EXPECT_GT(ours, mpich);
  }
}

TEST(IntegrationTest, LamIsWorstOnTopologyAAtLargeSizes) {
  // Fig. 6: LAM's unscheduled flood collapses under 23-way incast.
  const Topology topo = make_paper_topology_a();
  const auto suite = standard_suite(topo);
  ExperimentConfig config;
  const SimTime lam = completion(topo, suite[0], 128_KiB, config);
  const SimTime mpich = completion(topo, suite[1], 128_KiB, config);
  const SimTime ours = completion(topo, suite[2], 128_KiB, config);
  EXPECT_GT(lam, 1.5 * mpich);
  EXPECT_GT(lam, 1.5 * ours);
}

TEST(IntegrationTest, MpichMatchesLamOnTopologyC) {
  // Fig. 8: MPICH's pairwise exchange ignores the chain bottleneck and
  // performs like LAM there (§6: "MPICH has a similar performance to
  // LAM").
  const Topology topo = make_paper_topology_c();
  const auto suite = standard_suite(topo);
  ExperimentConfig config;
  const SimTime lam = completion(topo, suite[0], 256_KiB, config);
  const SimTime mpich = completion(topo, suite[1], 256_KiB, config);
  EXPECT_NEAR(mpich / lam, 1.0, 0.25);
}

TEST(IntegrationTest, OursApproachesPeakOnTopologyC) {
  // Fig. 8(b): the generated routine converges toward the peak line.
  const Topology topo = make_paper_topology_c();
  const auto suite = standard_suite(topo);
  ExperimentConfig config;
  const RunResult result = run_algorithm(topo, suite[2], 256_KiB, config);
  const double peak = bytes_per_sec_to_mbps(topo.peak_aggregate_throughput(
      config.net.link_bandwidth_bytes_per_sec));
  EXPECT_GT(result.throughput_mbps, 0.6 * peak);
  EXPECT_LT(result.throughput_mbps, peak);
}

TEST(IntegrationTest, RandomTopologiesFullPipeline) {
  Rng rng(2026);
  ExperimentConfig config;
  config.msizes = {32_KiB};
  for (int trial = 0; trial < 6; ++trial) {
    topology::RandomTreeOptions options;
    options.switches = static_cast<std::int32_t>(rng.next_in(1, 5));
    options.machines = static_cast<std::int32_t>(rng.next_in(4, 14));
    const Topology topo = topology::make_random_tree(rng, options);
    const auto suite = standard_suite(topo);
    const ExperimentReport report =
        run_experiment(topo, "random", suite, config);
    for (const RunResult& result : report.results[0]) {
      EXPECT_GT(result.completion, 0) << result.algorithm;
    }
  }
}

TEST(IntegrationTest, ThroughputDefinitionMatchesPaper) {
  // Aggregate throughput = |M| (|M|-1) msize / completion.
  const Topology topo = topology::make_paper_figure1();
  const auto suite = standard_suite(topo);
  ExperimentConfig config;
  const RunResult result = run_algorithm(topo, suite[2], 64_KiB, config);
  const double expected_mbps = bytes_per_sec_to_mbps(
      6.0 * 5.0 * 65536.0 / result.completion);
  EXPECT_NEAR(result.throughput_mbps, expected_mbps, 1e-6);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const Topology topo = make_paper_topology_b();
  const auto suite = standard_suite(topo);
  ExperimentConfig config;
  const SimTime first = completion(topo, suite[2], 64_KiB, config);
  const SimTime second = completion(topo, suite[2], 64_KiB, config);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace aapc::harness
