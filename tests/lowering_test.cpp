// Tests for schedule lowering: structure of the emitted programs, the
// three sync modes, and end-to-end execution on the simulator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/core/collectives.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::lowering {
namespace {

using mpisim::Op;
using mpisim::OpKind;
using topology::make_paper_figure1;
using topology::make_single_switch;
using topology::Topology;

simnet::NetworkParams quiet_net() {
  simnet::NetworkParams net;  // defaults, but deterministic enough
  return net;
}

mpisim::ExecutorParams no_jitter() {
  mpisim::ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  return exec;
}

TEST(LoweringTest, DataMessageCountMatchesSchedule) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  LoweringInfo info;
  const mpisim::ProgramSet set =
      lower_schedule(topo, schedule, 8_KiB, {}, &info);
  EXPECT_EQ(info.data_messages, 30);  // 6 * 5
  EXPECT_EQ(set.rank_count(), 6);
  EXPECT_GT(info.sync_messages, 0);
  EXPECT_GT(info.local_wait_dependencies, 0);
  EXPECT_GT(info.sync_edges_before_reduction,
            info.sync_messages + info.local_wait_dependencies);
}

TEST(LoweringTest, PairwiseModeExecutesAndDeliversEverything) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  LoweringInfo info;
  const mpisim::ProgramSet set =
      lower_schedule(topo, schedule, 8_KiB, {}, &info);
  mpisim::Executor executor(topo, quiet_net(), no_jitter());
  const mpisim::ExecutionResult result = executor.run(set);
  EXPECT_EQ(result.message_count, info.data_messages + info.sync_messages);
  EXPECT_GT(result.completion_time, 0);
}

TEST(LoweringTest, NoSyncModeHasNoTokens) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  LoweringOptions options;
  options.sync = SyncMode::kNone;
  LoweringInfo info;
  const mpisim::ProgramSet set =
      lower_schedule(topo, schedule, 8_KiB, options, &info);
  EXPECT_EQ(info.sync_messages, 0);
  EXPECT_EQ(info.local_wait_dependencies, 0);
  for (const mpisim::Program& program : set.programs) {
    for (const Op& op : program.ops) {
      EXPECT_NE(op.kind, OpKind::kBarrier);
      if (op.kind == OpKind::kIsend || op.kind == OpKind::kIrecv) {
        EXPECT_LT(op.tag, mpisim::kSyncTag);
      }
    }
  }
  mpisim::Executor executor(topo, quiet_net(), no_jitter());
  EXPECT_NO_THROW(executor.run(set));
}

TEST(LoweringTest, BarrierModeUsesBarriers) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  LoweringOptions options;
  options.sync = SyncMode::kBarrier;
  const mpisim::ProgramSet set =
      lower_schedule(topo, schedule, 8_KiB, options);
  std::int64_t barriers = 0;
  for (const Op& op : set.programs[0].ops) {
    if (op.kind == OpKind::kBarrier) ++barriers;
  }
  EXPECT_EQ(barriers, schedule.phase_count());
  mpisim::Executor executor(topo, quiet_net(), no_jitter());
  EXPECT_NO_THROW(executor.run(set));
}

TEST(LoweringTest, SelfCopyToggle) {
  const Topology topo = make_single_switch(3);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  LoweringOptions no_copy;
  no_copy.include_self_copy = false;
  const mpisim::ProgramSet without =
      lower_schedule(topo, schedule, 8_KiB, no_copy);
  for (const mpisim::Program& program : without.programs) {
    for (const Op& op : program.ops) {
      EXPECT_NE(op.kind, OpKind::kCopy);
    }
  }
  const mpisim::ProgramSet with = lower_schedule(topo, schedule, 8_KiB);
  EXPECT_EQ(with.programs[0].ops.front().kind, OpKind::kCopy);
}

TEST(LoweringTest, PairwiseSerializationBoundsConcurrency) {
  // The whole point of the schedule + syncs: the network never sees the
  // post-everything flood. On a 8-machine switch, LAM-style saturation
  // would be 56 concurrent data flows; the lowered routine stays near
  // one send + one receive per machine (plus in-flight tokens).
  const Topology topo = make_single_switch(8);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet set = lower_schedule(topo, schedule, 64_KiB);
  mpisim::Executor executor(topo, quiet_net(), no_jitter());
  const mpisim::ExecutionResult result = executor.run(set);
  EXPECT_LE(result.network_stats.max_concurrent_flows, 3 * 8);
}

TEST(LoweringTest, ReductionToggleChangesTokenCount) {
  const Topology topo = make_single_switch(6);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  LoweringInfo reduced;
  lower_schedule(topo, schedule, 8_KiB, {}, &reduced);
  LoweringOptions no_reduction;
  no_reduction.reduce_redundant_syncs = false;
  LoweringInfo full;
  lower_schedule(topo, schedule, 8_KiB, no_reduction, &full);
  EXPECT_GT(full.sync_messages, reduced.sync_messages);
  // Both still execute correctly.
  mpisim::Executor executor(topo, quiet_net(), no_jitter());
  EXPECT_NO_THROW(
      executor.run(lower_schedule(topo, schedule, 8_KiB, no_reduction)));
}

TEST(LoweringTest, SyncTokensAreSmall) {
  const Topology topo = make_single_switch(4);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  LoweringOptions options;
  options.sync_message_bytes = 4;
  const mpisim::ProgramSet set =
      lower_schedule(topo, schedule, 64_KiB, options);
  for (const mpisim::Program& program : set.programs) {
    for (const Op& op : program.ops) {
      if ((op.kind == OpKind::kIsend || op.kind == OpKind::kIrecv) &&
          op.tag >= mpisim::kSyncTag) {
        EXPECT_EQ(op.bytes, 4u);
      }
    }
  }
}

TEST(LoweringTest, InvalidInputsRejected) {
  const Topology topo = make_single_switch(3);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  EXPECT_THROW(lower_schedule(topo, schedule, 0), aapc::InvalidArgument);
}

TEST(LoweringTest, CorruptedScheduleFailsContentionCheck) {
  // Duplicate one message into a foreign phase: both copies now claim
  // the same directed links in that phase, so the always-on runtime
  // invariant must reject the schedule before any program is emitted.
  const Topology topo = make_paper_figure1();
  core::Schedule schedule = core::build_aapc_schedule(topo);
  ASSERT_GE(schedule.phase_count(), 2);
  const std::int32_t last = schedule.phase_count() - 1;
  // Appending to the final phase keeps the arena phase-sorted.
  const core::Message stray = schedule.phase(last)[0].message;
  schedule.messages.push_back({stray, last, core::MessageScope::kGlobal});
  schedule.phase_begin.back() += 1;
  try {
    lower_schedule(topo, schedule, 8_KiB);
    FAIL() << "expected InvalidArgument for a contended phase";
  } catch (const aapc::InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("not contention-free"), std::string::npos) << what;
    EXPECT_NE(what.find("phase"), std::string::npos) << what;
  }
  // The escape hatch: opting out of verification lowers it anyway (for
  // ablations that intentionally build contended schedules).
  LoweringOptions lax;
  lax.verify_schedule = false;
  EXPECT_NO_THROW(lower_schedule(topo, schedule, 8_KiB, lax));
}

// Irregular lowering over sparse-alltoall schedules
// (core::build_sparse_alltoall_schedule): the schedules only carry the
// induced message set, so the irregular path is the natural lowering —
// per-pair sizes come from the sparse application's size matrix.

std::vector<Bytes> uniform_matrix(std::int32_t n, Bytes bytes) {
  return std::vector<Bytes>(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), bytes);
}

TEST(LoweringSparseTest, EmptyAndSelfOnlyNeighborSetsLowerToNoTraffic) {
  const Topology topo = make_single_switch(4);
  core::SparseNeighbors self_only(4);
  for (topology::Rank r = 0; r < 4; ++r) {
    self_only[static_cast<std::size_t>(r)] = {r};
  }
  for (const core::SparseNeighbors& neighbors :
       {core::SparseNeighbors(4), self_only}) {
    const core::Schedule schedule =
        core::build_sparse_alltoall_schedule(topo, neighbors);
    ASSERT_EQ(schedule.message_count(), 0);
    LoweringInfo info;
    const mpisim::ProgramSet set = lower_schedule_irregular(
        topo, schedule, uniform_matrix(4, 8_KiB), {}, &info);
    EXPECT_EQ(info.data_messages, 0);
    EXPECT_EQ(info.sync_messages, 0);
    EXPECT_EQ(set.rank_count(), 4);
    // The degenerate programs still execute cleanly.
    mpisim::Executor executor(topo, quiet_net(), no_jitter());
    const mpisim::ExecutionResult result = executor.run(set);
    EXPECT_TRUE(result.integrity.ok()) << result.integrity.summary();
    EXPECT_EQ(result.integrity.expected, result.message_count);
  }
}

TEST(LoweringSparseTest, RingNeighborhoodExecutesWithIrregularSizes) {
  const Topology topo = make_paper_figure1();
  const std::int32_t n = topo.machine_count();
  core::SparseNeighbors ring(static_cast<std::size_t>(n));
  for (topology::Rank r = 0; r < n; ++r) {
    ring[static_cast<std::size_t>(r)] = {(r + 1) % n, (r + n - 1) % n};
  }
  const core::Schedule schedule =
      core::build_sparse_alltoall_schedule(topo, ring);
  // Asymmetric halo: forward neighbor gets 4x the backward payload.
  std::vector<Bytes> matrix = uniform_matrix(n, 2_KiB);
  for (topology::Rank r = 0; r < n; ++r) {
    matrix[static_cast<std::size_t>(r * n + (r + 1) % n)] = 8_KiB;
  }
  LoweringInfo info;
  const mpisim::ProgramSet set =
      lower_schedule_irregular(topo, schedule, matrix, {}, &info);
  EXPECT_EQ(info.data_messages, 2 * n);
  mpisim::Executor executor(topo, quiet_net(), no_jitter());
  const mpisim::ExecutionResult result = executor.run(set);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.summary();
  EXPECT_EQ(result.integrity.expected, result.message_count);
}

TEST(LoweringSparseTest, FullyDenseLowersBitIdenticallyToAapc) {
  const Topology topo = make_paper_figure1();
  const std::int32_t n = topo.machine_count();
  core::SparseNeighbors dense(static_cast<std::size_t>(n));
  for (topology::Rank r = 0; r < n; ++r) {
    for (topology::Rank v = 0; v < n; ++v) {
      if (v != r) dense[static_cast<std::size_t>(r)].push_back(v);
    }
  }
  const core::Schedule sparse =
      core::build_sparse_alltoall_schedule(topo, dense);
  const core::Schedule aapc = core::build_aapc_schedule(topo);
  const std::vector<Bytes> matrix = uniform_matrix(n, 8_KiB);
  const mpisim::ProgramSet from_sparse =
      lower_schedule_irregular(topo, sparse, matrix);
  const mpisim::ProgramSet from_aapc =
      lower_schedule_irregular(topo, aapc, matrix);
  ASSERT_EQ(from_sparse.rank_count(), from_aapc.rank_count());
  for (std::int32_t r = 0; r < from_sparse.rank_count(); ++r) {
    EXPECT_EQ(from_sparse.programs[static_cast<std::size_t>(r)].to_string(),
              from_aapc.programs[static_cast<std::size_t>(r)].to_string())
        << "rank " << r;
  }
}

}  // namespace
}  // namespace aapc::lowering
