// Executes the generated C routine for real: compiles the emitted
// MPI_Alltoall for the paper's Figure-1 cluster together with a
// thread-backed mock MPI runtime, runs all six ranks, and checks every
// byte of every receive buffer. This closes the loop on codegen — not
// just "compiles", but "moves the right data".
//
// The mock runtime implements eager, unlimited-buffering semantics
// (Isend completes immediately after depositing into a mailbox;
// Irecv/Wait block until a (src, dst, tag) match arrives), which is a
// legal MPI execution and sufficient to validate data movement and
// deadlock-freedom of the generated program order.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "aapc/codegen/codegen.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::codegen {
namespace {

constexpr const char* kMockRuntime = R"RAW(
// Thread-backed mock MPI: one std::thread per rank, a global mailbox
// keyed by (src, dst, tag). Eager sends, blocking receives.
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

typedef long MPI_Aint;
typedef int MPI_Datatype;
typedef int MPI_Comm;
typedef int MPI_Request;
typedef struct { int ignored; } MPI_Status;
#define MPI_SUCCESS 0
#define MPI_ERR_COMM 5
#define MPI_ERR_RANK 6
#define MPI_CHAR 1
#define MPI_STATUS_IGNORE ((MPI_Status*)0)
#define MPI_STATUSES_IGNORE ((MPI_Status*)0)

namespace mock {

int world_size = 0;
thread_local int my_rank = -1;

std::mutex mailbox_mutex;
std::condition_variable mailbox_cv;
std::map<std::tuple<int, int, int>, std::deque<std::vector<char>>> mailbox;

// Requests are completed-at-creation for sends; receives block in
// MPI_Wait. Each thread tracks its pending receives by request id.
struct PendingRecv {
  void* buffer;
  size_t bytes;
  int src;
  int tag;
  bool done;
};
thread_local std::vector<PendingRecv> pending;

void drain_if_ready(PendingRecv& recv) {
  // mailbox_mutex held.
  auto it = mailbox.find({recv.src, my_rank, recv.tag});
  if (it == mailbox.end() || it->second.empty()) return;
  const std::vector<char>& payload = it->second.front();
  if (payload.size() != recv.bytes) {
    std::fprintf(stderr, "size mismatch %zu != %zu (src %d tag %d)\n",
                 payload.size(), recv.bytes, recv.src, recv.tag);
    std::abort();
  }
  std::memcpy(recv.buffer, payload.data(), payload.size());
  it->second.pop_front();
  recv.done = true;
}

}  // namespace mock

int MPI_Comm_rank(MPI_Comm, int* rank) {
  *rank = mock::my_rank;
  return MPI_SUCCESS;
}
int MPI_Comm_size(MPI_Comm, int* size) {
  *size = mock::world_size;
  return MPI_SUCCESS;
}
int MPI_Type_get_extent(MPI_Datatype, MPI_Aint* lb, MPI_Aint* extent) {
  *lb = 0;
  *extent = 1;  // MPI_CHAR
  return MPI_SUCCESS;
}
int MPI_Isend(const void* buffer, int count, MPI_Datatype, int dst, int tag,
              MPI_Comm, MPI_Request* request) {
  {
    std::lock_guard<std::mutex> lock(mock::mailbox_mutex);
    auto& queue = mock::mailbox[{mock::my_rank, dst, tag}];
    queue.emplace_back(static_cast<const char*>(buffer),
                       static_cast<const char*>(buffer) + count);
  }
  mock::mailbox_cv.notify_all();
  *request = -1;  // send requests complete immediately
  return MPI_SUCCESS;
}
int MPI_Irecv(void* buffer, int count, MPI_Datatype, int src, int tag,
              MPI_Comm, MPI_Request* request) {
  mock::pending.push_back(
      {buffer, static_cast<size_t>(count), src, tag, false});
  *request = static_cast<int>(mock::pending.size()) - 1;
  return MPI_SUCCESS;
}
int MPI_Wait(MPI_Request* request, MPI_Status*) {
  if (*request < 0) return MPI_SUCCESS;  // completed send
  mock::PendingRecv& recv =
      mock::pending[static_cast<size_t>(*request)];
  std::unique_lock<std::mutex> lock(mock::mailbox_mutex);
  mock::mailbox_cv.wait(lock, [&recv] {
    if (!recv.done) mock::drain_if_ready(recv);
    return recv.done;
  });
  return MPI_SUCCESS;
}
int MPI_Waitall(int, MPI_Request*, MPI_Status*) {
  std::unique_lock<std::mutex> lock(mock::mailbox_mutex);
  mock::mailbox_cv.wait(lock, [] {
    for (auto& recv : mock::pending) {
      if (!recv.done) mock::drain_if_ready(recv);
      if (!recv.done) return false;
    }
    return true;
  });
  return MPI_SUCCESS;
}
int MPI_Barrier(MPI_Comm) {
  static std::mutex barrier_mutex;
  static std::condition_variable barrier_cv;
  static int arrived = 0;
  static int generation = 0;
  std::unique_lock<std::mutex> lock(barrier_mutex);
  const int my_generation = generation;
  if (++arrived == mock::world_size) {
    arrived = 0;
    ++generation;
    barrier_cv.notify_all();
  } else {
    barrier_cv.wait(lock,
                    [my_generation] { return generation != my_generation; });
  }
  return MPI_SUCCESS;
}

#include "generated_alltoall.c"

int main() {
  constexpr int kRanks = 6;
  constexpr int kBlock = 64;  // bytes per (src, dst) block
  mock::world_size = kRanks;

  char send[kRanks][kRanks * kBlock];
  char recv[kRanks][kRanks * kBlock];
  for (int rank = 0; rank < kRanks; ++rank) {
    for (int dst = 0; dst < kRanks; ++dst) {
      std::memset(&send[rank][dst * kBlock],
                  (rank * kRanks + dst) % 251, kBlock);
    }
    std::memset(recv[rank], 0xEE, sizeof(recv[rank]));
  }

  std::vector<std::thread> threads;
  std::vector<int> status(kRanks, -1);
  for (int rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([rank, &send, &recv, &status] {
      mock::my_rank = rank;
      status[rank] = AAPC_Alltoall(send[rank], kBlock, MPI_CHAR,
                                   recv[rank], kBlock, MPI_CHAR, 0);
      {
        // Pending receives are thread-local; clear before exit.
        std::lock_guard<std::mutex> lock(mock::mailbox_mutex);
        mock::pending.clear();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  int failures = 0;
  for (int rank = 0; rank < kRanks; ++rank) {
    if (status[rank] != MPI_SUCCESS) {
      std::fprintf(stderr, "rank %d returned %d\n", rank, status[rank]);
      ++failures;
    }
    for (int src = 0; src < kRanks; ++src) {
      const char expected =
          static_cast<char>((src * kRanks + rank) % 251);
      for (int i = 0; i < kBlock; ++i) {
        if (recv[rank][src * kBlock + i] != expected) {
          std::fprintf(stderr,
                       "rank %d: wrong byte from src %d at offset %d\n",
                       rank, src, i);
          ++failures;
          break;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mock::mailbox_mutex);
    for (const auto& [key, queue] : mock::mailbox) {
      if (!queue.empty()) {
        std::fprintf(stderr, "leftover messages in mailbox\n");
        ++failures;
      }
    }
  }
  if (failures == 0) std::printf("ALLTOALL_OK\n");
  return failures == 0 ? 0 : 1;
}
)RAW";

void run_generated(const std::string& code, const std::string& label) {
  // Private subdirectory: codegen_test also writes generated_alltoall.c
  // into TempDir(), and under `ctest -j` the two binaries race.
  const std::string dir =
      ::testing::TempDir() + "/codegen_exec_" + label;
  std::filesystem::create_directories(dir);
  const std::string source = dir + "/mock_runtime_" + label + ".cpp";
  const std::string generated = dir + "/generated_alltoall.c";
  const std::string binary = dir + "/alltoall_exec_" + label;
  {
    std::ofstream out(generated);
    // The generated file includes <mpi.h>; the harness defines the mock
    // before including the generated source, so strip the includes.
    std::string body = code;
    const auto strip = [&body](const std::string& line) {
      const std::size_t pos = body.find(line);
      if (pos != std::string::npos) body.erase(pos, line.size());
    };
    strip("#include <mpi.h>\n");
    strip("#include <string.h>\n");
    out << body;
    std::ofstream harness(source);
    harness << kMockRuntime;
  }
  const std::string compile = "c++ -std=c++17 -pthread -O1 -I" + dir + " " +
                              source + " -o " + binary + " 2>" + dir +
                              "/compile_" + label + ".log";
  ASSERT_EQ(std::system(compile.c_str()), 0)
      << "generated routine failed to compile with the mock runtime";
  const std::string run = "timeout 60 " + binary + " > " + dir + "/run_" +
                          label + ".log 2>&1";
  ASSERT_EQ(std::system(run.c_str()), 0)
      << "generated routine produced wrong data or deadlocked";
}

TEST(CodegenExecutionTest, PairwiseRoutineMovesAllData) {
  if (std::system("which c++ > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no C++ compiler available";
  }
  const topology::Topology topo = topology::make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  run_generated(generate_alltoall_c(topo, schedule), "pairwise");
}

TEST(CodegenExecutionTest, BarrierRoutineMovesAllData) {
  if (std::system("which c++ > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no C++ compiler available";
  }
  const topology::Topology topo = topology::make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  CodegenOptions options;
  options.lowering.sync = lowering::SyncMode::kBarrier;
  run_generated(generate_alltoall_c(topo, schedule, options), "barrier");
}

}  // namespace
}  // namespace aapc::codegen
