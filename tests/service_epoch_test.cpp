// Topology-epoch feed and stale-while-revalidate tests: exact
// invalidation accounting (only hashes bound to the event's link are
// stamped, nothing is evicted), concurrent event/reader hammering (run
// under TSan in CI), and the end-to-end serving contract — a stale hit
// answers immediately with a greedy-patched artifact and a background
// weighted recompilation refreshes the entry exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "aapc/common/rng.hpp"
#include "aapc/core/greedy.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/core/weighted.hpp"
#include "aapc/service/epochs.hpp"
#include "aapc/service/service.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::service {
namespace {

using topology::LinkId;
using topology::Topology;

std::vector<TopologyEpochs::LinkBinding> bindings_for(
    const std::vector<std::pair<std::int32_t, LinkId>>& pairs) {
  std::vector<TopologyEpochs::LinkBinding> out;
  for (const auto& [physical, canonical] : pairs) {
    out.push_back({physical, canonical});
  }
  return out;
}

TEST(TopologyEpochsTest, InvalidatesExactlyTheBoundHashes) {
  TopologyEpochs epochs;
  // Hash 1 over physical links {0, 1}; hash 2 over {1, 2}; hash 3 over
  // {7} — three canonical links each.
  epochs.bind(1, bindings_for({{0, 0}, {1, 1}}), 3);
  epochs.bind(2, bindings_for({{1, 0}, {2, 1}}), 3);
  epochs.bind(3, bindings_for({{7, 2}}), 3);

  const TopologyEpochs::EventResult on0 = epochs.link_event(0, 0.5);
  EXPECT_EQ(on0.epoch, 1u);
  EXPECT_EQ(on0.invalidated, 1);  // hash 1 only
  EXPECT_EQ(epochs.invalidated_at(1), 1u);
  EXPECT_EQ(epochs.invalidated_at(2), 0u);
  EXPECT_EQ(epochs.invalidated_at(3), 0u);

  const TopologyEpochs::EventResult on1 = epochs.link_event(1, 0.25);
  EXPECT_EQ(on1.epoch, 2u);
  EXPECT_EQ(on1.invalidated, 2);  // the shared link touches both
  EXPECT_EQ(epochs.invalidated_at(1), 2u);
  EXPECT_EQ(epochs.invalidated_at(2), 2u);
  EXPECT_EQ(epochs.invalidated_at(3), 0u);

  // Rates land on the canonical links the bindings name.
  const TopologyEpochs::View v1 = epochs.view(1);
  ASSERT_EQ(v1.rates.size(), 3u);
  EXPECT_DOUBLE_EQ(v1.rates[0], 0.5);
  EXPECT_DOUBLE_EQ(v1.rates[1], 0.25);
  EXPECT_DOUBLE_EQ(v1.rates[2], 1.0);
  const TopologyEpochs::View v2 = epochs.view(2);
  ASSERT_EQ(v2.rates.size(), 3u);
  EXPECT_DOUBLE_EQ(v2.rates[0], 0.25);
  EXPECT_DOUBLE_EQ(v2.rates[1], 1.0);
  // Unaffected hash: no rate vector at all (compile rate-blind).
  EXPECT_TRUE(epochs.view(3).rates.empty());

  const TopologyEpochs::Stats stats = epochs.stats();
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.link_events, 2);
  EXPECT_EQ(stats.invalidations, 3);
  EXPECT_EQ(stats.bound_topologies, 3);
}

TEST(TopologyEpochsTest, BindSeedsRatesFromCurrentFactorsAndRestores) {
  TopologyEpochs epochs;
  epochs.link_event(4, 0.5);
  // Bound after the degrade: the binding still sees the degraded world.
  epochs.bind(9, bindings_for({{4, 0}, {5, 1}}), 2);
  const TopologyEpochs::View degraded = epochs.view(9);
  ASSERT_EQ(degraded.rates.size(), 2u);
  EXPECT_DOUBLE_EQ(degraded.rates[0], 0.5);
  // But binding alone never invalidates — no event hit this hash yet.
  EXPECT_EQ(degraded.invalidated_at, 0u);

  // Restore to nominal: still an invalidation (the schedule compiled
  // for the degraded world is no longer the best one), rates go empty.
  const TopologyEpochs::EventResult up = epochs.link_event(4, 1.0);
  EXPECT_EQ(up.invalidated, 1);
  const TopologyEpochs::View restored = epochs.view(9);
  EXPECT_EQ(restored.invalidated_at, up.epoch);
  EXPECT_TRUE(restored.rates.empty());

  // A down link clamps instead of reaching rate 0.
  epochs.link_event(5, 0.0);
  ASSERT_EQ(epochs.view(9).rates.size(), 2u);
  EXPECT_DOUBLE_EQ(epochs.view(9).rates[1], TopologyEpochs::kMinRate);
}

TEST(TopologyEpochsTest, RebindReplacesTheReverseIndex) {
  TopologyEpochs epochs;
  epochs.bind(5, bindings_for({{0, 0}}), 1);
  epochs.bind(5, bindings_for({{1, 0}}), 1);  // re-election moved it
  EXPECT_EQ(epochs.link_event(0, 0.5).invalidated, 0);
  EXPECT_EQ(epochs.link_event(1, 0.5).invalidated, 1);
  epochs.unbind(5);
  EXPECT_EQ(epochs.link_event(1, 0.25).invalidated, 0);
  // The stamp survives unbinding: entries compiled before the event
  // must not become fresh again just because the binding went away.
  EXPECT_EQ(epochs.invalidated_at(5), 2u);
}

TEST(TopologyEpochsTest, ConcurrentEventHammerKeepsExactCounters) {
  // N threads each fire M events on their own link; every link is bound
  // to one private hash plus one hash spanning all links. Counters must
  // come out exact, the unaffected hash must never be stamped, and
  // concurrent view() readers must see internally-consistent snapshots
  // (TSan guards the data-race side of this in CI).
  constexpr int kThreads = 8;
  constexpr int kEvents = 200;
  TopologyEpochs epochs;
  std::vector<TopologyEpochs::LinkBinding> all;
  for (std::int32_t t = 0; t < kThreads; ++t) {
    epochs.bind(static_cast<std::uint64_t>(100 + t),
                bindings_for({{t, 0}}), 1);
    all.push_back({t, t});
  }
  epochs.bind(999, all, kThreads);
  epochs.bind(1000, bindings_for({{500, 0}}), 1);  // never touched

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Rng rng(7);
    while (!stop.load()) {
      const std::uint64_t hash = 100 + rng.next_below(kThreads);
      const TopologyEpochs::View view = epochs.view(hash);
      ASSERT_LE(view.invalidated_at, view.epoch);
      ASSERT_TRUE(view.rates.empty() || view.rates.size() == 1u);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&epochs, t] {
      for (int i = 0; i < kEvents; ++i) {
        epochs.link_event(t, (i % 2) == 0 ? 0.5 : 1.0);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  reader.join();

  const TopologyEpochs::Stats stats = epochs.stats();
  EXPECT_EQ(stats.epoch, static_cast<std::uint64_t>(kThreads * kEvents));
  EXPECT_EQ(stats.link_events, kThreads * kEvents);
  // Each event stamps its private hash and the all-links hash: exactly
  // two invalidations per event, none anywhere else.
  EXPECT_EQ(stats.invalidations, 2 * kThreads * kEvents);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_GT(epochs.invalidated_at(static_cast<std::uint64_t>(100 + t)), 0u);
  }
  EXPECT_GT(epochs.invalidated_at(999), 0u);
  EXPECT_EQ(epochs.invalidated_at(1000), 0u);
}

/// Compiles, binds the canonical hash to the topology's own link ids
/// (the test's "physical" space), and returns the canonicalization.
Canonicalization prime_and_bind(ScheduleService& service, const Topology& topo,
                                Bytes msize) {
  const Canonicalization canon = canonicalize(topo);
  service.compile(topo, msize);
  std::vector<TopologyEpochs::LinkBinding> links;
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    links.push_back({l, canon.link_to_canonical[static_cast<std::size_t>(l)]});
  }
  service.epochs().bind(canon.hash, links, topo.link_count());
  return canon;
}

TEST(ScheduleServiceChurnTest, StaleHitAnswersImmediatelyThenRefreshes) {
  ServiceOptions options;
  options.compiler_threads = 2;
  ScheduleService service(options);
  const Topology topo = topology::make_chain({3, 3});
  const Canonicalization canon = prime_and_bind(service, topo, 4096);

  // Degrade one access link: the cached entry is now stale.
  service.epochs().link_event(0, 0.25);
  const CompiledRoutine stale = service.compile(topo, 4096);
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_EQ(stale.epoch, 1u);
  // The patched schedule is a complete, contention-free AAPC schedule.
  const core::VerifyReport report = core::verify_schedule_pattern(
      topo, stale.schedule, core::aapc_pattern(topo),
      core::VerifyOptions{.require_optimal_phase_count = false});
  EXPECT_TRUE(report.ok) << report.summary();

  // The background revalidation replaces the entry with a weighted
  // compilation; poll until it lands (bounded by the test timeout).
  CompiledRoutine fresh = service.compile(topo, 4096);
  for (int i = 0; i < 2000 && fresh.stale; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fresh = service.compile(topo, 4096);
  }
  ASSERT_FALSE(fresh.stale);
  EXPECT_TRUE(fresh.cache_hit);
  ASSERT_EQ(static_cast<std::int32_t>(fresh.entry->link_rates.size()),
            topo.link_count());
  // The degraded rate reached the canonical link the binding named.
  const LinkId canonical_link = canon.link_to_canonical[0];
  EXPECT_DOUBLE_EQ(
      fresh.entry->link_rates[static_cast<std::size_t>(canonical_link)], 0.25);

  const MetricsSnapshot metrics = service.metrics();
  EXPECT_GE(metrics.stale_hits, 1);
  EXPECT_GE(metrics.patches, 1);
  EXPECT_GE(metrics.revalidations, 1);
  EXPECT_EQ(metrics.revalidation_failures, 0);
  EXPECT_EQ(metrics.epoch, 1);
  EXPECT_EQ(metrics.invalidations, 1);
}

TEST(ScheduleServiceChurnTest, UntouchedTopologiesKeepTheirEntries) {
  ScheduleService service;
  const Topology affected = topology::make_chain({3, 3});
  const Topology untouched = topology::make_single_switch(5);
  prime_and_bind(service, affected, 1024);
  // Bind the second topology over a disjoint physical link range.
  const Canonicalization canon_b = canonicalize(untouched);
  service.compile(untouched, 1024);
  std::vector<TopologyEpochs::LinkBinding> links;
  for (LinkId l = 0; l < untouched.link_count(); ++l) {
    links.push_back(
        {1000 + l, canon_b.link_to_canonical[static_cast<std::size_t>(l)]});
  }
  service.epochs().bind(canon_b.hash, links, untouched.link_count());

  service.epochs().link_event(0, 0.5);
  const CompiledRoutine hit = service.compile(untouched, 1024);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_FALSE(hit.stale);
  EXPECT_EQ(hit.epoch, 1u);  // the global epoch still advanced
  EXPECT_EQ(service.metrics().invalidations, 1);
}

TEST(ScheduleServiceChurnTest, StaleHitsCoalesceIntoOneRevalidation) {
  // One worker, kept busy with a foreground compile: every stale hit in
  // the loop below runs while the revalidation is still queued, so the
  // in-flight marker must collapse them into exactly one background
  // recompilation.
  ServiceOptions options;
  options.compiler_threads = 1;
  ScheduleService service(options);
  const Topology topo = topology::make_chain({3, 3});
  prime_and_bind(service, topo, 2048);
  service.epochs().link_event(0, 0.5);

  const Topology blocker = topology::make_chain({32, 32, 32, 32});
  std::thread blocked([&] { service.compile(blocker, 2048); });
  // Wait until the worker has actually started the blocker compilation
  // (compile_ranks is set at compile_entry entry), so the revalidation
  // queued below cannot run before the stale-hit loop finishes.
  while (service.metrics_snapshot().value("aapc_service_compile_ranks") !=
         static_cast<double>(blocker.machine_count())) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 16; ++i) {
    const CompiledRoutine routine = service.compile(topo, 2048);
    EXPECT_TRUE(routine.stale);
  }
  blocked.join();
  // Counters at this point: the 16 loop hits, exactly one memoized
  // patch, and at most one (possibly not yet executed) revalidation.
  // Captured before the freshness polling below, which adds stale hits
  // of its own while the revalidation drains.
  const MetricsSnapshot during = service.metrics();
  EXPECT_EQ(during.stale_hits, 16);
  EXPECT_EQ(during.patches, 1);

  CompiledRoutine fresh = service.compile(topo, 2048);
  for (int i = 0; i < 2000 && fresh.stale; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fresh = service.compile(topo, 2048);
  }
  ASSERT_FALSE(fresh.stale);
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.patches, 1);
  EXPECT_EQ(metrics.revalidations, 1);
  EXPECT_EQ(metrics.revalidations_dropped, 0);
}

TEST(ScheduleServiceChurnTest, MissAfterInvalidationCompilesWeightedDirectly) {
  // No cached entry at event time: the first request after the event is
  // a plain miss and must compile against the degraded rates up front —
  // no stale detour.
  ScheduleService service;
  const Topology topo = topology::make_chain({3, 3});
  const Canonicalization canon = canonicalize(topo);
  std::vector<TopologyEpochs::LinkBinding> links;
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    links.push_back({l, canon.link_to_canonical[static_cast<std::size_t>(l)]});
  }
  service.epochs().bind(canon.hash, links, topo.link_count());
  service.epochs().link_event(0, 0.25);

  const CompiledRoutine routine = service.compile(topo, 4096);
  EXPECT_FALSE(routine.stale);
  EXPECT_FALSE(routine.cache_hit);
  EXPECT_EQ(routine.epoch, 1u);
  EXPECT_FALSE(routine.entry->link_rates.empty());
  // And the next request is a fresh hit — the weighted entry is cached.
  EXPECT_TRUE(service.compile(topo, 4096).cache_hit);
  EXPECT_FALSE(service.compile(topo, 4096).stale);
}

}  // namespace
}  // namespace aapc::service
