// Multi-collective schedule builders (core/collectives.hpp): DFS-ring
// pipelines for allgather/reduce-scatter hitting the bandwidth-optimal
// phase bound, sparse alltoall over induced patterns, the
// fully-dense-degenerates-to-AAPC equivalence, and end-to-end executor
// runs auditing per-kind delivery via the DeliveryLedger.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/core/collectives.hpp"
#include "aapc/core/schedule_io.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::Rank;
using topology::Topology;

std::vector<Topology> paper_topologies() {
  std::vector<Topology> topos;
  topos.push_back(topology::make_paper_figure1());
  topos.push_back(topology::make_paper_topology_a());
  topos.push_back(topology::make_paper_topology_b());
  topos.push_back(topology::make_paper_topology_c());
  return topos;
}

TEST(DfsMachineOrderTest, IsAPermutationOfAllRanks) {
  for (const Topology& topo : paper_topologies()) {
    const std::vector<Rank> order = dfs_machine_order(topo);
    ASSERT_EQ(static_cast<std::int32_t>(order.size()), topo.machine_count());
    std::vector<Rank> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (Rank r = 0; r < topo.machine_count(); ++r) {
      EXPECT_EQ(sorted[static_cast<std::size_t>(r)], r);
    }
  }
}

TEST(RingPipelineTest, AllgatherMeetsTheBandwidthOptimalPhaseBound) {
  for (const Topology& topo : paper_topologies()) {
    const Schedule schedule = build_allgather_schedule(topo);
    EXPECT_EQ(schedule.kind, CollectiveKind::kAllgather);
    const std::int64_t n = topo.machine_count();
    // n - 1 rounds of n ring messages; each round contention-free.
    EXPECT_EQ(schedule.phase_count(), n - 1);
    EXPECT_EQ(schedule.message_count(), (n - 1) * n);
    EXPECT_EQ(collective_phase_lower_bound(topo, CollectiveKind::kAllgather),
              n - 1);
    const VerifyReport report = verify_collective_schedule(topo, schedule);
    EXPECT_TRUE(report.ok) << report.summary();
  }
}

TEST(RingPipelineTest, ReduceScatterIsTheReverseRingAndOptimal) {
  for (const Topology& topo : paper_topologies()) {
    const Schedule schedule = build_reduce_scatter_schedule(topo);
    EXPECT_EQ(schedule.kind, CollectiveKind::kReduceScatter);
    EXPECT_EQ(schedule.phase_count(), topo.machine_count() - 1);
    const VerifyReport report = verify_collective_schedule(topo, schedule);
    EXPECT_TRUE(report.ok) << report.summary();
    // Dual of the forward ring: reversing every message of the
    // allgather schedule yields exactly this message multiset.
    const Schedule forward = build_allgather_schedule(topo);
    std::vector<Message> reversed;
    for (const ScheduledMessage& sm : forward.messages) {
      reversed.push_back(Message{sm.message.dst, sm.message.src});
    }
    std::vector<Message> ours;
    for (const ScheduledMessage& sm : schedule.messages) {
      ours.push_back(sm.message);
    }
    std::sort(reversed.begin(), reversed.end());
    std::sort(ours.begin(), ours.end());
    EXPECT_EQ(ours, reversed);
  }
}

TEST(RingPipelineTest, DegenerateSizes) {
  // Two machines: one round holding both directions (duplex links).
  const Topology pair = topology::make_single_switch(2);
  const Schedule two = build_allgather_schedule(pair);
  EXPECT_EQ(two.phase_count(), 1);
  EXPECT_EQ(two.message_count(), 2);
  EXPECT_TRUE(verify_collective_schedule(pair, two).ok);
  // One machine: nothing to exchange.
  const Schedule one =
      build_reduce_scatter_schedule(topology::make_single_switch(1));
  EXPECT_EQ(one.phase_count(), 0);
  EXPECT_EQ(one.kind, CollectiveKind::kReduceScatter);
}

TEST(SparseAlltoallTest, RingNeighborhoodSchedulesAndVerifies) {
  for (const Topology& topo : paper_topologies()) {
    const auto n = topo.machine_count();
    SparseNeighbors neighbors(static_cast<std::size_t>(n));
    for (Rank r = 0; r < n; ++r) {
      neighbors[static_cast<std::size_t>(r)] = {(r + 1) % n, (r + n - 1) % n};
    }
    const Schedule schedule = build_sparse_alltoall_schedule(topo, neighbors);
    EXPECT_EQ(schedule.kind, CollectiveKind::kSparseAlltoall);
    EXPECT_EQ(schedule.message_count(), 2 * n);
    const VerifyReport report =
        verify_collective_schedule(topo, schedule, neighbors);
    EXPECT_TRUE(report.ok) << report.summary();
    // Greedy is never below the pattern-load lower bound.
    EXPECT_GE(schedule.phase_count(),
              collective_phase_lower_bound(
                  topo, CollectiveKind::kSparseAlltoall, neighbors));
  }
}

TEST(SparseAlltoallTest, EmptyAndSelfOnlyNeighborSetsYieldNoMessages) {
  const Topology topo = topology::make_single_switch(5);
  const SparseNeighbors empty(5);
  EXPECT_EQ(build_sparse_alltoall_schedule(topo, empty).message_count(), 0);
  SparseNeighbors self_only(5);
  for (Rank r = 0; r < 5; ++r) {
    self_only[static_cast<std::size_t>(r)] = {r};  // dropped by normalize
  }
  const Schedule schedule = build_sparse_alltoall_schedule(topo, self_only);
  EXPECT_EQ(schedule.message_count(), 0);
  EXPECT_EQ(schedule.kind, CollectiveKind::kSparseAlltoall);
  EXPECT_TRUE(verify_collective_schedule(topo, schedule, self_only).ok);
}

TEST(SparseAlltoallTest, FullyDenseDegeneratesToAapcBitIdentically) {
  for (const Topology& topo : paper_topologies()) {
    const auto n = topo.machine_count();
    SparseNeighbors dense(static_cast<std::size_t>(n));
    for (Rank r = 0; r < n; ++r) {
      for (Rank v = 0; v < n; ++v) {
        if (v != r) dense[static_cast<std::size_t>(r)].push_back(v);
      }
    }
    const Schedule sparse = build_sparse_alltoall_schedule(topo, dense);
    const Schedule aapc = build_aapc_schedule(topo);
    // The paper's optimal path, bit for bit — only the kind differs.
    EXPECT_EQ(sparse.messages, aapc.messages);
    EXPECT_EQ(sparse.phase_begin, aapc.phase_begin);
    EXPECT_EQ(sparse.kind, CollectiveKind::kSparseAlltoall);
    EXPECT_EQ(aapc.kind, CollectiveKind::kAlltoall);
  }
}

TEST(SparseAlltoallTest, NormalizeRejectsBadShapes) {
  const Topology topo = topology::make_single_switch(4);
  EXPECT_THROW(build_sparse_alltoall_schedule(topo, SparseNeighbors(3)),
               InvalidArgument);
  SparseNeighbors out_of_range(4);
  out_of_range[0] = {7};
  EXPECT_THROW(build_sparse_alltoall_schedule(topo, out_of_range),
               InvalidArgument);
}

TEST(SparseNeighborsTest, HashAndRelabelAreConsistent) {
  SparseNeighbors a{{1, 2}, {0}, {0, 1}};
  SparseNeighbors b{{1, 2}, {0}, {0, 1}};
  SparseNeighbors c{{1, 2}, {0}, {1}};
  EXPECT_EQ(sparse_pattern_hash(a), sparse_pattern_hash(b));
  EXPECT_NE(sparse_pattern_hash(a), sparse_pattern_hash(c));
  // Relabeling through the identity is a no-op; through a rotation it
  // permutes both the index and the members.
  EXPECT_EQ(relabel_neighbors(a, {0, 1, 2}), a);
  const SparseNeighbors rotated = relabel_neighbors(a, {1, 2, 0});
  const SparseNeighbors want{{1, 2}, {0, 2}, {1}};  // sets stay sorted
  EXPECT_EQ(rotated, want);
}

TEST(CollectiveKindTest, NamesParseAndValidate) {
  for (std::uint8_t raw = 0; raw < 4; ++raw) {
    EXPECT_TRUE(collective_kind_valid(raw));
    const auto kind = static_cast<CollectiveKind>(raw);
    EXPECT_EQ(parse_collective_kind(collective_kind_name(kind)), kind);
  }
  EXPECT_FALSE(collective_kind_valid(4));
  EXPECT_FALSE(collective_kind_valid(255));
  EXPECT_THROW(parse_collective_kind("gather"), InvalidArgument);
}

TEST(CollectiveKindTest, SurvivesRelabelAndJsonRoundTrip) {
  const Topology topo = topology::make_single_switch(4);
  const Schedule schedule = build_allgather_schedule(topo);
  const Schedule relabeled = relabel_schedule(schedule, {2, 3, 0, 1});
  EXPECT_EQ(relabeled.kind, CollectiveKind::kAllgather);
  const std::string json = schedule_to_json(schedule, topo.machine_count());
  EXPECT_NE(json.find("\"kind\":\"allgather\""), std::string::npos);
  const Schedule back = schedule_from_json(json, topo.machine_count());
  EXPECT_EQ(back.kind, CollectiveKind::kAllgather);
  EXPECT_EQ(back.messages, schedule.messages);
  // Alltoall stays implicit so pre-kind JSON is byte-stable.
  const std::string aapc_json =
      schedule_to_json(build_aapc_schedule(topo), topo.machine_count());
  EXPECT_EQ(aapc_json.find("kind"), std::string::npos);
  EXPECT_EQ(schedule_from_json(aapc_json, topo.machine_count()).kind,
            CollectiveKind::kAlltoall);
}

// End-to-end: lower each kind and run it on the fluid executor; the
// DeliveryLedger audits exactly-once delivery of every transfer, and
// the data-message count must equal the kind's pattern size.
TEST(CollectiveExecutionTest, EveryKindDeliversExactlyOnce) {
  const Topology topo = topology::make_star({3, 3, 2});
  const auto n = static_cast<std::int64_t>(topo.machine_count());
  SparseNeighbors ring(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    ring[static_cast<std::size_t>(r)] = {
        static_cast<Rank>((r + 1) % n),
        static_cast<Rank>((r + n - 1) % n)};
  }
  struct Case {
    Schedule schedule;
    std::int64_t expected_messages;
  };
  const std::vector<Case> cases{
      {build_allgather_schedule(topo), (n - 1) * n},
      {build_reduce_scatter_schedule(topo), (n - 1) * n},
      {build_sparse_alltoall_schedule(topo, ring), 2 * n},
      {build_aapc_schedule(topo), n * (n - 1)},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.schedule.message_count(), c.expected_messages)
        << collective_kind_name(c.schedule.kind);
    const mpisim::ProgramSet programs =
        lowering::lower_schedule(topo, c.schedule, 16384);
    mpisim::ExecutorParams exec;
    exec.wakeup_jitter_max = 0;
    mpisim::Executor executor(topo, {}, exec);
    const mpisim::ExecutionResult result = executor.run(programs);
    EXPECT_TRUE(result.integrity.ok())
        << collective_kind_name(c.schedule.kind) << ": "
        << result.integrity.summary();
    // Every matched transfer (data + sync) is stamped and audited.
    EXPECT_EQ(result.integrity.expected, result.message_count);
    EXPECT_EQ(result.integrity.delivered, result.message_count);
    // The audit covers at least one entry per scheduled data message.
    EXPECT_GE(result.integrity.expected, c.expected_messages);
  }
}

}  // namespace
}  // namespace aapc::core
