// Regression tests for the simulation-core fast path: event ordering
// under kTimeEpsilon ties, pending-activation heap behavior, hot-path
// statistics counters, and a bit-exact determinism golden pinning
// executor completion times on the three paper topologies.
#include <gtest/gtest.h>

#include <vector>

#include "aapc/baselines/baselines.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::simnet {
namespace {

using topology::make_single_switch;
using topology::Topology;

/// Params with every loss mechanism disabled: exact max-min fair sharing
/// at 12.5 MB/s per direction.
NetworkParams ideal_params() {
  NetworkParams params;
  params.protocol_efficiency = 1.0;
  params.node_contention_penalty = 0.0;
  params.trunk_contention_penalty = 0.0;
  params.node_efficiency_floor = 1.0;
  params.trunk_efficiency_floor = 1.0;
  params.duplex_efficiency = 1.0;
  params.switch_fabric_links = 1e9;
  return params;
}

/// Runs the network until idle; returns completion times per flow id.
std::vector<SimTime> drain(FluidNetwork& network, std::size_t flow_count) {
  std::vector<SimTime> completion(flow_count, -1);
  std::vector<FlowId> completed;
  while (!network.idle()) {
    const SimTime next = network.next_event_time();
    EXPECT_NE(next, kNever) << "network stuck with active flows";
    if (next == kNever) break;
    completed.clear();
    network.advance_to(next, completed);
    for (const FlowId id : completed) {
      completion[static_cast<std::size_t>(id)] = network.now();
    }
  }
  return completion;
}

TEST(FastPathTest, ZeroByteFlowCompletesImmediately) {
  const Topology topo = make_single_switch(3);
  FluidNetwork network(topo, ideal_params());
  const FlowId zero =
      network.add_flow(topo.machine_node(0), topo.machine_node(1), 0, 0);
  const FlowId bulk = network.add_flow(topo.machine_node(1),
                                       topo.machine_node(2), 12'500'000, 0);
  const std::vector<SimTime> done = drain(network, 2);
  // The zero-byte flow must complete at the very first event (time ~0),
  // not be deferred past the bulk transfer.
  EXPECT_NEAR(done[static_cast<std::size_t>(zero)], 0.0, 1e-9);
  EXPECT_NEAR(done[static_cast<std::size_t>(bulk)], 1.0, 1e-9);
  EXPECT_EQ(network.stats().completed_flows, 2);
}

TEST(FastPathTest, ZeroByteFlowWithFutureStart) {
  const Topology topo = make_single_switch(2);
  FluidNetwork network(topo, ideal_params());
  const FlowId id =
      network.add_flow(topo.machine_node(0), topo.machine_node(1), 0, 0.5);
  EXPECT_NEAR(network.next_event_time(), 0.5, 1e-12);
  const std::vector<SimTime> done = drain(network, 1);
  EXPECT_NEAR(done[static_cast<std::size_t>(id)], 0.5, 1e-9);
}

TEST(FastPathTest, SimultaneousActivationsWithinEpsilonBatch) {
  // Two pending flows whose start times differ by less than kTimeEpsilon
  // (1e-12) must activate in the same event batch and share the uplink
  // from the very first instant — identical completion times.
  const Topology topo = make_single_switch(3);
  FluidNetwork network(topo, ideal_params());
  const FlowId a = network.add_flow(topo.machine_node(0),
                                    topo.machine_node(1), 12'500'000, 1.0);
  const FlowId b =
      network.add_flow(topo.machine_node(0), topo.machine_node(2), 12'500'000,
                       1.0 + 1e-13);
  const std::vector<SimTime> done = drain(network, 2);
  EXPECT_EQ(done[static_cast<std::size_t>(a)],
            done[static_cast<std::size_t>(b)]);
  // Shared source uplink: 12.5 MB each at 6.25 MB/s, starting at t=1.
  EXPECT_NEAR(done[static_cast<std::size_t>(a)], 3.0, 1e-9);
}

TEST(FastPathTest, PendingFlowsActivateOutOfInsertionOrder) {
  // Insert pending flows with descending start times; the activation
  // heap must release them in time order regardless of insertion order.
  const Topology topo = make_single_switch(4);
  FluidNetwork network(topo, ideal_params());
  const FlowId late = network.add_flow(topo.machine_node(0),
                                       topo.machine_node(1), 1'250'000, 2.0);
  const FlowId mid = network.add_flow(topo.machine_node(1),
                                      topo.machine_node(2), 1'250'000, 1.0);
  const FlowId early = network.add_flow(topo.machine_node(2),
                                        topo.machine_node(3), 1'250'000, 0.5);
  EXPECT_NEAR(network.next_event_time(), 0.5, 1e-12);
  const std::vector<SimTime> done = drain(network, 3);
  // Disjoint machine pairs: each runs at full rate for 0.1s after its
  // start.
  EXPECT_NEAR(done[static_cast<std::size_t>(early)], 0.6, 1e-9);
  EXPECT_NEAR(done[static_cast<std::size_t>(mid)], 1.1, 1e-9);
  EXPECT_NEAR(done[static_cast<std::size_t>(late)], 2.1, 1e-9);
  EXPECT_EQ(network.stats().pending_heap_pushes, 3);
}

TEST(FastPathTest, StatsCountersTrackHotPathStructures) {
  const Topology topo = make_single_switch(3);
  FluidNetwork network(topo, ideal_params());
  // One immediate flow (no heap push), one deferred (one heap push).
  network.add_flow(topo.machine_node(0), topo.machine_node(1), 1'000, 0);
  network.add_flow(topo.machine_node(1), topo.machine_node(2), 1'000, 0.5);
  const NetworkStats& stats = network.stats();
  EXPECT_EQ(stats.pending_heap_pushes, 1);
  // The immediate flow occupies 5 capacity rows on a single switch: two
  // path edges, both endpoint machine rows, and the switch fabric row.
  network.next_event_time();  // force a rate recomputation
  EXPECT_EQ(stats.max_active_rows, 5);
  drain(network, 2);
  EXPECT_EQ(stats.completed_flows, 2);
  EXPECT_EQ(stats.max_concurrent_flows, 1);
  EXPECT_GE(stats.rate_recomputations, 2);
}

// Determinism golden: Executor::run completion times on the three paper
// topologies, for both the generated schedule and the Lam baseline,
// pinned bit-exactly to the values produced by the original
// (pre-fast-path) simulator core. Any change to event ordering, rate
// arithmetic, or tie-breaking under kTimeEpsilon shows up here as a
// bit-level difference.
struct GoldenCase {
  const char* name;
  Topology (*make)();
  double ours;
  double lam;
};

TEST(DeterminismGoldenTest, PaperTopologyCompletionTimesBitExact) {
  const GoldenCase cases[] = {
      {"paper_a", topology::make_paper_topology_a,
       0x1.b6a6c3434f4eep-3, 0x1.3cbc3de5a5149p-2},
      {"paper_b", topology::make_paper_topology_b,
       0x1.7a2f4854f6c13p+0, 0x1.a49beb85dcddap+0},
      {"paper_c", topology::make_paper_topology_c,
       0x1.fbf33b3d06906p+0, 0x1.18367224e4f19p+1},
  };
  for (const GoldenCase& c : cases) {
    const Topology topo = c.make();
    const core::Schedule schedule = core::build_aapc_schedule(topo);
    const mpisim::ProgramSet ours =
        lowering::lower_schedule(topo, schedule, 65536);
    const mpisim::ProgramSet lam =
        baselines::lam_alltoall(topo.machine_count(), 65536);
    mpisim::Executor executor(topo, {}, {});
    EXPECT_EQ(executor.run(ours).completion_time, c.ours)
        << c.name << " (generated schedule) completion time drifted";
    EXPECT_EQ(executor.run(lam).completion_time, c.lam)
        << c.name << " (Lam baseline) completion time drifted";
  }
}

}  // namespace
}  // namespace aapc::simnet
