// Sharded LRU schedule-cache unit tests: hit/miss accounting, LRU
// eviction order, collision guarding, and concurrent access.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aapc/service/schedule_cache.hpp"

namespace aapc::service {
namespace {

CompiledEntryPtr entry_with_form(const std::string& form) {
  auto entry = std::make_shared<CompiledEntry>();
  entry->canonical_form = form;
  return entry;
}

CacheKey key_of(std::uint64_t hash, std::uint32_t size_class = 16) {
  return CacheKey{hash, size_class, 0};
}

TEST(ScheduleCacheTest, MissThenHit) {
  ScheduleCache cache(8, 2);
  EXPECT_EQ(cache.get(key_of(1), "A"), nullptr);
  cache.put(key_of(1), entry_with_form("A"));
  const CompiledEntryPtr hit = cache.get(key_of(1), "A");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->canonical_form, "A");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(ScheduleCacheTest, DistinctSizeClassesAreDistinctEntries) {
  ScheduleCache cache(8, 1);
  cache.put(key_of(1, 10), entry_with_form("A"));
  EXPECT_EQ(cache.get(key_of(1, 11), "A"), nullptr);
  EXPECT_NE(cache.get(key_of(1, 10), "A"), nullptr);
}

TEST(ScheduleCacheTest, HashCollisionGuard) {
  // Same key, different canonical form: the cache must refuse to serve
  // the wrong topology's artifact.
  ScheduleCache cache(8, 1);
  cache.put(key_of(42), entry_with_form("A"));
  EXPECT_EQ(cache.get(key_of(42), "B"), nullptr);
  EXPECT_NE(cache.get(key_of(42), "A"), nullptr);
}

TEST(ScheduleCacheTest, LruEvictionOrder) {
  // Single shard, capacity 2: inserting a third entry evicts the least
  // recently used, and a get() refreshes recency.
  ScheduleCache cache(2, 1);
  cache.put(key_of(1), entry_with_form("A"));
  cache.put(key_of(2), entry_with_form("B"));
  EXPECT_NE(cache.get(key_of(1), "A"), nullptr);  // A is now MRU
  cache.put(key_of(3), entry_with_form("C"));     // evicts B
  EXPECT_EQ(cache.get(key_of(2), "B"), nullptr);
  EXPECT_NE(cache.get(key_of(1), "A"), nullptr);
  EXPECT_NE(cache.get(key_of(3), "C"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(ScheduleCacheTest, ReplaceKeepsEntryCount) {
  ScheduleCache cache(4, 1);
  cache.put(key_of(1), entry_with_form("A"));
  cache.put(key_of(1), entry_with_form("A2"));
  EXPECT_EQ(cache.stats().entries, 1);
  const CompiledEntryPtr hit = cache.get(key_of(1), "A2");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->canonical_form, "A2");
}

TEST(ScheduleCacheTest, EvictionDoesNotInvalidateServedEntries) {
  ScheduleCache cache(1, 1);
  cache.put(key_of(1), entry_with_form("A"));
  const CompiledEntryPtr held = cache.get(key_of(1), "A");
  cache.put(key_of(2), entry_with_form("B"));  // evicts A
  EXPECT_EQ(cache.get(key_of(1), "A"), nullptr);
  // The shared_ptr handed out earlier stays valid.
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->canonical_form, "A");
}

TEST(ScheduleCacheTest, ShardCountClampedToCapacity) {
  ScheduleCache cache(2, 16);
  EXPECT_EQ(cache.shard_count(), 2u);
}

TEST(ScheduleCacheTest, ConcurrentMixedAccess) {
  // Hammer one cache from several threads: correctness here is "no
  // crash, no lost entries beyond capacity, counters add up" (run under
  // TSan in CI).
  ScheduleCache cache(64, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto hash = static_cast<std::uint64_t>((t * 31 + i) % 96);
        const std::string form = "F" + std::to_string(hash);
        if (cache.get(key_of(hash), form) == nullptr) {
          cache.put(key_of(hash), entry_with_form(form));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 64);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::int64_t>(kThreads) * kOpsPerThread);
  EXPECT_GT(stats.hits, 0);
}

}  // namespace
}  // namespace aapc::service
