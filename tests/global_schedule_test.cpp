// Tests for the extended ring scheduling (§4.2): Table 1, Figure 3, and
// Lemma 2 over randomized subtree-size vectors.
#include <gtest/gtest.h>

#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/global_schedule.hpp"

namespace aapc::core {
namespace {

TEST(GlobalScheduleTest, RingTable) {
  // Table 1: with k singleton subtrees, ti -> tj runs at phase j-i-1
  // (j > i) or (k-1)-(i-j) (i > j).
  const std::int32_t k = 6;
  const GlobalSchedule gs(std::vector<std::int32_t>(k, 1));
  EXPECT_EQ(gs.total_phases(), k - 1);
  for (std::int32_t i = 0; i < k; ++i) {
    for (std::int32_t j = 0; j < k; ++j) {
      if (i == j) continue;
      EXPECT_EQ(gs.group_start(i, j), GlobalSchedule::ring_phase(i, j, k))
          << "i=" << i << " j=" << j;
      EXPECT_EQ(gs.group_length(i, j), 1);
    }
  }
}

TEST(GlobalScheduleTest, PaperFigure3) {
  // Figure 3: subtree sizes {3, 2, 1} -> 9 phases with
  //   t0->t1: 0..5,  t0->t2: 6..8,  t1->t2: 0..1,
  //   t1->t0: 3..8,  t2->t0: 0..2,  t2->t1: 7..8.
  const GlobalSchedule gs({3, 2, 1});
  EXPECT_EQ(gs.total_phases(), 9);
  EXPECT_EQ(gs.group_start(0, 1), 0);
  EXPECT_EQ(gs.group_length(0, 1), 6);
  EXPECT_EQ(gs.group_start(0, 2), 6);
  EXPECT_EQ(gs.group_length(0, 2), 3);
  EXPECT_EQ(gs.group_start(1, 2), 0);
  EXPECT_EQ(gs.group_length(1, 2), 2);
  EXPECT_EQ(gs.group_start(1, 0), 3);
  EXPECT_EQ(gs.group_length(1, 0), 6);
  EXPECT_EQ(gs.group_start(2, 0), 0);
  EXPECT_EQ(gs.group_length(2, 0), 3);
  EXPECT_EQ(gs.group_start(2, 1), 7);
  EXPECT_EQ(gs.group_length(2, 1), 2);
}

TEST(GlobalScheduleTest, RejectsBadSizes) {
  EXPECT_THROW(GlobalSchedule({3}), InvalidArgument);
  EXPECT_THROW(GlobalSchedule({2, 3}), InvalidArgument);  // not sorted
  EXPECT_THROW(GlobalSchedule({2, 0}), InvalidArgument);  // empty subtree
}

TEST(GlobalScheduleTest, SendingGroupLookup) {
  const GlobalSchedule gs({3, 2, 1});
  EXPECT_EQ(gs.sending_group_at(0, 0), (std::pair<std::int32_t, std::int32_t>{0, 1}));
  EXPECT_EQ(gs.sending_group_at(0, 7), (std::pair<std::int32_t, std::int32_t>{0, 2}));
  EXPECT_EQ(gs.sending_group_at(1, 2),
            (std::pair<std::int32_t, std::int32_t>{-1, -1}));  // t1 idle
  EXPECT_EQ(gs.sending_group_at(2, 1), (std::pair<std::int32_t, std::int32_t>{2, 0}));
}

// Lemma 2 over random size vectors: (1) groups out of each subtree and
// into each subtree tile disjoint spans inside [0, P); (2) per phase, at
// most one group sends from ti and at most one receives into tj (no
// contention on root links).
class GlobalScheduleRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalScheduleRandomTest, Lemma2SpansAreExclusive) {
  Rng rng(GetParam());
  const auto k = static_cast<std::int32_t>(rng.next_in(2, 9));
  std::vector<std::int32_t> sizes(k);
  for (auto& s : sizes) s = static_cast<std::int32_t>(rng.next_in(1, 7));
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const GlobalSchedule gs(sizes);
  const std::int64_t P = gs.total_phases();

  std::int64_t total_cells = 0;
  for (std::int32_t i = 0; i < k; ++i) {
    // Sending spans of subtree i must not overlap each other.
    std::vector<char> sending(static_cast<std::size_t>(P), 0);
    // Receiving spans into subtree i must not overlap each other.
    std::vector<char> receiving(static_cast<std::size_t>(P), 0);
    for (std::int32_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const std::int64_t out_start = gs.group_start(i, j);
      ASSERT_GE(out_start, 0) << "i=" << i << " j=" << j;
      ASSERT_LE(out_start + gs.group_length(i, j), P);
      for (std::int64_t q = 0; q < gs.group_length(i, j); ++q) {
        char& cell = sending[static_cast<std::size_t>(out_start + q)];
        EXPECT_EQ(cell, 0) << "subtree " << i << " sends twice in phase "
                           << out_start + q;
        cell = 1;
        ++total_cells;
      }
      const std::int64_t in_start = gs.group_start(j, i);
      for (std::int64_t q = 0; q < gs.group_length(j, i); ++q) {
        char& cell = receiving[static_cast<std::size_t>(in_start + q)];
        EXPECT_EQ(cell, 0) << "subtree " << i << " receives twice in phase "
                           << in_start + q;
        cell = 1;
      }
    }
  }
  // Total group cells = sum over pairs |Mi| |Mj| = (Σm)² - Σm².
  std::int64_t m_total = 0;
  std::int64_t m_sq = 0;
  for (const std::int32_t s : sizes) {
    m_total += s;
    m_sq += static_cast<std::int64_t>(s) * s;
  }
  EXPECT_EQ(total_cells, m_total * m_total - m_sq);
  // And subtree 0's sending spans exactly tile [0, P).
  EXPECT_EQ(P, static_cast<std::int64_t>(sizes[0]) * (m_total - sizes[0]));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalScheduleRandomTest,
                         ::testing::Range<std::uint64_t>(0, 80));

}  // namespace
}  // namespace aapc::core
