// Deterministic fuzz tests: malformed and randomized inputs to the two
// text parsers and the packet/fluid simulators must throw typed errors
// or succeed — never crash, hang, or corrupt state.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/schedule_io.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/flight/dump.hpp"
#include "aapc/netd/wire.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

namespace aapc {
namespace {

std::string random_text(Rng& rng, std::size_t length) {
  // Characters weighted toward the grammar's alphabet so the fuzzer
  // reaches deeper parser states than pure noise would.
  constexpr char kAlphabet[] =
      "switch machine link s0 n1 {}[],:\"0123456789\n\t #-";
  std::string text;
  text.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    text.push_back(kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)]);
  }
  return text;
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, TopologyParserNeverCrashes) {
  Rng rng(GetParam() * 1337 + 1);
  for (int round = 0; round < 50; ++round) {
    const std::string text =
        random_text(rng, static_cast<std::size_t>(rng.next_in(0, 200)));
    try {
      const topology::Topology topo = topology::parse_topology(text);
      // Rarely, noise forms a valid topology; it must then behave.
      EXPECT_GE(topo.machine_count(), 1);
    } catch (const Error&) {
      // Typed rejection is the expected outcome.
    }
  }
}

TEST_P(ParserFuzzTest, ScheduleJsonParserNeverCrashes) {
  Rng rng(GetParam() * 7331 + 2);
  for (int round = 0; round < 50; ++round) {
    const std::string text =
        random_text(rng, static_cast<std::size_t>(rng.next_in(0, 150)));
    try {
      (void)core::schedule_from_json(text);
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzzTest, MutatedValidScheduleJson) {
  // Start from valid JSON and flip characters: the parser must reject
  // or accept without crashing, and accepted schedules must be safely
  // verifiable.
  Rng rng(GetParam() * 31 + 3);
  const topology::Topology topo = topology::make_single_switch(5);
  const std::string valid = core::schedule_to_json(
      core::build_aapc_schedule(topo), topo.machine_count());
  for (int round = 0; round < 60; ++round) {
    std::string mutated = valid;
    const int flips = static_cast<int>(rng.next_in(1, 4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_in(32, 126));
    }
    try {
      const core::Schedule schedule = core::schedule_from_json(mutated);
      core::VerifyOptions lax;
      lax.require_optimal_phase_count = false;
      if (static_cast<std::int32_t>(5) >= 2) {
        (void)core::verify_schedule(topo, schedule, lax);
      }
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzzTest, FaultPlanJsonParserNeverCrashes) {
  Rng rng(GetParam() * 8191 + 4);
  for (int round = 0; round < 50; ++round) {
    const std::string text =
        random_text(rng, static_cast<std::size_t>(rng.next_in(0, 180)));
    try {
      const faults::FaultPlan plan = faults::fault_plan_from_json(text);
      // Noise that parses must still survive validation or reject with
      // a typed error — and a validated plan must compile.
      plan.validate();
      (void)faults::compile(plan, simnet::NetworkParams{}, 64);
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzzTest, MutatedValidFaultPlanJson) {
  // Mutate a well-formed plan byte-by-byte: every outcome must be a
  // typed rejection or a plan that round-trips without crashing.
  Rng rng(GetParam() * 524287 + 6);
  faults::FaultPlan plan;
  plan.add(faults::FaultEvent::link_degrade(0.12, 3, 0.5))
      .add(faults::FaultEvent::link_down(0.01, 0))
      .add(faults::FaultEvent::link_up(0.05, 0))
      .add(faults::FaultEvent::node_slowdown(0.0, 2, 3.0))
      .add(faults::FaultEvent::node_crash(0.08, 1));
  const std::string valid = faults::fault_plan_to_json(plan);
  for (int round = 0; round < 60; ++round) {
    std::string mutated = valid;
    const int flips = static_cast<int>(rng.next_in(1, 4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_in(32, 126));
    }
    try {
      const faults::FaultPlan parsed = faults::fault_plan_from_json(mutated);
      parsed.validate();
      (void)faults::fault_plan_to_json(parsed);
    } catch (const Error&) {
    }
  }
}

TEST(FaultPlanNumbersTest, OverflowAndLocaleShapedInputsReject) {
  auto event_with = [](const std::string& fields) {
    return "{\"events\":[{\"kind\":\"link_down\"," + fields + "}]}";
  };
  // A plain in-range plan parses.
  EXPECT_NO_THROW(
      faults::fault_plan_from_json(event_with("\"time_ms\":1.5,\"link\":3")));

  // Out-of-range doubles must reject loudly, not saturate to HUGE_VAL
  // (the old strtod path returned inf and only ERANGE — unchecked —
  // flagged it).
  for (const char* bad :
       {"1e999", "-1e999", "1e308999", "12345678901234567890e999"}) {
    EXPECT_THROW(faults::fault_plan_from_json(event_with(
                     std::string("\"time_ms\":") + bad + ",\"link\":3")),
                 InvalidArgument)
        << bad;
  }
  // Subnormal-underflow magnitudes are also flagged out-of-range by
  // from_chars; they must reject rather than silently flush.
  EXPECT_THROW(faults::fault_plan_from_json(
                   event_with("\"time_ms\":1e-999,\"link\":3")),
               InvalidArgument);

  // Locale-shaped and non-JSON numeric spellings that strtod happily
  // accepted (or that a comma locale would mis-split) must all reject:
  // the grammar is strict JSON now, independent of LC_NUMERIC.
  for (const char* bad : {"1,5", "nan", "inf", "infinity", "0x1p3", "1.",
                          ".5", "+1", "1e", "1e+"}) {
    EXPECT_THROW(faults::fault_plan_from_json(event_with(
                     std::string("\"time_ms\":") + bad + ",\"link\":3")),
                 Error)
        << bad;
  }

  // "link"/"rank" must be exact 32-bit integers: fractions and values
  // past INT32_MAX used to be narrowing-cast into garbage ids.
  for (const char* bad : {"1.5", "3000000000", "-3000000000", "1e12"}) {
    EXPECT_THROW(faults::fault_plan_from_json(event_with(
                     std::string("\"time_ms\":1,\"link\":") + bad)),
                 InvalidArgument)
        << bad;
  }
  EXPECT_THROW(
      faults::fault_plan_from_json(
          "{\"events\":[{\"kind\":\"node_crash\",\"time_ms\":1,"
          "\"rank\":2.5}]}"),
      InvalidArgument);

  // Round trip of extreme-but-valid values stays exact through the
  // shortest-round-trip formatter.
  faults::FaultPlan plan;
  plan.add(faults::FaultEvent::link_degrade(0.1 + 0.2, 7, 0.12345678901234567))
      .add(faults::FaultEvent::node_slowdown(1e-9, 2, 1e9));
  const faults::FaultPlan reparsed =
      faults::fault_plan_from_json(faults::fault_plan_to_json(plan));
  ASSERT_EQ(reparsed.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    // The serialized time is milliseconds (x1e3 out, x1e-3 in), so the
    // seconds value can move an ulp; the factor is serialized directly
    // and must round-trip exactly.
    EXPECT_NEAR(reparsed.events[i].when, plan.events[i].when,
                1e-15 * plan.events[i].when);
    EXPECT_EQ(reparsed.events[i].factor, plan.events[i].factor);
  }
}

TEST(FaultPlanChurnSpellingsTest, ChurnSpellingsParseExactlyOrReject) {
  // The serving path's epoch feed (service/epochs.hpp) consumes the
  // three link-event kinds; a churn timeline written as FaultPlan JSON
  // must parse those exact spellings and nothing that merely looks
  // like them.
  auto plan_with = [](const std::string& event) {
    return "{\"events\":[" + event + "]}";
  };
  for (const char* good :
       {"{\"kind\":\"link_degrade\",\"time_ms\":1,\"link\":0,"
        "\"factor\":0.5}",
        "{\"kind\":\"link_down\",\"time_ms\":2,\"link\":0}",
        "{\"kind\":\"link_up\",\"time_ms\":3,\"link\":0}"}) {
    const faults::FaultPlan plan = faults::fault_plan_from_json(
        plan_with(good));
    EXPECT_NO_THROW(plan.validate()) << good;
  }

  // Near-miss kind spellings reject with typed errors — no aliasing
  // onto a known kind.
  for (const char* kind :
       {"churn", "link_churn", "epoch_bump", "reelect", "degrade",
        "link_restore", "LINK_DEGRADE", "link-degrade", "linkdegrade",
        "link_degrade ", " link_up", "link_up\\n"}) {
    EXPECT_THROW(
        faults::fault_plan_from_json(plan_with(
            "{\"kind\":\"" + std::string(kind) +
            "\",\"time_ms\":1,\"link\":0,\"factor\":0.5}")),
        Error)
        << kind;
  }

  // Epoch bookkeeping lives in the serving path, not the plan: events
  // smuggling churn-frame fields are rejected as unknown keys, so
  // format drift between the wire and the plan fails loudly.
  for (const char* field :
       {"\"epoch\":1", "\"invalidated\":2", "\"stale\":true",
        "\"reelected\":false", "\"rate\":0.5"}) {
    EXPECT_THROW(
        faults::fault_plan_from_json(plan_with(
            "{\"kind\":\"link_degrade\",\"time_ms\":1,\"link\":0,"
            "\"factor\":0.5," +
            std::string(field) + "}")),
        Error)
        << field;
  }

  // Degrade factors outside (0, 1] are rejected — the same range the
  // netd kChurnEvent decoder enforces before a frame ever reaches the
  // epoch feed.
  for (const char* factor : {"0", "-0.5", "1.5", "2"}) {
    EXPECT_THROW(
        {
          const faults::FaultPlan plan =
              faults::fault_plan_from_json(plan_with(
                  "{\"kind\":\"link_degrade\",\"time_ms\":1,\"link\":0,"
                  "\"factor\":" +
                  std::string(factor) + "}"));
          plan.validate();
        },
        InvalidArgument)
        << factor;
  }
}

TEST_P(ParserFuzzTest, TruncatedInputsRejectCleanly) {
  // Every byte-length prefix of valid inputs: the classic
  // cut-off-mid-token parser crash. All three text formats.
  Rng rng(GetParam() * 127 + 7);
  const topology::Topology topo = topology::make_single_switch(4);
  faults::FaultPlan plan;
  plan.add(faults::FaultEvent::link_down(0.01, 0))
      .add(faults::FaultEvent::node_crash(0.08, 1));
  const std::vector<std::pair<std::string, int>> inputs = {
      {topology::serialize_topology(topo), 0},
      {core::schedule_to_json(core::build_aapc_schedule(topo),
                              topo.machine_count()),
       1},
      {faults::fault_plan_to_json(plan), 2},
  };
  for (const auto& [text, which] : inputs) {
    for (int round = 0; round < 40; ++round) {
      const std::size_t cut = rng.next_below(text.size());
      const std::string truncated = text.substr(0, cut);
      try {
        switch (which) {
          case 0:
            (void)topology::parse_topology(truncated);
            break;
          case 1:
            (void)core::schedule_from_json(truncated);
            break;
          default:
            (void)faults::fault_plan_from_json(truncated);
            break;
        }
      } catch (const Error&) {
      }
    }
  }
}

/// A small but representative flight dump: three ranks, a few events
/// each (one ring overwritten), annotated-looking coordinates, a label.
std::string valid_flight_dump() {
  flight::Recorder recorder(3, flight::RecorderParams{.ring_capacity = 8});
  for (std::int32_t rank = 0; rank < 3; ++rank) {
    const int events = rank == 2 ? 20 : 5;  // rank 2's ring wraps
    for (int i = 0; i < events; ++i) {
      recorder.record(rank, flight::EventKind::kSendPost, (rank + 1) % 3,
                      i, 1024, 0.001 * i + 0.0005, 0.001 * i);
      recorder.record(rank, flight::EventKind::kSendComplete, (rank + 1) % 3,
                      i, 1024, 0.001 * i + 0.0009, 0.001 * i + 0.0005);
    }
  }
  flight::DumpMeta meta;
  meta.effective_bandwidth = 117.0e6;
  meta.send_overhead = 60e-6;
  meta.recv_overhead = 15e-6;
  meta.completion_time = 0.02;
  meta.label = "fuzz fixture";
  return flight::encode_dump(flight::snapshot(recorder, meta));
}

TEST_P(ParserFuzzTest, FlightDumpTruncatedPrefixesRejectCleanly) {
  // Every byte-length prefix of a valid dump: the binary analogue of
  // the cut-off-mid-token crash. Only the full encoding may decode.
  const std::string valid = valid_flight_dump();
  Rng rng(GetParam() * 6151 + 8);
  for (int round = 0; round < 60; ++round) {
    const std::size_t cut = rng.next_below(valid.size());
    try {
      (void)flight::decode_dump(std::string_view(valid).substr(0, cut));
      ADD_FAILURE() << "truncated dump (" << cut << " of " << valid.size()
                    << " bytes) decoded";
    } catch (const Error&) {
    }
  }
  EXPECT_NO_THROW((void)flight::decode_dump(valid));
}

TEST_P(ParserFuzzTest, FlightDumpMutatedBytesNeverCrash) {
  // Random byte smashes anywhere in the dump — header, counts, event
  // records, label. Decode must reject with a typed error or produce a
  // dump sane enough to re-encode; either way, no crash and no
  // unbounded allocation (the decoder validates counts against the
  // input size before reserving).
  const std::string valid = valid_flight_dump();
  Rng rng(GetParam() * 2903 + 9);
  for (int round = 0; round < 80; ++round) {
    std::string mutated = valid;
    const int smashes = static_cast<int>(rng.next_in(1, 5));
    for (int s = 0; s < smashes; ++s) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_below(256));
    }
    try {
      const flight::FlightDump dump = flight::decode_dump(mutated);
      (void)flight::encode_dump(dump);
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzzTest, FlightDumpRandomNoiseRejects) {
  // Pure noise — with and without a valid magic prefix so the fuzzer
  // reaches past the first check.
  Rng rng(GetParam() * 4099 + 10);
  for (int round = 0; round < 60; ++round) {
    std::string noise(rng.next_below(300), '\0');
    for (char& c : noise) c = static_cast<char>(rng.next_below(256));
    if (round % 2 == 0 && noise.size() >= 8) {
      const std::uint64_t magic = flight::kDumpMagic;
      std::memcpy(noise.data(), &magic, sizeof(magic));
    }
    try {
      (void)flight::decode_dump(noise);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 12));

class SimFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzzTest, RandomFlowsConserveBytesAndTerminate) {
  Rng rng(GetParam() * 97 + 5);
  topology::RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(1, 5));
  options.machines = static_cast<std::int32_t>(rng.next_in(2, 10));
  const topology::Topology topo = topology::make_random_tree(rng, options);
  simnet::FluidNetwork network(topo, simnet::NetworkParams{});
  double total_bytes = 0;
  const int flows = static_cast<int>(rng.next_in(1, 40));
  for (int f = 0; f < flows; ++f) {
    const auto src =
        static_cast<topology::Rank>(rng.next_below(topo.machine_count()));
    auto dst =
        static_cast<topology::Rank>(rng.next_below(topo.machine_count()));
    if (dst == src) dst = (dst + 1) % topo.machine_count();
    const Bytes bytes = 1 + rng.next_below(1'000'000);
    network.add_flow(topo.machine_node(src), topo.machine_node(dst), bytes,
                     rng.next_double() * 0.01);
    total_bytes += static_cast<double>(bytes);
  }
  std::vector<simnet::FlowId> completed;
  SimTime previous = 0;
  int steps = 0;
  while (!network.idle()) {
    const SimTime next = network.next_event_time();
    ASSERT_NE(next, simnet::kNever);
    ASSERT_GE(next, previous - 1e-12) << "time went backwards";
    previous = next;
    network.advance_to(next, completed);
    ASSERT_LT(++steps, 100000) << "simulation did not terminate";
  }
  EXPECT_EQ(static_cast<int>(completed.size()), flows);
  EXPECT_EQ(network.stats().completed_flows, flows);
  // Conservation: delivered payload equals requested payload.
  double delivered = network.aggregate_throughput() * network.now();
  EXPECT_NEAR(delivered, total_bytes, 1.0 + total_bytes * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 20));

class NetdRequestFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetdRequestFuzzTest, MutatedV3RequestsRejectTypedOrDecode) {
  Rng rng(GetParam() * 1442695040888963407ull + 17);
  netd::RequestFrame request;
  request.request_id = 5;
  request.message_bytes = 4096;
  request.tenant = "fuzz";
  request.topology_text =
      topology::serialize_topology(topology::make_single_switch(4));
  request.kind = core::CollectiveKind::kSparseAlltoall;
  request.neighbors = {{1, 2}, {0}, {3}, {0, 1, 2}};
  const std::string pristine = netd::encode_request(request);
  for (int round = 0; round < 200; ++round) {
    std::string bytes = pristine;
    // Mutate 1-4 bytes anywhere past the magic, biased toward the v3
    // tail where the kind byte and neighbor block live. Every outcome
    // must be typed: a decoded request with a valid kind,
    // InvalidArgument (bad kind byte, neighbors on a non-sparse kind),
    // or ProtocolError (bounds, truncation, framing).
    const int mutations = static_cast<int>(rng.next_in(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t low =
          rng.next_below(2) == 0 ? bytes.size() - 30 : 4;
      const std::size_t offset =
          low + rng.next_below(static_cast<std::uint64_t>(
                    bytes.size() - low));
      bytes[offset] = static_cast<char>(rng.next_below(256));
    }
    netd::FrameDecoder decoder;
    decoder.feed(bytes);
    try {
      std::optional<netd::Frame> frame = decoder.next();
      if (!frame.has_value()) continue;  // mutated length: mid-frame
      const netd::RequestFrame decoded = netd::decode_request(*frame);
      EXPECT_TRUE(core::collective_kind_valid(
          static_cast<std::uint8_t>(decoded.kind)));
    } catch (const netd::ProtocolError&) {
    } catch (const InvalidArgument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetdRequestFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace aapc
