// Unit and property tests for the tree network model (§3).
#include <gtest/gtest.h>

#include <set>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/common/units.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::topology {
namespace {

TEST(TopologyBuildTest, SingleSwitchCounts) {
  const Topology topo = make_single_switch(5);
  EXPECT_EQ(topo.machine_count(), 5);
  EXPECT_EQ(topo.switch_count(), 1);
  EXPECT_EQ(topo.link_count(), 5);
  EXPECT_EQ(topo.directed_edge_count(), 10);
}

TEST(TopologyBuildTest, RejectsDisconnected) {
  Topology topo;
  const NodeId s0 = topo.add_switch();
  const NodeId s1 = topo.add_switch();
  const NodeId m0 = topo.add_machine();
  const NodeId m1 = topo.add_machine();
  topo.add_link(m0, s0);
  topo.add_link(m1, s1);
  // 4 nodes, 2 links: not a spanning tree.
  EXPECT_THROW(topo.finalize(), InvalidArgument);
}

TEST(TopologyBuildTest, RejectsCycle) {
  Topology topo;
  const NodeId s0 = topo.add_switch();
  const NodeId s1 = topo.add_switch();
  const NodeId s2 = topo.add_switch();
  topo.add_link(s0, s1);
  topo.add_link(s1, s2);
  topo.add_link(s2, s0);
  const NodeId m = topo.add_machine();
  topo.add_link(m, s0);
  EXPECT_THROW(topo.finalize(), InvalidArgument);
}

TEST(TopologyBuildTest, RejectsMachineWithTwoLinks) {
  Topology topo;
  const NodeId s0 = topo.add_switch();
  const NodeId s1 = topo.add_switch();
  const NodeId m = topo.add_machine();
  topo.add_link(m, s0);
  topo.add_link(m, s1);
  EXPECT_THROW(topo.finalize(), InvalidArgument);
}

TEST(TopologyBuildTest, RejectsSelfLink) {
  Topology topo;
  const NodeId s0 = topo.add_switch();
  EXPECT_THROW(topo.add_link(s0, s0), InvalidArgument);
}

TEST(TopologyBuildTest, RejectsMutationAfterFinalize) {
  Topology topo = make_single_switch(3);
  EXPECT_THROW(topo.add_switch(), InvalidArgument);
}

TEST(TopologyBuildTest, QueriesRequireFinalize) {
  Topology topo;
  const NodeId s0 = topo.add_switch();
  const NodeId m = topo.add_machine();
  topo.add_link(m, s0);
  EXPECT_THROW(topo.path(m, s0), InvalidArgument);
}

TEST(TopologyBuildTest, RanksFollowInsertionOrder) {
  const Topology topo = make_paper_figure1();
  for (Rank r = 0; r < topo.machine_count(); ++r) {
    EXPECT_EQ(topo.rank_of(topo.machine_node(r)), r);
    EXPECT_EQ(topo.name(topo.machine_node(r)),
              std::string("n") + std::to_string(r));
  }
}

TEST(TopologyPathTest, PaperFigure1Path) {
  // §3: path(n0, n3) = {(n0,s0), (s0,s1), (s1,s3), (s3,n3)}.
  const Topology topo = make_paper_figure1();
  const NodeId n0 = *topo.find_node("n0");
  const NodeId n3 = *topo.find_node("n3");
  const auto path = topo.path(n0, n3);
  ASSERT_EQ(path.size(), 4u);
  const char* expected_nodes[] = {"n0", "s0", "s1", "s3", "n3"};
  for (std::size_t i = 0; i < path.size(); ++i) {
    EXPECT_EQ(topo.name(topo.edge_source(path[i])), expected_nodes[i]);
    EXPECT_EQ(topo.name(topo.edge_target(path[i])), expected_nodes[i + 1]);
  }
}

TEST(TopologyPathTest, PathToSelfIsEmpty) {
  const Topology topo = make_single_switch(3);
  EXPECT_TRUE(topo.path(topo.machine_node(0), topo.machine_node(0)).empty());
}

TEST(TopologyPathTest, ReverseEdgeFlipsEndpoints) {
  const Topology topo = make_single_switch(3);
  const NodeId m = topo.machine_node(0);
  const NodeId s = topo.neighbors(m)[0];
  const EdgeId e = topo.edge_between(m, s);
  EXPECT_EQ(topo.edge_source(topo.reverse(e)), s);
  EXPECT_EQ(topo.edge_target(topo.reverse(e)), m);
}

TEST(TopologyPathTest, PathIsContiguousAndSimpleOnRandomTrees) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeOptions options;
    options.switches = static_cast<std::int32_t>(rng.next_in(1, 8));
    options.machines = static_cast<std::int32_t>(rng.next_in(2, 20));
    const Topology topo = make_random_tree(rng, options);
    for (int pair = 0; pair < 20; ++pair) {
      const Rank a = static_cast<Rank>(rng.next_below(topo.machine_count()));
      const Rank b = static_cast<Rank>(rng.next_below(topo.machine_count()));
      if (a == b) continue;
      const NodeId u = topo.machine_node(a);
      const NodeId v = topo.machine_node(b);
      const auto path = topo.path(u, v);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(topo.edge_source(path.front()), u);
      EXPECT_EQ(topo.edge_target(path.back()), v);
      std::set<NodeId> visited{u};
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (i > 0) {
          EXPECT_EQ(topo.edge_source(path[i]), topo.edge_target(path[i - 1]));
        }
        // Simple path: no node repeats.
        EXPECT_TRUE(visited.insert(topo.edge_target(path[i])).second);
      }
      EXPECT_EQ(static_cast<std::int32_t>(path.size()), topo.path_length(u, v));
    }
  }
}

TEST(TopologyPathTest, Lemma3PathsFromSharedEndpointAreDisjoint) {
  // Lemma 3: for distinct x, y, z in a tree,
  // path(x, y) ∩ path(y, z) = ∅ (as directed edge sets).
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeOptions options;
    options.switches = static_cast<std::int32_t>(rng.next_in(1, 6));
    options.machines = static_cast<std::int32_t>(rng.next_in(3, 15));
    const Topology topo = make_random_tree(rng, options);
    for (int triple = 0; triple < 30; ++triple) {
      const NodeId x = static_cast<NodeId>(rng.next_below(topo.node_count()));
      const NodeId y = static_cast<NodeId>(rng.next_below(topo.node_count()));
      const NodeId z = static_cast<NodeId>(rng.next_below(topo.node_count()));
      if (x == y || y == z || x == z) continue;
      const auto p1 = topo.path(x, y);
      const auto p2 = topo.path(y, z);
      for (const EdgeId e1 : p1) {
        for (const EdgeId e2 : p2) {
          EXPECT_NE(e1, e2);
        }
      }
    }
  }
}

TEST(TopologyContentionTest, SharedEdgeDetected) {
  // Two messages into the same switch from distinct sources to distinct
  // destinations on another switch share the inter-switch edge.
  const Topology topo = make_chain({2, 2});
  const NodeId n0 = topo.machine_node(0);
  const NodeId n1 = topo.machine_node(1);
  const NodeId n2 = topo.machine_node(2);
  const NodeId n3 = topo.machine_node(3);
  EXPECT_TRUE(topo.paths_share_edge(n0, n2, n1, n3));
  // Opposite directions never share a directed edge.
  EXPECT_FALSE(topo.paths_share_edge(n0, n2, n3, n1));
}

TEST(TopologyLoadTest, SingleSwitchLoads) {
  const Topology topo = make_single_switch(24);
  EXPECT_EQ(topo.aapc_load(), 23);
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    EXPECT_EQ(topo.aapc_link_load(l), 23);
  }
}

TEST(TopologyLoadTest, StarLoads) {
  // Paper topology (b): 4 switches, 8 machines each, S0 the hub.
  const Topology topo = make_paper_topology_b();
  EXPECT_EQ(topo.machine_count(), 32);
  EXPECT_EQ(topo.aapc_load(), 8 * 24);
}

TEST(TopologyLoadTest, ChainLoads) {
  // Paper topology (c): the middle link carries 16 x 16.
  const Topology topo = make_paper_topology_c();
  EXPECT_EQ(topo.aapc_load(), 16 * 16);
  const LinkId bottleneck = topo.bottleneck_link();
  const auto [a, b] = topo.link_endpoints(bottleneck);
  const std::set<std::string> names{topo.name(a), topo.name(b)};
  EXPECT_TRUE(names.count("s1"));
  EXPECT_TRUE(names.count("s2"));
}

TEST(TopologyLoadTest, MachinesOnSideSumsToTotal) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeOptions options;
    options.switches = static_cast<std::int32_t>(rng.next_in(1, 8));
    options.machines = static_cast<std::int32_t>(rng.next_in(2, 24));
    const Topology topo = make_random_tree(rng, options);
    for (LinkId l = 0; l < topo.link_count(); ++l) {
      const auto [a, b] = topo.link_endpoints(l);
      EXPECT_EQ(topo.machines_on_side(l, a) + topo.machines_on_side(l, b),
                topo.machine_count());
      EXPECT_EQ(topo.aapc_link_load(l),
                static_cast<std::int64_t>(topo.machines_on_side(l, a)) *
                    topo.machines_on_side(l, b));
    }
  }
}

TEST(TopologyLoadTest, PeakThroughputMatchesPaperNumbers) {
  const double B = mbps_to_bytes_per_sec(100.0);
  // Topology (a): 24*23*100/23 = 2400 Mbps.
  EXPECT_NEAR(
      bytes_per_sec_to_mbps(make_paper_topology_a().peak_aggregate_throughput(B)),
      2400.0, 1e-9);
  // Topology (b): 32*31*100/192 ≈ 516.7 Mbps.
  EXPECT_NEAR(
      bytes_per_sec_to_mbps(make_paper_topology_b().peak_aggregate_throughput(B)),
      516.6667, 1e-3);
  // Topology (c): 32*31*100/256 = 387.5 Mbps.
  EXPECT_NEAR(
      bytes_per_sec_to_mbps(make_paper_topology_c().peak_aggregate_throughput(B)),
      387.5, 1e-9);
}

TEST(TopologyGeneratorTest, PaperFigure1Structure) {
  const Topology topo = make_paper_figure1();
  EXPECT_EQ(topo.machine_count(), 6);
  EXPECT_EQ(topo.switch_count(), 4);
  EXPECT_EQ(topo.aapc_load(), 9);  // (s0,s1): 3 x 3
}

TEST(TopologyGeneratorTest, RandomTreeRespectsMinMachines) {
  Rng rng(5);
  RandomTreeOptions options;
  options.switches = 5;
  options.machines = 20;
  options.min_machines_per_switch = 2;
  const Topology topo = make_random_tree(rng, options);
  EXPECT_EQ(topo.machine_count(), 20);
  // Every switch must host at least 2 machine links.
  for (NodeId node = 0; node < topo.node_count(); ++node) {
    if (topo.is_machine(node)) continue;
    int machine_links = 0;
    for (const NodeId w : topo.neighbors(node)) {
      if (topo.is_machine(w)) ++machine_links;
    }
    EXPECT_GE(machine_links, 2);
  }
}

TEST(TopologyGeneratorTest, FindNode) {
  const Topology topo = make_paper_topology_c();
  EXPECT_TRUE(topo.find_node("s3").has_value());
  EXPECT_TRUE(topo.find_node("n31").has_value());
  EXPECT_FALSE(topo.find_node("bogus").has_value());
}

}  // namespace
}  // namespace aapc::topology
