// Property tests for topology canonicalization (service/canonical.hpp):
// relabeling invariance of the canonical form and hash, correctness of
// the induced rank permutation (a cached schedule rewritten through it
// stays contention-free and optimal), and distinctness on a corpus of
// non-isomorphic trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/service/canonical.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::service {
namespace {

using topology::NodeId;
using topology::Rank;
using topology::Topology;

/// Rebuilds `topo` with nodes inserted in a random order and links in a
/// random order: the same physical cluster under a fresh labeling of
/// ranks, switch ids, and insertion sequence. Returns the relabeled
/// topology and `rank_map` with rank_map[old rank] = new rank.
Topology random_relabel(const Topology& topo, Rng& rng,
                        std::vector<Rank>* rank_map) {
  const std::int32_t n = topo.node_count();
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);

  Topology out;
  std::vector<NodeId> new_id(static_cast<std::size_t>(n));
  rank_map->assign(static_cast<std::size_t>(topo.machine_count()), -1);
  Rank next_rank = 0;
  for (const NodeId old : order) {
    if (topo.is_machine(old)) {
      new_id[static_cast<std::size_t>(old)] = out.add_machine();
      (*rank_map)[static_cast<std::size_t>(topo.rank_of(old))] = next_rank++;
    } else {
      new_id[static_cast<std::size_t>(old)] = out.add_switch();
    }
  }
  std::vector<topology::LinkId> links(
      static_cast<std::size_t>(topo.link_count()));
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    links[static_cast<std::size_t>(l)] = l;
  }
  rng.shuffle(links);
  for (const topology::LinkId l : links) {
    const auto [a, b] = topo.link_endpoints(l);
    out.add_link(new_id[static_cast<std::size_t>(a)],
                 new_id[static_cast<std::size_t>(b)]);
  }
  out.finalize();
  return out;
}

TEST(CanonicalTest, PaperTopologiesRoundTrip) {
  for (const Topology& topo :
       {topology::make_paper_topology_a(), topology::make_paper_topology_b(),
        topology::make_paper_topology_c(), topology::make_paper_figure1()}) {
    const Canonicalization canon = canonicalize(topo);
    EXPECT_EQ(canon.hash, canonical_hash(canon.canonical_form));
    const Topology rebuilt = build_canonical_topology(canon.canonical_form);
    EXPECT_EQ(rebuilt.machine_count(), topo.machine_count());
    EXPECT_EQ(rebuilt.switch_count(), topo.switch_count());
    EXPECT_EQ(rebuilt.link_count(), topo.link_count());
    // The rebuilt topology canonicalizes to the same form with the
    // identity permutation (it *is* the canonical labeling).
    const Canonicalization again = canonicalize(rebuilt);
    EXPECT_EQ(again.canonical_form, canon.canonical_form);
    for (Rank r = 0; r < rebuilt.machine_count(); ++r) {
      EXPECT_EQ(again.to_canonical[static_cast<std::size_t>(r)], r);
    }
    // Isomorphism invariants carry over.
    EXPECT_EQ(rebuilt.aapc_load(), topo.aapc_load());
  }
}

TEST(CanonicalTest, TinyTopologies) {
  // Two machines on one switch.
  Topology two_on_switch;
  {
    const NodeId s = two_on_switch.add_switch();
    two_on_switch.add_link(s, two_on_switch.add_machine());
    two_on_switch.add_link(s, two_on_switch.add_machine());
    two_on_switch.finalize();
  }
  // Two machines linked directly (machines are still leaves).
  Topology two_direct;
  {
    const NodeId a = two_direct.add_machine();
    const NodeId b = two_direct.add_machine();
    two_direct.add_link(a, b);
    two_direct.finalize();
  }
  const Canonicalization on_switch = canonicalize(two_on_switch);
  const Canonicalization direct = canonicalize(two_direct);
  EXPECT_NE(on_switch.canonical_form, direct.canonical_form);
  for (const Canonicalization& canon : {on_switch, direct}) {
    const Topology rebuilt = build_canonical_topology(canon.canonical_form);
    EXPECT_EQ(rebuilt.machine_count(), 2);
    EXPECT_EQ(canonicalize(rebuilt).canonical_form, canon.canonical_form);
  }
}

class CanonicalRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanonicalRandomTest, RelabelingInvariance) {
  Rng rng(GetParam() * 104729 + 7);
  topology::RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(1, 8));
  options.machines = static_cast<std::int32_t>(rng.next_in(2, 20));
  options.max_switch_degree = static_cast<std::int32_t>(rng.next_in(1, 4));
  const Topology topo = topology::make_random_tree(rng, options);
  const Canonicalization canon = canonicalize(topo);

  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Rank> rank_map;
    const Topology relabeled = random_relabel(topo, rng, &rank_map);
    const Canonicalization relabeled_canon = canonicalize(relabeled);
    // Identical canonical identity under any relabeling.
    EXPECT_EQ(relabeled_canon.canonical_form, canon.canonical_form);
    EXPECT_EQ(relabeled_canon.hash, canon.hash);
  }
}

TEST_P(CanonicalRandomTest, PermutationRewritesSchedules) {
  Rng rng(GetParam() * 7919 + 3);
  topology::RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(1, 6));
  options.machines = static_cast<std::int32_t>(rng.next_in(3, 14));
  const Topology topo = topology::make_random_tree(rng, options);
  const Canonicalization canon = canonicalize(topo);
  const Topology canonical_topo =
      build_canonical_topology(canon.canonical_form);

  // Compile once on the canonical topology — the service's cache path.
  const core::Schedule canonical_schedule =
      core::build_aapc_schedule(canonical_topo);

  // Rewriting into the caller's labeling preserves the Theorem: full
  // coverage, contention-free phases, optimal phase count — on the
  // *caller's* tree.
  const std::vector<Rank> from_canonical =
      core::invert_permutation(canon.to_canonical);
  const core::Schedule rewritten =
      core::relabel_schedule(canonical_schedule, from_canonical);
  const core::VerifyReport report = core::verify_schedule(topo, rewritten);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_NO_THROW(core::require_contention_free(topo, rewritten));
  EXPECT_EQ(rewritten.phase_count(), topo.aapc_load());

  // Round trip: mapping back through the inverse permutation restores
  // the canonical schedule phase by phase.
  const core::Schedule round_trip =
      core::relabel_schedule(rewritten, canon.to_canonical);
  ASSERT_EQ(round_trip.phase_count(), canonical_schedule.phase_count());
  EXPECT_EQ(round_trip.phase_begin, canonical_schedule.phase_begin);
  EXPECT_EQ(round_trip.messages, canonical_schedule.messages);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalRandomTest,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(CanonicalTest, NonIsomorphicCorpusDistinct) {
  // A fixed corpus of pairwise non-isomorphic trees: every pair must
  // produce distinct canonical forms (and, on this corpus, distinct
  // hashes — FNV-1a collisions at 64 bits would be astonishing here).
  std::vector<Topology> corpus;
  corpus.push_back(topology::make_single_switch(2));
  corpus.push_back(topology::make_single_switch(3));
  corpus.push_back(topology::make_single_switch(8));
  // Note: make_star({a, b, ...}) puts `a` machines on the hub itself, so
  // star({4,4}) and chain({4,4}) are the same tree — the corpus below
  // avoids such coincidences (and the paper clusters b and c, which are
  // star({8,8,8,8}) and chain({8,8,8,8})).
  corpus.push_back(topology::make_star({4, 4}));
  corpus.push_back(topology::make_star({4, 4, 4}));
  corpus.push_back(topology::make_star({8, 8, 8}));
  corpus.push_back(topology::make_star({1, 3, 4}));
  corpus.push_back(topology::make_star({2, 2, 4}));
  corpus.push_back(topology::make_chain({4, 5}));
  corpus.push_back(topology::make_chain({4, 0, 4}));
  corpus.push_back(topology::make_chain({8, 8, 8, 7}));
  corpus.push_back(topology::make_chain({2, 2, 2, 2}));
  corpus.push_back(topology::make_chain({1, 2, 3}));
  corpus.push_back(topology::make_chain({3, 2, 1, 2}));
  corpus.push_back(topology::make_binary_tree(2, 2));
  corpus.push_back(topology::make_binary_tree(3, 1));
  corpus.push_back(topology::make_binary_tree(3, 2));
  corpus.push_back(topology::make_paper_topology_a());
  corpus.push_back(topology::make_paper_topology_b());
  corpus.push_back(topology::make_paper_topology_c());
  corpus.push_back(topology::make_paper_figure1());

  std::set<std::string> forms;
  std::set<std::uint64_t> hashes;
  for (const Topology& topo : corpus) {
    const Canonicalization canon = canonicalize(topo);
    EXPECT_TRUE(forms.insert(canon.canonical_form).second)
        << "duplicate canonical form: " << canon.canonical_form;
    EXPECT_TRUE(hashes.insert(canon.hash).second);
  }
}

TEST(CanonicalTest, StarArmOrderIsIrrelevant) {
  // Same hub, arm switches listed in a different order: isomorphic.
  const Canonicalization a = canonicalize(topology::make_star({2, 5, 9}));
  const Canonicalization b = canonicalize(topology::make_star({2, 9, 5}));
  EXPECT_EQ(a.canonical_form, b.canonical_form);
  EXPECT_EQ(a.hash, b.hash);
  // ...but a different arm multiset is not.
  const Canonicalization c = canonicalize(topology::make_star({2, 5, 8}));
  EXPECT_NE(a.canonical_form, c.canonical_form);
}

TEST(CanonicalTest, MalformedFormsRejected) {
  EXPECT_THROW(build_canonical_topology(""), InvalidArgument);
  EXPECT_THROW(build_canonical_topology("X"), InvalidArgument);
  EXPECT_THROW(build_canonical_topology("S(M"), InvalidArgument);
  EXPECT_THROW(build_canonical_topology("S(MM))"), InvalidArgument);
  EXPECT_THROW(build_canonical_topology("S(MM)M"), InvalidArgument);
  // Structurally parseable but not a valid machine-leaf tree (a switch
  // with no machines anywhere).
  EXPECT_THROW(build_canonical_topology("S(S())"), InvalidArgument);
}

}  // namespace
}  // namespace aapc::service
