// Tests for the broadcast and rotate patterns (§4.3, Lemmas 5 & 6,
// Table 2).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "aapc/core/patterns.hpp"

namespace aapc::core {
namespace {

void expect_exact_cover(const std::vector<PatternEntry>& pattern,
                        std::int32_t mi, std::int32_t mj) {
  ASSERT_EQ(pattern.size(), static_cast<std::size_t>(mi) * mj);
  std::set<std::pair<std::int32_t, std::int32_t>> pairs;
  for (const PatternEntry& e : pattern) {
    ASSERT_GE(e.sender, 0);
    ASSERT_LT(e.sender, mi);
    ASSERT_GE(e.receiver, 0);
    ASSERT_LT(e.receiver, mj);
    EXPECT_TRUE(pairs.emplace(e.sender, e.receiver).second)
        << "duplicate pair " << e.sender << "->" << e.receiver;
  }
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(mi) * mj);
}

TEST(PatternTest, PaperTable2) {
  // Rotate pattern with |Mi| = 6, |Mj| = 4 (a=3, b=2, D=2): the paper's
  // Table 2, sender rotated once at phase 12 = lcm(6,4).
  const auto pattern = rotate_pattern(6, 4);
  const std::int32_t expected_senders[24] = {0, 1, 2, 3, 4, 5, 0, 1,
                                             2, 3, 4, 5, 1, 2, 3, 4,
                                             5, 0, 1, 2, 3, 4, 5, 0};
  const std::int32_t expected_receivers[24] = {0, 1, 2, 3, 0, 1, 2, 3,
                                               0, 1, 2, 3, 0, 1, 2, 3,
                                               0, 1, 2, 3, 0, 1, 2, 3};
  for (int q = 0; q < 24; ++q) {
    EXPECT_EQ(pattern[q].sender, expected_senders[q]) << "phase " << q;
    EXPECT_EQ(pattern[q].receiver, expected_receivers[q]) << "phase " << q;
  }
  expect_exact_cover(pattern, 6, 4);
}

TEST(PatternTest, BroadcastLemma5ContiguousSenders) {
  // Lemma 5: each sender occupies |Mj| continuous phases.
  const std::int32_t mi = 5;
  const std::int32_t mj = 3;
  const auto pattern = broadcast_pattern(mi, mj);
  for (std::int32_t q = 0; q < mi * mj; ++q) {
    EXPECT_EQ(pattern[q].sender, q / mj);
  }
  expect_exact_cover(pattern, mi, mj);
}

class PatternSweepTest
    : public ::testing::TestWithParam<std::pair<std::int32_t, std::int32_t>> {
};

TEST_P(PatternSweepTest, BroadcastCoversAllPairs) {
  const auto [mi, mj] = GetParam();
  expect_exact_cover(broadcast_pattern(mi, mj), mi, mj);
  expect_exact_cover(broadcast_pattern(mi, mj, mj / 2), mi, mj);
}

TEST_P(PatternSweepTest, RotateCoversAllPairsForAnyReceiverOffset) {
  const auto [mi, mj] = GetParam();
  for (std::int32_t offset = 0; offset < mj; ++offset) {
    expect_exact_cover(rotate_pattern(mi, mj, offset), mi, mj);
  }
  // Negative offsets (as produced by the (p - P) alignment) also work.
  expect_exact_cover(rotate_pattern(mi, mj, -7 * mj - 1), mi, mj);
}

TEST_P(PatternSweepTest, RotateLemma6SenderOncePerAlignedWindow) {
  const auto [mi, mj] = GetParam();
  const auto pattern = rotate_pattern(mi, mj);
  for (std::int32_t window = 0; window < mj; ++window) {
    std::set<std::int32_t> senders;
    for (std::int32_t q = window * mi; q < (window + 1) * mi; ++q) {
      senders.insert(pattern[q].sender);
    }
    EXPECT_EQ(senders.size(), static_cast<std::size_t>(mi))
        << "window " << window;
  }
}

TEST_P(PatternSweepTest, RotateLemma6ReceiverOncePerAlignedWindow) {
  const auto [mi, mj] = GetParam();
  const auto pattern = rotate_pattern(mi, mj);
  for (std::int32_t window = 0; window < mi; ++window) {
    std::set<std::int32_t> receivers;
    for (std::int32_t q = window * mj; q < (window + 1) * mj; ++q) {
      receivers.insert(pattern[q].receiver);
    }
    EXPECT_EQ(receivers.size(), static_cast<std::size_t>(mj))
        << "window " << window;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PatternSweepTest,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 5}, std::pair{5, 1},
                      std::pair{2, 2}, std::pair{3, 2}, std::pair{2, 3},
                      std::pair{6, 4}, std::pair{4, 6}, std::pair{7, 7},
                      std::pair{8, 6}, std::pair{9, 6}, std::pair{12, 8},
                      std::pair{16, 16}, std::pair{13, 11}));

TEST(PatternTest, PositiveMod) {
  EXPECT_EQ(positive_mod(-9, 2), 1);
  EXPECT_EQ(positive_mod(-4, 2), 0);
  EXPECT_EQ(positive_mod(7, 3), 1);
  EXPECT_EQ(positive_mod(0, 5), 0);
}

TEST(PatternTest, RotateSenderMatchesMaterializedPattern) {
  const std::int32_t mi = 6;
  const std::int32_t mj = 4;
  const auto pattern = rotate_pattern(mi, mj);
  for (std::int32_t q = 0; q < mi * mj; ++q) {
    EXPECT_EQ(rotate_sender_at(mi, mj, q), pattern[q].sender);
  }
}

}  // namespace
}  // namespace aapc::core
