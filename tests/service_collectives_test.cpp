// Regression tests for the cache-key collision bugfix: distinct
// collective kinds on the same topology and message size must never
// alias — not in the cache key, not in the stored entry, not in the
// in-flight coalescing map. Also covers the service's sparse-alltoall
// path (canonical neighbor relabeling, pattern-hash keying) and the
// per-kind request counters.
#include <gtest/gtest.h>

#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/core/collectives.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/service/canonical.hpp"
#include "aapc/service/service.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::service {
namespace {

using core::CollectiveKind;
using core::SparseNeighbors;
using topology::Rank;
using topology::Topology;

ServiceOptions small_service() {
  ServiceOptions options;
  options.compiler_threads = 2;
  options.queue_capacity = 16;
  return options;
}

SparseNeighbors ring_neighbors(std::int32_t n) {
  SparseNeighbors neighbors(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    neighbors[static_cast<std::size_t>(r)] = {(r + 1) % n, (r + n - 1) % n};
  }
  return neighbors;
}

TEST(ServiceCollectivesTest, EveryKindGetsADistinctCacheKey) {
  ScheduleService service(small_service());
  const Topology topo = topology::make_star({4, 4});
  const Canonicalization canon = canonicalize(topo);
  const Bytes msize = 64 * 1024;

  const CacheKey alltoall = service.cache_key(canon, msize);
  const CacheKey allgather =
      service.cache_key(canon, msize, CollectiveKind::kAllgather, {});
  const CacheKey reduce_scatter =
      service.cache_key(canon, msize, CollectiveKind::kReduceScatter, {});
  const CacheKey sparse = service.cache_key(
      canon, msize, CollectiveKind::kSparseAlltoall,
      core::normalize_neighbors(topo.machine_count(), ring_neighbors(8)));

  // The two-argument form is exactly the alltoall key.
  EXPECT_EQ(alltoall,
            service.cache_key(canon, msize, CollectiveKind::kAlltoall, {}));
  // Pairwise distinct: the kind byte (and, for sparse, the pattern
  // hash) participates in equality.
  const std::vector<CacheKey> keys{alltoall, allgather, reduce_scatter,
                                   sparse};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_FALSE(keys[i] == keys[j]) << i << " vs " << j;
    }
  }
  EXPECT_NE(sparse.pattern_hash, 0u);
  EXPECT_EQ(allgather.pattern_hash, 0u);
  // Different sparse patterns key differently too.
  SparseNeighbors nearest(8);
  for (Rank r = 0; r < 8; ++r) {
    nearest[static_cast<std::size_t>(r)] = {(r + 1) % 8};
  }
  const CacheKey sparse_nearest = service.cache_key(
      canon, msize, CollectiveKind::kSparseAlltoall,
      core::normalize_neighbors(topo.machine_count(), nearest));
  EXPECT_FALSE(sparse == sparse_nearest);
}

TEST(ServiceCollectivesTest, KindsNeverShareCacheEntries) {
  ScheduleService service(small_service());
  const Topology topo = topology::make_single_switch(6);
  const Bytes msize = 4096;

  // Same topology, same message size: each kind cold-misses on first
  // contact even though the alltoall artifact is already cached.
  const CompiledRoutine a2a =
      service.compile(topo, msize, CollectiveKind::kAlltoall);
  const CompiledRoutine ag =
      service.compile(topo, msize, CollectiveKind::kAllgather);
  const CompiledRoutine rs =
      service.compile(topo, msize, CollectiveKind::kReduceScatter);
  EXPECT_FALSE(a2a.cache_hit);
  EXPECT_FALSE(ag.cache_hit);
  EXPECT_FALSE(rs.cache_hit);
  EXPECT_NE(a2a.entry.get(), ag.entry.get());
  EXPECT_NE(ag.entry.get(), rs.entry.get());
  EXPECT_EQ(a2a.schedule.kind, CollectiveKind::kAlltoall);
  EXPECT_EQ(ag.schedule.kind, CollectiveKind::kAllgather);
  EXPECT_EQ(rs.schedule.kind, CollectiveKind::kReduceScatter);

  // Re-requests hit their own kind's entry, never a sibling's.
  const CompiledRoutine ag2 =
      service.compile(topo, msize, CollectiveKind::kAllgather);
  EXPECT_TRUE(ag2.cache_hit);
  EXPECT_EQ(ag2.entry.get(), ag.entry.get());
  const CompiledRoutine a2a2 = service.compile(topo, msize);
  EXPECT_TRUE(a2a2.cache_hit);
  EXPECT_EQ(a2a2.entry.get(), a2a.entry.get());

  const MetricsSnapshot snapshot = service.metrics();
  EXPECT_EQ(snapshot.requests, 5);
  // Each cold compile probes the cache twice (fast path, then the
  // late-hit recheck under the in-flight lock), so 3 misses read as 6.
  EXPECT_EQ(snapshot.cache_misses, 6);
  EXPECT_EQ(snapshot.cache_hits, 2);
  EXPECT_EQ(snapshot.hash_collisions, 0);

  // Per-kind request counters carry the split.
  const obs::RegistrySnapshot snap = service.metrics_snapshot();
  EXPECT_EQ(snap.value("aapc_service_requests_total",
                       obs::Labels{{"kind", "alltoall"}}),
            2.0);
  EXPECT_EQ(snap.value("aapc_service_requests_total",
                       obs::Labels{{"kind", "allgather"}}),
            2.0);
  EXPECT_EQ(snap.value("aapc_service_requests_total",
                       obs::Labels{{"kind", "reduce_scatter"}}),
            1.0);
  EXPECT_EQ(snap.value("aapc_service_requests_total",
                       obs::Labels{{"kind", "sparse_alltoall"}}),
            0.0);
}

TEST(ServiceCollectivesTest, RingKindsServeOptimalSchedulesInCallerRanks) {
  ScheduleService service(small_service());
  const Topology topo = topology::make_star({3, 3, 2});
  const std::int64_t n = topo.machine_count();
  for (const CollectiveKind kind :
       {CollectiveKind::kAllgather, CollectiveKind::kReduceScatter}) {
    const CompiledRoutine routine = service.compile(topo, 4096, kind);
    EXPECT_EQ(routine.schedule.kind, kind);
    EXPECT_EQ(routine.schedule.phase_count(), n - 1);
    const core::VerifyReport report =
        core::verify_collective_schedule(topo, routine.schedule);
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_EQ(static_cast<std::int64_t>(routine.programs.programs.size()), n);
  }
}

TEST(ServiceCollectivesTest, SparseAlltoallCompilesAndRehits) {
  ScheduleService service(small_service());
  const Topology topo = topology::make_single_switch(8);
  const SparseNeighbors neighbors = ring_neighbors(8);

  const CompiledRoutine first =
      service.compile(topo, 4096, CollectiveKind::kSparseAlltoall, neighbors);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.schedule.kind, CollectiveKind::kSparseAlltoall);
  EXPECT_EQ(first.schedule.message_count(), 16);
  const core::VerifyReport report =
      core::verify_collective_schedule(topo, first.schedule, neighbors);
  EXPECT_TRUE(report.ok) << report.summary();

  // Identical request: cache hit on the same entry.
  const CompiledRoutine again =
      service.compile(topo, 4096, CollectiveKind::kSparseAlltoall, neighbors);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.entry.get(), first.entry.get());

  // A different pattern on the same topology is a different artifact.
  SparseNeighbors nearest(8);
  for (Rank r = 0; r < 8; ++r) {
    nearest[static_cast<std::size_t>(r)] = {(r + 1) % 8};
  }
  const CompiledRoutine other =
      service.compile(topo, 4096, CollectiveKind::kSparseAlltoall, nearest);
  EXPECT_FALSE(other.cache_hit);
  EXPECT_NE(other.entry.get(), first.entry.get());
  EXPECT_EQ(other.schedule.message_count(), 8);
}

TEST(ServiceCollectivesTest, NeighborsRejectedForNonSparseKinds) {
  ScheduleService service(small_service());
  const Topology topo = topology::make_single_switch(4);
  const SparseNeighbors neighbors = ring_neighbors(4);
  EXPECT_THROW(
      service.compile(topo, 4096, CollectiveKind::kAllgather, neighbors),
      Error);
  // Malformed sparse shapes surface as InvalidArgument, not a crash.
  EXPECT_THROW(service.compile(topo, 4096, CollectiveKind::kSparseAlltoall,
                               SparseNeighbors(3)),
               InvalidArgument);
}

}  // namespace
}  // namespace aapc::service
