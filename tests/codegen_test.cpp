// Tests for the C routine generator (§5). Includes a compile check of
// the emitted source against a minimal mock <mpi.h>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "aapc/common/error.hpp"
#include "aapc/codegen/codegen.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::codegen {
namespace {

using topology::make_paper_figure1;
using topology::make_single_switch;
using topology::Topology;

TEST(CodegenTest, EmitsDispatcherAndPerRankFunctions) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const std::string code = generate_alltoall_c(topo, schedule);
  EXPECT_NE(code.find("int AAPC_Alltoall(const void* sendbuf"),
            std::string::npos);
  for (int r = 0; r < 6; ++r) {
    EXPECT_NE(code.find("static int aapc_rank_" + std::to_string(r)),
              std::string::npos);
    EXPECT_NE(code.find("case " + std::to_string(r) + ":"),
              std::string::npos);
  }
  EXPECT_NE(code.find("MPI_Isend"), std::string::npos);
  EXPECT_NE(code.find("MPI_Irecv"), std::string::npos);
  EXPECT_NE(code.find("MPI_Waitall"), std::string::npos);
  EXPECT_NE(code.find("memcpy"), std::string::npos);
  // The size guard for a topology-customized routine.
  EXPECT_NE(code.find("size != 6"), std::string::npos);
  // Rank mapping documented in the header comment.
  EXPECT_NE(code.find("rank 5 = n5"), std::string::npos);
}

TEST(CodegenTest, SyncTokensUseHighTags) {
  const Topology topo = make_single_switch(4);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const std::string code = generate_alltoall_c(topo, schedule);
  EXPECT_NE(code.find("MPI_CHAR"), std::string::npos);
  EXPECT_NE(code.find("&token["), std::string::npos);
  // Token tags live in the kSyncTag (2^20) block: tags rendered in the
  // code start with the 1048xxx prefix.
  EXPECT_NE(code.find(", 1048"), std::string::npos);
}

TEST(CodegenTest, BarrierModeEmitsMpiBarrier) {
  const Topology topo = make_single_switch(4);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  CodegenOptions options;
  options.lowering.sync = lowering::SyncMode::kBarrier;
  const std::string code = generate_alltoall_c(topo, schedule, options);
  EXPECT_NE(code.find("MPI_Barrier"), std::string::npos);
}

TEST(CodegenTest, CustomFunctionName) {
  const Topology topo = make_single_switch(3);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  CodegenOptions options;
  options.function_name = "My_Alltoall";
  const std::string code = generate_alltoall_c(topo, schedule, options);
  EXPECT_NE(code.find("int My_Alltoall("), std::string::npos);
  EXPECT_EQ(code.find("int AAPC_Alltoall("), std::string::npos);
}

TEST(CodegenTest, BalancedBraces) {
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const std::string code = generate_alltoall_c(topo, schedule);
  std::int64_t depth = 0;
  for (const char c : code) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// A minimal mock mpi.h sufficient to compile the generated routine.
constexpr const char* kMockMpiHeader = R"(#ifndef MOCK_MPI_H
#define MOCK_MPI_H
#include <stddef.h>
typedef long MPI_Aint;
typedef int MPI_Datatype;
typedef int MPI_Comm;
typedef int MPI_Request;
typedef struct { int ignored; } MPI_Status;
#define MPI_SUCCESS 0
#define MPI_ERR_COMM 5
#define MPI_ERR_RANK 6
#define MPI_CHAR 1
#define MPI_STATUS_IGNORE ((MPI_Status*)0)
#define MPI_STATUSES_IGNORE ((MPI_Status*)0)
int MPI_Comm_rank(MPI_Comm, int*);
int MPI_Comm_size(MPI_Comm, int*);
int MPI_Type_get_extent(MPI_Datatype, MPI_Aint*, MPI_Aint*);
int MPI_Isend(const void*, int, MPI_Datatype, int, int, MPI_Comm,
              MPI_Request*);
int MPI_Irecv(void*, int, MPI_Datatype, int, int, MPI_Comm, MPI_Request*);
int MPI_Wait(MPI_Request*, MPI_Status*);
int MPI_Waitall(int, MPI_Request*, MPI_Status*);
int MPI_Barrier(MPI_Comm);
#endif
)";

TEST(CodegenTest, GeneratedCodeCompiles) {
  if (std::system("which cc > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no C compiler available";
  }
  const Topology topo = make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const std::string code = generate_alltoall_c(topo, schedule);

  const std::string dir = ::testing::TempDir();
  {
    std::ofstream mpi(dir + "/mpi.h");
    mpi << kMockMpiHeader;
    std::ofstream source(dir + "/generated_alltoall.c");
    source << code;
  }
  const std::string command = "cc -std=c99 -Wall -Werror -fsyntax-only -I" +
                              dir + " " + dir + "/generated_alltoall.c";
  EXPECT_EQ(std::system(command.c_str()), 0)
      << "generated C failed to compile";
}

TEST(CodegenTest, RandomTopologiesCompile) {
  if (std::system("which cc > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no C compiler available";
  }
  aapc::Rng rng(404);
  const std::string dir = ::testing::TempDir();
  {
    std::ofstream mpi(dir + "/mpi.h");
    mpi << kMockMpiHeader;
  }
  for (int trial = 0; trial < 3; ++trial) {
    topology::RandomTreeOptions options;
    options.switches = static_cast<std::int32_t>(rng.next_in(1, 5));
    options.machines = static_cast<std::int32_t>(rng.next_in(3, 10));
    const Topology topo = topology::make_random_tree(rng, options);
    const core::Schedule schedule = core::build_aapc_schedule(topo);
    const std::string file =
        dir + "/random_" + std::to_string(trial) + ".c";
    {
      std::ofstream out(file);
      out << generate_alltoall_c(topo, schedule);
    }
    const std::string command =
        "cc -std=c99 -Wall -Werror -fsyntax-only -I" + dir + " " + file;
    EXPECT_EQ(std::system(command.c_str()), 0) << "trial " << trial;
  }
}

TEST(CodegenTest, ProgramSetSizeMismatchRejected) {
  const Topology topo = make_single_switch(4);
  mpisim::ProgramSet set;
  set.name = "wrong";
  set.programs.resize(2);
  EXPECT_THROW(generate_programs_c(topo, set, "X"), aapc::InvalidArgument);
}

}  // namespace
}  // namespace aapc::codegen
