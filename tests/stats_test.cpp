// Tests for schedule statistics, sync-plan analysis, and the binary
// tree generator.
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/stats.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::make_binary_tree;
using topology::make_paper_topology_c;
using topology::make_single_switch;
using topology::Topology;

TEST(ScheduleStatsTest, SingleSwitchIsFullyDense) {
  // Ring-like schedule: every machine sends and receives every phase,
  // and the bottleneck (any link) is used every phase.
  const Topology topo = make_single_switch(8);
  const ScheduleStats stats =
      compute_schedule_stats(topo, build_aapc_schedule(topo));
  EXPECT_EQ(stats.phase_count, 7);
  EXPECT_EQ(stats.message_count, 56);
  EXPECT_DOUBLE_EQ(stats.send_occupancy, 1.0);
  EXPECT_DOUBLE_EQ(stats.receive_occupancy, 1.0);
  EXPECT_DOUBLE_EQ(stats.bottleneck_phase_utilization, 1.0);
  EXPECT_EQ(stats.min_messages_per_phase, 8);
  EXPECT_EQ(stats.max_messages_per_phase, 8);
}

TEST(ScheduleStatsTest, ChainIsSparserButBottleneckSaturated) {
  // On the chain most machines idle in most phases, but the optimal
  // schedule keeps the bottleneck trunk busy in every phase — that is
  // the §3 optimality in statistical form.
  const Topology topo = make_paper_topology_c();
  const ScheduleStats stats =
      compute_schedule_stats(topo, build_aapc_schedule(topo));
  EXPECT_EQ(stats.phase_count, 256);
  EXPECT_EQ(stats.message_count, 32 * 31);
  EXPECT_LT(stats.send_occupancy, 0.25);
  EXPECT_DOUBLE_EQ(stats.bottleneck_phase_utilization, 1.0);
}

TEST(ScheduleStatsTest, EmptySchedule) {
  const Topology topo = make_single_switch(3);
  const ScheduleStats stats = compute_schedule_stats(topo, Schedule{});
  EXPECT_EQ(stats.phase_count, 0);
  EXPECT_EQ(stats.message_count, 0);
}

TEST(ScheduleStatsTest, ToStringMentionsKeyNumbers) {
  const Topology topo = make_single_switch(4);
  const std::string text =
      compute_schedule_stats(topo, build_aapc_schedule(topo)).to_string();
  EXPECT_NE(text.find("phases: 3"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST(BinaryTreeTest, StructureAndSchedule) {
  const Topology topo = make_binary_tree(3, 2);
  EXPECT_EQ(topo.switch_count(), 7);   // 1 + 2 + 4
  EXPECT_EQ(topo.machine_count(), 8);  // 4 leaves x 2
  // Paths between far leaves traverse 4 switch hops + 2 machine links.
  EXPECT_EQ(topo.path_length(topo.machine_node(0), topo.machine_node(7)), 6);
  const Schedule schedule = build_aapc_schedule(topo);
  const VerifyReport report = verify_schedule(topo, schedule);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(BinaryTreeTest, DepthOneIsSingleSwitch) {
  const Topology topo = make_binary_tree(1, 5);
  EXPECT_EQ(topo.switch_count(), 1);
  EXPECT_EQ(topo.machine_count(), 5);
}

}  // namespace
}  // namespace aapc::core

namespace aapc::sync {
namespace {

TEST(PlanAnalysisTest, ChainDepth) {
  // Edges 0->1->2 plus a shortcut 0->2: critical path 3 messages.
  SyncPlan plan;
  plan.edges = {{0, 1}, {0, 2}, {1, 2}};
  const PlanAnalysis analysis = analyze_plan(plan, 3);
  EXPECT_EQ(analysis.critical_path_messages, 3);
  EXPECT_EQ(analysis.max_out_degree, 2);
  EXPECT_EQ(analysis.max_in_degree, 2);
  EXPECT_DOUBLE_EQ(analysis.avg_degree, 1.0);
}

TEST(PlanAnalysisTest, NoEdges) {
  const PlanAnalysis analysis = analyze_plan(SyncPlan{}, 5);
  EXPECT_EQ(analysis.critical_path_messages, 1);
  EXPECT_EQ(analysis.max_in_degree, 0);
}

TEST(PlanAnalysisTest, EmptySchedule) {
  const PlanAnalysis analysis = analyze_plan(SyncPlan{}, 0);
  EXPECT_EQ(analysis.critical_path_messages, 0);
}

TEST(PlanAnalysisTest, RejectsBackwardEdges) {
  SyncPlan plan;
  plan.edges = {{2, 1}};
  EXPECT_THROW(analyze_plan(plan, 3), aapc::InvalidArgument);
}

TEST(PlanAnalysisTest, RealScheduleCriticalPathSpansPhases) {
  // On a single switch the critical path must cover at least one
  // message per phase (every phase contends with the next through the
  // machine up/downlinks).
  const topology::Topology topo = topology::make_single_switch(8);
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const SyncPlan plan = build_sync_plan(topo, schedule);
  const PlanAnalysis analysis =
      analyze_plan(plan, schedule.message_count());
  EXPECT_GE(analysis.critical_path_messages, schedule.phase_count());
  EXPECT_LE(analysis.critical_path_messages, schedule.message_count());
}

}  // namespace
}  // namespace aapc::sync
