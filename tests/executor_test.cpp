// Unit tests for the mpisim executor: op semantics, matching, timing,
// jitter determinism, and failure reporting.
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::mpisim {
namespace {

using topology::make_single_switch;
using topology::Topology;

/// Deterministic, overhead-free parameters for exact timing math.
simnet::NetworkParams clean_net() {
  simnet::NetworkParams net;
  net.protocol_efficiency = 1.0;
  net.send_overhead = 0;
  net.recv_overhead = 0;
  net.per_hop_latency = 0;
  net.small_message_extra_latency = 0;
  net.node_contention_penalty = 0;
  net.trunk_contention_penalty = 0;
  net.node_efficiency_floor = 1.0;
  net.trunk_efficiency_floor = 1.0;
  net.duplex_efficiency = 1.0;
  net.switch_fabric_links = 1e9;
  return net;
}

ExecutorParams clean_exec() {
  ExecutorParams exec;
  exec.wakeup_jitter_max = 0;
  return exec;
}

ProgramSet two_rank_ping(Bytes bytes) {
  ProgramSet set;
  set.name = "ping";
  Program sender;
  sender.ops = {Op::isend(1, bytes, 0), Op::wait_all()};
  Program receiver;
  receiver.ops = {Op::irecv(0, bytes, 0), Op::wait_all()};
  set.programs = {sender, receiver};
  return set;
}

TEST(ExecutorTest, PingTransferTime) {
  const Topology topo = make_single_switch(2);
  Executor executor(topo, clean_net(), clean_exec());
  const ExecutionResult result = executor.run(two_rank_ping(12'500'000));
  EXPECT_NEAR(result.completion_time, 1.0, 1e-9);
  EXPECT_EQ(result.message_count, 1);
  EXPECT_NEAR(result.network_bytes, 12'500'000, 1e-6);
}

TEST(ExecutorTest, SendOverheadSerializesPosts) {
  const Topology topo = make_single_switch(3);
  simnet::NetworkParams net = clean_net();
  net.send_overhead = 0.25;  // absurd value to make the effect visible
  Executor executor(topo, net, clean_exec());
  ProgramSet set;
  set.name = "two-sends";
  Program sender;
  sender.ops = {Op::isend(1, 1'250'000, 0), Op::isend(2, 1'250'000, 0),
                Op::wait_all()};
  Program r1;
  r1.ops = {Op::irecv(0, 1'250'000, 0), Op::wait_all()};
  Program r2;
  r2.ops = {Op::irecv(0, 1'250'000, 0), Op::wait_all()};
  set.programs = {sender, r1, r2};
  const ExecutionResult result = executor.run(set);
  // First flow activates at 0.25, second at 0.50. Both share the source
  // uplink until the first (equal sizes but staggered) finishes.
  // flow1: 0.25..0.50 alone (0.1s of bytes at full rate? bytes move:
  // 0.25s * 12.5MB/s = 3.125MB > 1.25MB) — flow1 is done by 0.35.
  // flow2 runs alone 0.50..0.60.
  EXPECT_NEAR(result.completion_time, 0.60, 1e-9);
}

TEST(ExecutorTest, RendezvousWaitsForReceiver) {
  const Topology topo = make_single_switch(2);
  simnet::NetworkParams net = clean_net();
  net.recv_overhead = 0.5;
  Executor executor(topo, net, clean_exec());
  const ExecutionResult result = executor.run(two_rank_ping(12'500'000));
  // Flow starts only once the receiver has posted (t = 0.5).
  EXPECT_NEAR(result.completion_time, 1.5, 1e-9);
}

TEST(ExecutorTest, PerHopLatencyDelaysReceiverOnly) {
  const Topology topo = make_single_switch(2);  // 2 hops machine-machine
  simnet::NetworkParams net = clean_net();
  net.per_hop_latency = 0.1;
  Executor executor(topo, net, clean_exec());
  const ExecutionResult result = executor.run(two_rank_ping(12'500'000));
  // Sender finishes at 1.0; receiver at 1.0 + 2 * 0.1.
  EXPECT_NEAR(result.rank_finish[0], 1.0, 1e-9);
  EXPECT_NEAR(result.rank_finish[1], 1.2, 1e-9);
}

TEST(ExecutorTest, SmallMessageExtraLatency) {
  const Topology topo = make_single_switch(2);
  simnet::NetworkParams net = clean_net();
  net.small_message_threshold = 256;
  net.small_message_extra_latency = 0.7;
  Executor executor(topo, net, clean_exec());
  const ExecutionResult result = executor.run(two_rank_ping(4));
  EXPECT_NEAR(result.rank_finish[1], 0.7, 1e-6);
  // Data-size messages are unaffected.
  const ExecutionResult big = executor.run(two_rank_ping(12'500'000));
  EXPECT_NEAR(big.rank_finish[1], 1.0, 1e-6);
}

TEST(ExecutorTest, WaitSpecificRequest) {
  const Topology topo = make_single_switch(3);
  Executor executor(topo, clean_net(), clean_exec());
  ProgramSet set;
  set.name = "wait-specific";
  Program p0;  // receives from 1 (req 0) and 2 (req 1); waits req 1 first
  p0.ops = {Op::irecv(1, 1'250'000, 0), Op::irecv(2, 12'500'000, 0),
            Op::wait(1), Op::wait(0)};
  Program p1;
  p1.ops = {Op::isend(0, 1'250'000, 0), Op::wait_all()};
  Program p2;
  p2.ops = {Op::isend(0, 12'500'000, 0), Op::wait_all()};
  set.programs = {p0, p1, p2};
  const ExecutionResult result = executor.run(set);
  // Incast: both flows share the downlink. Small finishes at ~0.2,
  // big at ~1.1 (6.25 MB/s while sharing). Rank 0 completes when both
  // done.
  EXPECT_GT(result.rank_finish[0], 1.0);
}

TEST(ExecutorTest, BarrierSynchronizesClocks) {
  const Topology topo = make_single_switch(3);
  simnet::NetworkParams net = clean_net();
  net.barrier_latency = 0.25;
  ExecutorParams exec = clean_exec();
  exec.memcpy_bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: copies take time
  Executor slow_copy(topo, net, exec);
  ProgramSet set;
  set.name = "barrier";
  Program fast;
  fast.ops = {Op::barrier()};
  Program slow;
  slow.ops = {Op::copy(2'000'000), Op::barrier()};  // 2 s of copying
  set.programs = {fast, fast, slow};
  const ExecutionResult result = slow_copy.run(set);
  for (const SimTime finish : result.rank_finish) {
    EXPECT_NEAR(finish, 2.25, 1e-9);  // slowest arrival + barrier cost
  }
}

TEST(ExecutorTest, CopyUsesMemcpyBandwidth) {
  const Topology topo = make_single_switch(2);
  ExecutorParams exec = clean_exec();
  exec.memcpy_bandwidth_bytes_per_sec = 1e9;
  Executor executor(topo, clean_net(), exec);
  ProgramSet set;
  set.name = "copy";
  Program p;
  p.ops = {Op::copy(500'000'000)};
  set.programs = {p, p};
  const ExecutionResult result = executor.run(set);
  EXPECT_NEAR(result.completion_time, 0.5, 1e-9);
}

TEST(ExecutorTest, FifoMatchingSameTag) {
  const Topology topo = make_single_switch(2);
  Executor executor(topo, clean_net(), clean_exec());
  ProgramSet set;
  set.name = "fifo";
  Program sender;
  sender.ops = {Op::isend(1, 1'000'000, 7), Op::isend(1, 2'000'000, 7),
                Op::wait_all()};
  Program receiver;  // sizes must match in posting order
  receiver.ops = {Op::irecv(0, 1'000'000, 7), Op::irecv(0, 2'000'000, 7),
                  Op::wait_all()};
  set.programs = {sender, receiver};
  EXPECT_NO_THROW(executor.run(set));
}

TEST(ExecutorTest, TagsPartitionMatching) {
  const Topology topo = make_single_switch(2);
  Executor executor(topo, clean_net(), clean_exec());
  ProgramSet set;
  set.name = "tags";
  Program sender;
  sender.ops = {Op::isend(1, 1'000'000, 1), Op::isend(1, 2'000'000, 2),
                Op::wait_all()};
  Program receiver;  // posted in the opposite tag order
  receiver.ops = {Op::irecv(0, 2'000'000, 2), Op::irecv(0, 1'000'000, 1),
                  Op::wait_all()};
  set.programs = {sender, receiver};
  const ExecutionResult result = executor.run(set);
  EXPECT_EQ(result.message_count, 2);
}

TEST(ExecutorTest, DeadlockDetected) {
  const Topology topo = make_single_switch(2);
  Executor executor(topo, clean_net(), clean_exec());
  ProgramSet set;
  set.name = "deadlock";
  Program p0;  // both wait for a message that is never sent
  p0.ops = {Op::irecv(1, 100, 0), Op::wait_all()};
  Program p1;
  p1.ops = {Op::irecv(0, 100, 0), Op::wait_all()};
  set.programs = {p0, p1};
  EXPECT_THROW(executor.run(set), InvalidArgument);
}

TEST(ExecutorTest, UnmatchedSendReported) {
  const Topology topo = make_single_switch(2);
  Executor executor(topo, clean_net(), clean_exec());
  ProgramSet set;
  set.name = "unmatched";
  Program p0;  // fire-and-forget isend with no matching receive
  p0.ops = {Op::isend(1, 100, 0)};
  Program p1;
  set.programs = {p0, p1};
  EXPECT_THROW(executor.run(set), InvalidArgument);
}

TEST(ExecutorTest, WrongProgramCountRejected) {
  const Topology topo = make_single_switch(3);
  Executor executor(topo, clean_net(), clean_exec());
  EXPECT_THROW(executor.run(two_rank_ping(100)), InvalidArgument);
}

TEST(ExecutorTest, JitterIsDeterministicPerSeed) {
  const Topology topo = make_single_switch(2);
  ExecutorParams exec;
  exec.wakeup_jitter_max = 1e-3;
  exec.jitter_seed = 42;
  Executor a(topo, clean_net(), exec);
  Executor b(topo, clean_net(), exec);
  const SimTime ta = a.run(two_rank_ping(1'000'000)).completion_time;
  const SimTime tb = b.run(two_rank_ping(1'000'000)).completion_time;
  EXPECT_EQ(ta, tb);
  exec.jitter_seed = 43;
  Executor c(topo, clean_net(), exec);
  const SimTime tc = c.run(two_rank_ping(1'000'000)).completion_time;
  EXPECT_NE(ta, tc);
}

TEST(ExecutorTest, WaitOnUnpostedRequestRejected) {
  const Topology topo = make_single_switch(2);
  Executor executor(topo, clean_net(), clean_exec());
  ProgramSet set;
  set.name = "bad-wait";
  Program p0;
  p0.ops = {Op::wait(3)};
  Program p1;
  set.programs = {p0, p1};
  EXPECT_THROW(executor.run(set), InvalidArgument);
}

TEST(ExecutorTest, SelfSendRejected) {
  const Topology topo = make_single_switch(2);
  Executor executor(topo, clean_net(), clean_exec());
  ProgramSet set;
  set.name = "self-send";
  Program p0;
  p0.ops = {Op::isend(0, 100, 0)};
  Program p1;
  set.programs = {p0, p1};
  EXPECT_THROW(executor.run(set), InvalidArgument);
}

TEST(ProgramTest, RequestCountAndToString) {
  Program p;
  p.ops = {Op::copy(10), Op::irecv(1, 10, 0), Op::isend(1, 10, 0),
           Op::wait(0), Op::wait_all(), Op::barrier()};
  EXPECT_EQ(p.request_count(), 2);
  const std::string text = p.to_string();
  EXPECT_NE(text.find("isend"), std::string::npos);
  EXPECT_NE(text.find("barrier"), std::string::npos);
}

}  // namespace
}  // namespace aapc::mpisim
