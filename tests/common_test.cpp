// Unit tests for the aapc::common utilities.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/log.hpp"
#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/common/units.hpp"

namespace aapc {
namespace {

TEST(ErrorTest, CheckThrowsInternalError) {
  EXPECT_THROW(AAPC_CHECK(1 == 2), InternalError);
  EXPECT_NO_THROW(AAPC_CHECK(1 == 1));
}

TEST(ErrorTest, CheckMessageIncludesExpressionAndDetail) {
  try {
    AAPC_CHECK_MSG(false, "detail " << 42);
    FAIL() << "expected throw";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("detail 42"), std::string::npos);
  }
}

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(AAPC_REQUIRE(false, "bad input"), InvalidArgument);
}

TEST(LogTest, LevelThresholding) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kTrace));
  // The macro path: must not crash and must respect the level.
  AAPC_DEBUG("debug message " << 42);
  set_log_level(saved);
}

TEST(LogTest, ConcurrentLoggersDoNotInterleave) {
  // Several threads logging at once: every line the sink receives must
  // be one complete, newline-terminated message — never two partial
  // lines spliced together. The sink runs under the logger's emission
  // mutex, so a plain vector is safe here.
  static std::vector<std::string> captured;
  captured.clear();
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  set_log_sink(
      [](const std::string& line, void*) { captured.push_back(line); },
      nullptr);

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        AAPC_WARN("thread=" << t << " line=" << i << " end");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  set_log_sink(nullptr, nullptr);
  set_log_level(saved);

  ASSERT_EQ(captured.size(),
            static_cast<std::size_t>(kThreads) * kLinesPerThread);
  std::set<std::string> bodies;
  for (const std::string& line : captured) {
    // Exactly one newline, at the very end.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    // The payload between "thread=" and " end\n" parses back to a known
    // message; a torn write would corrupt this structure.
    const std::size_t start = line.find("thread=");
    ASSERT_NE(start, std::string::npos) << line;
    const std::size_t stop = line.rfind(" end");
    ASSERT_NE(stop, std::string::npos) << line;
    EXPECT_TRUE(bodies.insert(line.substr(start, stop - start)).second)
        << "duplicate body in: " << line;
  }
  EXPECT_EQ(bodies.size(),
            static_cast<std::size_t>(kThreads) * kLinesPerThread);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowHitsAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(StringsTest, SplitKeepsEmptyTokens) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  const auto parts = split_whitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(StringsTest, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64(" 123 "), 123u);
  EXPECT_THROW(parse_u64("12x"), InvalidArgument);
  EXPECT_THROW(parse_u64(""), InvalidArgument);
}

TEST(StringsTest, ParseSizeSuffixes) {
  EXPECT_EQ(parse_size("64K"), 64u * 1024);
  EXPECT_EQ(parse_size("2M"), 2u * 1024 * 1024);
  EXPECT_EQ(parse_size("1G"), 1024u * 1024 * 1024);
  EXPECT_EQ(parse_size("100"), 100u);
  EXPECT_EQ(parse_size("100B"), 100u);
}

TEST(StringsTest, FormatSizeRoundTrips) {
  for (const char* text : {"1K", "64K", "3M", "7", "1G"}) {
    EXPECT_EQ(format_size(parse_size(text)), text);
  }
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(TableTest, RenderAlignsColumns) {
  TextTable table;
  table.set_header({"msize", "LAM"});
  table.add_row({"8KB", "29.7"});
  table.add_row({"256KB", "1157"});
  const std::string text = table.render();
  EXPECT_NE(text.find("msize"), std::string::npos);
  EXPECT_NE(text.find("256KB"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  TextTable table;
  table.add_row({"a,b", "plain", "q\"uote"});
  EXPECT_EQ(table.render_csv(), "\"a,b\",plain,\"q\"\"uote\"\n");
}

TEST(UnitsTest, BandwidthConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(100.0), 12.5e6);
  EXPECT_DOUBLE_EQ(bytes_per_sec_to_mbps(mbps_to_bytes_per_sec(123.0)), 123.0);
}

TEST(UnitsTest, Literals) {
  EXPECT_EQ(64_KiB, 65536u);
  EXPECT_EQ(1_MiB, 1048576u);
}

TEST(CliTest, ParsesFlagsAndPositionals) {
  CliParser cli("usage");
  cli.add_flag("msize", "message size", "8K");
  cli.add_flag("verbose", "chatty", "false");
  const char* argv[] = {"prog", "--msize=64K", "topo.txt", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get("msize"), "64K");
  EXPECT_EQ(cli.get_u64("msize", 0), 64u * 1024);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "topo.txt");
}

TEST(CliTest, UnknownFlagThrows) {
  CliParser cli("usage");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(CliTest, SeparateValueToken) {
  CliParser cli("usage");
  cli.add_flag("topo", "file");
  const char* argv[] = {"prog", "--topo", "file.topo"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get("topo"), "file.topo");
}

TEST(CliTest, DefaultsApply) {
  CliParser cli("usage");
  cli.add_flag("msize", "message size", "8K");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("msize"), "8K");
  EXPECT_EQ(cli.get_u64("iters", 5), 5u);
}

}  // namespace
}  // namespace aapc
