// Fault plans (validation, JSON, compilation) and schedule repair on
// the residual topology.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/faults/repair.hpp"
#include "aapc/harness/resilience.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::faults {
namespace {

/// Two switches joined by a primary trunk (bridge link 0) and a
/// parallel equal-cost backup (bridge link 1) that the healthy 802.1D
/// election blocks via the link-id tie-break.
stp::BridgeNetwork make_redundant_pair(std::int32_t machines_per_switch) {
  stp::BridgeNetwork net;
  const stp::BridgeId s0 = net.add_bridge("s0", 1);
  const stp::BridgeId s1 = net.add_bridge("s1", 2);
  net.add_bridge_link(s0, s1, 19);  // 0: primary
  net.add_bridge_link(s0, s1, 19);  // 1: backup
  for (std::int32_t m = 0; m < machines_per_switch; ++m) {
    net.add_machine("a" + std::to_string(m), s0);
  }
  for (std::int32_t m = 0; m < machines_per_switch; ++m) {
    net.add_machine("b" + std::to_string(m), s1);
  }
  return net;
}

TEST(FaultPlanTest, ValidateRejectsMalformedEvents) {
  FaultPlan negative_time;
  negative_time.add(FaultEvent::link_down(-1.0, 0));
  EXPECT_THROW(negative_time.validate(), InvalidArgument);

  FaultPlan bad_link;
  bad_link.add(FaultEvent::link_up(0, -3));
  EXPECT_THROW(bad_link.validate(), InvalidArgument);

  FaultPlan bad_fraction;
  bad_fraction.add(FaultEvent::link_degrade(0, 0, 1.5));
  EXPECT_THROW(bad_fraction.validate(), InvalidArgument);
  bad_fraction.events[0].factor = 0.0;
  EXPECT_THROW(bad_fraction.validate(), InvalidArgument);

  FaultPlan bad_slowdown;
  bad_slowdown.add(FaultEvent::node_slowdown(0, 1, 0.5));
  EXPECT_THROW(bad_slowdown.validate(), InvalidArgument);

  FaultPlan ok;
  ok.add(FaultEvent::link_degrade(1.0, 2, 0.25))
      .add(FaultEvent::node_crash(2.0, 3));
  EXPECT_NO_THROW(ok.validate());
}

TEST(FaultPlanTest, OnsetAndSortedAreStable) {
  FaultPlan plan;
  plan.add(FaultEvent::link_down(0.3, 1))
      .add(FaultEvent::link_down(0.1, 2))
      .add(FaultEvent::link_up(0.1, 3));
  EXPECT_EQ(plan.onset(), 0.1);
  const FaultPlan ordered = plan.sorted();
  ASSERT_EQ(ordered.events.size(), 3u);
  // Stable among equal times: link 2's event stays ahead of link 3's.
  EXPECT_EQ(ordered.events[0].link, 2);
  EXPECT_EQ(ordered.events[1].link, 3);
  EXPECT_EQ(ordered.events[2].link, 1);
  EXPECT_EQ(FaultPlan{}.onset(), 0);
}

TEST(FaultPlanTest, JsonRoundTripIsAFixedPoint) {
  FaultPlan plan;
  plan.add(FaultEvent::link_degrade(milliseconds(120.0), 3, 0.5))
      .add(FaultEvent::link_down(milliseconds(10.0), 0))
      .add(FaultEvent::link_up(milliseconds(50.0), 0))
      .add(FaultEvent::node_slowdown(0, 2, 3.0))
      .add(FaultEvent::node_crash(milliseconds(80.0), 1));
  const std::string json = fault_plan_to_json(plan);
  const FaultPlan parsed = fault_plan_from_json(json);
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(parsed.events[i].link, plan.events[i].link) << i;
    EXPECT_EQ(parsed.events[i].rank, plan.events[i].rank) << i;
    EXPECT_EQ(parsed.events[i].factor, plan.events[i].factor) << i;
    EXPECT_NEAR(parsed.events[i].when, plan.events[i].when, 1e-15) << i;
  }
  // Serialize-parse-serialize is a fixed point (round-trip formatting).
  EXPECT_EQ(fault_plan_to_json(parsed), json);
}

TEST(FaultPlanTest, JsonRejectsUnknownFieldsAndKinds) {
  EXPECT_THROW(fault_plan_from_json(
                   R"({"events":[{"kind":"link_down","time_ms":1,"link":0,)"
                   R"("bogus":3}]})"),
               InvalidArgument);
  EXPECT_THROW(
      fault_plan_from_json(R"({"stuff":[]})"), InvalidArgument);
  EXPECT_THROW(fault_plan_from_json(
                   R"({"events":[{"kind":"meteor","time_ms":1,"link":0}]})"),
               InvalidArgument);
  EXPECT_THROW(
      fault_plan_from_json(R"({"events":[{"kind":"link_down","link":0}]})"),
      InvalidArgument);
  EXPECT_THROW(fault_plan_from_json(R"({"events":[])"), InvalidArgument);
}

TEST(FaultPlanTest, CompileLowersToExecutorPrimitives) {
  simnet::NetworkParams params;
  FaultPlan plan;
  plan.add(FaultEvent::link_degrade(0.2, 1, 0.5))
      .add(FaultEvent::link_down(0.1, 0))
      .add(FaultEvent::node_slowdown(0.0, 2, 4.0))
      .add(FaultEvent::node_crash(0.3, 1));
  const CompiledFaults compiled = compile(plan, params, 4);
  ASSERT_EQ(compiled.capacity_events.size(), 2u);
  // Time-sorted: the down at 0.1 precedes the degrade at 0.2.
  EXPECT_EQ(compiled.capacity_events[0].link, 0);
  EXPECT_EQ(compiled.capacity_events[0].bandwidth_bytes_per_sec, 0.0);
  EXPECT_EQ(compiled.capacity_events[1].link, 1);
  EXPECT_EQ(compiled.capacity_events[1].bandwidth_bytes_per_sec,
            params.link_bandwidth_bytes_per_sec * 0.5);
  ASSERT_EQ(compiled.rank_faults.size(), 2u);
  EXPECT_EQ(compiled.rank_faults[0].rank, 2);
  EXPECT_EQ(compiled.rank_faults[0].cpu_slowdown, 4.0);
  EXPECT_EQ(compiled.rank_faults[1].rank, 1);
  EXPECT_EQ(compiled.rank_faults[1].crash_time, 0.3);
  ASSERT_EQ(compiled.markers.size(), 4u);
  EXPECT_EQ(compiled.markers[1].label, "link 0 down");
  EXPECT_EQ(compiled.markers[2].label, "link 1 degraded to 50%");
}

TEST(FaultPlanTest, CompileTranslatesThroughLinkMap) {
  FaultPlan plan;
  plan.add(FaultEvent::link_down(0.1, 0))  // maps to -1: dropped
      .add(FaultEvent::link_degrade(0.2, 1, 0.5));
  const std::vector<std::int32_t> link_map = {-1, 5};
  const CompiledFaults compiled = compile(plan, {}, 6, link_map);
  ASSERT_EQ(compiled.capacity_events.size(), 1u);
  EXPECT_EQ(compiled.capacity_events[0].link, 5);
  // Markers keep plan-space numbering (the human scripted bridge links).
  ASSERT_EQ(compiled.markers.size(), 1u);
  EXPECT_EQ(compiled.markers[0].label, "link 1 degraded to 50%");

  FaultPlan outside;
  outside.add(FaultEvent::link_down(0, 7));
  EXPECT_THROW(compile(outside, {}, 6, link_map), InvalidArgument);
}

TEST(FaultPlanTest, LinkFactorsReplayTimeline) {
  FaultPlan plan;
  plan.add(FaultEvent::link_degrade(1.0, 0, 0.5))
      .add(FaultEvent::link_down(2.0, 0))
      .add(FaultEvent::link_up(3.0, 0))
      .add(FaultEvent::link_down(1.5, 1));
  EXPECT_EQ(link_factors_at(plan, 0.5, 2), (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(link_factors_at(plan, 1.0, 2), (std::vector<double>{0.5, 1.0}));
  EXPECT_EQ(link_factors_at(plan, 2.5, 2), (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(link_factors_at(plan, 4.0, 2), (std::vector<double>{1.0, 0.0}));
}

TEST(FaultPlanTest, RanksCrashedAt) {
  FaultPlan plan;
  plan.add(FaultEvent::node_crash(1.0, 3))
      .add(FaultEvent::node_crash(2.0, 1))
      .add(FaultEvent::node_crash(1.0, 3));  // duplicate
  EXPECT_EQ(ranks_crashed_at(plan, 0.5), (std::vector<Rank>{}));
  EXPECT_EQ(ranks_crashed_at(plan, 1.0), (std::vector<Rank>{3}));
  EXPECT_EQ(ranks_crashed_at(plan, 5.0), (std::vector<Rank>{1, 3}));
}

TEST(RepairTest, ResidualElectionSwitchesToBackupTrunk) {
  const stp::BridgeNetwork net = make_redundant_pair(2);
  const stp::SpanningTree healthy = stp::compute_spanning_tree(net);
  ASSERT_EQ(healthy.forwarding.size(), 2u);
  EXPECT_TRUE(healthy.forwarding[0]);   // primary wins the tie-break
  EXPECT_FALSE(healthy.forwarding[1]);  // backup blocked
  EXPECT_GE(healthy.link_of_bridge_link[0], 0);
  EXPECT_EQ(healthy.link_of_bridge_link[1], -1);

  // 50% degrade: ceil(19 / 0.5) = 38 > 19 — the backup wins.
  FaultPlan degrade;
  degrade.add(FaultEvent::link_degrade(0.0, 0, 0.5));
  const stp::SpanningTree repaired = elect_residual(net, degrade, 1.0);
  EXPECT_FALSE(repaired.forwarding[0]);
  EXPECT_TRUE(repaired.forwarding[1]);
  EXPECT_EQ(repaired.link_of_bridge_link[0], -1);
  EXPECT_GE(repaired.link_of_bridge_link[1], 0);

  // Hard failure: the primary is removed outright.
  FaultPlan down;
  down.add(FaultEvent::link_down(0.0, 0));
  const stp::SpanningTree failed_over = elect_residual(net, down, 1.0);
  EXPECT_FALSE(failed_over.forwarding[0]);
  EXPECT_TRUE(failed_over.forwarding[1]);

  // Both trunks down: the residual graph is disconnected.
  down.add(FaultEvent::link_down(0.0, 1));
  EXPECT_THROW(elect_residual(net, down, 1.0), InvalidArgument);
}

TEST(RepairTest, MildDegradeKeepsPrimary) {
  // ceil(19 / 0.95) = 20: still ahead only if < backup's 19? No — 20 >
  // 19, so even a mild degrade switches when a pristine backup exists.
  // With no backup, the degraded primary must keep forwarding.
  stp::BridgeNetwork net;
  const stp::BridgeId s0 = net.add_bridge("s0", 1);
  const stp::BridgeId s1 = net.add_bridge("s1", 2);
  net.add_bridge_link(s0, s1, 19);
  net.add_machine("a", s0);
  net.add_machine("b", s1);
  FaultPlan degrade;
  degrade.add(FaultEvent::link_degrade(0.0, 0, 0.5));
  const stp::SpanningTree repaired = elect_residual(net, degrade, 1.0);
  EXPECT_TRUE(repaired.forwarding[0]);
}

TEST(RepairTest, ResidualCapacitiesFollowTheTreeInForce) {
  const stp::BridgeNetwork net = make_redundant_pair(2);
  const stp::SpanningTree healthy = stp::compute_spanning_tree(net);
  simnet::NetworkParams params;
  FaultPlan degrade;
  degrade.add(FaultEvent::link_degrade(0.0, 0, 0.5));

  // On the healthy tree the degraded primary carries the traffic.
  const std::vector<double> stale =
      residual_link_capacities(healthy, params, degrade, 1.0);
  EXPECT_EQ(stale[static_cast<std::size_t>(healthy.link_of_bridge_link[0])],
            0.5 * params.link_bandwidth_bytes_per_sec);

  // On the repaired tree the backup carries it at full speed.
  const stp::SpanningTree repaired = elect_residual(net, degrade, 1.0);
  const std::vector<double> residual =
      residual_link_capacities(repaired, params, degrade, 1.0);
  for (const double capacity : residual) {
    EXPECT_EQ(capacity, params.link_bandwidth_bytes_per_sec);
  }
}

TEST(RepairTest, PeakThroughputMatchesClosedForm) {
  const topology::Topology topo = topology::make_single_switch(4);
  simnet::NetworkParams params;
  const std::vector<double> nominal =
      params.link_capacities(topo.link_count());
  // 12 ordered pairs; each access direction carries 3 of them.
  const double expected = 12.0 * params.link_bandwidth_bytes_per_sec *
                          params.protocol_efficiency / 3.0;
  EXPECT_NEAR(aapc_peak_throughput(topo, params, nominal), expected, 1e-6);

  // A down loaded link collapses the bound to zero.
  std::vector<double> one_down = nominal;
  one_down[0] = 0;
  EXPECT_EQ(aapc_peak_throughput(topo, params, one_down), 0.0);
}

TEST(RepairTest, RepairScheduleCoversExactlyTheTail) {
  const stp::BridgeNetwork net = make_redundant_pair(3);
  const stp::SpanningTree tree = stp::compute_spanning_tree(net);
  const core::Schedule schedule = core::build_aapc_schedule(tree.topology);
  ASSERT_GE(schedule.phase_count(), 3);
  const std::int32_t splice = 2;
  FaultPlan degrade;
  degrade.add(FaultEvent::link_degrade(0.0, 0, 0.5));
  const RepairResult result =
      repair_schedule(net, schedule, splice, degrade, 1.0);
  EXPECT_GT(result.repair_wall_seconds, 0);

  std::vector<core::Message> expected;
  for (const core::ScheduledMessage& m : schedule.messages) {
    if (m.phase >= splice) expected.push_back(m.message);
  }
  std::vector<core::Message> got;
  for (const core::ScheduledMessage& m : result.remainder.messages) {
    got.push_back(m.message);
  }
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);

  EXPECT_THROW(repair_schedule(net, schedule, -1, degrade, 1.0),
               InvalidArgument);
  EXPECT_THROW(repair_schedule(net, schedule, schedule.phase_count() + 1,
                               degrade, 1.0),
               InvalidArgument);
}

TEST(ResilienceTest, RepairRecoversDegradedTrunkThroughput) {
  const stp::BridgeNetwork net = make_redundant_pair(3);
  harness::ResilienceScenario scenario;
  scenario.msize = 16_KiB;
  scenario.exec.wakeup_jitter_max = 0;
  scenario.plan.add(FaultEvent::link_degrade(milliseconds(2.0), 0, 0.5));
  const harness::ResilienceReport report =
      harness::run_resilience(net, scenario);

  EXPECT_GT(report.healthy_completion, 0);
  ASSERT_TRUE(report.stale_completed);
  EXPECT_GT(report.stale_completion, report.healthy_completion);
  EXPECT_GE(report.splice_phase, 1);
  EXPECT_GT(report.remainder_phases, 0);
  EXPECT_GT(report.prefix_completion, 0);
  EXPECT_GT(report.remainder_completion, 0);
  EXPECT_NEAR(report.repaired_completion,
              report.prefix_completion + scenario.detection_latency +
                  scenario.repair_overhead + report.remainder_completion,
              1e-12);
  // The degraded trunk halves the stale bound; the backup restores it.
  EXPECT_NEAR(report.degraded_peak_ratio(), 0.5, 1e-9);
  EXPECT_NEAR(report.residual_peak_mbps, report.healthy_peak_mbps, 1e-9);
  // The acceptance inequality of the bench, on a small instance.
  EXPECT_GE(report.recovered_ratio(), report.degraded_peak_ratio());
  EXPECT_FALSE(report.to_string().empty());
}

TEST(ResilienceTest, HardFailureStaleRunFailsRepairSucceeds) {
  const stp::BridgeNetwork net = make_redundant_pair(2);
  harness::ResilienceScenario scenario;
  scenario.msize = 16_KiB;
  scenario.exec.wakeup_jitter_max = 0;
  scenario.exec.transfer_timeout = milliseconds(20.0);
  scenario.exec.transfer_max_retries = 1;
  scenario.plan.add(FaultEvent::link_down(milliseconds(1.0), 0));
  const harness::ResilienceReport report =
      harness::run_resilience(net, scenario);
  EXPECT_FALSE(report.stale_completed);
  EXPECT_NE(report.stale_failure.find("rank"), std::string::npos)
      << report.stale_failure;
  EXPECT_GT(report.repaired_completion, 0);
  EXPECT_EQ(report.degraded_peak_mbps, 0.0);
  EXPECT_NEAR(report.residual_peak_mbps, report.healthy_peak_mbps, 1e-9);
}

}  // namespace
}  // namespace aapc::faults
