// Tests for the observability layer (obs/metrics.hpp,
// obs/exposition.hpp): instrument semantics, registry identity and
// type discipline, exporter round-trips, multi-threaded recording, and
// the subsystem wiring that exports aapc_executor_* / aapc_simnet_* /
// aapc_packet_* series from real runs.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::obs {
namespace {

TEST(Counter, IncrementAndSetTotal) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(5);
  EXPECT_EQ(c.value(), 6);
  c.set_total(10);
  EXPECT_EQ(c.value(), 10);
  // set_total never moves the counter backwards.
  c.set_total(3);
  EXPECT_EQ(c.value(), 10);
}

TEST(Gauge, SetAddAndSetMax) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
  g.set_max(3.0);
  EXPECT_EQ(g.value(), 3.0);
  g.set_max(0.5);
  EXPECT_EQ(g.value(), 3.0);
  g.set(-4.0);
  EXPECT_EQ(g.value(), -4.0);
}

TEST(Histogram, BucketsCountSumMax) {
  Histogram h({1.0, 2.0, 5.0});
  for (const double v : {0.5, 1.0, 1.5, 4.0, 7.0}) h.observe(v);
  const HistogramSnapshot snap = h.snapshot_state();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2);  // 0.5, 1.0 (bounds are inclusive)
  EXPECT_EQ(snap.buckets[1], 1);  // 1.5
  EXPECT_EQ(snap.buckets[2], 1);  // 4.0
  EXPECT_EQ(snap.buckets[3], 1);  // 7.0 -> +Inf
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 14.0);
  EXPECT_EQ(snap.max, 7.0);
}

TEST(Histogram, QuantileSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) h.observe(1.5);
  // All mass in (1, 2]; the interpolated estimate stays inside the
  // bucket and is clamped to the recorded max.
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 1.5);
  EXPECT_EQ(h.quantile(1.0), 1.5);
  h.observe(100.0);  // +Inf bucket resolves to the max
  EXPECT_EQ(h.quantile(1.0), 100.0);
  EXPECT_THROW(h.quantile(1.5), InvalidArgument);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({2.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, std::numeric_limits<double>::infinity()}),
               InvalidArgument);
}

TEST(Registry, SameSeriesSameInstrument) {
  Registry r;
  Counter& a = r.counter("aapc_test_total", "help");
  Counter& b = r.counter("aapc_test_total");
  EXPECT_EQ(&a, &b);
  // Label order does not matter: pairs are canonicalized by key.
  Counter& c = r.counter("aapc_labeled_total", "", {{"b", "2"}, {"a", "1"}});
  Counter& d = r.counter("aapc_labeled_total", "", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&c, &d);
  // A different label value is a different series.
  Counter& e = r.counter("aapc_labeled_total", "", {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(&c, &e);
  EXPECT_EQ(r.series_count(), 3u);
}

TEST(Registry, RejectsConflictsAndBadNames) {
  Registry r;
  r.counter("aapc_conflict");
  EXPECT_THROW(r.gauge("aapc_conflict"), InvalidArgument);
  // Same name, different labels, different type: still rejected (one
  // TYPE per name in the exposition).
  EXPECT_THROW(r.histogram("aapc_conflict", "", {1.0}, {{"k", "v"}}),
               InvalidArgument);
  r.histogram("aapc_hist", "", {1.0, 2.0});
  EXPECT_THROW(r.histogram("aapc_hist", "", {1.0, 3.0}), InvalidArgument);
  EXPECT_THROW(r.counter(""), InvalidArgument);
  EXPECT_THROW(r.counter("0starts_with_digit"), InvalidArgument);
  EXPECT_THROW(r.counter("has space"), InvalidArgument);
  EXPECT_THROW(r.counter("aapc_ok", "", {{"bad key", "v"}}), InvalidArgument);
  EXPECT_THROW(r.counter("aapc_ok", "", {{"colon:key", "v"}}),
               InvalidArgument);
  EXPECT_THROW(r.counter("aapc_ok", "", {{"k", "1"}, {"k", "2"}}),
               InvalidArgument);
}

TEST(Registry, SnapshotFindValueTotal) {
  Registry r;
  r.counter("aapc_events_total", "", {{"kind", "a"}}).inc(3);
  r.counter("aapc_events_total", "", {{"kind", "b"}}).inc(4);
  r.gauge("aapc_depth").set(2.5);
  const RegistrySnapshot snap = r.snapshot();
  ASSERT_NE(snap.find("aapc_events_total", {{"kind", "a"}}), nullptr);
  EXPECT_EQ(snap.find("aapc_events_total", {{"kind", "a"}})->counter, 3);
  EXPECT_EQ(snap.find("aapc_events_total"), nullptr);  // labels must match
  EXPECT_EQ(snap.value("aapc_events_total", {{"kind", "b"}}), 4.0);
  EXPECT_EQ(snap.value("aapc_missing"), 0.0);
  EXPECT_EQ(snap.total("aapc_events_total"), 7.0);
  EXPECT_EQ(snap.value("aapc_depth"), 2.5);
}

TEST(Exposition, PrometheusTextShape) {
  Registry r;
  r.counter("aapc_reqs_total", "Requests \"served\"", {{"path", "a\\b\"c\nd"}})
      .inc(7);
  r.gauge("aapc_depth", "Current depth").set(1.5);
  r.histogram("aapc_lat_seconds", "Latency", {1.0, 2.0}).observe(1.5);
  const std::string text = to_prometheus_text(r.snapshot());
  EXPECT_NE(text.find("# HELP aapc_reqs_total Requests \"served\"\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE aapc_reqs_total counter\n"), std::string::npos);
  // Label values escape backslash, quote and newline.
  EXPECT_NE(text.find("aapc_reqs_total{path=\"a\\\\b\\\"c\\nd\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("aapc_depth 1.5\n"), std::string::npos);
  // Cumulative buckets + sum/count (and the exact-max extension).
  EXPECT_NE(text.find("aapc_lat_seconds_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("aapc_lat_seconds_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aapc_lat_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aapc_lat_seconds_sum 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("aapc_lat_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("aapc_lat_seconds_max 1.5\n"), std::string::npos);
}

/// Round trip: registry -> JSON -> snapshot -> JSON must be
/// bit-identical for every value (format_double_roundtrip guarantees
/// the decimal form parses back exactly).
TEST(Exposition, JsonRoundTripIsExact) {
  Registry r;
  r.counter("aapc_big_total").inc((std::int64_t{1} << 53) + 7);
  r.gauge("aapc_pi", "with \"quotes\" and \\slashes\\ and \ncontrol")
      .set(0.1 + 0.2);  // deliberately not representable
  r.gauge("aapc_neg", "", {{"k", "v\twith\ttabs"}}).set(-1.25e-13);
  Histogram& h = r.histogram("aapc_lat_seconds", "Latency");
  h.observe(3.3e-5);
  h.observe(0.42);
  h.observe(17.0);

  const RegistrySnapshot original = r.snapshot();
  const std::string json = to_json(original);
  const RegistrySnapshot parsed = snapshot_from_json(json);
  ASSERT_EQ(parsed.series.size(), original.series.size());
  for (std::size_t i = 0; i < original.series.size(); ++i) {
    const SeriesSnapshot& a = original.series[i];
    const SeriesSnapshot& b = parsed.series[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.help, b.help);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.counter, b.counter);
    EXPECT_EQ(a.gauge, b.gauge);
    EXPECT_EQ(a.histogram.bounds, b.histogram.bounds);
    EXPECT_EQ(a.histogram.buckets, b.histogram.buckets);
    EXPECT_EQ(a.histogram.count, b.histogram.count);
    EXPECT_EQ(a.histogram.sum, b.histogram.sum);
    EXPECT_EQ(a.histogram.max, b.histogram.max);
  }
  EXPECT_EQ(to_json(parsed), json);
}

TEST(Exposition, JsonParserRejectsMalformedInput) {
  Registry r;
  r.counter("aapc_x_total").inc();
  const std::string json = to_json(r.snapshot());
  EXPECT_NO_THROW(snapshot_from_json(json));
  EXPECT_THROW(snapshot_from_json(""), InvalidArgument);
  EXPECT_THROW(snapshot_from_json("{\"wrong\":[]}"), InvalidArgument);
  EXPECT_THROW(snapshot_from_json(json + "x"), InvalidArgument);
  EXPECT_THROW(
      snapshot_from_json(
          R"({"metrics":[{"name":"a","type":"counter","value":1,"bogus":2}]})"),
      InvalidArgument);
  EXPECT_THROW(
      snapshot_from_json(R"({"metrics":[{"name":"a","type":"nope"}]})"),
      InvalidArgument);
  // Out-of-range numbers are rejected, not saturated.
  EXPECT_THROW(
      snapshot_from_json(
          R"({"metrics":[{"name":"a","type":"gauge","value":1e999}]})"),
      InvalidArgument);
}

/// Many writers, one concurrent reader: final totals must be exact
/// (every relaxed increment lands), and registration from all threads
/// must converge on the same instruments. Run under TSan in CI.
TEST(Concurrency, HammerWithConcurrentSnapshots) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  Registry r;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const RegistrySnapshot snap = r.snapshot();
      for (const SeriesSnapshot& s : snap.series) {
        // Counts never go backwards and histograms stay coherent
        // enough that count >= any single bucket.
        if (s.type == MetricType::kHistogram) {
          for (const std::int64_t b : s.histogram.buckets) {
            EXPECT_LE(b, s.histogram.count);
          }
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&r, t] {
      // Resolve handles in-thread: registration must be thread-safe
      // and return the same instruments everywhere.
      Counter& ops = r.counter("aapc_hammer_ops_total");
      Gauge& acc = r.gauge("aapc_hammer_acc");
      Gauge& peak = r.gauge("aapc_hammer_peak");
      Histogram& lat = r.histogram("aapc_hammer_seconds", "", {0.5, 1.5});
      for (int i = 0; i < kIterations; ++i) {
        ops.inc();
        acc.add(1.0);
        peak.set_max(static_cast<double>(t * kIterations + i));
        lat.observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  reader.join();

  const RegistrySnapshot snap = r.snapshot();
  const std::int64_t expected =
      static_cast<std::int64_t>(kThreads) * kIterations;
  EXPECT_EQ(snap.find("aapc_hammer_ops_total")->counter, expected);
  EXPECT_EQ(snap.value("aapc_hammer_acc"), static_cast<double>(expected));
  EXPECT_EQ(snap.value("aapc_hammer_peak"),
            static_cast<double>(kThreads * kIterations - 1));
  const SeriesSnapshot* lat = snap.find("aapc_hammer_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->histogram.count, expected);
  EXPECT_EQ(lat->histogram.buckets[0], expected / 2);
  EXPECT_EQ(lat->histogram.buckets[1], expected / 2);
}

mpisim::ExecutionResult run_scheduled_alltoall(Registry& registry,
                                               mpisim::NetworkBackendKind
                                                   backend) {
  const topology::Topology topo = topology::make_paper_figure1();
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, schedule, 16_KiB, {});
  const simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.backend = backend;
  exec.metrics = &registry;
  mpisim::Executor executor(topo, net, exec);
  return executor.run(set);
}

TEST(Wiring, ExecutorExportsExecutorAndSimnetSeries) {
  Registry registry;
  const mpisim::ExecutionResult result =
      run_scheduled_alltoall(registry, mpisim::NetworkBackendKind::kFluid);
  const RegistrySnapshot snap = registry.snapshot();

  EXPECT_EQ(snap.value("aapc_executor_runs_total"), 1.0);
  EXPECT_EQ(snap.total("aapc_executor_messages_total"),
            static_cast<double>(result.message_count));
  const SeriesSnapshot* transfers =
      snap.find("aapc_executor_transfer_seconds");
  ASSERT_NE(transfers, nullptr);
  EXPECT_GT(transfers->histogram.count, 0);
  const SeriesSnapshot* runs = snap.find("aapc_executor_run_seconds");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->histogram.max, result.completion_time);

  // Fluid-model series ride along with consistent values.
  EXPECT_EQ(snap.value("aapc_simnet_events_total", {{"kind", "completion"}}),
            static_cast<double>(result.network_stats.completed_flows));
  EXPECT_EQ(snap.value("aapc_simnet_rate_recomputations_total"),
            static_cast<double>(result.network_stats.rate_recomputations));
  EXPECT_EQ(snap.value("aapc_simnet_max_concurrent_flows"),
            static_cast<double>(result.network_stats.max_concurrent_flows));
  EXPECT_GT(snap.value("aapc_simnet_busy_row_seconds"), 0.0);
  // Mean utilization implied by the two gauges is a sane fraction of
  // the row count.
  EXPECT_GT(snap.value("aapc_simnet_elapsed_seconds"), 0.0);

  // A second run into the same registry accumulates.
  run_scheduled_alltoall(registry, mpisim::NetworkBackendKind::kFluid);
  EXPECT_EQ(registry.snapshot().value("aapc_executor_runs_total"), 2.0);
}

TEST(Wiring, PacketBackendExportsPacketSeries) {
  Registry registry;
  const mpisim::ExecutionResult result =
      run_scheduled_alltoall(registry, mpisim::NetworkBackendKind::kPacket);
  ASSERT_TRUE(result.packet.used);
  const RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("aapc_packet_segments_sent_total"),
            static_cast<double>(result.packet.segments_sent));
  EXPECT_GT(snap.value("aapc_packet_segments_sent_total"), 0.0);
  ASSERT_NE(snap.find("aapc_packet_segments_dropped_total",
                      {{"mechanism", "queue_overflow"}}),
            nullptr);
  EXPECT_EQ(snap.value("aapc_packet_peak_queue_segments"),
            static_cast<double>(result.packet.peak_queue_occupancy));
  EXPECT_GT(snap.value("aapc_packet_goodput_bytes_per_second"), 0.0);
}

TEST(Wiring, ExperimentReportEmbedsRunTelemetry) {
  const topology::Topology topo = topology::make_paper_figure1();
  harness::ExperimentConfig config;
  config.msizes = {8_KiB};
  config.iterations = 1;
  const harness::ExperimentReport report = harness::run_experiment(
      topo, "obs telemetry probe", harness::standard_suite(topo), config);
  EXPECT_EQ(report.telemetry.title, "obs telemetry probe");
  // 3 algorithms x 1 msize x 1 iteration.
  EXPECT_EQ(report.telemetry.metrics.value("aapc_executor_runs_total"), 3.0);

  const std::string json = report.telemetry.to_json();
  EXPECT_EQ(json.find("{\"title\":\"obs telemetry probe\","), 0u);
  // The metrics portion is exactly the obs exporter's document.
  const std::size_t at = json.find("\"metrics\"");
  ASSERT_NE(at, std::string::npos);
  const RegistrySnapshot parsed = snapshot_from_json("{" + json.substr(at));
  EXPECT_EQ(parsed.series.size(), report.telemetry.metrics.series.size());
  EXPECT_EQ(parsed.value("aapc_executor_runs_total"), 3.0);
}

}  // namespace
}  // namespace aapc::obs
