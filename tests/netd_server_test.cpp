// Loopback end-to-end tests for the aapc_netd server (netd/server.hpp,
// docs/NETD.md): bit-identity of TCP responses against the in-process
// ScheduleService, the pressure valves (quota, connection cap,
// dispatch overload) answering with structured error frames, protocol
// violations, mid-frame disconnects, graceful drain, and concurrent
// connections. Sizes stay moderate so the suite is TSan-friendly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aapc/common/rng.hpp"
#include "aapc/common/units.hpp"
#include "aapc/core/schedule_io.hpp"
#include "aapc/netd/client.hpp"
#include "aapc/netd/server.hpp"
#include "aapc/netd/wire.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

namespace aapc::netd {
namespace {

using topology::NodeId;
using topology::Topology;

/// The same physical cluster under a fresh rank/switch labeling.
Topology shuffled_copy(const Topology& topo, Rng& rng) {
  const std::int32_t n = topo.node_count();
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  Topology out;
  std::vector<NodeId> new_id(static_cast<std::size_t>(n));
  for (const NodeId old : order) {
    new_id[static_cast<std::size_t>(old)] =
        topo.is_machine(old) ? out.add_machine() : out.add_switch();
  }
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    const auto [a, b] = topo.link_endpoints(l);
    out.add_link(new_id[static_cast<std::size_t>(a)],
                 new_id[static_cast<std::size_t>(b)]);
  }
  out.finalize();
  return out;
}

/// Starts a server on an ephemeral loopback port.
std::unique_ptr<Server> start_server(ServerOptions options = {}) {
  options.port = 0;
  auto server = std::make_unique<Server>(options);
  server->start();
  return server;
}

TEST(NetdServerTest, LoopbackResponsesBitIdenticalToInProcessService) {
  const auto server = start_server();
  Client client("127.0.0.1", server->port());
  service::ScheduleService reference;
  Rng rng(17);
  const Topology bases[] = {topology::make_paper_figure1(),
                            topology::make_paper_topology_b(),
                            topology::make_paper_topology_c()};
  for (const Topology& base : bases) {
    for (const Bytes msize : {8_KiB, 256_KiB}) {
      // Once under the generator labeling, once relabeled: the wire
      // must preserve the relabeling semantics of docs/SERVICE.md.
      for (const Topology& topo : {base, shuffled_copy(base, rng)}) {
        const ResponseFrame over_wire = client.compile(topo, msize);
        const service::CompiledRoutine in_process =
            reference.compile(topo, msize);
        EXPECT_EQ(over_wire.schedule_json,
                  core::schedule_to_json(in_process.schedule,
                                         topo.machine_count()));
        EXPECT_EQ(over_wire.to_canonical, in_process.to_canonical);
        EXPECT_LT(over_wire.shard,
                  static_cast<std::uint32_t>(server->options().shards));
      }
    }
  }
}

TEST(NetdServerTest, CacheHitAndCoalesceFlagsTravelTheWire) {
  const auto server = start_server();
  Client client("127.0.0.1", server->port());
  const Topology topo = topology::make_paper_figure1();
  const ResponseFrame first = client.compile(topo, 8_KiB);
  EXPECT_FALSE(first.cache_hit);
  const ResponseFrame second = client.compile(topo, 8_KiB);
  EXPECT_TRUE(second.cache_hit);
  // Isomorphic relabelings share the canonical artifact (and shard).
  Rng rng(23);
  const ResponseFrame relabeled =
      client.compile(shuffled_copy(topo, rng), 8_KiB);
  EXPECT_TRUE(relabeled.cache_hit);
  EXPECT_EQ(relabeled.canonical_hash, first.canonical_hash);
  EXPECT_EQ(relabeled.shard, first.shard);
}

TEST(NetdServerTest, MetricsRequestReturnsMergedRegistry) {
  const auto server = start_server();
  Client client("127.0.0.1", server->port());
  (void)client.compile(topology::make_paper_figure1(), 8_KiB);
  const std::string json = client.fetch_metrics_json();
  EXPECT_NE(json.find("aapc_netd_requests_total"), std::string::npos);
  EXPECT_NE(json.find("aapc_netd_request_seconds"), std::string::npos);
  // Backend shard series appear with the shard label injected.
  EXPECT_NE(json.find("aapc_service_requests_total"), std::string::npos);
  EXPECT_NE(json.find("\"shard\""), std::string::npos);
}

TEST(NetdServerTest, InvalidTopologyAnswersStructuredErrorAndKeepsConnection) {
  const auto server = start_server();
  Client client("127.0.0.1", server->port());
  try {
    (void)client.compile_serialized("not a topology at all", 8_KiB);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidRequest);
  }
  // The connection survives a request-scoped failure.
  const ResponseFrame ok =
      client.compile(topology::make_paper_figure1(), 8_KiB);
  EXPECT_FALSE(ok.schedule_json.empty());
}

TEST(NetdServerTest, BadCollectiveKindAnswersStructuredErrorAndKeepsConnection) {
  const auto server = start_server();
  Client client("127.0.0.1", server->port());
  RequestFrame request;
  request.request_id = 77;
  request.message_bytes = 8_KiB;
  request.topology_text =
      topology::serialize_topology(topology::make_paper_figure1());
  std::string bytes = encode_request(request);
  // Re-stamp the kind byte (8 bytes from the end: kind u8 + 3 reserved
  // bytes + empty-set count u32) to a value off the enum.
  bytes[bytes.size() - 8] = static_cast<char>(9);
  client.send_raw(bytes);
  const Frame frame = client.read_frame();
  ASSERT_EQ(frame.header.type, FrameType::kError);
  const ErrorFrame error = decode_error(frame);
  EXPECT_EQ(error.code, ErrorCode::kInvalidRequest);
  EXPECT_EQ(error.request_id, 77u);
  // A bad kind is a bad request, not a torn stream: unlike the
  // malformed-frame path the connection stays open and serves the
  // next compile.
  const ResponseFrame ok =
      client.compile(topology::make_paper_figure1(), 8_KiB);
  EXPECT_FALSE(ok.schedule_json.empty());
}

TEST(NetdServerTest, CompilesEveryCollectiveKindOverLoopback) {
  const auto server = start_server();
  Client client("127.0.0.1", server->port());
  service::ScheduleService reference;
  const Topology topo = topology::make_paper_figure1();
  const std::int32_t n = topo.machine_count();
  core::SparseNeighbors ring(static_cast<std::size_t>(n));
  for (topology::Rank r = 0; r < n; ++r) {
    ring[static_cast<std::size_t>(r)] = {(r + 1) % n, (r + n - 1) % n};
  }
  struct Case {
    core::CollectiveKind kind;
    core::SparseNeighbors neighbors;
  };
  const std::vector<Case> cases{
      {core::CollectiveKind::kAlltoall, {}},
      {core::CollectiveKind::kAllgather, {}},
      {core::CollectiveKind::kReduceScatter, {}},
      {core::CollectiveKind::kSparseAlltoall, ring},
  };
  for (const Case& c : cases) {
    const ResponseFrame over_wire =
        client.compile(topo, 8_KiB, "default", c.kind, c.neighbors);
    const service::CompiledRoutine in_process =
        reference.compile(topo, 8_KiB, c.kind, c.neighbors);
    EXPECT_EQ(over_wire.schedule_json,
              core::schedule_to_json(in_process.schedule, n))
        << core::collective_kind_name(c.kind);
    EXPECT_EQ(in_process.schedule.kind, c.kind);
  }
  // Neighbor sets on a non-sparse kind are a request-scoped error.
  try {
    (void)client.compile(topo, 8_KiB, "default",
                         core::CollectiveKind::kAllgather, ring);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidRequest);
  } catch (const Error&) {
    // encode-side rejection is also acceptable — nothing hit the wire
  }
  EXPECT_FALSE(
      client.compile(topo, 8_KiB).schedule_json.empty());
}

TEST(NetdServerTest, MalformedFrameAnswersProtocolErrorThenCloses) {
  const auto server = start_server();
  Client client("127.0.0.1", server->port());
  std::string garbage(64, '\x5a');  // wrong magic from byte 0
  client.send_raw(garbage);
  const Frame frame = client.read_frame();
  ASSERT_EQ(frame.header.type, FrameType::kError);
  EXPECT_EQ(decode_error(frame).code, ErrorCode::kProtocol);
  // After answering, the server closes: the next read must fail
  // rather than hang.
  EXPECT_THROW((void)client.read_frame(), Error);
}

TEST(NetdServerTest, TenantQuotaAnswersQuotaExceededWithRetryHint) {
  ServerOptions options;
  options.admission.tenant_rate = 0.001;  // effectively no refill
  options.admission.tenant_burst = 2;
  const auto server = start_server(options);
  Client client("127.0.0.1", server->port());
  const Topology topo = topology::make_paper_figure1();
  (void)client.compile(topo, 8_KiB, "greedy");
  (void)client.compile(topo, 8_KiB, "greedy");
  try {
    (void)client.compile(topo, 8_KiB, "greedy");
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQuotaExceeded);
    EXPECT_GT(e.retry_after_seconds(), 0.0);
  }
  // Quotas are per tenant: another tenant is unaffected.
  EXPECT_FALSE(client.compile(topo, 8_KiB, "patient").schedule_json.empty());
}

TEST(NetdServerTest, ConnectionCapRefusesWithStructuredFrame) {
  ServerOptions options;
  options.admission.max_connections = 1;
  const auto server = start_server(options);
  Client first("127.0.0.1", server->port());
  (void)first.compile(topology::make_paper_figure1(), 8_KiB);
  Client second("127.0.0.1", server->port());
  const Frame frame = second.read_frame();
  ASSERT_EQ(frame.header.type, FrameType::kError);
  EXPECT_EQ(decode_error(frame).code, ErrorCode::kConnectionLimit);
  // The admitted connection keeps working.
  EXPECT_TRUE(first.compile(topology::make_paper_figure1(), 8_KiB).cache_hit);
}

TEST(NetdServerTest, DispatchOverloadAnswersOverloadedWithRetryHint) {
  ServerOptions options;
  options.event_loops = 1;
  options.dispatch_threads = 1;
  options.dispatch_queue_capacity = 1;
  options.shards = 1;
  options.service.compiler_threads = 1;
  options.service.queue_capacity = 1;
  const auto server = start_server(options);

  constexpr int kClients = 8;
  std::atomic<int> served{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client client("127.0.0.1", server->port());
        Rng rng(1000 + static_cast<std::uint64_t>(t));
        // Distinct random clusters: every request is a cache miss, so
        // the single compiler saturates and the valves must speak.
        topology::RandomTreeOptions tree;
        tree.switches = 3;
        tree.machines = 16;
        const Topology topo = topology::make_random_tree(rng, tree);
        (void)client.compile(topo, 64_KiB);
        served.fetch_add(1);
      } catch (const RemoteError& e) {
        if (e.code() == ErrorCode::kOverloaded) {
          EXPECT_GT(e.retry_after_seconds(), 0.0);
          overloaded.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      } catch (const std::exception&) {
        other.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every request got a definite outcome — served or a structured
  // overload frame; never a dropped connection or unexpected error.
  EXPECT_EQ(served.load() + overloaded.load(), kClients);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(overloaded.load(), 1);
}

TEST(NetdServerTest, MidFrameDisconnectIsCountedNotFatal) {
  const auto server = start_server();
  {
    Client rude("127.0.0.1", server->port());
    const std::string bytes = encode_request([] {
      RequestFrame request;
      request.request_id = 1;
      request.message_bytes = 8_KiB;
      request.tenant = "rude";
      request.topology_text =
          topology::serialize_topology(topology::make_paper_figure1());
      return request;
    }());
    rude.send_raw(bytes.substr(0, bytes.size() / 2));
    rude.close();  // hang up with half a frame buffered server-side
  }
  // The server keeps serving; the disconnect shows up as a counter.
  Client polite("127.0.0.1", server->port());
  EXPECT_FALSE(
      polite.compile(topology::make_paper_figure1(), 8_KiB)
          .schedule_json.empty());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  double count = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    count = server->metrics_snapshot().value(
        "aapc_netd_midframe_disconnects_total");
    if (count >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(count, 1);
}

TEST(NetdServerTest, StopDrainsInFlightRequestsGracefully) {
  ServerOptions options;
  options.drain_deadline_seconds = 20;
  const auto server = start_server(options);
  std::atomic<bool> done{false};
  std::atomic<bool> torn{false};
  std::thread tenant([&] {
    try {
      Client client("127.0.0.1", server->port());
      Rng rng(77);
      topology::RandomTreeOptions tree;
      tree.switches = 4;
      tree.machines = 20;
      (void)client.compile(topology::make_random_tree(rng, tree), 256_KiB);
    } catch (const RemoteError& e) {
      // A request the drain could not start is failed structurally.
      if (e.code() != ErrorCode::kShuttingDown) torn.store(true);
    } catch (const std::exception&) {
      torn.store(true);  // transport-level tear == abandoned mid-future
    }
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->stop();
  tenant.join();
  EXPECT_TRUE(done.load());
  EXPECT_FALSE(torn.load());
  // Stopped means stopped: new connections are refused.
  EXPECT_THROW(Client("127.0.0.1", server->port()), Error);
}

TEST(NetdServerTest, ConcurrentConnectionsAllServedExactly) {
  ServerOptions options;
  options.shards = 2;
  options.dispatch_threads = 4;
  const auto server = start_server(options);
  constexpr int kClients = 12;
  constexpr int kRequestsEach = 6;
  std::atomic<int> served{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client client("127.0.0.1", server->port());
        Rng rng(31 * static_cast<std::uint64_t>(t) + 5);
        const Topology bases[] = {topology::make_paper_figure1(),
                                  topology::make_paper_topology_b(),
                                  topology::make_paper_topology_c()};
        for (int i = 0; i < kRequestsEach; ++i) {
          const Topology topo =
              shuffled_copy(bases[rng.next_below(3)], rng);
          for (;;) {
            try {
              const ResponseFrame response = client.compile(topo, 64_KiB);
              if (response.schedule_json.empty()) failures.fetch_add(1);
              served.fetch_add(1);
              break;
            } catch (const RemoteError& e) {
              if (e.code() != ErrorCode::kOverloaded) throw;
              std::this_thread::sleep_for(std::chrono::milliseconds(5));
            }
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(served.load(), kClients * kRequestsEach);
  EXPECT_EQ(failures.load(), 0);
  const obs::RegistrySnapshot snapshot = server->metrics_snapshot();
  EXPECT_GE(snapshot.total("aapc_netd_requests_total"),
            static_cast<double>(kClients * kRequestsEach));
}

// ---------------------------------------------------------------------------
// Fabric churn (docs/NETD.md §churn): live link events over the wire.

/// Two switches, three machines each. Bridge link 0 is the elected
/// trunk; link 1 is a redundant higher-cost trunk that 802.1D blocks
/// until the primary fails.
std::shared_ptr<stp::BridgeNetwork> make_fabric(bool redundant_trunk = true) {
  auto fabric = std::make_shared<stp::BridgeNetwork>();
  const stp::BridgeId s0 = fabric->add_bridge("s0", 1);
  const stp::BridgeId s1 = fabric->add_bridge("s1", 2);
  fabric->add_bridge_link(s0, s1, 19);
  if (redundant_trunk) fabric->add_bridge_link(s0, s1, 38);
  for (int m = 0; m < 3; ++m) {
    fabric->add_machine("a" + std::to_string(m), s0);
    fabric->add_machine("b" + std::to_string(m), s1);
  }
  return fabric;
}

/// Polls `client` until the served artifact is fresh again (bounded).
ResponseFrame compile_until_fresh(Client& client, const Topology& topo,
                                  Bytes msize) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const ResponseFrame response = client.compile(topo, msize);
    if (!response.stale || std::chrono::steady_clock::now() > deadline) {
      return response;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(NetdChurnTest, DegradeServesStaleThenRevalidatesOverTheWire) {
  ServerOptions options;
  options.shards = 1;  // exact invalidation accounting below
  options.fabric = make_fabric();
  const auto server = start_server(options);
  const Topology elected =
      stp::compute_spanning_tree(*options.fabric).topology;
  Client client("127.0.0.1", server->port());

  const ResponseFrame healthy = client.compile(elected, 8_KiB);
  EXPECT_FALSE(healthy.stale);
  EXPECT_EQ(healthy.epoch, 0u);

  const ChurnAckFrame ack = client.churn(ChurnKind::kLinkDegrade, 0, 0.5);
  EXPECT_EQ(ack.epoch, 1u);
  EXPECT_EQ(ack.invalidated, 1u);
  EXPECT_FALSE(ack.reelected);  // a degraded trunk still forwards

  // The invalidated entry answers immediately — patched, flagged stale,
  // stamped with the new epoch — while the weighted recompilation runs.
  const ResponseFrame stale = client.compile(elected, 8_KiB);
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_EQ(stale.epoch, 1u);
  EXPECT_EQ(stale.canonical_hash, healthy.canonical_hash);

  const ResponseFrame fresh = compile_until_fresh(client, elected, 8_KiB);
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.epoch, 1u);

  const obs::RegistrySnapshot snapshot = server->metrics_snapshot();
  EXPECT_GE(snapshot.total("aapc_netd_churn_events_total"), 1.0);
  EXPECT_GE(snapshot.total("aapc_service_stale_hits_total"), 1.0);
  EXPECT_GE(snapshot.total("aapc_service_revalidations_total"), 1.0);
  EXPECT_EQ(snapshot.total("aapc_service_revalidation_failures_total"), 0.0);
}

TEST(NetdChurnTest, TrunkFailureReelectsOntoTheBackupLink) {
  ServerOptions options;
  options.shards = 1;
  options.fabric = make_fabric();
  const auto server = start_server(options);
  const Topology elected =
      stp::compute_spanning_tree(*options.fabric).topology;
  Client client("127.0.0.1", server->port());
  (void)client.compile(elected, 8_KiB);

  const ChurnAckFrame ack = client.churn(ChurnKind::kLinkDown, 0);
  EXPECT_EQ(ack.epoch, 1u);
  EXPECT_EQ(ack.invalidated, 1u);  // the dead trunk was forwarding
  EXPECT_TRUE(ack.reelected);      // traffic moved to bridge link 1

  // The backup tree is isomorphic (same shape), so the canonical hash —
  // and the cached artifact — survive the re-election; the entry is
  // stale (its link vanished) and refreshes in the background. The
  // rebind re-seeds rates from the *backup* trunk, which is healthy, so
  // the refreshed schedule is the nominal rate-blind one.
  const ResponseFrame after = client.compile(elected, 8_KiB);
  EXPECT_EQ(after.epoch, 1u);
  const ResponseFrame fresh = compile_until_fresh(client, elected, 8_KiB);
  EXPECT_FALSE(fresh.stale);
  EXPECT_GE(server->metrics_snapshot().total("aapc_netd_reelections_total"),
            1.0);

  // Restoring the primary trunk re-elects back and invalidates again.
  const ChurnAckFrame restore = client.churn(ChurnKind::kLinkUp, 0);
  EXPECT_EQ(restore.epoch, 2u);
  EXPECT_TRUE(restore.reelected);
}

TEST(NetdChurnTest, DisconnectingOrMalformedEventsRejectedWithoutStateChange) {
  ServerOptions options;
  options.shards = 1;
  options.fabric = make_fabric(/*redundant_trunk=*/false);
  const auto server = start_server(options);
  const Topology elected =
      stp::compute_spanning_tree(*options.fabric).topology;
  Client client("127.0.0.1", server->port());
  (void)client.compile(elected, 8_KiB);

  // Downing the only trunk would disconnect the fabric: the trial
  // election rejects it and nothing is applied.
  try {
    (void)client.churn(ChurnKind::kLinkDown, 0);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidRequest);
  }
  // Out-of-range link index: same structured rejection.
  EXPECT_THROW((void)client.churn(ChurnKind::kLinkDegrade, 99, 0.5),
               RemoteError);
  // No state change: the cached artifact is still fresh at epoch 0.
  const ResponseFrame response = client.compile(elected, 8_KiB);
  EXPECT_FALSE(response.stale);
  EXPECT_EQ(response.epoch, 0u);
  EXPECT_GE(server->metrics_snapshot().total("aapc_netd_churn_rejects_total"),
            2.0);
}

TEST(NetdChurnTest, ChurnEventsRejectedWhenNoFabricConfigured) {
  const auto server = start_server();
  Client client("127.0.0.1", server->port());
  try {
    (void)client.churn(ChurnKind::kLinkDegrade, 0, 0.5);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidRequest);
  }
  // The connection survives the rejection.
  EXPECT_FALSE(client.compile(topology::make_paper_figure1(), 8_KiB)
                   .schedule_json.empty());
}

TEST(NetdClientTest, ReconnectsTransparentlyAcrossAServerRestart) {
  ServerOptions options;
  auto server = start_server(options);
  const std::uint16_t port = server->port();
  ClientOptions client_options;
  client_options.initial_backoff_seconds = 0.02;
  Client client("127.0.0.1", port, client_options);
  const Topology topo = topology::make_paper_figure1();
  (void)client.compile(topo, 8_KiB);

  // Restart the server on the same port: the client's socket dies, and
  // the next compile must redial and resend instead of surfacing the
  // transport error.
  server->stop();
  server.reset();
  options.port = port;
  auto reborn = std::make_unique<Server>(options);
  reborn->start();

  const ResponseFrame response = client.compile(topo, 8_KiB);
  EXPECT_FALSE(response.schedule_json.empty());
  EXPECT_GE(client.reconnects(), 1);
}

TEST(NetdClientTest, ZeroReconnectsPreservesFailFastBehavior) {
  ClientOptions options;
  options.max_reconnects = 0;
  const auto server = start_server();
  Client client("127.0.0.1", server->port(), options);
  (void)client.compile(topology::make_paper_figure1(), 8_KiB);
  server->stop();
  EXPECT_THROW((void)client.compile(topology::make_paper_figure1(), 8_KiB),
               Error);
}

}  // namespace
}  // namespace aapc::netd
