// Tests for the .topo text format (input of the routine generator).
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/common/units.hpp"
#include "aapc/topology/generators.hpp"
#include "aapc/topology/io.hpp"

namespace aapc::topology {
namespace {

TEST(TopologyIoTest, ParsesBasicCluster) {
  const Topology topo = parse_topology(R"(
    # two switches, three machines
    switch s0
    switch s1
    link s0 s1
    machine n0 s0
    machine n1 s0
    machine n2 s1
  )");
  EXPECT_EQ(topo.machine_count(), 3);
  EXPECT_EQ(topo.switch_count(), 2);
  EXPECT_EQ(topo.aapc_load(), 2);
}

TEST(TopologyIoTest, MachineShorthandEqualsExplicitLink) {
  const Topology a = parse_topology("switch s0\nmachine n0 s0\nmachine n1 s0\n");
  const Topology b = parse_topology(
      "switch s0\nmachine n0\nmachine n1\nlink n0 s0\nlink n1 s0\n");
  EXPECT_EQ(serialize_topology(a), serialize_topology(b));
}

TEST(TopologyIoTest, CommentsAndBlankLinesIgnored) {
  const Topology topo = parse_topology(
      "\n# header\nswitch s0  # trailing\n\nmachine n0 s0\nmachine n1 s0\n");
  EXPECT_EQ(topo.machine_count(), 2);
}

TEST(TopologyIoTest, ErrorsCarryLineNumbers) {
  try {
    parse_topology("switch s0\nbogus n0\n");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TopologyIoTest, UnknownNodeInLink) {
  EXPECT_THROW(parse_topology("switch s0\nlink s0 s9\nmachine n0 s0\n"),
               InvalidArgument);
}

TEST(TopologyIoTest, DuplicateNameRejected) {
  EXPECT_THROW(parse_topology("switch s0\nswitch s0\n"), InvalidArgument);
}

TEST(TopologyIoTest, LinksMayPrecedeDefinitionsViaTwoPass) {
  // Links resolve after all nodes parse, so forward references work.
  const Topology topo = parse_topology(
      "link n0 s0\nswitch s0\nmachine n0\nmachine n1 s0\n");
  EXPECT_EQ(topo.machine_count(), 2);
}

TEST(TopologyIoTest, RoundTripPaperTopologies) {
  for (const Topology& original :
       {make_paper_topology_a(), make_paper_topology_b(),
        make_paper_topology_c(), make_paper_figure1()}) {
    const Topology reparsed = parse_topology(serialize_topology(original));
    EXPECT_EQ(reparsed.machine_count(), original.machine_count());
    EXPECT_EQ(reparsed.switch_count(), original.switch_count());
    EXPECT_EQ(reparsed.aapc_load(), original.aapc_load());
    EXPECT_EQ(serialize_topology(reparsed), serialize_topology(original));
  }
}

TEST(TopologyIoTest, DescribeMentionsBottleneckAndPeak) {
  const std::string text =
      describe_topology(make_paper_topology_c(), mbps_to_bytes_per_sec(100));
  EXPECT_NE(text.find("bottleneck"), std::string::npos);
  EXPECT_NE(text.find("256"), std::string::npos);
  EXPECT_NE(text.find("387.5"), std::string::npos);
}

TEST(TopologyIoTest, MissingFileThrows) {
  EXPECT_THROW(load_topology_file("/nonexistent/file.topo"), InvalidArgument);
}

}  // namespace
}  // namespace aapc::topology
