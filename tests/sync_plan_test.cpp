// Tests for the contention-dependence graph and redundant-synchronization
// elimination (§5).
#include <gtest/gtest.h>

#include <set>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::sync {
namespace {

using core::Message;
using core::MessageScope;
using core::Schedule;
using core::ScheduledMessage;
using topology::make_paper_figure1;
using topology::make_single_switch;
using topology::Topology;

Schedule make_schedule(
    const std::vector<std::vector<Message>>& phases) {
  return Schedule::from_phase_lists(phases);
}

TEST(SyncPlanTest, ChainIsTransitivelyReduced) {
  // Three phases, all messages from rank 0 (share its uplink): the full
  // graph has edges 0->1, 0->2, 1->2; reduction drops 0->2.
  const Topology topo = make_single_switch(4);
  const Schedule schedule =
      make_schedule({{Message{0, 1}}, {Message{0, 2}}, {Message{0, 3}}});
  SyncPlanOptions keep_all;
  keep_all.remove_redundant = false;
  const SyncPlan full = build_sync_plan(topo, schedule, keep_all);
  EXPECT_EQ(full.edges_before_reduction, 3);
  EXPECT_EQ(full.edges.size(), 3u);

  const SyncPlan reduced = build_sync_plan(topo, schedule);
  EXPECT_EQ(reduced.edges_before_reduction, 3);
  ASSERT_EQ(reduced.edges.size(), 2u);
  EXPECT_EQ(reduced.edges[0], (SyncEdge{0, 1}));
  EXPECT_EQ(reduced.edges[1], (SyncEdge{1, 2}));
}

TEST(SyncPlanTest, NoEdgesWithinAPhase) {
  const Topology topo = make_single_switch(4);
  // Two disjoint messages in one phase; no dependencies possible.
  const Schedule schedule =
      make_schedule({{Message{0, 1}, Message{2, 3}}});
  const SyncPlan plan = build_sync_plan(topo, schedule);
  EXPECT_TRUE(plan.edges.empty());
}

TEST(SyncPlanTest, DisjointPathsNeedNoSync) {
  const Topology topo = make_single_switch(4);
  // Phase 0: 0->1; phase 1: 2->3. No shared edge -> no dependency.
  const Schedule schedule =
      make_schedule({{Message{0, 1}}, {Message{2, 3}}});
  const SyncPlan plan = build_sync_plan(topo, schedule);
  EXPECT_TRUE(plan.edges.empty());
}

TEST(SyncPlanTest, ReceiverSideContentionDetected) {
  const Topology topo = make_single_switch(4);
  // Same destination in consecutive phases: the downlink is shared.
  const Schedule schedule =
      make_schedule({{Message{0, 3}}, {Message{1, 3}}});
  const SyncPlan plan = build_sync_plan(topo, schedule);
  ASSERT_EQ(plan.edges.size(), 1u);
  EXPECT_EQ(plan.edges[0], (SyncEdge{0, 1}));
  EXPECT_EQ(plan.cross_node_edges, 1);
}

TEST(SyncPlanTest, SameSenderEdgesAreNotCrossNode) {
  const Topology topo = make_single_switch(4);
  const Schedule schedule =
      make_schedule({{Message{0, 1}}, {Message{0, 2}}});
  const SyncPlan plan = build_sync_plan(topo, schedule);
  ASSERT_EQ(plan.edges.size(), 1u);
  EXPECT_EQ(plan.cross_node_edges, 0);
}

TEST(SyncPlanTest, NonAdjacentPhaseDependencySurvivesWhenDirect) {
  const Topology topo = make_single_switch(4);
  // Phase 0: 0->1. Phase 1: 2->3 (unrelated). Phase 2: 0->2.
  // The only ordering for (0->1, 0->2) is the direct edge — reduction
  // must keep it even though the messages are two phases apart.
  const Schedule schedule = make_schedule(
      {{Message{0, 1}}, {Message{2, 3}}, {Message{0, 2}}});
  const SyncPlan plan = build_sync_plan(topo, schedule);
  ASSERT_EQ(plan.edges.size(), 1u);
  EXPECT_EQ(plan.edges[0], (SyncEdge{0, 2}));
}

TEST(SyncPlanTest, ReductionPreservesReachability) {
  // On the paper's worked example: the reduced graph must order exactly
  // the same message pairs as the full dependence graph (transitively).
  const Topology topo = make_paper_figure1();
  const Schedule schedule = core::build_aapc_schedule(topo);
  SyncPlanOptions keep_all;
  keep_all.remove_redundant = false;
  const SyncPlan full = build_sync_plan(topo, schedule, keep_all);
  const SyncPlan reduced = build_sync_plan(topo, schedule);
  EXPECT_LT(reduced.edges.size(), full.edges.size());

  const auto n = static_cast<std::size_t>(schedule.messages.size());
  auto closure = [n](const std::vector<SyncEdge>& edges) {
    std::vector<std::set<std::int32_t>> reach(n);
    // Edges point forward in index order; process sources descending.
    std::vector<std::vector<std::int32_t>> succ(n);
    for (const SyncEdge& e : edges) succ[e.from].push_back(e.to);
    for (std::size_t i = n; i-- > 0;) {
      for (const std::int32_t j : succ[i]) {
        reach[i].insert(j);
        reach[i].insert(reach[j].begin(), reach[j].end());
      }
    }
    return reach;
  };
  EXPECT_EQ(closure(full.edges), closure(reduced.edges));
}

TEST(SyncPlanTest, PaperExampleReductionShrinksPlan) {
  const Topology topo = make_paper_figure1();
  const Schedule schedule = core::build_aapc_schedule(topo);
  const SyncPlan plan = build_sync_plan(topo, schedule);
  EXPECT_GT(plan.edges_before_reduction, 0);
  // §5: redundant synchronizations are the common case.
  EXPECT_LT(static_cast<double>(plan.edges.size()),
            0.5 * static_cast<double>(plan.edges_before_reduction));
}

TEST(SyncPlanTest, UnsortedMessagesRejected) {
  const Topology topo = make_single_switch(3);
  Schedule schedule =
      make_schedule({{Message{0, 1}}, {Message{1, 2}}});
  std::swap(schedule.messages[0], schedule.messages[1]);
  EXPECT_THROW(build_sync_plan(topo, schedule), aapc::InvalidArgument);
}

TEST(SyncPlanTest, EmptyScheduleYieldsEmptyPlan) {
  const Topology topo = make_single_switch(3);
  const SyncPlan plan = build_sync_plan(topo, Schedule{});
  EXPECT_TRUE(plan.edges.empty());
  EXPECT_EQ(plan.edges_before_reduction, 0);
}

class SyncPlanRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyncPlanRandomTest, ReductionPreservesPairwiseOrdering) {
  Rng rng(GetParam() * 31 + 5);
  topology::RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(1, 5));
  options.machines = static_cast<std::int32_t>(rng.next_in(3, 12));
  const Topology topo = topology::make_random_tree(rng, options);
  const Schedule schedule = core::build_aapc_schedule(topo);
  SyncPlanOptions keep_all;
  keep_all.remove_redundant = false;
  const SyncPlan full = build_sync_plan(topo, schedule, keep_all);
  const SyncPlan reduced = build_sync_plan(topo, schedule);

  // Every removed edge must still be ordered through surviving edges.
  const auto n = static_cast<std::size_t>(schedule.messages.size());
  std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
  std::vector<std::vector<std::int32_t>> succ(n);
  for (const SyncEdge& e : reduced.edges) succ[e.from].push_back(e.to);
  for (std::size_t i = n; i-- > 0;) {
    for (const std::int32_t j : succ[i]) {
      reach[i][j] = 1;
      for (std::size_t k = 0; k < n; ++k) {
        if (reach[j][k]) reach[i][k] = 1;
      }
    }
  }
  for (const SyncEdge& e : full.edges) {
    EXPECT_TRUE(reach[e.from][e.to])
        << "reduction lost ordering " << e.from << "->" << e.to;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncPlanRandomTest,
                         ::testing::Range<std::uint64_t>(0, 25));

class EdgeChainEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdgeChainEquivalenceTest, SameTransitiveOrderingAsAllPairs) {
  // The scalable construction must order exactly the pairs the §5
  // all-pairs graph orders (same transitive closure).
  Rng rng(GetParam() * 101 + 9);
  topology::RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(1, 5));
  options.machines = static_cast<std::int32_t>(rng.next_in(3, 10));
  const Topology topo = topology::make_random_tree(rng, options);
  const Schedule schedule = core::build_aapc_schedule(topo);

  SyncPlanOptions all_pairs;
  all_pairs.construction = SyncPlanOptions::Construction::kAllPairs;
  SyncPlanOptions chains;
  chains.construction = SyncPlanOptions::Construction::kEdgeChains;

  const auto n = static_cast<std::size_t>(schedule.messages.size());
  auto closure = [n](const std::vector<SyncEdge>& edges) {
    std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
    std::vector<std::vector<std::int32_t>> succ(n);
    for (const SyncEdge& e : edges) succ[e.from].push_back(e.to);
    for (std::size_t i = n; i-- > 0;) {
      for (const std::int32_t j : succ[i]) {
        reach[i][j] = 1;
        for (std::size_t k = 0; k < n; ++k) {
          if (reach[j][k]) reach[i][k] = 1;
        }
      }
    }
    return reach;
  };
  const SyncPlan a = build_sync_plan(topo, schedule, all_pairs);
  const SyncPlan b = build_sync_plan(topo, schedule, chains);
  EXPECT_EQ(closure(a.edges), closure(b.edges));
  // And the chain construction produces a much smaller raw graph.
  EXPECT_LE(b.edges_before_reduction, a.edges_before_reduction);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeChainEquivalenceTest,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(SyncPlanScalingTest, LargeClusterPlansStayTractable) {
  // 80-machine chain: 6320 messages; the all-pairs construction would
  // do ~20M pair tests with a 40M-entry closure — the auto mode must
  // pick edge chains and finish fast with a sound plan.
  const Topology topo = topology::make_chain({40, 40});
  const Schedule schedule = core::build_aapc_schedule(topo);
  const SyncPlan plan = build_sync_plan(topo, schedule);
  EXPECT_GT(plan.edges.size(), 0u);
  // Sound plan: every pair of same-edge messages must be ordered. Spot
  // check the heaviest edge (the trunk) — consecutive trunk users must
  // be chained.
  const PlanAnalysis analysis =
      analyze_plan(plan, schedule.message_count());
  EXPECT_GE(analysis.critical_path_messages, 1600);  // trunk chain depth
}

}  // namespace
}  // namespace aapc::sync
