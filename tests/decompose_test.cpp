// Tests for root identification and subtree decomposition (§4.1).
#include <gtest/gtest.h>

#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/decompose.hpp"
#include "aapc/topology/generators.hpp"

namespace aapc::core {
namespace {

using topology::make_chain;
using topology::make_paper_figure1;
using topology::make_paper_topology_a;
using topology::make_paper_topology_b;
using topology::make_paper_topology_c;
using topology::make_random_tree;
using topology::make_single_switch;
using topology::RandomTreeOptions;
using topology::Topology;

TEST(DecomposeTest, PaperFigure1RootAndSubtrees) {
  // The Figure-1 bottleneck (s0, s1) splits the machines 3/3, so both
  // endpoints are valid roots; the paper's worked example uses s1. Pin it
  // with decompose_at and check the §4.2 subtree structure.
  const Topology topo = make_paper_figure1();
  const Decomposition dec = decompose_at(topo, *topo.find_node("s1"));
  ASSERT_EQ(dec.subtree_count(), 3);
  // t0 = {n0,n1,n2}, t1 = {n3,n4}, t2 = {n5} (§4.2's worked example).
  EXPECT_EQ(dec.subtrees[0], (std::vector<topology::Rank>{0, 1, 2}));
  EXPECT_EQ(dec.subtrees[1], (std::vector<topology::Rank>{3, 4}));
  EXPECT_EQ(dec.subtrees[2], (std::vector<topology::Rank>{5}));
  EXPECT_EQ(dec.total_phases(), 9);

  // The automatic procedure must also pick a valid root touching the
  // bottleneck (either endpoint).
  const Decomposition automatic = decompose(topo);
  const std::string root = topo.name(automatic.root);
  EXPECT_TRUE(root == "s0" || root == "s1") << root;
  EXPECT_EQ(automatic.total_phases(), 9);
}

TEST(DecomposeTest, DecomposeAtRejectsInvalidRoots) {
  const Topology topo = make_paper_figure1();
  // s3's subtree through s1 holds 4 > |M|/2 machines.
  EXPECT_THROW(decompose_at(topo, *topo.find_node("s3")), InvalidArgument);
  // Machines cannot be roots.
  EXPECT_THROW(decompose_at(topo, *topo.find_node("n0")), InvalidArgument);
}

TEST(DecomposeTest, DecomposeAtAcceptsBothBottleneckEndpoints) {
  const Topology topo = make_paper_figure1();
  for (const char* name : {"s0", "s1"}) {
    const Decomposition dec = decompose_at(topo, *topo.find_node(name));
    EXPECT_EQ(dec.total_phases(), topo.aapc_load());
  }
}

TEST(DecomposeTest, SingleSwitchYieldsSingletonSubtrees) {
  const Topology topo = make_single_switch(24);
  const Decomposition dec = decompose(topo);
  EXPECT_EQ(topo.name(dec.root), "s0");
  EXPECT_EQ(dec.subtree_count(), 24);
  for (std::int32_t i = 0; i < dec.subtree_count(); ++i) {
    EXPECT_EQ(dec.subtree_size(i), 1);
  }
  EXPECT_EQ(dec.total_phases(), 23);
}

TEST(DecomposeTest, StarRootIsHub) {
  const Topology topo = make_paper_topology_b();
  const Decomposition dec = decompose(topo);
  EXPECT_EQ(topo.name(dec.root), "s0");
  // Hub machines are singleton subtrees; leaf switches give three
  // 8-machine subtrees: sizes sorted 8,8,8,1,...,1.
  ASSERT_EQ(dec.subtree_count(), 3 + 8);
  EXPECT_EQ(dec.subtree_size(0), 8);
  EXPECT_EQ(dec.subtree_size(2), 8);
  EXPECT_EQ(dec.subtree_size(3), 1);
  EXPECT_EQ(dec.total_phases(), 8 * 24);
}

TEST(DecomposeTest, ChainRootTouchesMiddleLink) {
  const Topology topo = make_paper_topology_c();
  const Decomposition dec = decompose(topo);
  // Bottleneck is (s1, s2); the root must be one of them. Its subtrees
  // are the 16 machines across the middle link, the 8 machines behind
  // the outer switch, and its own 8 machines as singletons.
  const std::string root = topo.name(dec.root);
  EXPECT_TRUE(root == "s1" || root == "s2");
  ASSERT_EQ(dec.subtree_count(), 10);
  EXPECT_EQ(dec.subtree_size(0), 16);
  EXPECT_EQ(dec.subtree_size(1), 8);
  EXPECT_EQ(dec.subtree_size(2), 1);
  EXPECT_EQ(dec.total_phases(), 256);
}

TEST(DecomposeTest, WalksUpDegenerateChain) {
  // A chain where all machines sit at the far ends: every chain link is
  // a bottleneck (3 x 2 = 6) and any root choice must stay optimal. The
  // end switch s0 hosting three machine branches is one valid root (its
  // subtrees are {n3,n4} via the chain plus three singletons).
  const Topology topo = make_chain({3, 0, 0, 2});
  const Decomposition dec = decompose(topo);
  EXPECT_EQ(topo.aapc_load(), 6);
  EXPECT_EQ(dec.total_phases(), 6);
  EXPECT_LE(dec.subtree_size(0), 2);

  // Pinning an interior machine-free switch also works: subtrees {3, 2}.
  const Decomposition interior = decompose_at(topo, *topo.find_node("s1"));
  ASSERT_EQ(interior.subtree_count(), 2);
  EXPECT_EQ(interior.subtree_size(0), 3);
  EXPECT_EQ(interior.subtree_size(1), 2);
  EXPECT_EQ(interior.total_phases(), 6);
}

TEST(DecomposeTest, LopsidedChainRoot) {
  // 1 machine on s0, 9 on s3: bottleneck is any s-chain link (1*9) or a
  // machine link on the heavy side... loads: chain links 1x9=9, machine
  // links 1x9=9 on s0's machine and 1x9 for each s3 machine. The root
  // must still split subtrees so that none exceeds |M|/2 = 5.
  const Topology topo = make_chain({1, 0, 0, 9});
  const Decomposition dec = decompose(topo);
  for (std::int32_t i = 0; i < dec.subtree_count(); ++i) {
    EXPECT_LE(2 * dec.subtree_size(i), topo.machine_count());
  }
  EXPECT_EQ(dec.total_phases(), topo.aapc_load());
}

TEST(DecomposeTest, RequiresThreeMachines) {
  const Topology topo = make_single_switch(2);
  EXPECT_THROW(decompose(topo), InvalidArgument);
}

TEST(DecomposeTest, PositionMapsAreConsistent) {
  const Topology topo = make_paper_topology_c();
  const Decomposition dec = decompose(topo);
  for (topology::Rank r = 0; r < topo.machine_count(); ++r) {
    const std::int32_t i = dec.subtree_of[r];
    const std::int32_t x = dec.index_in_subtree[r];
    ASSERT_GE(i, 0);
    ASSERT_GE(x, 0);
    EXPECT_EQ(dec.subtrees[i][static_cast<std::size_t>(x)], r);
  }
}

// Lemma 1 + optimality over randomized trees.
class DecomposeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecomposeRandomTest, Lemma1AndLoadOptimality) {
  Rng rng(GetParam());
  RandomTreeOptions options;
  options.switches = static_cast<std::int32_t>(rng.next_in(1, 10));
  options.machines = static_cast<std::int32_t>(rng.next_in(3, 40));
  options.max_switch_degree = static_cast<std::int32_t>(rng.next_in(1, 4));
  const Topology topo = make_random_tree(rng, options);
  const Decomposition dec = decompose(topo);

  // Lemma 1: every subtree holds at most |M|/2 machines.
  std::int32_t total = 0;
  for (std::int32_t i = 0; i < dec.subtree_count(); ++i) {
    EXPECT_LE(2 * dec.subtree_size(i), topo.machine_count());
    if (i > 0) {
      EXPECT_LE(dec.subtree_size(i), dec.subtree_size(i - 1));
    }
    total += dec.subtree_size(i);
  }
  EXPECT_EQ(total, topo.machine_count());

  // §4: |M0| * (|M| - |M0|) equals the AAPC load (schedule optimality).
  EXPECT_EQ(dec.total_phases(), topo.aapc_load());

  // The root touches a bottleneck link.
  bool adjacent_to_bottleneck = false;
  for (topology::LinkId l = 0; l < topo.link_count(); ++l) {
    const auto [a, b] = topo.link_endpoints(l);
    if ((a == dec.root || b == dec.root) &&
        topo.aapc_link_load(l) == topo.aapc_load()) {
      adjacent_to_bottleneck = true;
    }
  }
  EXPECT_TRUE(adjacent_to_bottleneck);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeRandomTest,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace aapc::core
