// Shared driver for the paper-table benchmarks (Figures 6, 7, 8): runs
// the standard algorithm suite over the message-size sweep and prints
// the completion-time table and throughput series, paper-style.
#pragma once

#include <iostream>

#include "aapc/common/cli.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/io.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::bench {

/// Parses shared bench flags and runs the experiment for `topo`.
/// Flags: --msizes=8K,16K,... --csv --bandwidth-mbps=100
inline int run_topology_bench(const std::string& title,
                              const topology::Topology& topo, int argc,
                              char** argv) {
  CliParser cli("Reproduces the paper's evaluation on " + title + ".");
  cli.add_flag("msizes", "comma-separated message sizes",
               "8K,16K,32K,64K,128K,256K");
  cli.add_flag("csv", "also print CSV output", "false");
  cli.add_flag("bandwidth-mbps", "link bandwidth in Mbps", "100");
  cli.add_flag("jitter-us", "max OS wakeup jitter in microseconds", "1000");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  harness::ExperimentConfig config;
  config.net.link_bandwidth_bytes_per_sec =
      mbps_to_bytes_per_sec(cli.get_double("bandwidth-mbps", 100.0));
  config.exec.wakeup_jitter_max =
      microseconds(cli.get_double("jitter-us", 1000.0));
  config.msizes.clear();
  for (const std::string& token : split(cli.get("msizes"), ',')) {
    config.msizes.push_back(parse_size(token));
  }

  std::cout << topology::describe_topology(
                   topo, config.net.link_bandwidth_bytes_per_sec)
            << '\n';
  const auto suite = harness::standard_suite(topo);
  const harness::ExperimentReport report =
      harness::run_experiment(topo, title, suite, config);
  std::cout << report.to_string();
  if (cli.get_bool("csv", false)) {
    std::cout << "\ncompletion_ms CSV\n"
              << report.completion_table().render_csv()
              << "\nthroughput_mbps CSV\n"
              << report.throughput_table().render_csv();
  }
  return 0;
}

}  // namespace aapc::bench
