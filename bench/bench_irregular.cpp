// Extension bench: irregular (Alltoallv-style) personalized exchange.
//
// The paper's schedule fixes the *phase structure* for the complete
// pattern; with per-pair sizes the phases stay contention-free but are
// no longer balanced. This bench measures how far that takes us against
// the LAM-style post-everything Alltoallv, over three size
// distributions on topology (c):
//   uniform        every pair msize bytes (sanity anchor),
//   hot-row        one sender ships 16x more than the rest,
//   heavy-tailed   sizes msize * 2^(-k) with deterministic k in [0,4].
#include <iostream>

#include "aapc/baselines/baselines.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

std::vector<Bytes> uniform_matrix(std::int32_t ranks, Bytes msize) {
  return std::vector<Bytes>(static_cast<std::size_t>(ranks) * ranks, msize);
}

std::vector<Bytes> hot_row_matrix(std::int32_t ranks, Bytes msize) {
  std::vector<Bytes> matrix = uniform_matrix(ranks, msize);
  for (std::int32_t dst = 0; dst < ranks; ++dst) {
    matrix[static_cast<std::size_t>(dst)] = msize * 16;
  }
  return matrix;
}

std::vector<Bytes> heavy_tailed_matrix(std::int32_t ranks, Bytes msize) {
  Rng rng(424242);
  std::vector<Bytes> matrix(static_cast<std::size_t>(ranks) * ranks);
  for (auto& bytes : matrix) {
    bytes = msize >> rng.next_below(5);
  }
  return matrix;
}

double total_payload(const std::vector<Bytes>& matrix, std::int32_t ranks) {
  double sum = 0;
  for (std::int32_t src = 0; src < ranks; ++src) {
    for (std::int32_t dst = 0; dst < ranks; ++dst) {
      if (src != dst) {
        sum += static_cast<double>(
            matrix[static_cast<std::size_t>(src) * ranks + dst]);
      }
    }
  }
  return sum;
}

}  // namespace

int main() {
  const topology::Topology topo = topology::make_paper_topology_c();
  const std::int32_t ranks = topo.machine_count();
  const Bytes msize = 128_KiB;
  const core::Schedule schedule = core::build_aapc_schedule(topo);

  harness::ExperimentConfig config;
  mpisim::Executor executor(topo, config.net, config.exec);

  TextTable table;
  table.set_header({"distribution", "payload", "LAM-v", "Ours-v",
                    "speedup"});
  struct Case {
    const char* name;
    std::vector<Bytes> matrix;
  };
  const Case cases[] = {
      {"uniform", uniform_matrix(ranks, msize)},
      {"hot-row", hot_row_matrix(ranks, msize)},
      {"heavy-tailed", heavy_tailed_matrix(ranks, msize)},
  };
  for (const Case& c : cases) {
    const SimTime lam =
        executor.run(baselines::lam_alltoallv(ranks, c.matrix))
            .completion_time;
    const SimTime ours =
        executor.run(lowering::lower_schedule_irregular(topo, schedule,
                                                        c.matrix))
            .completion_time;
    table.add_row({c.name,
                   format_size(static_cast<Bytes>(
                       total_payload(c.matrix, ranks))) +
                       "B",
                   format_double(to_milliseconds(lam), 1) + "ms",
                   format_double(to_milliseconds(ours), 1) + "ms",
                   format_double(lam / ours, 2) + "x"});
  }
  std::cout << "irregular AAPC (Alltoallv) on topology (c), base msize "
            << format_size(msize) << "B\n"
            << table.render()
            << "\nThe contention-free phase structure carries over to "
               "irregular exchanges;\nskew erodes but does not eliminate "
               "the advantage.\n";
  return 0;
}
