// E13 — flight-recorder closed loop: localization accuracy and
// recorder overhead.
//
//  1. Localization sweep: the two-switch 4+4 fabric runs the scheduled
//     alltoall under injected faults of graded severity — straggler
//     CPU factors {1.5, 2, 3, 5} and trunk degrades to {70, 50, 30,
//     10}% capacity — and flight::analyze() must name the injected
//     culprit from the ring dump alone (top-ranked verdict). The table
//     also shows the analyzer's *measured* severity against the
//     injected one: the post-cost factor is recovered exactly, the
//     drain excess approximates 1/factor.
//  2. Recorder overhead: interleaved A/B on the BM_ExecutorLam
//     workload (LAM alltoall, 24 ranks on one switch, 64 KiB) —
//     alternating recorder-off / recorder-on samples in the same
//     process, comparing medians, so drift hits both arms equally.
//     Gate: overhead < --max-overhead-pct (default 2%).
//
// Exits nonzero when any fault goes unlocalized or the overhead gate
// fails. See EXPERIMENTS.md §E13.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "aapc/baselines/baselines.hpp"
#include "aapc/common/cli.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/flight/analyze.hpp"
#include "aapc/flight/dump.hpp"
#include "aapc/flight/recorder.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/generators.hpp"

namespace {

using namespace aapc;
using Clock = std::chrono::steady_clock;

/// The aapc_analyze demo fabric: two bridges, one trunk (bridge link
/// 0), four machines per side.
struct Fabric {
  stp::BridgeNetwork net;
  stp::SpanningTree tree;
};

Fabric make_fabric() {
  Fabric f;
  const stp::BridgeId s0 = f.net.add_bridge("s0", 0x8000'0000'0001ull);
  const stp::BridgeId s1 = f.net.add_bridge("s1", 0x8000'0000'0002ull);
  f.net.add_bridge_link(s0, s1);
  for (int i = 0; i < 8; ++i) {
    f.net.add_machine(str_cat("m", i), i < 4 ? s0 : s1);
  }
  f.tree = stp::compute_spanning_tree(f.net);
  return f;
}

struct SweepRow {
  std::string injected;
  bool localized = false;
  std::string top_verdict;
  double measured = 0;
};

/// Runs the fabric's scheduled alltoall under `plan` with the recorder
/// on and returns the analyzer's report.
flight::AnalysisReport run_case(const Fabric& fabric,
                                const faults::FaultPlan& plan,
                                core::Schedule& schedule,
                                sync::SyncPlan& sync_plan) {
  const topology::Topology& topo = fabric.tree.topology;
  schedule = core::build_aapc_schedule(topo);
  sync_plan = sync::build_sync_plan(topo, schedule);
  lowering::LoweringOptions lopts;
  lopts.precomputed_plan = &sync_plan;
  const mpisim::ProgramSet set =
      lowering::lower_schedule(topo, schedule, 32_KiB, lopts);

  flight::Recorder recorder(topo.machine_count());
  recorder.annotate(schedule, sync_plan);
  const simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  exec.flight = &recorder;
  faults::compile(plan, net, topo.link_count(),
                  fabric.tree.link_of_bridge_link)
      .apply(exec);
  mpisim::Executor executor(topo, net, exec);
  const mpisim::ExecutionResult result = executor.run(set);

  flight::DumpMeta meta;
  meta.effective_bandwidth = net.effective_bandwidth();
  meta.send_overhead = net.send_overhead;
  meta.recv_overhead = net.recv_overhead;
  meta.completion_time = result.completion_time;
  const flight::FlightDump dump = flight::snapshot(recorder, meta);
  return flight::analyze(dump, topo, &schedule, &sync_plan, &fabric.tree);
}

int run_localization_sweep() {
  const Fabric fabric = make_fabric();
  const topology::LinkId trunk = fabric.tree.link_of_bridge_link[0];
  core::Schedule schedule;
  sync::SyncPlan sync_plan;
  std::vector<SweepRow> rows;

  for (const double factor : {1.5, 2.0, 3.0, 5.0}) {
    faults::FaultPlan plan;
    plan.add(faults::FaultEvent::node_slowdown(0, 2, factor));
    const flight::AnalysisReport report =
        run_case(fabric, plan, schedule, sync_plan);
    SweepRow row;
    row.injected = str_cat("straggler rank 2, x", format_double(factor, 1));
    if (!report.verdicts.empty()) {
      const flight::Verdict& top = report.verdicts.front();
      row.top_verdict = flight::verdict_kind_name(top.kind);
      row.localized = top.kind == flight::VerdictKind::kStragglerRank &&
                      top.rank == 2;
      row.measured = top.severity;
    }
    rows.push_back(row);
  }
  for (const double fraction : {0.7, 0.5, 0.3, 0.1}) {
    faults::FaultPlan plan;
    plan.add(faults::FaultEvent::link_degrade(0, 0, fraction));
    const flight::AnalysisReport report =
        run_case(fabric, plan, schedule, sync_plan);
    SweepRow row;
    row.injected = str_cat("trunk at ", format_double(100 * fraction, 0),
                           "% capacity");
    if (!report.verdicts.empty()) {
      const flight::Verdict& top = report.verdicts.front();
      row.top_verdict = flight::verdict_kind_name(top.kind);
      row.localized = top.kind == flight::VerdictKind::kDegradedLink &&
                      top.link == trunk;
      row.measured = top.severity;
    }
    rows.push_back(row);
  }

  TextTable table;
  table.set_header({"injected fault", "localized", "top verdict",
                    "measured severity"});
  int missed = 0;
  for (const SweepRow& row : rows) {
    if (!row.localized) ++missed;
    table.add_row({row.injected, row.localized ? "yes" : "NO",
                   row.top_verdict.empty() ? "(none)" : row.top_verdict,
                   format_double(row.measured, 2)});
  }
  std::cout << "localization sweep (two-switch 4+4 fabric, 32 KiB)\n"
            << table.render();
  std::cout << "accuracy: " << (rows.size() - missed) << "/" << rows.size()
            << "\n\n";
  return missed;
}

/// Interleaved A/B: alternating recorder-off / recorder-on wall-clock
/// samples of the BM_ExecutorLam workload in one process, in ABBA
/// order (off-on / on-off per round pair) so load drift hits both
/// arms equally. The estimate compares each arm's *minimum* sample:
/// interference is strictly additive, so the per-arm minima converge
/// on the uncontended times and their ratio is far more stable than
/// any mean- or median-based statistic on a shared machine. Returns
/// the overhead of the recorder-on arm in percent.
double measure_overhead(std::int64_t rounds, std::int64_t inner) {
  const topology::Topology topo = topology::make_single_switch(24);
  const mpisim::ProgramSet set = baselines::lam_alltoall(24, 65536);
  const simnet::NetworkParams net;
  flight::RecorderParams rp;
  rp.ring_capacity = 1024;  // TEMP experiment
  flight::Recorder recorder(topo.machine_count(), rp);

  const auto sample = [&](bool with_recorder) {
    mpisim::ExecutorParams exec;
    if (with_recorder) exec.flight = &recorder;
    mpisim::Executor executor(topo, net, exec);
    const Clock::time_point begin = Clock::now();
    double checksum = 0;
    for (std::int64_t i = 0; i < inner; ++i) {
      checksum += executor.run(set).completion_time;
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - begin).count();
    // Keep the compiler honest about the run results.
    return checksum > 0 ? seconds : seconds;
  };

  sample(false);  // warmup both arms
  sample(true);
  double off_best = 0;
  double on_best = 0;
  for (std::int64_t r = 0; r < rounds; ++r) {
    double off_s = 0;
    double on_s = 0;
    if (r % 2 == 0) {
      off_s = sample(false);
      on_s = sample(true);
    } else {
      on_s = sample(true);
      off_s = sample(false);
    }
    if (r == 0 || off_s < off_best) off_best = off_s;
    if (r == 0 || on_s < on_best) on_best = on_s;
  }
  const double ratio = on_best / off_best;
  std::cout << "recorder overhead (LAM alltoall, 24 ranks, 64 KiB, "
            << rounds << " interleaved rounds x " << inner << " runs)\n"
            << "  recorder off: " << format_double(off_best * 1e3, 2)
            << " ms best\n"
            << "  recorder on:  " << format_double(on_best * 1e3, 2)
            << " ms best (" << recorder.total_recorded()
            << " events recorded)\n";
  return 100.0 * (ratio - 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "E13: flight-recorder localization accuracy sweep and interleaved "
      "A/B recorder-overhead gate.");
  cli.add_flag("rounds", "interleaved A/B rounds", "25");
  cli.add_flag("inner", "executor runs per timing sample", "20");
  cli.add_flag("max-overhead-pct",
               "fail when the recorder-on median exceeds the recorder-off "
               "median by more than this", "2.0");
  cli.add_flag("skip-overhead", "run only the localization sweep");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  const int missed = run_localization_sweep();
  if (missed > 0) {
    std::cout << "FAIL: " << missed << " injected fault(s) not localized\n";
    return 1;
  }
  if (cli.get_bool("skip-overhead", false)) {
    std::cout << "PASS: all faults localized (overhead gate skipped)\n";
    return 0;
  }

  const double overhead_pct =
      measure_overhead(static_cast<std::int64_t>(cli.get_u64("rounds", 25)),
                       static_cast<std::int64_t>(cli.get_u64("inner", 20)));
  const double gate = cli.get_double("max-overhead-pct", 2.0);
  std::cout << "  overhead: " << format_double(overhead_pct, 2) << "% (gate "
            << format_double(gate, 1) << "%)\n";
  if (overhead_pct >= gate) {
    std::cout << "FAIL: recorder overhead above the gate\n";
    return 1;
  }
  std::cout << "PASS: all faults localized, overhead "
            << format_double(overhead_pct, 2) << "% < "
            << format_double(gate, 1) << "%\n";
  return 0;
}
