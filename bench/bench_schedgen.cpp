// E9 — cost of the offline pipeline (google-benchmark).
//
// §5 positions the routine generator as an offline tool; this bench
// shows generation stays cheap enough to run at job-launch time even
// for clusters far larger than the paper's: schedule construction,
// verification, synchronization planning, lowering, and C emission as
// functions of cluster size and shape.
#include <benchmark/benchmark.h>

#include "aapc/codegen/codegen.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/service/service.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/generators.hpp"

namespace {

using aapc::topology::Topology;

Topology paper_cluster(std::int64_t which) {
  switch (which) {
    case 0:
      return aapc::topology::make_paper_topology_a();
    case 1:
      return aapc::topology::make_paper_topology_b();
    default:
      return aapc::topology::make_paper_topology_c();
  }
}

Topology shaped_topology(std::int64_t machines, std::int64_t shape) {
  switch (shape) {
    case 0:
      return aapc::topology::make_single_switch(
          static_cast<std::int32_t>(machines));
    case 1: {
      const auto per = static_cast<std::int32_t>(machines / 4);
      return aapc::topology::make_star(
          {per, per, per, static_cast<std::int32_t>(machines) - 3 * per});
    }
    default: {
      const auto per = static_cast<std::int32_t>(machines / 4);
      return aapc::topology::make_chain(
          {per, per, per, static_cast<std::int32_t>(machines) - 3 * per});
    }
  }
}

void BM_BuildSchedule(benchmark::State& state) {
  const Topology topo = shaped_topology(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aapc::core::build_aapc_schedule(topo));
  }
  state.SetLabel(std::to_string(topo.machine_count()) + " machines");
}
BENCHMARK(BM_BuildSchedule)
    ->ArgsProduct({{8, 16, 32, 64, 128}, {0, 1, 2}});

void BM_VerifySchedule(benchmark::State& state) {
  const Topology topo = shaped_topology(state.range(0), 2);
  const aapc::core::Schedule schedule = aapc::core::build_aapc_schedule(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aapc::core::verify_schedule(topo, schedule));
  }
}
BENCHMARK(BM_VerifySchedule)->Arg(16)->Arg(32)->Arg(64);

void BM_SyncPlan(benchmark::State& state) {
  const Topology topo = shaped_topology(state.range(0), 2);
  const aapc::core::Schedule schedule = aapc::core::build_aapc_schedule(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aapc::sync::build_sync_plan(topo, schedule));
  }
}
BENCHMARK(BM_SyncPlan)->Arg(16)->Arg(32)->Arg(64);

void BM_Lowering(benchmark::State& state) {
  const Topology topo = shaped_topology(state.range(0), 2);
  const aapc::core::Schedule schedule = aapc::core::build_aapc_schedule(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aapc::lowering::lower_schedule(topo, schedule, 65536));
  }
}
BENCHMARK(BM_Lowering)->Arg(16)->Arg(32)->Arg(64);

void BM_CodegenC(benchmark::State& state) {
  const Topology topo = shaped_topology(state.range(0), 0);
  const aapc::core::Schedule schedule = aapc::core::build_aapc_schedule(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aapc::codegen::generate_alltoall_c(topo, schedule));
  }
}
BENCHMARK(BM_CodegenC)->Arg(16)->Arg(32);

// Cold compile through the schedule-compilation service: every
// iteration starts from an empty cache, so this is the full pipeline
// (canonicalize + schedule + verify + sync plan + lowering) plus the
// permutation rewrite. Arg: 0 = paper cluster a, 1 = b, 2 = c.
void BM_ServiceColdCompile(benchmark::State& state) {
  const Topology topo = paper_cluster(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    aapc::service::ScheduleService service;
    state.ResumeTiming();
    benchmark::DoNotOptimize(service.compile(topo, 65536));
  }
  state.SetLabel(std::to_string(topo.machine_count()) + " machines");
}
BENCHMARK(BM_ServiceColdCompile)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// Cache hit on the same clusters: canonicalize + rewrite only. The gap
// to BM_ServiceColdCompile is what the cache amortizes (recorded in
// EXPERIMENTS.md E10).
void BM_ServiceCacheHit(benchmark::State& state) {
  const Topology topo = paper_cluster(state.range(0));
  aapc::service::ScheduleService service;
  service.compile(topo, 65536);  // populate
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.compile(topo, 65536));
  }
  state.SetLabel(std::to_string(topo.machine_count()) + " machines");
}
BENCHMARK(BM_ServiceCacheHit)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_Decompose(benchmark::State& state) {
  const Topology topo = shaped_topology(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aapc::core::decompose(topo));
  }
}
BENCHMARK(BM_Decompose)->Arg(32)->Arg(128);

// Large-scale construction on fat trees: flat Figure-4 assignment vs
// the hierarchical twin (arg 1: 0 = flat, 1 = hierarchical). Both paths
// produce bit-identical schedules; the comparison isolates the cost of
// the task decomposition itself. bench_schedgen_scale drives the
// 2048/4096-rank points with the wall-clock gate.
void BM_AssignFatTree(benchmark::State& state) {
  const auto ranks = state.range(0);
  const Topology topo =
      ranks >= 1024 ? aapc::topology::make_fat_tree(8, 8, 16)
      : ranks >= 256 ? aapc::topology::make_fat_tree(4, 8, 8)
                     : aapc::topology::make_fat_tree(2, 4, 8);
  const aapc::core::Decomposition dec = aapc::core::decompose(topo);
  const bool hierarchical = state.range(1) != 0;
  for (auto _ : state) {
    if (hierarchical) {
      benchmark::DoNotOptimize(
          aapc::core::assign_messages_hierarchical(dec));
    } else {
      benchmark::DoNotOptimize(aapc::core::assign_messages(dec));
    }
  }
  state.SetLabel(std::to_string(topo.machine_count()) + " machines " +
                 (hierarchical ? "hierarchical" : "flat"));
}
BENCHMARK(BM_AssignFatTree)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
