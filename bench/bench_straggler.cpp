// Failure-injection study: robustness of the schedules to a degraded
// link (a flaky cable / auto-negotiation fallback — a real Ethernet
// failure mode the paper's testbed could have hit).
//
// The generated routine's pair-wise synchronization chains phases
// through the degraded link, so a slow link stalls successors; the
// unscheduled baselines overlap transfers and can absorb a single slow
// access link in the background. This bench quantifies the sensitivity:
// completion time versus the degradation factor of one access link and
// of the bottleneck trunk, on topology (c). (Findings: trunk
// degradation hurts every algorithm in proportion and the generated
// routine keeps its lead; an access-link straggler is amplified by the
// synchronization chain and flips the winner below ~25% of nominal —
// the price of strict serialization, worth knowing before deploying on
// flaky hardware.)
#include <iostream>

#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

/// Completion times of the standard suite with `link` degraded to
/// `fraction` of nominal bandwidth.
std::vector<double> run_with_degraded_link(const topology::Topology& topo,
                                           topology::LinkId link,
                                           double fraction, Bytes msize) {
  harness::ExperimentConfig config;
  if (link >= 0) {
    config.net.link_bandwidth_overrides = {
        {link, config.net.link_bandwidth_bytes_per_sec * fraction}};
  }
  std::vector<double> times;
  for (const auto& algo : harness::standard_suite(topo)) {
    times.push_back(
        harness::run_algorithm(topo, algo, msize, config).completion);
  }
  return times;
}

}  // namespace

int main() {
  const topology::Topology topo = topology::make_paper_topology_c();
  const Bytes msize = 128_KiB;

  // Locate the trunk s1-s2 and one access link.
  topology::LinkId trunk = -1;
  topology::LinkId access = -1;
  for (topology::LinkId link = 0; link < topo.link_count(); ++link) {
    const auto [a, b] = topo.link_endpoints(link);
    if (topo.name(a) == "s1" && topo.name(b) == "s2") trunk = link;
    if (access < 0 && (topo.is_machine(a) || topo.is_machine(b))) {
      access = link;
    }
  }

  const std::vector<double> baseline =
      run_with_degraded_link(topo, -1, 1.0, msize);

  for (const auto& [label, link] :
       {std::pair{std::string("one access link"), access},
        std::pair{std::string("the bottleneck trunk"), trunk}}) {
    TextTable table;
    table.set_header({"degradation", "LAM", "MPICH", "Ours",
                      "ours slowdown"});
    for (const double fraction : {1.0, 0.5, 0.25, 0.1}) {
      const std::vector<double> times =
          run_with_degraded_link(topo, link, fraction, msize);
      table.add_row(
          {format_double(100 * fraction, 0) + "%",
           format_double(to_milliseconds(times[0]), 0) + "ms",
           format_double(to_milliseconds(times[1]), 0) + "ms",
           format_double(to_milliseconds(times[2]), 0) + "ms",
           format_double(times[2] / baseline[2], 2) + "x"});
    }
    std::cout << "degrading " << label << " on topology (c), msize "
              << format_size(msize) << "B\n"
              << table.render() << '\n';
  }
  std::cout
      << "A degraded trunk hurts everyone roughly in proportion (it is "
         "the bottleneck)\nand the generated routine keeps its lead. A "
         "degraded ACCESS link, however, is\namplified by the pair-wise "
         "synchronization chain: the overlapped baselines\nabsorb the "
         "straggler in the background, and below ~25% of nominal the\n"
         "unsynchronized algorithms win — strict serialization trades "
         "straggler\ntolerance for contention freedom.\n";
  return 0;
}
