// E12 — churn: what each serving-path answer is worth on a live
// trunk degrade (harness/churn.hpp; serving mechanics in
// docs/SERVICE.md §churn, wire in docs/NETD.md).
//
// Scenario: an edge star — hub s1 carries no machines; s0 and s2 each
// attach 4 machines over full-rate trunks, s3 attaches one machine over
// the trunk under test. The s0/s2 trunks carry 20 pair-loads per
// direction and pin the schedule at 20 phases; the s3 trunk carries
// only 8. Degrading it therefore leaves the weighted bottleneck load
// at 20 — slow traffic does NOT need to touch every phase, which is
// the regime where phase structure matters: the weighted compile emits
// a 20-phase schedule whose slow messages share 8 paired phases (the
// provable optimum here), while the rate-blind greedy patch both opens
// an extra phase and lets more phases touch the degraded trunk, paying
// the slow rate once per touched phase.
//
// Gates (exit nonzero on violation), on the 50% row:
//   1. revalidated throughput  >  patched throughput   (strictly);
//   2. revalidated cost        <  patched cost          (the weighted
//      model agrees with the executor about why);
//   3. every leg's cost >= the weighted load bound (sanity).
//
// Run:  ./bench_churn [--msize 64K] [--factors 0.75,0.5,0.25]
#include <iostream>
#include <string>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/harness/churn.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/stp/stp.hpp"

namespace {

using namespace aapc;

/// Hub s1 with no machines; 1 machine on s3, 4 each on s0 and s2.
/// Bridge link 0 (s1-s3) is the trunk under test. s3 and its machine
/// come first so the slow machine is rank 0 — the worst case for a
/// rate-blind first-fit patch, which scatters rank 0's partners across
/// the whole phase range.
stp::BridgeNetwork make_edge_star() {
  stp::BridgeNetwork net;
  const stp::BridgeId s1 = net.add_bridge("s1", 0x8000'0000'0001ull);
  const stp::BridgeId s3 = net.add_bridge("s3", 0x8000'0000'0002ull);
  const stp::BridgeId s0 = net.add_bridge("s0", 0x8000'0000'0003ull);
  const stp::BridgeId s2 = net.add_bridge("s2", 0x8000'0000'0004ull);
  net.add_bridge_link(s1, s3, 19);  // bridge link 0: trunk under test
  net.add_bridge_link(s1, s0, 19);  // bridge link 1
  net.add_bridge_link(s1, s2, 19);  // bridge link 2
  net.add_machine("c0", s3);
  for (int m = 0; m < 4; ++m) net.add_machine("a" + std::to_string(m), s0);
  for (int m = 0; m < 4; ++m) net.add_machine("b" + std::to_string(m), s2);
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Churn benchmark: stale vs greedy-patched vs weighted-revalidated "
      "schedules on a live trunk degrade.");
  cli.add_flag("msize", "message size per rank pair", "64K");
  cli.add_flag("factors", "residual trunk fractions to sweep",
               "0.75,0.5,0.25");
  cli.add_flag("jitter-us", "max OS wakeup jitter in microseconds", "1000");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  const stp::BridgeNetwork star = make_edge_star();
  bool pass = true;
  for (const std::string& token : split(cli.get("factors"), ',')) {
    const double keep = std::stod(token);
    harness::ChurnScenario scenario;
    scenario.title = "s1-s3 trunk degraded to " +
                     format_double(keep * 100, 0) + "%";
    scenario.msize = parse_size(cli.get("msize"));
    scenario.exec.wakeup_jitter_max =
        microseconds(cli.get_double("jitter-us", 1000.0));
    // Barrier-synchronized execution: completion is phase-additive, so
    // the schedule's weighted cost is what the wire actually pays.
    // (Pair-wise sync pipelines across phases; there, every schedule's
    // completion collapses toward the per-link busy-time bound and
    // phase structure stops mattering — see EXPERIMENTS.md E12.)
    scenario.lowering.sync = lowering::SyncMode::kBarrier;
    scenario.plan.add(
        faults::FaultEvent::link_degrade(milliseconds(1.0), 0, keep));
    const harness::ChurnReport report = harness::run_churn(star, scenario);
    std::cout << report.to_string();
    // One JSON row per factor (the bench/baselines/BENCH_churn.json
    // format).
    std::cout << "{\"bench\":\"churn\",\"factor\":" << keep
              << ",\"msize\":" << scenario.msize
              << ",\"healthy_mbps\":" << format_double(report.healthy_mbps, 1)
              << ",\"stale_mbps\":" << format_double(report.stale_mbps, 1)
              << ",\"patched_mbps\":" << format_double(report.patched_mbps, 1)
              << ",\"revalidated_mbps\":"
              << format_double(report.revalidated_mbps, 1)
              << ",\"patched_cost\":" << report.patched_cost
              << ",\"revalidated_cost\":" << report.revalidated_cost
              << ",\"load_bound\":" << report.weighted_load
              << ",\"revalidated_over_patched\":"
              << format_double(report.revalidated_over_patched(), 3)
              << "}\n\n";

    // Sanity on every row: no schedule beats the weighted load bound.
    const double tolerance = 1e-9;
    for (const double cost :
         {report.stale_cost, report.patched_cost, report.revalidated_cost}) {
      if (cost < report.weighted_load - tolerance) {
        std::cout << "FAIL: cost " << format_double(cost, 3)
                  << " below the weighted load bound "
                  << format_double(report.weighted_load, 3) << "\n";
        pass = false;
      }
    }
    if (keep == 0.5) {
      const bool throughput_win =
          report.revalidated_mbps > report.patched_mbps;
      const bool cost_win = report.revalidated_cost < report.patched_cost;
      std::cout << (throughput_win ? "PASS" : "FAIL")
                << ": revalidated throughput beats the greedy patch ("
                << format_double(report.revalidated_mbps, 1) << " vs "
                << format_double(report.patched_mbps, 1) << " Mbps)\n"
                << (cost_win ? "PASS" : "FAIL")
                << ": weighted cost model agrees ("
                << format_double(report.revalidated_cost, 2) << " vs "
                << format_double(report.patched_cost, 2) << ", load bound "
                << format_double(report.weighted_load, 2) << ")\n\n";
      pass = pass && throughput_win && cost_win;
    }
  }
  return pass ? 0 : 1;
}
