// E8 — synchronization ablation (§5-§6 discussion).
//
// The paper attributes the generated routine's 32-64 KB advantage on
// topology (a) to pair-wise synchronization removing end-node
// contention, and argues barriers would be too expensive while skipping
// redundant-synchronization elimination would waste token traffic. This
// bench quantifies all four variants of the generated routine:
//   pairwise            — the paper's implementation,
//   pairwise-noreduce   — keep redundant synchronizations,
//   barrier             — a barrier between phases,
//   nosync              — phase order by posting only.
#include <algorithm>
#include <iostream>
#include <memory>

#include "aapc/common/cli.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

harness::NamedAlgorithm ours_variant(const topology::Topology& topo,
                                     const std::string& name,
                                     lowering::SyncMode sync, bool reduce) {
  auto schedule = std::make_shared<core::Schedule>(
      core::build_aapc_schedule(topo));
  lowering::LoweringOptions options;
  options.sync = sync;
  options.reduce_redundant_syncs = reduce;
  return harness::NamedAlgorithm{
      name, [&topo, schedule, options](Bytes msize) {
        return lowering::lower_schedule(topo, *schedule, msize, options);
      }};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Synchronization-mode ablation of the generated routine.");
  cli.add_flag("topology", "a, b, or c", "a");
  cli.add_flag("msizes", "comma-separated message sizes",
               "8K,32K,64K,256K");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }
  const std::string which = cli.get("topology");
  const topology::Topology topo =
      which == "b"   ? topology::make_paper_topology_b()
      : which == "c" ? topology::make_paper_topology_c()
                     : topology::make_paper_topology_a();

  harness::ExperimentConfig config;
  config.msizes.clear();
  for (const std::string& token : split(cli.get("msizes"), ',')) {
    config.msizes.push_back(parse_size(token));
  }

  std::vector<harness::NamedAlgorithm> algorithms;
  algorithms.push_back(
      ours_variant(topo, "pairwise", lowering::SyncMode::kPairwise, true));
  algorithms.push_back(ours_variant(topo, "pairwise-noreduce",
                                    lowering::SyncMode::kPairwise, false));
  algorithms.push_back(
      ours_variant(topo, "barrier", lowering::SyncMode::kBarrier, true));
  algorithms.push_back(
      ours_variant(topo, "nosync", lowering::SyncMode::kNone, true));

  const harness::ExperimentReport report = harness::run_experiment(
      topo, "sync ablation on topology (" + which + ")", algorithms, config);
  std::cout << report.to_string();

  // Token economics: how much the §5 transitive reduction saves.
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  lowering::LoweringInfo reduced;
  lowering::lower_schedule(topo, schedule, 64_KiB, {}, &reduced);
  lowering::LoweringOptions no_reduce;
  no_reduce.reduce_redundant_syncs = false;
  lowering::LoweringInfo full;
  lowering::lower_schedule(topo, schedule, 64_KiB, no_reduce, &full);
  TextTable table;
  table.set_header({"variant", "sync tokens", "local waits",
                    "dependence edges"});
  table.add_row({"full dependence graph", std::to_string(full.sync_messages),
                 std::to_string(full.local_wait_dependencies),
                 std::to_string(full.sync_edges_before_reduction)});
  table.add_row({"after reduction", std::to_string(reduced.sync_messages),
                 std::to_string(reduced.local_wait_dependencies),
                 std::to_string(reduced.sync_edges_before_reduction)});
  std::cout << "\nredundant-synchronization elimination (§5)\n"
            << table.render();
  return 0;
}
