// Model validation: the fluid simulator's calibrated contention
// penalties versus the packet-level simulator's *emergent* behavior.
//
// simnet assumes eta(k) efficiency curves (calibrated once against the
// paper's measurements, see EXPERIMENTS.md). packetsim derives goodput
// from first principles — finite drop-tail switch buffers, sequential
// sliding windows, timeout retransmission. If the shapes agree, the
// fluid calibration is not a free parameter fit but a stand-in for real
// mechanics. Run side by side:
//   * incast: k senders -> 1 receiver on one switch;
//   * trunk: k disjoint flows across one inter-switch link;
//   * contention-free: disjoint same-switch pairs (both must stay at
//     wire speed — the property the paper's schedule relies on).
#include <iostream>

#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/packetsim/packet_network.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

double packet_goodput_fraction(
    const topology::Topology& topo,
    const std::vector<packetsim::PacketMessage>& messages,
    const packetsim::PacketNetworkParams& params) {
  const packetsim::PacketResult result =
      packetsim::simulate_packets(topo, messages, params);
  const double wire =
      params.link_bandwidth_bytes_per_sec *
      static_cast<double>(params.segment_payload) /
      static_cast<double>(params.segment_payload + params.segment_overhead);
  return result.goodput_bytes_per_sec / wire;
}

}  // namespace

int main() {
  const simnet::NetworkParams fluid;  // the calibrated defaults
  packetsim::PacketNetworkParams packet;

  std::cout << "fluid eta(k) (calibrated) vs packet-level goodput "
               "(emergent)\n\n";

  {
    TextTable table;
    table.set_header({"incast k", "fluid eta", "packet goodput"});
    const topology::Topology topo = topology::make_single_switch(25);
    for (const int k : {1, 2, 4, 8, 16, 23}) {
      std::vector<packetsim::PacketMessage> messages;
      for (int s = 1; s <= k; ++s) {
        messages.push_back(packetsim::PacketMessage{
            static_cast<topology::Rank>(s), 0, 1'000'000, 0});
      }
      table.add_row(
          {std::to_string(k),
           format_double(fluid.contention_efficiency(true, k), 2),
           format_double(packet_goodput_fraction(topo, messages, packet),
                         2)});
    }
    std::cout << "incast (k senders -> 1 receiver)\n" << table.render()
              << '\n';
  }

  {
    TextTable table;
    table.set_header({"trunk k", "fluid eta", "packet (fixed W)",
                      "packet (AIMD)"});
    const topology::Topology topo = topology::make_chain({24, 24});
    packetsim::PacketNetworkParams aimd = packet;
    aimd.transport = packetsim::PacketNetworkParams::Transport::kAimd;
    aimd.window_segments = 32;
    for (const int k : {1, 2, 4, 8, 16}) {
      std::vector<packetsim::PacketMessage> messages;
      for (int s = 0; s < k; ++s) {
        messages.push_back(packetsim::PacketMessage{
            static_cast<topology::Rank>(s),
            static_cast<topology::Rank>(24 + s), 1'000'000, 0});
      }
      table.add_row(
          {std::to_string(k),
           format_double(fluid.contention_efficiency(false, k), 2),
           format_double(packet_goodput_fraction(topo, messages, packet),
                         2),
           format_double(packet_goodput_fraction(topo, messages, aimd),
                         2)});
    }
    std::cout << "trunk multiplexing (k disjoint flows, one link)\n"
              << table.render() << '\n';
  }

  {
    TextTable table;
    table.set_header({"disjoint pairs", "fluid", "packet (per pair)"});
    const topology::Topology topo = topology::make_single_switch(16);
    for (const int k : {1, 2, 4, 8}) {
      std::vector<packetsim::PacketMessage> messages;
      for (int s = 0; s < k; ++s) {
        messages.push_back(packetsim::PacketMessage{
            static_cast<topology::Rank>(2 * s),
            static_cast<topology::Rank>(2 * s + 1), 1'000'000, 0});
      }
      table.add_row(
          {std::to_string(k), "1.00",
           format_double(
               packet_goodput_fraction(topo, messages, packet) / k, 2)});
    }
    std::cout << "contention-free pairs (both models: full rate each)\n"
              << table.render() << '\n';
  }

  {
    // Full AAPC flood: the LAM pattern (all 552 messages at once) on
    // the paper's topology (a) at 64 KB — the one scenario where we
    // have the fluid prediction AND the paper's physical measurement.
    const topology::Topology topo = topology::make_paper_topology_a();
    std::vector<packetsim::PacketMessage> messages;
    for (topology::Rank src = 0; src < 24; ++src) {
      for (topology::Rank dst = 0; dst < 24; ++dst) {
        if (src != dst) {
          messages.push_back(
              packetsim::PacketMessage{src, dst, 65536, 0});
        }
      }
    }
    packetsim::PacketNetworkParams aimd = packet;
    aimd.transport = packetsim::PacketNetworkParams::Transport::kAimd;
    aimd.window_segments = 32;
    const double fixed_ms =
        1e3 * packetsim::simulate_packets(topo, messages, packet).makespan;
    const double aimd_ms =
        1e3 * packetsim::simulate_packets(topo, messages, aimd).makespan;
    TextTable table;
    table.set_header({"model", "LAM Alltoall, 24 nodes, 64 KB"});
    table.add_row({"packet, idealized AIMD", format_double(aimd_ms, 0) + " ms"});
    table.add_row({"fluid (calibrated)", "309 ms"});
    table.add_row({"paper measurement", "469 ms"});
    table.add_row({"packet, fixed window", format_double(fixed_ms, 0) + " ms"});
    std::cout << "end-to-end cross-check (same flood, four sources of "
                 "truth)\n"
              << table.render() << '\n';
  }

  std::cout
      << "The incast curve matches the calibration within a few points "
         "and the\ncontention-free case is exact — the two properties "
         "the paper's scheduling\nargument rests on. On the trunk, the "
         "primitive fixed-window transport\nbrackets the fluid curve "
         "from below and idealized AIMD + fast retransmit\nbrackets it "
         "from above; the calibrated curve (from the paper's trunk\n"
         "measurements) sits between them, where real 2004 TCP — AIMD "
         "with coarse\ntimers and small windows — lived. simnet (fluid) "
         "remains the measurement\nsubstrate for speed; packetsim "
         "justifies its loss curves.\n";
  return 0;
}
