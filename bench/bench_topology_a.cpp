// E1 — Figure 6 of the paper: 24 machines on a single switch
// (topology (a)). Prints (a) the completion-time table and (b) the
// aggregate-throughput series with the theoretical peak (2400 Mbps).
#include "bench_support.hpp"

#include "aapc/topology/generators.hpp"

int main(int argc, char** argv) {
  return aapc::bench::run_topology_bench(
      "Figure 6 — topology (a): 24 machines, one switch",
      aapc::topology::make_paper_topology_a(), argc, argv);
}
