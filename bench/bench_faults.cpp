// E-faults — resilience on topology (b): 32 machines over a 4-switch
// star (Figure 7's cluster). Three experiments:
//
//  1. Severity sweep (no redundant links): degrade the s0-s1 trunk to
//     75/50/25% mid-run and measure how much the stale schedule's
//     completion inflates — the cost of keeping the healthy tree's
//     contention-free schedule on a degraded bottleneck.
//  2. Repair with a redundant trunk: the LAN carries a second s0-s1
//     trunk at equal STP cost that the healthy election blocks (link-id
//     tie-break). After a 50% degrade of the primary, the fault-aware
//     re-election prefers the backup (cost 19 vs ceil(19/0.5) = 38),
//     and the repaired remainder runs at full nominal capacity. PASS
//     iff recovered throughput ratio >= the degraded peak ratio — i.e.
//     repair beats the best the stale tree could ever do.
//  3. Hard failure: the primary trunk goes DOWN. The stale schedule
//     aborts via the transfer watchdog (named-rank diagnostic, not a
//     hang); repair fails over to the backup trunk.
#include <iostream>
#include <string>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/harness/resilience.hpp"
#include "aapc/stp/stp.hpp"

namespace {

using namespace aapc;

/// Topology (b) as a bridged LAN: hub s0, leaves s1..s3, 8 machines
/// per switch. Bridge link 0 is the s0-s1 trunk under test; when
/// `with_backup`, link 3 is a parallel s0-s1 trunk at the same cost
/// (blocked by the healthy election's link-id tie-break).
stp::BridgeNetwork make_star(bool with_backup) {
  stp::BridgeNetwork net;
  const stp::BridgeId s0 = net.add_bridge("s0", 0x8000'0000'0001ull);
  const stp::BridgeId s1 = net.add_bridge("s1", 0x8000'0000'0002ull);
  const stp::BridgeId s2 = net.add_bridge("s2", 0x8000'0000'0003ull);
  const stp::BridgeId s3 = net.add_bridge("s3", 0x8000'0000'0004ull);
  net.add_bridge_link(s0, s1, 19);  // bridge link 0: trunk under test
  net.add_bridge_link(s0, s2, 19);  // bridge link 1
  net.add_bridge_link(s0, s3, 19);  // bridge link 2
  if (with_backup) net.add_bridge_link(s0, s1, 19);  // bridge link 3
  const stp::BridgeId switches[] = {s0, s1, s2, s3};
  for (int s = 0; s < 4; ++s) {
    for (int m = 0; m < 8; ++m) {
      net.add_machine("n" + std::to_string(8 * s + m), switches[s]);
    }
  }
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Resilience benchmark on topology (b): fault severity sweep, "
      "schedule repair over a redundant trunk, and watchdog abort on a "
      "hard trunk failure.");
  cli.add_flag("msize", "message size per rank pair", "64K");
  cli.add_flag("onset-ms", "fault onset time (simulated ms)", "400");
  cli.add_flag("jitter-us", "max OS wakeup jitter in microseconds", "1000");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  harness::ResilienceScenario base;
  base.msize = parse_size(cli.get("msize"));
  base.exec.wakeup_jitter_max = microseconds(cli.get_double("jitter-us", 1000.0));
  const SimTime onset = milliseconds(cli.get_double("onset-ms", 400.0));

  // ---- 1. severity sweep, no redundancy ----
  std::cout << "== severity sweep: s0-s1 trunk degraded at "
            << format_double(to_milliseconds(onset), 1)
            << "ms, no redundant links ==\n";
  const stp::BridgeNetwork star = make_star(/*with_backup=*/false);
  double healthy_ms = 0;
  for (const double keep : {1.0, 0.75, 0.5, 0.25}) {
    harness::ResilienceScenario scenario = base;
    scenario.title = "degrade to " + format_double(keep * 100, 0) + "%";
    if (keep < 1.0) {
      scenario.plan.add(faults::FaultEvent::link_degrade(onset, 0, keep));
    }
    const harness::ResilienceReport r = harness::run_resilience(star, scenario);
    if (keep == 1.0) healthy_ms = to_milliseconds(r.healthy_completion);
    const double stale_ms = to_milliseconds(
        keep == 1.0 ? r.healthy_completion : r.stale_completion);
    std::cout << "  keep=" << format_double(keep * 100, 0) << "%  stale "
              << format_double(stale_ms, 2) << "ms  inflation x"
              << format_double(healthy_ms > 0 ? stale_ms / healthy_ms : 0, 2)
              << "  degraded peak " << format_double(r.degraded_peak_mbps, 1)
              << " Mbps\n";
  }

  // ---- 2. repair over the redundant trunk ----
  std::cout << "\n== repair: 50% degrade of the primary s0-s1 trunk, "
               "equal-cost backup trunk available ==\n";
  const stp::BridgeNetwork redundant = make_star(/*with_backup=*/true);
  harness::ResilienceScenario repair_scenario = base;
  repair_scenario.title = "repair after 50% trunk degrade";
  repair_scenario.plan.add(faults::FaultEvent::link_degrade(onset, 0, 0.5));
  const harness::ResilienceReport repaired =
      harness::run_resilience(redundant, repair_scenario);
  std::cout << repaired.to_string();
  const bool pass =
      repaired.recovered_ratio() >= repaired.degraded_peak_ratio();
  std::cout << (pass ? "PASS" : "FAIL")
            << ": recovered_ratio >= degraded_peak_ratio ("
            << format_double(repaired.recovered_ratio(), 3) << " vs "
            << format_double(repaired.degraded_peak_ratio(), 3) << ")\n";

  // ---- 3. hard failure + watchdog ----
  std::cout << "\n== hard failure: primary s0-s1 trunk DOWN, watchdog "
               "abort on the stale schedule, fail-over repair ==\n";
  harness::ResilienceScenario down_scenario = base;
  down_scenario.title = "repair after trunk failure";
  down_scenario.plan.add(faults::FaultEvent::link_down(onset, 0));
  down_scenario.exec.transfer_timeout = milliseconds(15.0);
  down_scenario.exec.transfer_max_retries = 2;
  const harness::ResilienceReport failed =
      harness::run_resilience(redundant, down_scenario);
  std::cout << failed.to_string();
  return pass ? 0 : 1;
}
