// Design-choice ablation: Step 6 of the assignment algorithm may use
// either the broadcast or the rotate pattern (§4.3, "either ... can be
// used"). Both are optimal in phase count; this bench confirms the
// choice is performance-neutral end to end, and also reports how the
// pattern choice shifts the synchronization plan.
#include <algorithm>
#include <iostream>
#include <memory>

#include "aapc/common/table.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

harness::NamedAlgorithm ours_with_step6(
    const topology::Topology& topo, const std::string& name,
    core::AssignmentOptions::Step6Pattern pattern) {
  core::SchedulerOptions sched;
  sched.assignment.step6 = pattern;
  auto schedule = std::make_shared<core::Schedule>(
      core::build_aapc_schedule(topo, sched));
  return harness::NamedAlgorithm{
      name, [&topo, schedule](Bytes msize) {
        return lowering::lower_schedule(topo, *schedule, msize);
      }};
}

}  // namespace

int main() {
  harness::ExperimentConfig config;
  config.msizes = {32_KiB, 256_KiB};

  for (const auto& [name, topo] :
       {std::pair{std::string("topology (b)"),
                  topology::make_paper_topology_b()},
        std::pair{std::string("topology (c)"),
                  topology::make_paper_topology_c()}}) {
    std::vector<harness::NamedAlgorithm> algorithms;
    algorithms.push_back(ours_with_step6(
        topo, "step6-broadcast",
        core::AssignmentOptions::Step6Pattern::kBroadcast));
    algorithms.push_back(ours_with_step6(
        topo, "step6-rotate", core::AssignmentOptions::Step6Pattern::kRotate));
    const harness::ExperimentReport report = harness::run_experiment(
        topo, "Step-6 pattern ablation on " + name, algorithms, config);
    std::cout << report.to_string() << '\n';

    // Sync-plan shape per pattern.
    TextTable table;
    table.set_header({"pattern", "sync tokens", "local waits"});
    for (const auto pattern :
         {core::AssignmentOptions::Step6Pattern::kBroadcast,
          core::AssignmentOptions::Step6Pattern::kRotate}) {
      core::SchedulerOptions sched;
      sched.assignment.step6 = pattern;
      const core::Schedule schedule = core::build_aapc_schedule(topo, sched);
      lowering::LoweringInfo info;
      lowering::lower_schedule(topo, schedule, 64_KiB, {}, &info);
      table.add_row(
          {pattern == core::AssignmentOptions::Step6Pattern::kBroadcast
               ? "broadcast"
               : "rotate",
           std::to_string(info.sync_messages),
           std::to_string(info.local_wait_dependencies)});
    }
    std::cout << table.render() << '\n';
  }
  return 0;
}
