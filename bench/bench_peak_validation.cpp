// E10 — validation of the §3 peak-aggregate-throughput bound.
//
// For a family of topologies, compares the analytic bound
//   peak = |M| (|M|-1) B / aapc_load
// against the simulated throughput of the generated routine at a large
// message size with the measurement-noise mechanisms disabled (ideal
// links, no jitter, no token latency). The simulated value must
// approach the bound from below — evidence that the schedule realizes
// the maximum throughput the bottleneck permits, the paper's central
// theoretical claim.
#include <iostream>

#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

harness::ExperimentConfig ideal_config() {
  harness::ExperimentConfig config;
  config.net.protocol_efficiency = 1.0;
  config.net.send_overhead = 0;
  config.net.recv_overhead = 0;
  config.net.per_hop_latency = 0;
  config.net.small_message_extra_latency = 0;
  config.net.node_contention_penalty = 0;
  config.net.trunk_contention_penalty = 0;
  config.net.node_efficiency_floor = 1.0;
  config.net.trunk_efficiency_floor = 1.0;
  config.net.duplex_efficiency = 1.0;
  config.net.switch_fabric_links = 1e9;
  config.exec.wakeup_jitter_max = 0;
  return config;
}

}  // namespace

int main() {
  const harness::ExperimentConfig config = ideal_config();
  const Bytes msize = 1_MiB;

  TextTable table;
  table.set_header({"topology", "|M|", "load", "peak Mbps", "ours Mbps",
                    "ratio"});
  struct Entry {
    const char* name;
    topology::Topology topo;
  };
  const Entry entries[] = {
      {"paper (a) 24x1sw", topology::make_paper_topology_a()},
      {"paper (b) star", topology::make_paper_topology_b()},
      {"paper (c) chain", topology::make_paper_topology_c()},
      {"figure-1 example", topology::make_paper_figure1()},
      {"star 6,6,6", topology::make_star({6, 6, 6})},
      {"chain 4x4", topology::make_chain({4, 4, 4, 4})},
      {"lopsided 12,3,1", topology::make_star({12, 3, 1})},
      {"deep chain 2x6", topology::make_chain({2, 2, 2, 2, 2, 2})},
  };
  for (const Entry& entry : entries) {
    const auto suite = harness::standard_suite(entry.topo);
    const harness::RunResult ours =
        harness::run_algorithm(entry.topo, suite[2], msize, config);
    const double peak = bytes_per_sec_to_mbps(
        entry.topo.peak_aggregate_throughput(
            config.net.link_bandwidth_bytes_per_sec));
    table.add_row({entry.name, std::to_string(entry.topo.machine_count()),
                   std::to_string(entry.topo.aapc_load()),
                   format_double(peak, 1),
                   format_double(ours.throughput_mbps, 1),
                   format_double(ours.throughput_mbps / peak, 3)});
  }
  std::cout << "peak bound (§3) vs simulated generated routine at "
            << format_size(msize) << "B, ideal links\n"
            << table.render()
            << "\nratios approach 1.0: the schedule saturates the "
               "bottleneck in every phase.\n";
  return 0;
}
