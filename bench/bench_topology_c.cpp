// E3 — Figure 8 of the paper: 32 machines over four switches in a chain
// (topology (c)). The middle trunk is the bottleneck (16 x 16 = 256),
// peak 387.5 Mbps.
#include "bench_support.hpp"

#include "aapc/topology/generators.hpp"

int main(int argc, char** argv) {
  return aapc::bench::run_topology_bench(
      "Figure 8 — topology (c): 32 machines, 4-switch chain",
      aapc::topology::make_paper_topology_c(), argc, argv);
}
