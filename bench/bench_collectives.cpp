// Collective-portfolio gate: runs every CollectiveKind end-to-end
// (build -> verify -> lower -> fluid execution) on the paper's
// topologies (a), (b), (c) plus a fat-tree fabric, and compares the
// achieved completion time against the kind's bandwidth bound under
// the calibrated network model: per phase, a contention-free flow is
// limited by the effective link rate (protocol efficiency), the
// end-host duplex cap when its machine both sends and receives, and
// the switch fabric cap shared by every flow traversing the switch —
// the same three capacity rows the fluid simulator enforces. Summing
// msize over the per-phase rate gives T_min; anything below it is
// physically unreachable, so the bound is tight exactly when the
// schedule wastes no bandwidth. The ring kinds are built to be
// bandwidth-optimal and must achieve ratio = T_min / T >= 0.95 on
// (a)-(c); the fat tree and the greedy sparse arm are reported without
// a throughput gate. Delivery integrity (exactly-once, via the
// DeliveryLedger) is asserted on every run. Exits nonzero when any
// gate fails.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/units.hpp"
#include "aapc/core/collectives.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/topology/generators.hpp"

namespace {

using aapc::Bytes;
using aapc::core::CollectiveKind;
using aapc::core::Schedule;
using aapc::core::SparseNeighbors;
using aapc::topology::Rank;
using aapc::topology::Topology;

struct Row {
  std::string topology;
  std::string kind;
  std::int32_t machines = 0;
  std::int64_t phases = 0;
  std::int64_t bound_phases = 0;
  double tmin_s = 0;
  double completion_s = 0;
  double ratio = 0;
  bool gated = false;
  bool pass = true;
};

/// Lower bound on the completion time of `schedule` under the fluid
/// model's capacity rows, assuming every flow of a phase runs at the
/// same rate (exact for the symmetric ring/alltoall phases): per phase
///   r = min(eff,  2*eff*duplex / flows(machine),
///                 eff*fabric_links / flows(switch))
/// over every machine touched and switch traversed, then
/// T_min = sum_p msize / r_p.
double model_bound_seconds(const Topology& topo,
                           const aapc::simnet::NetworkParams& net,
                           const Schedule& schedule, Bytes msize) {
  const double eff = net.effective_bandwidth();
  std::vector<aapc::topology::EdgeId> path;
  std::vector<std::int64_t> node_flows(
      static_cast<std::size_t>(topo.node_count()), 0);
  double total = 0;
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    std::fill(node_flows.begin(), node_flows.end(), 0);
    for (const aapc::core::ScheduledMessage& sm : schedule.phase(p)) {
      const aapc::topology::NodeId src = topo.machine_node(sm.message.src);
      const aapc::topology::NodeId dst = topo.machine_node(sm.message.dst);
      ++node_flows[static_cast<std::size_t>(src)];
      ++node_flows[static_cast<std::size_t>(dst)];
      topo.path_into(src, dst, path);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        ++node_flows[static_cast<std::size_t>(topo.edge_target(path[i]))];
      }
    }
    double rate = eff;
    for (aapc::topology::NodeId node = 0; node < topo.node_count(); ++node) {
      const auto flows =
          static_cast<double>(node_flows[static_cast<std::size_t>(node)]);
      if (flows <= 0) continue;
      const double cap = topo.is_machine(node)
                             ? 2.0 * eff * net.duplex_efficiency
                             : eff * net.switch_fabric_links;
      if (cap / flows < rate) rate = cap / flows;
    }
    total += static_cast<double>(msize) / rate;
  }
  return total;
}

SparseNeighbors halo_ring(std::int32_t n) {
  SparseNeighbors neighbors(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    neighbors[static_cast<std::size_t>(r)] = {(r + 1) % n, (r + n - 1) % n};
  }
  return neighbors;
}

}  // namespace

int main(int argc, char** argv) {
  aapc::CliParser cli(
      "Collective portfolio vs per-kind bandwidth bounds on topologies "
      "(a)-(c) and a fat tree.");
  cli.add_flag("msize", "message size per block", "256K");
  cli.add_flag("bandwidth-mbps", "link bandwidth in Mbps", "100");
  cli.add_flag("gate", "minimum T_min/T ratio for the ring kinds on (a)-(c)",
               "0.95");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }
  const Bytes msize = aapc::parse_size(cli.get("msize"));
  const double bandwidth =
      aapc::mbps_to_bytes_per_sec(cli.get_double("bandwidth-mbps", 100.0));
  const double gate = cli.get_double("gate", 0.95);

  struct Fixture {
    std::string name;
    Topology topo;
    bool gated;  // the bandwidth-optimality gate applies to ring kinds
  };
  const std::vector<Fixture> fixtures{
      {"(a) 24x1 switch", aapc::topology::make_paper_topology_a(), true},
      {"(b) 4x8 star", aapc::topology::make_paper_topology_b(), true},
      {"(c) 2-level tree", aapc::topology::make_paper_topology_c(), true},
      {"fat tree 2x2x4", aapc::topology::make_fat_tree(2, 2, 4), false},
  };

  bool all_pass = true;
  std::vector<Row> rows;
  for (const Fixture& fixture : fixtures) {
    const Topology& topo = fixture.topo;
    const std::int32_t n = topo.machine_count();
    const SparseNeighbors sparse = halo_ring(n);
    struct Arm {
      CollectiveKind kind;
      Schedule schedule;
    };
    const std::vector<Arm> arms{
        {CollectiveKind::kAlltoall, aapc::core::build_aapc_schedule(topo)},
        {CollectiveKind::kAllgather,
         aapc::core::build_allgather_schedule(topo)},
        {CollectiveKind::kReduceScatter,
         aapc::core::build_reduce_scatter_schedule(topo)},
        {CollectiveKind::kSparseAlltoall,
         aapc::core::build_sparse_alltoall_schedule(topo, sparse)},
    };
    for (const Arm& arm : arms) {
      Row row;
      row.topology = fixture.name;
      row.kind = aapc::core::collective_kind_name(arm.kind);
      row.machines = n;
      row.phases = arm.schedule.phase_count();
      const SparseNeighbors& neighbors =
          arm.kind == CollectiveKind::kSparseAlltoall ? sparse
                                                      : SparseNeighbors{};
      row.bound_phases =
          aapc::core::collective_phase_lower_bound(topo, arm.kind, neighbors);
      const aapc::core::VerifyReport verdict =
          aapc::core::verify_collective_schedule(topo, arm.schedule,
                                                 neighbors);
      if (!verdict.ok) {
        std::cerr << row.topology << " " << row.kind
                  << ": schedule failed verification: " << verdict.summary()
                  << '\n';
        row.pass = false;
        all_pass = false;
        rows.push_back(row);
        continue;
      }

      const aapc::mpisim::ProgramSet programs =
          aapc::lowering::lower_schedule(topo, arm.schedule, msize);
      aapc::simnet::NetworkParams net;
      net.link_bandwidth_bytes_per_sec = bandwidth;
      aapc::mpisim::ExecutorParams exec;
      exec.wakeup_jitter_max = 0;
      aapc::mpisim::Executor executor(topo, net, exec);
      const aapc::mpisim::ExecutionResult result = executor.run(programs);
      if (!result.integrity.ok() ||
          result.integrity.expected != result.message_count) {
        std::cerr << row.topology << " " << row.kind
                  << ": delivery audit failed: " << result.integrity.summary()
                  << '\n';
        row.pass = false;
        all_pass = false;
        rows.push_back(row);
        continue;
      }

      // Bandwidth bound under the calibrated model: per-phase rate
      // capped by link efficiency, end-host duplex, and switch fabric
      // capacity — the same rows the fluid simulator enforces.
      row.tmin_s = model_bound_seconds(topo, net, arm.schedule, msize);
      row.completion_s = result.completion_time;
      row.ratio = row.completion_s > 0 ? row.tmin_s / row.completion_s : 0;
      row.gated = fixture.gated &&
                  (arm.kind == CollectiveKind::kAllgather ||
                   arm.kind == CollectiveKind::kReduceScatter);
      if (row.gated && row.ratio < gate) {
        row.pass = false;
        all_pass = false;
      }
      rows.push_back(row);
    }
  }

  std::cout << "collective portfolio @ msize=" << msize
            << " B, link=" << bandwidth << " B/s (gate " << gate
            << " on ring kinds, topologies (a)-(c))\n";
  std::cout << "{\"msize\":" << msize << ",\"gate\":" << gate
            << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::cout << (i == 0 ? "" : ",") << "\n  {\"topology\":\"" << row.topology
              << "\",\"kind\":\"" << row.kind
              << "\",\"machines\":" << row.machines
              << ",\"phases\":" << row.phases
              << ",\"bound_phases\":" << row.bound_phases
              << ",\"tmin_s\":" << row.tmin_s
              << ",\"completion_s\":" << row.completion_s
              << ",\"ratio\":" << row.ratio
              << ",\"gated\":" << (row.gated ? "true" : "false")
              << ",\"pass\":" << (row.pass ? "true" : "false") << "}";
  }
  std::cout << "\n]}\n";
  if (!all_pass) {
    std::cerr << "FAIL: at least one arm missed its gate\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}
