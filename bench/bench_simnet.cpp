// Simulator microbenchmarks (google-benchmark): cost of max-min rate
// allocation and full executor runs — establishes that sweeping the
// paper's experiments is cheap and how the cost scales with flow count.
#include <benchmark/benchmark.h>

#include "aapc/baselines/baselines.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/topology/generators.hpp"

namespace {

using aapc::topology::Topology;

void BM_MaxMinAllocation(benchmark::State& state) {
  // `range(0)` simultaneous flows, all-to-all style on a 32-node chain.
  const Topology topo = aapc::topology::make_paper_topology_c();
  const std::int64_t flows = state.range(0);
  for (auto _ : state) {
    aapc::simnet::FluidNetwork network(topo, aapc::simnet::NetworkParams{});
    std::int64_t added = 0;
    for (aapc::topology::Rank src = 0; added < flows; ++src) {
      for (aapc::topology::Rank dst = 0; dst < 32 && added < flows; ++dst) {
        if (src % 32 == dst) continue;
        network.add_flow(topo.machine_node(src % 32), topo.machine_node(dst),
                         1, 0);
        ++added;
      }
    }
    benchmark::DoNotOptimize(network.next_event_time());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_MaxMinAllocation)->Arg(32)->Arg(128)->Arg(512)->Arg(992);

void BM_AdvanceSweep(benchmark::State& state) {
  // Full event-loop drain: register `range(0)` staggered flows and
  // advance the network event by event until idle. Exercises the
  // pending-activation heap, the cached next-completion, and
  // completion-time row detachment together (the executor's usage
  // pattern, minus the executor).
  const Topology topo = aapc::topology::make_paper_topology_c();
  const std::int64_t flows = state.range(0);
  std::vector<aapc::simnet::FlowId> completed;
  for (auto _ : state) {
    aapc::simnet::FluidNetwork network(topo, aapc::simnet::NetworkParams{});
    std::int64_t added = 0;
    for (aapc::topology::Rank src = 0; added < flows; ++src) {
      for (aapc::topology::Rank dst = 0; dst < 32 && added < flows; ++dst) {
        if (src % 32 == dst) continue;
        // Stagger starts so activations drip out of the pending heap
        // while earlier flows are still draining.
        network.add_flow(topo.machine_node(src % 32), topo.machine_node(dst),
                         4096, 1e-6 * static_cast<double>(added % 64));
        ++added;
      }
    }
    std::int64_t drained = 0;
    while (!network.idle()) {
      completed.clear();
      network.advance_to(network.next_event_time(), completed);
      drained += static_cast<std::int64_t>(completed.size());
    }
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_AdvanceSweep)->Arg(128)->Arg(512)->Arg(2048);

void BM_ExecutorLam(benchmark::State& state) {
  const Topology topo = aapc::topology::make_single_switch(
      static_cast<std::int32_t>(state.range(0)));
  aapc::mpisim::Executor executor(topo, {}, {});
  const aapc::mpisim::ProgramSet set = aapc::baselines::lam_alltoall(
      static_cast<std::int32_t>(state.range(0)), 65536);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(set));
  }
}
BENCHMARK(BM_ExecutorLam)->Arg(8)->Arg(16)->Arg(24);

void BM_ExecutorGeneratedRoutine(benchmark::State& state) {
  const Topology topo = aapc::topology::make_paper_topology_c();
  const aapc::core::Schedule schedule = aapc::core::build_aapc_schedule(topo);
  const aapc::mpisim::ProgramSet set =
      aapc::lowering::lower_schedule(topo, schedule, 65536);
  aapc::mpisim::Executor executor(topo, {}, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(set));
  }
}
BENCHMARK(BM_ExecutorGeneratedRoutine);

}  // namespace

BENCHMARK_MAIN();
