// E2 — Figure 7 of the paper: 32 machines over four switches in a star
// (topology (b)). Peak aggregate throughput 32*31*100/192 ≈ 516.7 Mbps.
#include "bench_support.hpp"

#include "aapc/topology/generators.hpp"

int main(int argc, char** argv) {
  return aapc::bench::run_topology_bench(
      "Figure 7 — topology (b): 32 machines, 4-switch star",
      aapc::topology::make_paper_topology_b(), argc, argv);
}
