// E-loss — the generated alltoall over a lossy packet network, on the
// paper's three clusters: (a) 24 machines / one switch, (b) 32
// machines / 4-switch star, (c) 32 machines / 4-switch chain.
//
// For each topology the scheduled, pair-wise-synchronized routine is
// executed end-to-end over the segment-level packet backend while the
// per-link Bernoulli segment-loss rate sweeps 0 .. 1e-2, once per
// transport. Two claims are checked:
//
//  * integrity: every (src, dst) block is delivered exactly once at
//    every loss rate (mpisim::DeliveryLedger; any violation fails the
//    bench);
//  * graceful degradation: at 1% loss the selective-repeat transport's
//    completion inflates measurably less than fixed-window's, whose
//    sequential window stalls behind every lost segment until the
//    40 ms RTO.
#include <iostream>
#include <string>
#include <vector>

#include "aapc/harness/loss_sweep.hpp"
#include "aapc/topology/generators.hpp"

namespace {

using namespace aapc;

/// Worst inflation of `transport` across the sweep's nonzero rates.
double peak_inflation(const harness::LossSweepReport& report,
                      packetsim::PacketNetworkParams::Transport transport) {
  double worst = 1.0;
  for (const harness::LossSweepCell& cell : report.cells) {
    if (cell.transport == transport && cell.loss_rate > 0) {
      worst = std::max(worst, cell.inflation);
    }
  }
  return worst;
}

}  // namespace

int main() {
  bool ok = true;
  bool graceful = true;
  const std::vector<std::pair<std::string, topology::Topology>> clusters = [] {
    std::vector<std::pair<std::string, topology::Topology>> list;
    list.emplace_back("topology (a): 24 machines, one switch",
                      topology::make_paper_topology_a());
    list.emplace_back("topology (b): 32 machines, 4-switch star",
                      topology::make_paper_topology_b());
    list.emplace_back("topology (c): 32 machines, 4-switch chain",
                      topology::make_paper_topology_c());
    return list;
  }();

  for (const auto& [name, topo] : clusters) {
    const harness::LossSweepReport report =
        harness::run_loss_sweep(topo, name, {});
    std::cout << report.to_string() << "\n\n";
    ok = ok && report.all_ok();
    const double fixed = peak_inflation(
        report, packetsim::PacketNetworkParams::Transport::kFixedWindow);
    const double sack = peak_inflation(
        report, packetsim::PacketNetworkParams::Transport::kSelectiveRepeat);
    graceful = graceful && sack < fixed;
    std::cout << "peak inflation: fixed-window " << fixed
              << "x vs selective-repeat " << sack << "x\n\n";
  }

  std::cout << (ok ? "PASS" : "FAIL")
            << ": integrity exactly-once across the sweep\n";
  std::cout << (graceful ? "PASS" : "FAIL")
            << ": selective-repeat degrades more gracefully than "
               "fixed-window\n";
  return ok && graceful ? 0 : 1;
}
