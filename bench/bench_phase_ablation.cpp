// Phase-count ablation: what the optimal |M0|*(|M|-|M0|) phase count
// buys. Compares the generated routine against a naive contention-free
// scheduler that serializes the inter-subtree groups (one group after
// another, ring-ordered but without the §4.2 overlap), which is also
// contention-free but uses far more phases — isolating the benefit of
// the extended-ring overlap from the benefit of contention freedom.
#include <algorithm>
#include <iostream>
#include <memory>

#include "aapc/common/error.hpp"
#include "aapc/common/table.hpp"
#include "aapc/core/decompose.hpp"
#include "aapc/core/patterns.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

/// Naive contention-free scheduling: groups ti->tj run one after
/// another (no overlap between groups); locals ride along inside their
/// subtree's sending group. Contention-free but with
/// sum_{i!=j} |Mi||Mj| + max locals phases instead of |M0|(|M|-|M0|).
core::Schedule naive_group_sequential(const topology::Topology& topo) {
  const core::Decomposition dec = core::decompose(topo);
  const std::int32_t k = dec.subtree_count();
  core::ScheduleBuilder builder;
  std::int64_t phase = 0;
  for (std::int32_t i = 0; i < k; ++i) {
    for (std::int32_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const auto pattern = core::broadcast_pattern(dec.subtree_size(i),
                                                   dec.subtree_size(j));
      for (std::size_t q = 0; q < pattern.size(); ++q) {
        builder.add(phase + static_cast<std::int64_t>(q),
                    dec.subtrees[i][pattern[q].sender],
                    dec.subtrees[j][pattern[q].receiver],
                    core::MessageScope::kGlobal);
      }
      phase += static_cast<std::int64_t>(pattern.size());
    }
  }
  // Locals: one dedicated block of phases per subtree, all subtrees in
  // parallel (locals of different subtrees never contend).
  std::int64_t local_block = 0;
  for (std::int32_t i = 0; i < k; ++i) {
    const std::int32_t mi = dec.subtree_size(i);
    std::int64_t offset = 0;
    for (std::int32_t a = 0; a < mi; ++a) {
      for (std::int32_t b = 0; b < mi; ++b) {
        if (a == b) continue;
        builder.add(phase + offset, dec.subtrees[i][a], dec.subtrees[i][b],
                    core::MessageScope::kLocal);
        ++offset;
      }
    }
    local_block = std::max(local_block, offset);
  }
  return std::move(builder).build(phase + local_block);
}

}  // namespace

int main() {
  harness::ExperimentConfig config;
  config.msizes = {64_KiB, 256_KiB};

  TextTable phases;
  phases.set_header({"topology", "optimal phases (=load)", "naive phases"});

  for (const auto& [name, topo] :
       {std::pair{std::string("paper (b)"),
                  topology::make_paper_topology_b()},
        std::pair{std::string("paper (c)"),
                  topology::make_paper_topology_c()},
        std::pair{std::string("star 6,6,6"), topology::make_star({6, 6, 6})}}) {
    auto optimal = std::make_shared<core::Schedule>(
        core::build_aapc_schedule(topo));
    auto naive = std::make_shared<core::Schedule>(
        naive_group_sequential(topo));
    core::VerifyOptions lax;
    lax.require_optimal_phase_count = false;
    const core::VerifyReport naive_report =
        core::verify_schedule(topo, *naive, lax);
    AAPC_CHECK_MSG(naive_report.ok, naive_report.summary());
    phases.add_row({name, std::to_string(optimal->phase_count()),
                    std::to_string(naive->phase_count())});

    std::vector<harness::NamedAlgorithm> algorithms;
    algorithms.push_back(harness::NamedAlgorithm{
        "optimal-phases", [&topo, optimal](Bytes msize) {
          return lowering::lower_schedule(topo, *optimal, msize);
        }});
    algorithms.push_back(harness::NamedAlgorithm{
        "naive-sequential", [&topo, naive](Bytes msize) {
          return lowering::lower_schedule(topo, *naive, msize);
        }});
    const harness::ExperimentReport report = harness::run_experiment(
        topo, "phase-count ablation on " + name, algorithms, config);
    std::cout << report.to_string() << '\n';
  }
  std::cout << "phase counts\n" << phases.render();
  return 0;
}
