// Cluster-size scaling study (beyond the paper's fixed 24/32 nodes):
// how the generated routine's advantage evolves with machine count, for
// the two shapes whose bottlenecks differ — a single switch (end-node
// bound) and a two-switch chain (trunk bound) — at a large message
// size. Also reports the phase counts, which grow linearly (single
// switch: |M|-1) vs quadratically (even chain: |M|^2/4).
#include <iostream>

#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/harness/experiment.hpp"
#include "aapc/topology/generators.hpp"

using namespace aapc;

namespace {

void sweep(const std::string& label,
           const std::vector<topology::Topology>& topologies, Bytes msize) {
  harness::ExperimentConfig config;
  TextTable table;
  table.set_header({"machines", "phases", "LAM", "MPICH", "Ours",
                    "ours vs best baseline"});
  for (const topology::Topology& topo : topologies) {
    const auto suite = harness::standard_suite(topo);
    std::vector<double> times;
    for (const auto& algo : suite) {
      times.push_back(
          harness::run_algorithm(topo, algo, msize, config).completion);
    }
    const double best_baseline = std::min(times[0], times[1]);
    const core::Schedule schedule = core::build_aapc_schedule(topo);
    table.add_row({std::to_string(topo.machine_count()),
                   std::to_string(schedule.phase_count()),
                   format_double(to_milliseconds(times[0]), 0) + "ms",
                   format_double(to_milliseconds(times[1]), 0) + "ms",
                   format_double(to_milliseconds(times[2]), 0) + "ms",
                   format_double(best_baseline / times[2], 2) + "x"});
  }
  std::cout << label << " at msize " << format_size(msize) << "B\n"
            << table.render() << '\n';
}

}  // namespace

int main() {
  const Bytes msize = 256_KiB;
  {
    std::vector<topology::Topology> topologies;
    for (const std::int32_t machines : {8, 16, 24, 32, 48}) {
      topologies.push_back(topology::make_single_switch(machines));
    }
    sweep("single switch (end-node-bound)", topologies, msize);
  }
  {
    std::vector<topology::Topology> topologies;
    for (const std::int32_t per : {4, 8, 12, 16}) {
      topologies.push_back(topology::make_chain({per, per}));
    }
    sweep("two-switch chain (trunk-bound)", topologies, msize);
  }
  {
    std::vector<topology::Topology> topologies;
    for (const std::int32_t per : {2, 4, 8}) {
      topologies.push_back(topology::make_star({per, per, per, per}));
    }
    sweep("four-switch star (hub-bound)", topologies, msize);
  }
  std::cout << "The advantage persists across sizes and shapes; it is "
               "largest where the\nunscheduled baselines collide hardest "
               "(many machines per bottleneck).\n";
  return 0;
}
