// E10 — schedule-compilation service amortization.
//
// Measures what the service layer buys over the paper's one-shot §5
// routine generator on the three evaluation clusters: cold compile
// latency (canonicalize + schedule + verify + sync + lower), warm
// cache-hit latency (canonicalize + permutation rewrite), and coalesced
// throughput (many concurrent tenants, one canonical key).
//
// Exits nonzero unless the warm path is at least 50x faster than the
// cold path on the 32-node clusters — the acceptance bar for caching
// being worth the subsystem.
//
// Run:  ./bench_service [--repeats 9] [--warm-iters 200]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/table.hpp"
#include "aapc/common/units.hpp"
#include "aapc/service/service.hpp"
#include "aapc/topology/generators.hpp"

namespace {

using aapc::Bytes;
using aapc::topology::Topology;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// Median latency of a fresh-service compilation (nothing cached).
double cold_seconds(const Topology& topo, Bytes msize, int repeats) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    aapc::service::ScheduleService service;
    const auto start = Clock::now();
    service.compile(topo, msize);
    samples.push_back(seconds_since(start));
  }
  return median(samples);
}

/// Median latency of a cache hit on a pre-populated service.
double warm_seconds(aapc::service::ScheduleService& service,
                    const Topology& topo, Bytes msize, int iters) {
  service.compile(topo, msize);  // populate
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto start = Clock::now();
    service.compile(topo, msize);
    samples.push_back(seconds_since(start));
  }
  return median(samples);
}

/// Wall-clock for `tenants` concurrent requests of one canonical key
/// against a cold service (one compilation, everyone else coalesces).
double coalesced_seconds(const Topology& topo, Bytes msize, int tenants) {
  aapc::service::ScheduleService service;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(tenants));
  const auto start = Clock::now();
  for (int t = 0; t < tenants; ++t) {
    threads.emplace_back([&service, &topo, msize] {
      service.compile(topo, msize);
    });
  }
  for (std::thread& thread : threads) thread.join();
  return seconds_since(start);
}

std::string us(double seconds) {
  return std::to_string(static_cast<std::int64_t>(seconds * 1e6)) + " us";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aapc;
  CliParser cli(
      "bench_service: cold-compile vs cache-hit vs coalesced latency of\n"
      "the schedule-compilation service on the paper's clusters.");
  cli.add_flag("repeats", "cold-compile repetitions (median)", "9");
  cli.add_flag("warm-iters", "cache-hit repetitions (median)", "200");
  cli.add_flag("tenants", "concurrent requests in the coalescing run", "64");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }
  const int repeats = static_cast<int>(cli.get_u64("repeats", 9));
  const int warm_iters = static_cast<int>(cli.get_u64("warm-iters", 200));
  const int tenants = static_cast<int>(cli.get_u64("tenants", 64));
  const Bytes msize = 64_KiB;

  struct Cluster {
    const char* name;
    Topology topo;
    bool assert_speedup;  // the 32-node acceptance clusters
  };
  const Cluster clusters[] = {
      {"paper-a (24, single switch)", topology::make_paper_topology_a(),
       false},
      {"paper-b (32, star)", topology::make_paper_topology_b(), true},
      {"paper-c (32, chain)", topology::make_paper_topology_c(), true},
  };

  TextTable table;
  table.set_header({"cluster", "cold compile", "cache hit", "speedup",
                    "64-way coalesced"});
  bool ok = true;
  for (const Cluster& cluster : clusters) {
    const double cold = cold_seconds(cluster.topo, msize, repeats);
    service::ScheduleService service;
    const double warm = warm_seconds(service, cluster.topo, msize,
                                     warm_iters);
    const double coalesced = coalesced_seconds(cluster.topo, msize, tenants);
    const double speedup = cold / warm;
    table.add_row({cluster.name, us(cold), us(warm),
                   std::to_string(static_cast<std::int64_t>(speedup)) + "x",
                   us(coalesced)});
    if (cluster.assert_speedup && speedup < 50) {
      std::cerr << "FAIL: " << cluster.name << " warm path only " << speedup
                << "x faster than cold (need >= 50x)\n";
      ok = false;
    }
  }
  std::cout << table.render() << "\n";
  return ok ? 0 : 1;
}
