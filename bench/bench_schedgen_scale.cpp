// Large-scale schedule-compilation gate: builds the full AAPC schedule
// for fat-tree / fabric / random-LAN clusters up to 4096 ranks, checks
// the parallel hierarchical path is bit-identical to the sequential
// one, verifies the §4 conditions (including the peak-bound phase
// count), and enforces an optional wall-clock cap.
//
// Exit status is the contract (CI runs this as a smoke test):
//   0  built, verified, parallel == sequential, under --max-seconds
//   1  wall-clock cap exceeded
//   2  parallel output differs from sequential output
//   3  verification failed
//
// Results print as one JSON object per line for the perf trajectory in
// bench/baselines/BENCH_schedgen.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "aapc/common/cli.hpp"
#include "aapc/common/error.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/core/hierarchical.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/topology/generators.hpp"

namespace {

using namespace aapc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

topology::Topology make_cluster(const std::string& shape,
                                std::int32_t ranks) {
  if (shape == "fat-tree") {
    // Keep pods x edges x hosts as close to the 8 x 16 x 32 = 4096
    // reference proportions as divisibility allows.
    switch (ranks) {
      case 64:
        return topology::make_fat_tree(2, 4, 8);
      case 128:
        return topology::make_fat_tree(2, 8, 8);
      case 256:
        return topology::make_fat_tree(4, 8, 8);
      case 512:
        return topology::make_fat_tree(4, 8, 16);
      case 1024:
        return topology::make_fat_tree(8, 8, 16);
      case 2048:
        return topology::make_fat_tree(8, 16, 16);
      case 4096:
        return topology::make_fat_tree(8, 16, 32);
      default:
        AAPC_REQUIRE(false, "--ranks for fat-tree must be one of "
                            "64/128/256/512/1024/2048/4096, got "
                                << ranks);
    }
  }
  if (shape == "fabric") {
    // Three-level fabric with fanout 4: machines spread over 64 leaves.
    AAPC_REQUIRE(ranks % 64 == 0, "--ranks for fabric must be a multiple "
                                  "of 64");
    return topology::make_switch_fabric({4, 4, 4}, ranks / 64);
  }
  AAPC_REQUIRE(shape == "random-lan",
               "--shape must be fat-tree, fabric, or random-lan");
  Rng rng(0xa11c);
  topology::RandomLanOptions options;
  options.switches = std::max(8, ranks / 32);
  options.machines = ranks;
  return topology::make_random_lan(rng, options);
}

void threaded_runner(const std::vector<core::Task>& tasks) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers =
      std::min<std::size_t>(tasks.size(), hw > 0 ? hw : 2);
  if (workers <= 1) {
    for (const core::Task& task : tasks) task();
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= tasks.size()) return;
      tasks[i]();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(drain);
  for (std::thread& t : threads) t.join();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "usage: bench_schedgen_scale [--ranks N] [--shape fat-tree|fabric|"
      "random-lan] [--max-seconds S] [--skip-verify]");
  cli.add_flag("ranks", "cluster size to compile", "4096");
  cli.add_flag("shape", "topology family", "fat-tree");
  cli.add_flag("max-seconds",
               "fail (exit 1) if sequential build exceeds this wall time; "
               "0 disables the cap",
               "0");
  cli.add_flag("skip-verify",
               "skip the independent O(messages * path) verifier pass");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help_text();
    return 0;
  }

  try {
    const auto ranks = static_cast<std::int32_t>(cli.get_u64("ranks", 4096));
    const std::string shape = cli.get_or("shape", "fat-tree");
    const double max_seconds = cli.get_double("max-seconds", 0.0);
    const bool verify = !cli.get_bool("skip-verify", false);

    Clock::time_point t = Clock::now();
    const topology::Topology topo = make_cluster(shape, ranks);
    const double generate_seconds = seconds_since(t);

    t = Clock::now();
    const core::Decomposition dec = core::decompose(topo);
    const double decompose_seconds = seconds_since(t);

    t = Clock::now();
    const core::Schedule sequential =
        core::assign_messages_hierarchical(dec);
    const double sequential_seconds = seconds_since(t);

    t = Clock::now();
    const core::Schedule parallel = core::assign_messages_hierarchical(
        dec, core::AssignmentOptions{}, threaded_runner);
    const double parallel_seconds = seconds_since(t);

    const bool identical =
        sequential.messages == parallel.messages &&
        sequential.phase_begin == parallel.phase_begin;

    double verify_seconds = 0;
    bool verified = true;
    if (verify) {
      t = Clock::now();
      const core::VerifyReport report =
          core::verify_schedule(topo, sequential);
      verify_seconds = seconds_since(t);
      verified = report.ok;
      if (!report.ok) {
        std::cerr << "verification failed:\n" << report.summary() << '\n';
      }
    }

    const double build_seconds = decompose_seconds + sequential_seconds;
    std::cout << "{\"bench\":\"schedgen_scale\",\"shape\":\"" << shape
              << "\",\"ranks\":" << topo.machine_count()
              << ",\"messages\":" << sequential.message_count()
              << ",\"phases\":" << sequential.phase_count()
              << ",\"generate_seconds\":" << generate_seconds
              << ",\"decompose_seconds\":" << decompose_seconds
              << ",\"assign_seconds\":" << sequential_seconds
              << ",\"assign_parallel_seconds\":" << parallel_seconds
              << ",\"verify_seconds\":" << verify_seconds
              << ",\"build_seconds\":" << build_seconds
              << ",\"parallel_identical\":" << (identical ? "true" : "false")
              << ",\"verified\":" << (verified ? "true" : "false") << "}\n";

    if (!identical) {
      std::cerr << "FAIL: parallel assignment differs from sequential\n";
      return 2;
    }
    if (!verified) return 3;
    if (max_seconds > 0 && build_seconds > max_seconds) {
      std::cerr << "FAIL: build took " << build_seconds
                << " s (cap " << max_seconds << " s)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 4;
  }
}
