// Small string utilities used across the library (gcc 12 lacks
// std::format, so formatting goes through ostringstream helpers).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace aapc {

/// Concatenate the stream representations of all arguments.
template <typename... Args>
std::string str_cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Split on a delimiter; empty tokens are kept (like Python's split).
std::vector<std::string> split(std::string_view text, char delim);

/// Split on arbitrary whitespace runs; empty tokens are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Parse a non-negative integer; throws InvalidArgument on junk.
std::uint64_t parse_u64(std::string_view text);

/// Parse a size with optional K/M/G suffix (powers of two), e.g. "64K".
std::uint64_t parse_size(std::string_view text);

/// Render a byte count compactly ("64K", "1M", "1000").
std::string format_size(std::uint64_t bytes);

/// Fixed-precision double rendering ("12.34").
std::string format_double(double value, int precision);

/// Shortest decimal rendering that parses back to exactly `value`
/// (std::to_chars). Locale-independent; finite values are valid JSON
/// number tokens.
std::string format_double_roundtrip(double value);

/// Result of parse_json_number: `length` characters of the input were
/// consumed (0 = the input does not start with a JSON number), and the
/// token's value was `out_of_range` when it overflows or underflows a
/// double.
struct ParsedNumber {
  double value = 0;
  std::size_t length = 0;
  bool out_of_range = false;
};

/// Parses a number token at the *start* of `text` with the JSON
/// grammar: -?digits(.digits)?([eE][+-]?digits)?. Locale-independent
/// (std::from_chars) — the decimal separator is always '.', and the
/// hex/infinity/NaN spellings accepted by strtod are rejected. No
/// whitespace is skipped.
ParsedNumber parse_json_number(std::string_view text);

}  // namespace aapc
