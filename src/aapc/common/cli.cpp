#include "aapc/common/cli.hpp"

#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc {

CliParser::CliParser(std::string usage) : usage_(std::move(usage)) {}

void CliParser::add_flag(const std::string& name, const std::string& doc,
                         std::optional<std::string> default_value) {
  specs_[name] = FlagSpec{doc, std::move(default_value)};
}

bool CliParser::parse(int argc, const char* const* argv) {
  bool want_help = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      want_help = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (const std::size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    AAPC_REQUIRE(specs_.count(name) != 0, "unknown flag --" << name);
    if (!have_value) {
      // Consume the next token as the value unless it looks like a flag;
      // bare flags act as booleans ("true").
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    values_[name] = std::move(value);
  }
  return !want_help;
}

bool CliParser::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  const auto spec = specs_.find(name);
  AAPC_REQUIRE(spec != specs_.end(), "undeclared flag --" << name);
  AAPC_REQUIRE(spec->second.default_value.has_value(),
               "missing required flag --" << name);
  return *spec->second.default_value;
}

std::string CliParser::get_or(const std::string& name,
                              const std::string& fallback) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  return fallback;
}

std::uint64_t CliParser::get_u64(const std::string& name,
                                 std::uint64_t fallback) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return parse_size(it->second);
  }
  return fallback;
}

double CliParser::get_double(const std::string& name, double fallback) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return std::stod(it->second);
  }
  return fallback;
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }
  return fallback;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << usage_ << "\n\nFlags:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (spec.default_value) {
      os << " (default: " << *spec.default_value << ")";
    }
    os << "\n      " << spec.doc << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace aapc
