// Plain-text table and CSV rendering for the benchmark harness and
// examples. Renders the same row/column layout the paper's tables use.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aapc {

/// Column-aligned text table. Cells are strings; the first added row can
/// serve as a header (separated by a rule when render()'s with_header is
/// true).
class TextTable {
 public:
  /// Sets the header row (optional).
  void set_header(std::vector<std::string> cells);

  /// Appends a data row. Rows may have differing cell counts; missing
  /// cells render empty.
  void add_row(std::vector<std::string> cells);

  /// Render with padded, left-aligned first column and right-aligned
  /// remaining columns (matching numeric-table conventions).
  std::string render() const;

  /// Render as RFC-4180-ish CSV (cells containing commas/quotes are
  /// quoted).
  std::string render_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aapc
