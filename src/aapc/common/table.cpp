#include "aapc/common/table.hpp"

#include <algorithm>
#include <sstream>

namespace aapc {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

namespace {

std::size_t column_count(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::size_t count = header.size();
  for (const auto& row : rows) {
    count = std::max(count, row.size());
  }
  return count;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string TextTable::render() const {
  const std::size_t columns = column_count(header_, rows_);
  std::vector<std::size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      const std::size_t pad = widths[c] - cell.size();
      if (c == 0) {
        os << cell << std::string(pad, ' ');
      } else {
        os << "  " << std::string(pad, ' ') << cell;
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < columns; ++c) {
      rule += widths[c] + (c == 0 ? 0 : 2);
    }
    os << std::string(rule, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace aapc
