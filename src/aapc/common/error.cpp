#include "aapc/common/error.hpp"

namespace aapc::detail {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw InternalError(os.str());
}

}  // namespace aapc::detail
