// Little-endian byte-buffer primitives for wire codecs.
//
// ByteWriter appends fixed-width integers and length-prefixed strings
// to a growable buffer; ByteReader consumes them with explicit bounds
// checking (throws InvalidArgument on truncation — never reads past the
// end, never trusts an embedded length without checking it against the
// remaining bytes). Encoding is little-endian regardless of host order
// so frames are interchangeable across machines; both sides are
// byte-exact inverses, which the netd framing tests round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aapc {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { append_le(v, 2); }
  void u32(std::uint32_t v) { append_le(v, 4); }
  void u64(std::uint64_t v) { append_le(v, 8); }
  /// u32 byte length followed by the raw bytes.
  void str(std::string_view v);
  /// Raw bytes, no length prefix.
  void raw(std::string_view v) { out_.append(v); }

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  void append_le(std::uint64_t v, int width);
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads a u32 length prefix, checks it against the remaining bytes
  /// and `max_length`, then returns the string body.
  std::string str(std::size_t max_length);

  std::size_t remaining() const { return data_.size() - offset_; }
  bool done() const { return remaining() == 0; }
  /// Throws InvalidArgument unless every byte has been consumed —
  /// trailing garbage in a fixed-layout payload is a malformed frame.
  void expect_done(std::string_view what) const;

 private:
  std::uint64_t read_le(int width, const char* what);

  std::string_view data_;
  std::size_t offset_ = 0;
};

}  // namespace aapc
