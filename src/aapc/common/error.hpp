// Error handling primitives shared by every aapc module.
//
// The library reports unrecoverable API misuse and malformed inputs by
// throwing `aapc::Error` (dynamic message, carries the throw site).
// Internal invariant violations use AAPC_CHECK and throw
// `aapc::InternalError`; these indicate a bug in the library itself.
//
// Following the C++ Core Guidelines (E.2, I.10) we use exceptions rather
// than error codes: scheduling and simulation are batch computations with
// no hot-path error propagation.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aapc {

/// Base class for all errors thrown by the aapc library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed user input (bad topology file, invalid parameter, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A violated internal invariant; indicates a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message);
}  // namespace detail

}  // namespace aapc

/// Verify a library-internal invariant; throws aapc::InternalError with
/// file/line context when `expr` is false. Always enabled (the scheduling
/// pipeline is not hot enough to justify an NDEBUG variant silently
/// skipping invariants).
#define AAPC_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::aapc::detail::throw_check_failure("internal check", #expr, __FILE__, \
                                          __LINE__, "");                     \
    }                                                                        \
  } while (0)

/// Like AAPC_CHECK but with a streamed message:
///   AAPC_CHECK_MSG(a == b, "phase " << p << " mismatched");
#define AAPC_CHECK_MSG(expr, stream_expr)                                    \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream aapc_check_os_;                                     \
      aapc_check_os_ << stream_expr;                                         \
      ::aapc::detail::throw_check_failure("internal check", #expr, __FILE__, \
                                          __LINE__, aapc_check_os_.str());   \
    }                                                                        \
  } while (0)

/// Validate a user-supplied argument; throws aapc::InvalidArgument.
#define AAPC_REQUIRE(expr, stream_expr)                          \
  do {                                                           \
    if (!(expr)) {                                               \
      std::ostringstream aapc_req_os_;                           \
      aapc_req_os_ << stream_expr;                               \
      throw ::aapc::InvalidArgument(aapc_req_os_.str());         \
    }                                                            \
  } while (0)
