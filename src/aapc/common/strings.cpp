#include "aapc/common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <system_error>

#include "aapc/common/error.hpp"

namespace aapc {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(text.substr(start, i - start));
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::uint64_t parse_u64(std::string_view text) {
  const std::string_view body = trim(text);
  AAPC_REQUIRE(!body.empty(), "expected integer, got empty string");
  std::uint64_t value = 0;
  for (char c : body) {
    AAPC_REQUIRE(c >= '0' && c <= '9',
                 "expected integer, got '" << std::string(text) << "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::uint64_t parse_size(std::string_view text) {
  std::string_view body = trim(text);
  AAPC_REQUIRE(!body.empty(), "expected size, got empty string");
  std::uint64_t multiplier = 1;
  const char last = body.back();
  if (last == 'K' || last == 'k') {
    multiplier = 1024;
    body.remove_suffix(1);
  } else if (last == 'M' || last == 'm') {
    multiplier = 1024ull * 1024;
    body.remove_suffix(1);
  } else if (last == 'G' || last == 'g') {
    multiplier = 1024ull * 1024 * 1024;
    body.remove_suffix(1);
  } else if (last == 'B' || last == 'b') {
    body.remove_suffix(1);
  }
  return parse_u64(body) * multiplier;
}

std::string format_size(std::uint64_t bytes) {
  constexpr std::uint64_t kKi = 1024;
  constexpr std::uint64_t kMi = kKi * 1024;
  constexpr std::uint64_t kGi = kMi * 1024;
  if (bytes >= kGi && bytes % kGi == 0) return str_cat(bytes / kGi, "G");
  if (bytes >= kMi && bytes % kMi == 0) return str_cat(bytes / kMi, "M");
  if (bytes >= kKi && bytes % kKi == 0) return str_cat(bytes / kKi, "K");
  return str_cat(bytes);
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string format_double_roundtrip(double value) {
  char buffer[64];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

ParsedNumber parse_json_number(std::string_view text) {
  ParsedNumber parsed;
  std::size_t i = 0;
  auto digits = [&] {
    const std::size_t start = i;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i;
    return i > start;
  };
  if (i < text.size() && text[i] == '-') ++i;
  if (!digits()) return parsed;  // length 0: not a number
  if (i < text.size() && text[i] == '.') {
    ++i;
    if (!digits()) return parsed;
  }
  if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
    const std::size_t mark = i;
    ++i;
    if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
    if (!digits()) i = mark;  // "1e" / "1e+": the exponent is not part
                              // of the token; stop after the mantissa
  }
  const std::from_chars_result result =
      std::from_chars(text.data(), text.data() + i, parsed.value);
  // The scan above is exactly the from_chars grammar, so the full token
  // parses unless its value does not fit a double.
  parsed.out_of_range = result.ec == std::errc::result_out_of_range;
  parsed.length = i;
  return parsed;
}

}  // namespace aapc
