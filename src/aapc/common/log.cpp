#include "aapc/common/log.hpp"

#include <cstdio>
#include <mutex>

namespace aapc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// Serializes emission and sink swaps. A plain function-local static
// mutex (no std::function, no destructor ordering hazards).
std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

LogSink g_sink = nullptr;  // guarded by emit_mutex()
void* g_sink_user = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void set_log_sink(LogSink sink, void* user) {
  const std::lock_guard<std::mutex> lock(emit_mutex());
  g_sink = sink;
  g_sink_user = user;
}

namespace detail {

void log_emit(LogLevel level, const char* file, int line,
              const std::string& message) {
  // Trim the path to the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  // Format the complete line before taking the lock, then write it in
  // one call so concurrent loggers cannot interleave fragments.
  std::ostringstream os;
  os << "[aapc ";
  os << level_name(level);
  for (std::size_t pad = std::string(level_name(level)).size(); pad < 5; ++pad)
    os << ' ';
  os << ' ' << base << ':' << line << "] " << message << '\n';
  const std::string full = os.str();
  const std::lock_guard<std::mutex> lock(emit_mutex());
  if (g_sink != nullptr) {
    g_sink(full, g_sink_user);
  } else {
    std::fwrite(full.data(), 1, full.size(), stderr);
  }
}

}  // namespace detail
}  // namespace aapc
