#include "aapc/common/log.hpp"

#include <cstdio>

namespace aapc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const char* file, int line,
              const std::string& message) {
  // Trim the path to the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[aapc %-5s %s:%d] %s\n", level_name(level), base, line,
               message.c_str());
}

}  // namespace detail
}  // namespace aapc
