// Deterministic pseudo-random number generation for tests, topology
// generators, and workload sweeps.
//
// We use xoshiro256** seeded via splitmix64. Determinism matters: every
// randomized property test and every generated topology must be exactly
// reproducible from its seed across platforms, which rules out
// std::default_random_engine (implementation-defined) and the standard
// distributions (unspecified algorithms). The uniform-int/real mappings
// below are therefore hand-rolled and stable.
#pragma once

#include <cstdint>
#include <vector>

namespace aapc {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded with splitmix64 as the authors recommend.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability `p` (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace aapc
