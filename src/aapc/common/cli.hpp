// Tiny command-line flag parser for examples and benchmark drivers.
// Supports --name=value, --name value, and boolean --name forms, plus
// positional arguments. Unknown flags are an error so typos surface.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace aapc {

class CliParser {
 public:
  /// `usage` is printed by `help_text()` ahead of the flag list.
  explicit CliParser(std::string usage);

  /// Declare flags before parse(). `doc` appears in help_text().
  void add_flag(const std::string& name, const std::string& doc,
                std::optional<std::string> default_value = std::nullopt);

  /// Parse argv; throws InvalidArgument on unknown flags or missing
  /// values. Returns false if --help was requested (help already built).
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::string get_or(const std::string& name,
                     const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  std::string help_text() const;

 private:
  struct FlagSpec {
    std::string doc;
    std::optional<std::string> default_value;
  };

  std::string usage_;
  std::map<std::string, FlagSpec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace aapc
