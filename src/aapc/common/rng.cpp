#include "aapc/common/rng.hpp"

#include "aapc/common/error.hpp"

namespace aapc {

namespace {
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  AAPC_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased range reduction.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  AAPC_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 uniform mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace aapc
