// Units used throughout the simulator and harness.
//
// Simulated time is a double in seconds (fluid-flow events are sparse and
// well above femtosecond resolution, so double precision is ample).
// Bandwidth is bytes per second; the paper quotes link speeds in Mbps
// (decimal megabits, Ethernet convention) and message sizes in binary
// KB/KiB, so conversion helpers live here to keep call sites honest.
#pragma once

#include <cstdint>

namespace aapc {

/// Simulated time in seconds.
using SimTime = double;

/// Bytes, message and buffer sizes.
using Bytes = std::uint64_t;

constexpr Bytes operator"" _KiB(unsigned long long v) { return v * 1024ull; }
constexpr Bytes operator"" _MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}

/// Decimal megabits/second -> bytes/second (Ethernet link-speed
/// convention: 100 Mbps = 100e6 bits/s).
constexpr double mbps_to_bytes_per_sec(double mbps) {
  return mbps * 1e6 / 8.0;
}

/// Bytes/second -> decimal megabits/second.
constexpr double bytes_per_sec_to_mbps(double bytes_per_sec) {
  return bytes_per_sec * 8.0 / 1e6;
}

constexpr SimTime microseconds(double us) { return us * 1e-6; }
constexpr SimTime milliseconds(double ms) { return ms * 1e-3; }

constexpr double to_milliseconds(SimTime t) { return t * 1e3; }
constexpr double to_microseconds(SimTime t) { return t * 1e6; }

}  // namespace aapc
