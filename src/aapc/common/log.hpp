// Minimal leveled logger.
//
// Logging in this library is diagnostic only (schedule construction
// traces, simulator event dumps); nothing on a performance-critical path
// logs unconditionally. The level is a process-global atomic so tests and
// examples can turn tracing on without threading a logger object through
// every API.
//
// Emission is thread-safe: each message is formatted into one complete
// line off-lock, then written under a process-global mutex in a single
// call, so concurrent loggers (the service compiler pool) never
// interleave partial lines.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace aapc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Process-global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when a message at `level` would be emitted.
bool log_enabled(LogLevel level);

/// Receives one fully formatted, newline-terminated log line. Called
/// under the logger's emission mutex (serialized; keep it cheap).
using LogSink = void (*)(const std::string& line, void* user);

/// Redirects emission to `sink` (tests capturing output, embedders
/// forwarding into their own logging). Passing nullptr restores the
/// default stderr sink. Thread-safe.
void set_log_sink(LogSink sink, void* user);

namespace detail {
void log_emit(LogLevel level, const char* file, int line,
              const std::string& message);
}  // namespace detail

}  // namespace aapc

#define AAPC_LOG(level, stream_expr)                                    \
  do {                                                                  \
    if (::aapc::log_enabled(level)) {                                   \
      std::ostringstream aapc_log_os_;                                  \
      aapc_log_os_ << stream_expr;                                      \
      ::aapc::detail::log_emit(level, __FILE__, __LINE__,               \
                               aapc_log_os_.str());                     \
    }                                                                   \
  } while (0)

#define AAPC_TRACE(stream_expr) AAPC_LOG(::aapc::LogLevel::kTrace, stream_expr)
#define AAPC_DEBUG(stream_expr) AAPC_LOG(::aapc::LogLevel::kDebug, stream_expr)
#define AAPC_INFO(stream_expr) AAPC_LOG(::aapc::LogLevel::kInfo, stream_expr)
#define AAPC_WARN(stream_expr) AAPC_LOG(::aapc::LogLevel::kWarn, stream_expr)
#define AAPC_ERROR(stream_expr) AAPC_LOG(::aapc::LogLevel::kError, stream_expr)
