#include "aapc/common/bytes.hpp"

#include "aapc/common/error.hpp"

namespace aapc {

void ByteWriter::append_le(std::uint64_t v, int width) {
  for (int i = 0; i < width; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::str(std::string_view v) {
  AAPC_REQUIRE(v.size() <= UINT32_MAX,
               "string of " << v.size() << " bytes exceeds the u32 "
                            << "length prefix");
  u32(static_cast<std::uint32_t>(v.size()));
  out_.append(v);
}

std::uint64_t ByteReader::read_le(int width, const char* what) {
  AAPC_REQUIRE(remaining() >= static_cast<std::size_t>(width),
               "truncated input: " << what << " needs " << width
                                   << " bytes, " << remaining() << " left");
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += static_cast<std::size_t>(width);
  return v;
}

std::uint8_t ByteReader::u8() {
  return static_cast<std::uint8_t>(read_le(1, "u8"));
}
std::uint16_t ByteReader::u16() {
  return static_cast<std::uint16_t>(read_le(2, "u16"));
}
std::uint32_t ByteReader::u32() {
  return static_cast<std::uint32_t>(read_le(4, "u32"));
}
std::uint64_t ByteReader::u64() { return read_le(8, "u64"); }

std::string ByteReader::str(std::size_t max_length) {
  const std::uint32_t length = u32();
  AAPC_REQUIRE(length <= max_length,
               "declared string length " << length << " exceeds the limit "
                                         << max_length);
  AAPC_REQUIRE(length <= remaining(),
               "truncated input: string declares " << length << " bytes, "
                                                   << remaining() << " left");
  std::string body(data_.substr(offset_, length));
  offset_ += length;
  return body;
}

void ByteReader::expect_done(std::string_view what) const {
  AAPC_REQUIRE(done(), remaining() << " trailing bytes after " << what);
}

}  // namespace aapc
