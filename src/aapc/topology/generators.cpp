#include "aapc/topology/generators.hpp"

#include <algorithm>
#include <utility>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc::topology {

Topology make_single_switch(std::int32_t machines) {
  AAPC_REQUIRE(machines >= 1, "need at least one machine");
  Topology topo;
  const NodeId sw = topo.add_switch("s0");
  for (std::int32_t i = 0; i < machines; ++i) {
    const NodeId m = topo.add_machine(str_cat("n", i));
    topo.add_link(m, sw);
  }
  topo.finalize();
  return topo;
}

Topology make_star(const std::vector<std::int32_t>& machines_per_switch) {
  AAPC_REQUIRE(!machines_per_switch.empty(), "need at least one switch");
  Topology topo;
  std::vector<NodeId> switches;
  switches.reserve(machines_per_switch.size());
  for (std::size_t i = 0; i < machines_per_switch.size(); ++i) {
    switches.push_back(topo.add_switch(str_cat("s", i)));
    if (i > 0) topo.add_link(switches[0], switches[i]);
  }
  std::int32_t machine = 0;
  for (std::size_t i = 0; i < machines_per_switch.size(); ++i) {
    AAPC_REQUIRE(machines_per_switch[i] >= 0, "negative machine count");
    for (std::int32_t j = 0; j < machines_per_switch[i]; ++j) {
      const NodeId m = topo.add_machine(str_cat("n", machine++));
      topo.add_link(m, switches[i]);
    }
  }
  topo.finalize();
  return topo;
}

Topology make_chain(const std::vector<std::int32_t>& machines_per_switch) {
  AAPC_REQUIRE(!machines_per_switch.empty(), "need at least one switch");
  Topology topo;
  std::vector<NodeId> switches;
  switches.reserve(machines_per_switch.size());
  for (std::size_t i = 0; i < machines_per_switch.size(); ++i) {
    switches.push_back(topo.add_switch(str_cat("s", i)));
    if (i > 0) topo.add_link(switches[i - 1], switches[i]);
  }
  std::int32_t machine = 0;
  for (std::size_t i = 0; i < machines_per_switch.size(); ++i) {
    AAPC_REQUIRE(machines_per_switch[i] >= 0, "negative machine count");
    for (std::int32_t j = 0; j < machines_per_switch[i]; ++j) {
      const NodeId m = topo.add_machine(str_cat("n", machine++));
      topo.add_link(m, switches[i]);
    }
  }
  topo.finalize();
  return topo;
}

Topology make_paper_topology_a() { return make_single_switch(24); }

Topology make_paper_topology_b() { return make_star({8, 8, 8, 8}); }

Topology make_paper_topology_c() { return make_chain({8, 8, 8, 8}); }

Topology make_paper_figure1() {
  // Figure 1's worked example: root switch s1 with subtrees
  //   ts0 = {n0, n1, n2}  (n0, n1 on s0; n2 one level deeper on s2),
  //   ts3 = {n3, n4},
  //   tn5 = {n5}          (a machine attached directly to the root).
  // The figure's exact placement of s2 is ambiguous in the scanned
  // text; we hang it under s0 so the example keeps all four switches,
  // keeps path(n0, n3) = {(n0,s0),(s0,s1),(s1,s3),(s3,n3)} as stated in
  // §3, and keeps the subtree machine counts {3, 2, 1} used throughout
  // §4's worked example.
  Topology topo;
  const NodeId s0 = topo.add_switch("s0");
  const NodeId s1 = topo.add_switch("s1");
  const NodeId s2 = topo.add_switch("s2");
  const NodeId s3 = topo.add_switch("s3");
  topo.add_link(s0, s1);
  topo.add_link(s0, s2);
  topo.add_link(s1, s3);
  const NodeId n0 = topo.add_machine("n0");
  const NodeId n1 = topo.add_machine("n1");
  const NodeId n2 = topo.add_machine("n2");
  const NodeId n3 = topo.add_machine("n3");
  const NodeId n4 = topo.add_machine("n4");
  const NodeId n5 = topo.add_machine("n5");
  topo.add_link(n0, s0);
  topo.add_link(n1, s0);
  topo.add_link(n2, s2);
  topo.add_link(n3, s3);
  topo.add_link(n4, s3);
  topo.add_link(n5, s1);
  topo.finalize();
  return topo;
}

Topology make_binary_tree(std::int32_t depth,
                          std::int32_t machines_per_leaf) {
  AAPC_REQUIRE(depth >= 1, "depth >= 1");
  AAPC_REQUIRE(machines_per_leaf >= 1, "machines_per_leaf >= 1");
  Topology topo;
  std::vector<NodeId> level{topo.add_switch("s0")};
  std::int32_t next_switch = 1;
  for (std::int32_t d = 1; d < depth; ++d) {
    std::vector<NodeId> next_level;
    for (const NodeId parent : level) {
      for (int child = 0; child < 2; ++child) {
        const NodeId sw = topo.add_switch(str_cat("s", next_switch++));
        topo.add_link(parent, sw);
        next_level.push_back(sw);
      }
    }
    level = std::move(next_level);
  }
  std::int32_t machine = 0;
  for (const NodeId leaf : level) {
    for (std::int32_t i = 0; i < machines_per_leaf; ++i) {
      const NodeId m = topo.add_machine(str_cat("n", machine++));
      topo.add_link(m, leaf);
    }
  }
  topo.finalize();
  return topo;
}

Topology make_random_tree(Rng& rng, const RandomTreeOptions& options) {
  AAPC_REQUIRE(options.switches >= 1, "need at least one switch");
  AAPC_REQUIRE(options.machines >= 1, "need at least one machine");
  AAPC_REQUIRE(options.max_switch_degree >= 1, "max_switch_degree >= 1");

  Topology topo;
  std::vector<NodeId> switches;
  std::vector<std::int32_t> switch_children;  // switch-to-switch fanout
  switches.push_back(topo.add_switch());
  switch_children.push_back(0);
  // Attach each new switch to a uniformly random existing switch whose
  // fanout is below the cap (random recursive tree, bounded degree).
  for (std::int32_t i = 1; i < options.switches; ++i) {
    std::vector<std::size_t> eligible;
    for (std::size_t j = 0; j < switches.size(); ++j) {
      if (switch_children[j] < options.max_switch_degree) eligible.push_back(j);
    }
    // The cap can exclude everyone only if max_switch_degree is tiny and
    // the tree saturated; fall back to any switch to stay well-formed.
    const std::size_t parent_index =
        eligible.empty()
            ? static_cast<std::size_t>(rng.next_below(switches.size()))
            : eligible[rng.next_below(eligible.size())];
    const NodeId sw = topo.add_switch();
    topo.add_link(switches[parent_index], sw);
    switch_children[parent_index] += 1;
    switches.push_back(sw);
    switch_children.push_back(0);
  }

  // Distribute machines: honor the per-switch minimum, then place the
  // remainder uniformly at random.
  std::vector<std::int32_t> machine_count(switches.size(), 0);
  std::int32_t placed = 0;
  for (std::size_t j = 0; j < switches.size() && placed < options.machines;
       ++j) {
    const std::int32_t take = std::min(options.min_machines_per_switch,
                                       options.machines - placed);
    machine_count[j] += take;
    placed += take;
  }
  while (placed < options.machines) {
    machine_count[rng.next_below(switches.size())] += 1;
    ++placed;
  }
  std::int32_t machine = 0;
  for (std::size_t j = 0; j < switches.size(); ++j) {
    for (std::int32_t c = 0; c < machine_count[j]; ++c) {
      const NodeId m = topo.add_machine(str_cat("n", machine++));
      topo.add_link(m, switches[j]);
    }
  }
  topo.finalize();
  return topo;
}

Topology make_switch_fabric(const std::vector<std::int32_t>& fanout,
                            std::int32_t machines_per_leaf) {
  AAPC_REQUIRE(machines_per_leaf >= 1, "machines_per_leaf >= 1");
  for (const std::int32_t f : fanout) {
    AAPC_REQUIRE(f >= 1, "every fabric level needs fanout >= 1");
  }
  Topology topo;
  std::int32_t next_switch = 0;
  std::vector<NodeId> level{topo.add_switch(str_cat("s", next_switch++))};
  for (const std::int32_t f : fanout) {
    std::vector<NodeId> next_level;
    next_level.reserve(level.size() * static_cast<std::size_t>(f));
    for (const NodeId parent : level) {
      for (std::int32_t c = 0; c < f; ++c) {
        const NodeId sw = topo.add_switch(str_cat("s", next_switch++));
        topo.add_link(parent, sw);
        next_level.push_back(sw);
      }
    }
    level = std::move(next_level);
  }
  std::int32_t machine = 0;
  for (const NodeId leaf : level) {
    for (std::int32_t i = 0; i < machines_per_leaf; ++i) {
      const NodeId m = topo.add_machine(str_cat("n", machine++));
      topo.add_link(m, leaf);
    }
  }
  topo.finalize();
  return topo;
}

Topology make_fat_tree(std::int32_t pods, std::int32_t edges_per_pod,
                       std::int32_t hosts_per_edge) {
  AAPC_REQUIRE(pods >= 1, "pods >= 1");
  AAPC_REQUIRE(edges_per_pod >= 1, "edges_per_pod >= 1");
  return make_switch_fabric({pods, edges_per_pod}, hosts_per_edge);
}

Topology make_random_lan(Rng& rng, const RandomLanOptions& options) {
  AAPC_REQUIRE(options.switches >= 1, "need at least one switch");
  AAPC_REQUIRE(options.machines >= 1, "need at least one machine");
  AAPC_REQUIRE(options.max_switch_degree >= 1, "max_switch_degree >= 1");
  AAPC_REQUIRE(options.dense_switch_percent >= 0 &&
                   options.dense_switch_percent <= 100,
               "dense_switch_percent in [0, 100]");
  AAPC_REQUIRE(options.dense_machine_percent >= 0 &&
                   options.dense_machine_percent <= 100,
               "dense_machine_percent in [0, 100]");

  Topology topo;
  std::vector<NodeId> switches;
  std::vector<std::int32_t> switch_children;
  switches.reserve(static_cast<std::size_t>(options.switches));
  switches.push_back(topo.add_switch());
  switch_children.push_back(0);
  for (std::int32_t i = 1; i < options.switches; ++i) {
    // Same bounded-degree recursive tree as make_random_tree, but the
    // eligible scan would be quadratic at thousands of switches, so
    // retry-sample instead and fall back to a linear scan only when the
    // tree is nearly saturated.
    std::size_t parent_index = switches.size();
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto candidate =
          static_cast<std::size_t>(rng.next_below(switches.size()));
      if (switch_children[candidate] < options.max_switch_degree) {
        parent_index = candidate;
        break;
      }
    }
    if (parent_index == switches.size()) {
      for (std::size_t j = 0; j < switches.size(); ++j) {
        if (switch_children[j] < options.max_switch_degree) {
          parent_index = j;
          break;
        }
      }
      // Fully saturated (tiny degree cap): any parent keeps the tree
      // well-formed, matching make_random_tree's fallback.
      if (parent_index == switches.size()) {
        parent_index = static_cast<std::size_t>(
            rng.next_below(switches.size()));
      }
    }
    const NodeId sw = topo.add_switch();
    topo.add_link(switches[parent_index], sw);
    switch_children[parent_index] += 1;
    switches.push_back(sw);
    switch_children.push_back(0);
  }

  // Skewed placement: a minority of "wiring closet" switches absorbs
  // most machines; the remainder scatter uniformly over all switches.
  const auto dense_count = static_cast<std::size_t>(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(switches.size()) *
             options.dense_switch_percent / 100));
  std::vector<std::size_t> dense;
  dense.reserve(dense_count);
  for (std::size_t d = 0; d < dense_count; ++d) {
    dense.push_back(static_cast<std::size_t>(rng.next_below(switches.size())));
  }
  const std::int32_t dense_machines =
      static_cast<std::int32_t>(static_cast<std::int64_t>(options.machines) *
                                options.dense_machine_percent / 100);
  std::vector<std::int32_t> machine_count(switches.size(), 0);
  for (std::int32_t p = 0; p < dense_machines; ++p) {
    machine_count[dense[rng.next_below(dense.size())]] += 1;
  }
  for (std::int32_t p = dense_machines; p < options.machines; ++p) {
    machine_count[rng.next_below(switches.size())] += 1;
  }
  std::int32_t machine = 0;
  for (std::size_t j = 0; j < switches.size(); ++j) {
    for (std::int32_t c = 0; c < machine_count[j]; ++c) {
      const NodeId m = topo.add_machine(str_cat("n", machine++));
      topo.add_link(m, switches[j]);
    }
  }
  topo.finalize();
  return topo;
}

}  // namespace aapc::topology
