#include "aapc/topology/topology.hpp"

#include <algorithm>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc::topology {

NodeId Topology::add_switch(std::string name) {
  require_not_finalized();
  const NodeId id = node_count();
  kinds_.push_back(NodeKind::kSwitch);
  names_.push_back(name.empty() ? str_cat("s", switch_count_) : std::move(name));
  adjacency_.emplace_back();
  adjacency_links_.emplace_back();
  rank_of_node_.push_back(-1);
  ++switch_count_;
  return id;
}

NodeId Topology::add_machine(std::string name) {
  require_not_finalized();
  const NodeId id = node_count();
  kinds_.push_back(NodeKind::kMachine);
  names_.push_back(name.empty() ? str_cat("n", machine_ids_.size())
                                : std::move(name));
  adjacency_.emplace_back();
  adjacency_links_.emplace_back();
  rank_of_node_.push_back(static_cast<Rank>(machine_ids_.size()));
  machine_ids_.push_back(id);
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b) {
  require_not_finalized();
  require_valid_node(a);
  require_valid_node(b);
  AAPC_REQUIRE(a != b, "self-link on node " << names_[a]);
  const LinkId id = link_count();
  link_endpoints_.emplace_back(a, b);
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  adjacency_links_[a].push_back(id);
  adjacency_links_[b].push_back(id);
  return id;
}

void Topology::finalize() {
  require_not_finalized();
  AAPC_REQUIRE(node_count() >= 1, "empty topology");
  AAPC_REQUIRE(machine_count() >= 1, "topology has no machines");
  AAPC_REQUIRE(link_count() == node_count() - 1,
               "a tree on " << node_count() << " nodes needs "
                            << node_count() - 1 << " links, got "
                            << link_count());
  for (NodeId node = 0; node < node_count(); ++node) {
    if (kinds_[node] == NodeKind::kMachine) {
      AAPC_REQUIRE(adjacency_[node].size() == 1,
                   "machine " << names_[node] << " must be a leaf with one "
                              << "link, has " << adjacency_[node].size());
    }
  }

  // Root the tree at node 0 and verify connectivity (with |E| = |V|-1,
  // connectivity implies acyclicity).
  parent_.assign(node_count(), kInvalidNode);
  parent_edge_.assign(node_count(), kInvalidEdge);
  depth_.assign(node_count(), 0);
  std::vector<NodeId> order;
  order.reserve(node_count());
  std::vector<char> seen(node_count(), 0);
  order.push_back(0);
  seen[0] = 1;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId u = order[head];
    for (const NodeId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        parent_[v] = u;
        depth_[v] = depth_[u] + 1;
        order.push_back(v);
      }
    }
  }
  AAPC_REQUIRE(order.size() == static_cast<std::size_t>(node_count()),
               "topology is disconnected ("
                   << order.size() << " of " << node_count()
                   << " nodes reachable from " << names_[0] << ")");

  // parent_edge_ from the per-node link lists (O(sum of degrees); the
  // old per-node edge_between scan over every link was O(V * E) —
  // seconds of finalize time at a few thousand nodes).
  finalized_ = true;  // edge_between below requires finalized state.
  for (NodeId v = 0; v < node_count(); ++v) {
    if (parent_[v] != kInvalidNode) {
      parent_edge_[v] = edge_between(v, parent_[v]);
    }
  }

  // Machines in each rooted subtree (processed leaf-up via reverse BFS
  // order).
  subtree_machines_.assign(node_count(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    if (kinds_[v] == NodeKind::kMachine) subtree_machines_[v] += 1;
    if (parent_[v] != kInvalidNode) {
      subtree_machines_[parent_[v]] += subtree_machines_[v];
    }
  }

  // Euler intervals via iterative DFS: tour_in_ in preorder, tour_out_
  // when a node's subtree closes. Enables O(1) ancestor tests.
  tour_in_.assign(node_count(), 0);
  tour_out_.assign(node_count(), 0);
  std::int32_t clock = 0;
  std::vector<std::pair<NodeId, std::size_t>> dfs;  // (node, next child)
  dfs.emplace_back(0, 0);
  tour_in_[0] = clock++;
  while (!dfs.empty()) {
    const NodeId u = dfs.back().first;
    std::size_t next = dfs.back().second;
    const auto& adj = adjacency_[u];
    NodeId child = kInvalidNode;
    while (next < adj.size()) {
      const NodeId v = adj[next++];
      if (v != parent_[u]) {
        child = v;
        break;
      }
    }
    dfs.back().second = next;
    if (child != kInvalidNode) {
      tour_in_[child] = clock++;
      dfs.emplace_back(child, 0);
    } else {
      tour_out_[u] = clock;
      dfs.pop_back();
    }
  }

  name_index_.reserve(names_.size());
  for (NodeId v = 0; v < node_count(); ++v) {
    name_index_.emplace(names_[v], v);
  }
}

NodeKind Topology::kind(NodeId node) const {
  require_valid_node(node);
  return kinds_[node];
}

const std::string& Topology::name(NodeId node) const {
  require_valid_node(node);
  return names_[node];
}

std::optional<NodeId> Topology::find_node(const std::string& name) const {
  if (finalized_) {
    const auto it = name_index_.find(name);
    if (it == name_index_.end()) return std::nullopt;
    return it->second;
  }
  for (NodeId node = 0; node < node_count(); ++node) {
    if (names_[node] == name) return node;
  }
  return std::nullopt;
}

NodeId Topology::machine_node(Rank rank) const {
  AAPC_REQUIRE(rank >= 0 && rank < machine_count(),
               "rank " << rank << " out of range [0," << machine_count()
                       << ")");
  return machine_ids_[rank];
}

Rank Topology::rank_of(NodeId machine) const {
  require_valid_node(machine);
  AAPC_REQUIRE(kinds_[machine] == NodeKind::kMachine,
               names_[machine] << " is not a machine");
  return rank_of_node_[machine];
}

const std::vector<NodeId>& Topology::neighbors(NodeId node) const {
  require_valid_node(node);
  return adjacency_[node];
}

std::pair<NodeId, NodeId> Topology::link_endpoints(LinkId link) const {
  AAPC_REQUIRE(link >= 0 && link < link_count(), "bad link id " << link);
  return link_endpoints_[link];
}

EdgeId Topology::edge_between(NodeId from, NodeId to) const {
  require_valid_node(from);
  require_valid_node(to);
  // O(degree(from)) via the per-node link lists; the old scan over every
  // link made finalize()'s parent_edge_ pass O(V * E).
  const auto& adj = adjacency_[from];
  const auto& links = adjacency_links_[from];
  for (std::size_t i = 0; i < adj.size(); ++i) {
    if (adj[i] != to) continue;
    const LinkId link = links[i];
    return (link_endpoints_[link].first == from) ? 2 * link : 2 * link + 1;
  }
  throw InvalidArgument(str_cat("nodes ", names_[from], " and ", names_[to],
                                " are not adjacent"));
}

NodeId Topology::edge_source(EdgeId edge) const {
  AAPC_REQUIRE(edge >= 0 && edge < directed_edge_count(),
               "bad edge id " << edge);
  const auto [a, b] = link_endpoints_[edge / 2];
  return (edge % 2 == 0) ? a : b;
}

NodeId Topology::edge_target(EdgeId edge) const {
  AAPC_REQUIRE(edge >= 0 && edge < directed_edge_count(),
               "bad edge id " << edge);
  const auto [a, b] = link_endpoints_[edge / 2];
  return (edge % 2 == 0) ? b : a;
}

NodeId Topology::parent(NodeId node) const {
  require_finalized();
  require_valid_node(node);
  return parent_[node];
}

std::int32_t Topology::depth(NodeId node) const {
  require_finalized();
  require_valid_node(node);
  return depth_[node];
}

NodeId Topology::lowest_common_ancestor(NodeId u, NodeId v) const {
  require_finalized();
  require_valid_node(u);
  require_valid_node(v);
  while (u != v) {
    if (depth_[u] >= depth_[v]) {
      u = parent_[u];
    } else {
      v = parent_[v];
    }
  }
  return u;
}

std::vector<EdgeId> Topology::path(NodeId u, NodeId v) const {
  std::vector<EdgeId> out;
  path_into(u, v, out);
  return out;
}

void Topology::path_into(NodeId u, NodeId v,
                         std::vector<EdgeId>& out) const {
  require_finalized();
  require_valid_node(u);
  require_valid_node(v);
  // Locate the LCA first so `out` can be sized exactly and filled in
  // place (no temporaries — this runs on the simulator's hot path).
  NodeId a = u;
  NodeId b = v;
  while (depth_[a] > depth_[b]) a = parent_[a];
  while (depth_[b] > depth_[a]) b = parent_[b];
  while (a != b) {
    a = parent_[a];
    b = parent_[b];
  }
  const auto up = static_cast<std::size_t>(depth_[u] - depth_[a]);
  const auto down = static_cast<std::size_t>(depth_[v] - depth_[a]);
  out.resize(up + down);
  a = u;
  for (std::size_t i = 0; i < up; ++i) {
    out[i] = parent_edge_[a];
    a = parent_[a];
  }
  b = v;
  for (std::size_t i = 0; i < down; ++i) {
    out[up + down - 1 - i] = reverse(parent_edge_[b]);
    b = parent_[b];
  }
}

std::int32_t Topology::path_length(NodeId u, NodeId v) const {
  const NodeId lca = lowest_common_ancestor(u, v);
  return (depth_[u] - depth_[lca]) + (depth_[v] - depth_[lca]);
}

bool Topology::paths_share_edge(NodeId u1, NodeId v1, NodeId u2,
                                NodeId v2) const {
  const std::vector<EdgeId> p1 = path(u1, v1);
  const std::vector<EdgeId> p2 = path(u2, v2);
  // Paths on small trees: quadratic scan beats building hash sets.
  for (const EdgeId e1 : p1) {
    for (const EdgeId e2 : p2) {
      if (e1 == e2) return true;
    }
  }
  return false;
}

bool Topology::is_ancestor(NodeId ancestor, NodeId node) const {
  require_finalized();
  require_valid_node(ancestor);
  require_valid_node(node);
  return tour_in_[ancestor] <= tour_in_[node] &&
         tour_in_[node] < tour_out_[ancestor];
}

std::int32_t Topology::machines_beyond(NodeId node, NodeId neighbor) const {
  require_finalized();
  require_valid_node(node);
  require_valid_node(neighbor);
  if (parent_[neighbor] == node) return subtree_machines_[neighbor];
  AAPC_REQUIRE(parent_[node] == neighbor,
               "nodes " << names_[node] << " and " << names_[neighbor]
                        << " are not adjacent");
  return machine_count() - subtree_machines_[node];
}

std::int32_t Topology::machines_on_side(LinkId link, NodeId side) const {
  require_finalized();
  AAPC_REQUIRE(link >= 0 && link < link_count(), "bad link id " << link);
  require_valid_node(side);
  const auto [a, b] = link_endpoints_[link];
  // The child endpoint under the internal rooting owns one component
  // (its rooted subtree); `side` is in it iff child is its ancestor.
  const NodeId child = (parent_[a] == b) ? a : b;
  const std::int32_t child_side = subtree_machines_[child];
  return is_ancestor(child, side) ? child_side
                                  : machine_count() - child_side;
}

std::int64_t Topology::aapc_link_load(LinkId link) const {
  require_finalized();
  const auto [a, b] = link_endpoints_[link];
  const std::int64_t near = machines_on_side(link, a);
  const std::int64_t far = machine_count() - near;
  return near * far;
}

std::int64_t Topology::aapc_load() const {
  require_finalized();
  AAPC_REQUIRE(machine_count() >= 2, "AAPC needs at least two machines");
  std::int64_t best = 0;
  for (LinkId link = 0; link < link_count(); ++link) {
    best = std::max(best, aapc_link_load(link));
  }
  return best;
}

LinkId Topology::bottleneck_link() const {
  require_finalized();
  const std::int64_t load = aapc_load();
  for (LinkId link = 0; link < link_count(); ++link) {
    if (aapc_link_load(link) == load) return link;
  }
  throw InternalError("no bottleneck link found");
}

double Topology::peak_aggregate_throughput(
    double link_bandwidth_bytes_per_sec) const {
  const auto m = static_cast<double>(machine_count());
  return m * (m - 1.0) * link_bandwidth_bytes_per_sec /
         static_cast<double>(aapc_load());
}

void Topology::require_finalized() const {
  AAPC_REQUIRE(finalized_, "topology must be finalized before queries");
}

void Topology::require_not_finalized() const {
  AAPC_REQUIRE(!finalized_, "topology is finalized and immutable");
}

void Topology::require_valid_node(NodeId node) const {
  AAPC_REQUIRE(node >= 0 && node < node_count(), "bad node id " << node);
}

}  // namespace aapc::topology
