// Network model from §3 of the paper: an Ethernet switched cluster is a
// tree G = (S ∪ M, E) whose internal structure is switches (S) and whose
// machines (M) are leaves; every physical link is a pair of directed
// edges (duplex operation).
//
// `Topology` is immutable after `finalize()`: all path/load queries are
// precomputed or O(path length). Machines are also addressable by *rank*
// (0..|M|-1, the MPI process numbering) independent of node ids.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "aapc/common/units.hpp"

namespace aapc::topology {

/// Index of a node (switch or machine) within a Topology.
using NodeId = std::int32_t;
/// Index of a *directed* edge. A physical link L between stored endpoints
/// (a, b) yields directed edges 2L (a→b) and 2L+1 (b→a).
using EdgeId = std::int32_t;
/// Index of a physical (undirected) link.
using LinkId = std::int32_t;
/// MPI-style machine rank in [0, |M|).
using Rank = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

enum class NodeKind : std::uint8_t { kSwitch, kMachine };

/// A tree-shaped switched-Ethernet network.
///
/// Build protocol: add_switch / add_machine / add_link in any order, then
/// finalize(). finalize() validates the tree invariants (connected,
/// acyclic, machines are leaves) and precomputes rooted structure for
/// path queries. All query methods require a finalized topology.
class Topology {
 public:
  Topology() = default;

  // ---- construction ----

  /// Adds a switch node. `name` is for diagnostics and serialization;
  /// empty means auto-name ("s<i>").
  NodeId add_switch(std::string name = {});

  /// Adds a machine node. Machines receive ranks in insertion order.
  NodeId add_machine(std::string name = {});

  /// Adds a duplex physical link between two existing nodes.
  LinkId add_link(NodeId a, NodeId b);

  /// Validates tree invariants and freezes the topology. Throws
  /// InvalidArgument when the graph is not a machine-leaf tree.
  void finalize();

  bool finalized() const { return finalized_; }

  // ---- basic queries ----

  std::int32_t node_count() const {
    return static_cast<std::int32_t>(kinds_.size());
  }
  std::int32_t switch_count() const { return switch_count_; }
  std::int32_t machine_count() const {
    return static_cast<std::int32_t>(machine_ids_.size());
  }
  std::int32_t link_count() const {
    return static_cast<std::int32_t>(link_endpoints_.size());
  }
  std::int32_t directed_edge_count() const { return 2 * link_count(); }

  NodeKind kind(NodeId node) const;
  bool is_machine(NodeId node) const {
    return kind(node) == NodeKind::kMachine;
  }
  const std::string& name(NodeId node) const;
  std::optional<NodeId> find_node(const std::string& name) const;

  /// Machines in rank order.
  const std::vector<NodeId>& machines() const { return machine_ids_; }
  NodeId machine_node(Rank rank) const;
  Rank rank_of(NodeId machine) const;

  const std::vector<NodeId>& neighbors(NodeId node) const;

  // ---- links and directed edges ----

  /// Endpoints of a physical link as stored (a, b).
  std::pair<NodeId, NodeId> link_endpoints(LinkId link) const;

  /// Directed edge from `from` to `to`; the nodes must be adjacent.
  EdgeId edge_between(NodeId from, NodeId to) const;

  NodeId edge_source(EdgeId edge) const;
  NodeId edge_target(EdgeId edge) const;
  LinkId edge_link(EdgeId edge) const { return edge / 2; }
  /// The same link traversed in the opposite direction.
  EdgeId reverse(EdgeId edge) const { return edge ^ 1; }

  // ---- tree structure / paths ----

  /// Parent of `node` in the internal rooting (root's parent is
  /// kInvalidNode). The rooting is an implementation detail; exposed for
  /// traversals that only need *some* consistent rooting.
  NodeId parent(NodeId node) const;
  std::int32_t depth(NodeId node) const;

  /// Unique tree path from u to v as directed edges (paper: path(u,v)).
  /// Empty when u == v.
  std::vector<EdgeId> path(NodeId u, NodeId v) const;

  /// Allocation-free variant of path(): resizes `out` to the path
  /// length and fills it in place (hot-path use by the simulator).
  void path_into(NodeId u, NodeId v, std::vector<EdgeId>& out) const;

  /// Number of edges on path(u, v).
  std::int32_t path_length(NodeId u, NodeId v) const;

  /// Lowest common ancestor under the internal rooting.
  NodeId lowest_common_ancestor(NodeId u, NodeId v) const;

  /// True if the unique paths u1→v1 and u2→v2 share a directed edge
  /// (the paper's definition of message contention).
  bool paths_share_edge(NodeId u1, NodeId v1, NodeId u2, NodeId v2) const;

  // ---- AAPC load analysis (§3) ----

  /// Machines in the component containing `side` after removing `link`.
  /// O(1) (Euler-interval ancestor test against the internal rooting).
  std::int32_t machines_on_side(LinkId link, NodeId side) const;

  /// Machines in the component containing `neighbor` after removing
  /// `node`; the nodes must be adjacent. O(1) via the rooted subtree
  /// counts — the workhorse of large-scale decomposition (a BFS per
  /// branch would make the §4.1 root walk quadratic on deep trees).
  std::int32_t machines_beyond(NodeId node, NodeId neighbor) const;

  /// True when `ancestor` lies on the path from `node` to the internal
  /// root (inclusive). O(1) via Euler intervals.
  bool is_ancestor(NodeId ancestor, NodeId node) const;

  /// AAPC load of a link: |Mu| × |Mv| for the two components.
  std::int64_t aapc_link_load(LinkId link) const;

  /// Load of the AAPC pattern = max link load (§3). Requires |M| >= 2.
  std::int64_t aapc_load() const;

  /// Some link achieving aapc_load().
  LinkId bottleneck_link() const;

  /// Peak aggregate AAPC throughput bound (§3, in bytes/sec):
  ///   |M| × (|M|−1) × B / aapc_load()
  /// where B is the uniform link bandwidth in bytes/sec.
  double peak_aggregate_throughput(double link_bandwidth_bytes_per_sec) const;

 private:
  void require_finalized() const;
  void require_not_finalized() const;
  void require_valid_node(NodeId node) const;

  std::vector<NodeKind> kinds_;
  std::vector<std::string> names_;
  std::vector<std::vector<NodeId>> adjacency_;
  /// adjacency_links_[n][i] is the link to adjacency_[n][i] (same
  /// shape), so edge_between is O(degree) instead of O(links).
  std::vector<std::vector<LinkId>> adjacency_links_;
  std::vector<std::pair<NodeId, NodeId>> link_endpoints_;
  std::vector<NodeId> machine_ids_;         // rank -> node
  std::vector<Rank> rank_of_node_;          // node -> rank or -1
  std::int32_t switch_count_ = 0;

  // Populated by finalize().
  bool finalized_ = false;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;         // edge node -> parent
  std::vector<std::int32_t> depth_;
  std::vector<std::int32_t> subtree_machines_;  // under internal rooting
  /// Euler-tour entry/exit indices: u is an ancestor of v iff
  /// tour_in_[u] <= tour_in_[v] < tour_out_[u]. Makes the per-link
  /// component queries O(1) (they were O(depth) ancestor walks, which
  /// turned aapc_load into O(links * depth) — quadratic on chains).
  std::vector<std::int32_t> tour_in_;
  std::vector<std::int32_t> tour_out_;
  std::unordered_map<std::string, NodeId> name_index_;
};

}  // namespace aapc::topology
