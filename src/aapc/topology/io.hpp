// Text serialization of topologies — the input format of the automatic
// routine generator (§5: "takes the topology information as input").
//
// Format (one directive per line, '#' starts a comment):
//   switch  <name>
//   machine <name> [<attached-switch>]
//   link    <name-a> <name-b>
//
// `machine n0 s0` is shorthand for `machine n0` + `link n0 s0`.
// Machines are ranked in file order.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "aapc/topology/topology.hpp"

namespace aapc::topology {

/// Parse a topology description; throws InvalidArgument with a line
/// number on malformed input. The result is finalized.
Topology parse_topology(std::string_view text);

/// Read and parse a .topo file from disk.
Topology load_topology_file(const std::string& path);

/// Serialize in the format accepted by parse_topology (round-trips).
std::string serialize_topology(const Topology& topo);

/// Human-oriented summary: node counts, per-link AAPC loads, bottleneck,
/// peak throughput at the given bandwidth.
std::string describe_topology(const Topology& topo,
                              double link_bandwidth_bytes_per_sec);

/// Graphviz DOT rendering (undirected): switches as boxes, machines as
/// ellipses, links labelled with their AAPC load, the bottleneck link
/// drawn bold. Render with `dot -Tsvg cluster.dot -o cluster.svg`.
std::string to_dot(const Topology& topo);

}  // namespace aapc::topology
