// Topology generators: the paper's experimental topologies (Figure 5)
// plus parameterized families (single switch, star-of-switches, chains,
// binary-ish random trees) used by tests and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/common/rng.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::topology {

/// One switch with `machines` machines attached (paper topology (a) uses
/// machines = 24).
Topology make_single_switch(std::int32_t machines);

/// A hub switch s0 with `machines_per_switch[0]` machines, plus one leaf
/// switch per further entry, each holding that many machines. Paper
/// topology (b) is make_star({8, 8, 8, 8}).
Topology make_star(const std::vector<std::int32_t>& machines_per_switch);

/// A chain of switches s0 — s1 — ... with machines_per_switch[i] machines
/// on switch i. Paper topology (c) is make_chain({8, 8, 8, 8}).
Topology make_chain(const std::vector<std::int32_t>& machines_per_switch);

/// The 24-node single-switch cluster from Figure 5(a).
Topology make_paper_topology_a();

/// The 32-node, 4-switch star from Figure 5(b): S0 holds n0..n7 and
/// connects to S1, S2, S3 with 8 machines each.
Topology make_paper_topology_b();

/// The 32-node, 4-switch chain from Figure 5(c): S0—S1—S2—S3, 8 machines
/// per switch; the S1—S2 link is the bottleneck (16 × 16).
Topology make_paper_topology_c();

/// The example cluster from Figure 1 (the §4 worked example): root
/// switch s1 whose machine-bearing subtrees are ts0 = {n0,n1,n2}
/// (n2 one switch deeper, on s2 under s0), ts3 = {n3,n4}, and
/// tn5 = {n5} directly attached to the root. Subtree machine counts are
/// {3, 2, 1}, matching Figure 3 and Table 4.
Topology make_paper_figure1();

/// A complete binary tree of switches with `depth` levels (depth 1 =
/// a single switch) and `machines_per_leaf` machines on each leaf
/// switch. Exercises deep multi-hop paths.
Topology make_binary_tree(std::int32_t depth,
                          std::int32_t machines_per_leaf);

struct RandomTreeOptions {
  std::int32_t switches = 4;
  std::int32_t machines = 12;
  /// Maximum switch-children a switch may have (>= 1).
  std::int32_t max_switch_degree = 3;
  /// Every switch gets at least this many machines (may be 0).
  std::int32_t min_machines_per_switch = 0;
};

/// Random machine-leaf tree: a random tree over `switches` switches, with
/// `machines` machines distributed over them (each switch that would
/// otherwise isolate the tree is still valid: machines are leaves only).
/// Guarantees at least one machine; the result is finalized.
Topology make_random_tree(Rng& rng, const RandomTreeOptions& options);

/// Uniform multi-level switch fabric: one root switch; every switch at
/// level l (root = level 0) has fanout[l] child switches; each
/// deepest-level switch holds `machines_per_leaf` machines. An empty
/// fanout degenerates to make_single_switch. Switches are named in
/// creation (breadth-first) order; the result is finalized.
Topology make_switch_fabric(const std::vector<std::int32_t>& fanout,
                            std::int32_t machines_per_leaf);

/// The spanning-tree view of a fat-tree datacenter fabric: a core
/// switch over `pods` aggregation switches, each over `edges_per_pod`
/// edge switches, each holding `hosts_per_edge` machines (one active
/// uplink per switch, as STP would leave it). 8 x 16 x 32 = 4096 hosts.
Topology make_fat_tree(std::int32_t pods, std::int32_t edges_per_pod,
                       std::int32_t hosts_per_edge);

struct RandomLanOptions {
  std::int32_t switches = 64;
  std::int32_t machines = 1024;
  /// Maximum switch-children a switch may have (>= 1).
  std::int32_t max_switch_degree = 8;
  /// Percent of switches acting as dense wiring closets; they receive
  /// `dense_machine_percent` of the machines between them, the rest
  /// scatter uniformly (0 disables the skew).
  std::int32_t dense_switch_percent = 25;
  std::int32_t dense_machine_percent = 75;
};

/// Random campus-LAN-shaped tree at benchmark scale: a bounded-degree
/// random recursive tree of switches with a skewed machine
/// distribution (most hosts concentrate under a minority of "wiring
/// closet" switches, the remainder spread thin). Deterministic for a
/// fixed Rng state; the result is finalized.
Topology make_random_lan(Rng& rng, const RandomLanOptions& options);

}  // namespace aapc::topology
