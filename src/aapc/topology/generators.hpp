// Topology generators: the paper's experimental topologies (Figure 5)
// plus parameterized families (single switch, star-of-switches, chains,
// binary-ish random trees) used by tests and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/common/rng.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::topology {

/// One switch with `machines` machines attached (paper topology (a) uses
/// machines = 24).
Topology make_single_switch(std::int32_t machines);

/// A hub switch s0 with `machines_per_switch[0]` machines, plus one leaf
/// switch per further entry, each holding that many machines. Paper
/// topology (b) is make_star({8, 8, 8, 8}).
Topology make_star(const std::vector<std::int32_t>& machines_per_switch);

/// A chain of switches s0 — s1 — ... with machines_per_switch[i] machines
/// on switch i. Paper topology (c) is make_chain({8, 8, 8, 8}).
Topology make_chain(const std::vector<std::int32_t>& machines_per_switch);

/// The 24-node single-switch cluster from Figure 5(a).
Topology make_paper_topology_a();

/// The 32-node, 4-switch star from Figure 5(b): S0 holds n0..n7 and
/// connects to S1, S2, S3 with 8 machines each.
Topology make_paper_topology_b();

/// The 32-node, 4-switch chain from Figure 5(c): S0—S1—S2—S3, 8 machines
/// per switch; the S1—S2 link is the bottleneck (16 × 16).
Topology make_paper_topology_c();

/// The example cluster from Figure 1 (the §4 worked example): root
/// switch s1 whose machine-bearing subtrees are ts0 = {n0,n1,n2}
/// (n2 one switch deeper, on s2 under s0), ts3 = {n3,n4}, and
/// tn5 = {n5} directly attached to the root. Subtree machine counts are
/// {3, 2, 1}, matching Figure 3 and Table 4.
Topology make_paper_figure1();

/// A complete binary tree of switches with `depth` levels (depth 1 =
/// a single switch) and `machines_per_leaf` machines on each leaf
/// switch. Exercises deep multi-hop paths.
Topology make_binary_tree(std::int32_t depth,
                          std::int32_t machines_per_leaf);

struct RandomTreeOptions {
  std::int32_t switches = 4;
  std::int32_t machines = 12;
  /// Maximum switch-children a switch may have (>= 1).
  std::int32_t max_switch_degree = 3;
  /// Every switch gets at least this many machines (may be 0).
  std::int32_t min_machines_per_switch = 0;
};

/// Random machine-leaf tree: a random tree over `switches` switches, with
/// `machines` machines distributed over them (each switch that would
/// otherwise isolate the tree is still valid: machines are leaves only).
/// Guarantees at least one machine; the result is finalized.
Topology make_random_tree(Rng& rng, const RandomTreeOptions& options);

}  // namespace aapc::topology
