#include "aapc/topology/io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/units.hpp"

namespace aapc::topology {

Topology parse_topology(std::string_view text) {
  Topology topo;
  std::map<std::string, NodeId> by_name;
  struct PendingLink {
    std::string a;
    std::string b;
    int line;
  };
  std::vector<PendingLink> links;

  auto lookup = [&](const std::string& name, int line) -> NodeId {
    const auto it = by_name.find(name);
    AAPC_REQUIRE(it != by_name.end(),
                 "line " << line << ": unknown node '" << name << "'");
    return it->second;
  };

  int line_number = 0;
  for (const std::string& raw_line : split(text, '\n')) {
    ++line_number;
    std::string line = raw_line;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string> tokens = split_whitespace(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    if (directive == "switch") {
      AAPC_REQUIRE(tokens.size() == 2,
                   "line " << line_number << ": usage: switch <name>");
      AAPC_REQUIRE(by_name.count(tokens[1]) == 0,
                   "line " << line_number << ": duplicate node '" << tokens[1]
                           << "'");
      by_name[tokens[1]] = topo.add_switch(tokens[1]);
    } else if (directive == "machine") {
      AAPC_REQUIRE(tokens.size() == 2 || tokens.size() == 3,
                   "line " << line_number
                           << ": usage: machine <name> [<switch>]");
      AAPC_REQUIRE(by_name.count(tokens[1]) == 0,
                   "line " << line_number << ": duplicate node '" << tokens[1]
                           << "'");
      by_name[tokens[1]] = topo.add_machine(tokens[1]);
      if (tokens.size() == 3) {
        links.push_back({tokens[1], tokens[2], line_number});
      }
    } else if (directive == "link") {
      AAPC_REQUIRE(tokens.size() == 3,
                   "line " << line_number << ": usage: link <a> <b>");
      links.push_back({tokens[1], tokens[2], line_number});
    } else {
      throw InvalidArgument(str_cat("line ", line_number,
                                    ": unknown directive '", directive, "'"));
    }
  }
  for (const PendingLink& link : links) {
    topo.add_link(lookup(link.a, link.line), lookup(link.b, link.line));
  }
  topo.finalize();
  return topo;
}

Topology load_topology_file(const std::string& path) {
  std::ifstream in(path);
  AAPC_REQUIRE(in.good(), "cannot open topology file '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_topology(buffer.str());
}

std::string serialize_topology(const Topology& topo) {
  std::ostringstream os;
  os << "# " << topo.machine_count() << " machines, " << topo.switch_count()
     << " switches\n";
  for (NodeId node = 0; node < topo.node_count(); ++node) {
    if (!topo.is_machine(node)) {
      os << "switch " << topo.name(node) << '\n';
    }
  }
  for (const NodeId machine : topo.machines()) {
    os << "machine " << topo.name(machine) << '\n';
  }
  for (LinkId link = 0; link < topo.link_count(); ++link) {
    const auto [a, b] = topo.link_endpoints(link);
    os << "link " << topo.name(a) << ' ' << topo.name(b) << '\n';
  }
  return os.str();
}

std::string describe_topology(const Topology& topo,
                              double link_bandwidth_bytes_per_sec) {
  std::ostringstream os;
  os << "topology: " << topo.machine_count() << " machines, "
     << topo.switch_count() << " switches, " << topo.link_count()
     << " links\n";
  os << "per-link AAPC loads:\n";
  for (LinkId link = 0; link < topo.link_count(); ++link) {
    const auto [a, b] = topo.link_endpoints(link);
    os << "  (" << topo.name(a) << ", " << topo.name(b)
       << "): " << topo.aapc_link_load(link) << '\n';
  }
  const LinkId bottleneck = topo.bottleneck_link();
  const auto [a, b] = topo.link_endpoints(bottleneck);
  os << "bottleneck: (" << topo.name(a) << ", " << topo.name(b)
     << ") with load " << topo.aapc_load() << '\n';
  os << "peak aggregate AAPC throughput at "
     << format_double(
            bytes_per_sec_to_mbps(link_bandwidth_bytes_per_sec), 0)
     << " Mbps links: "
     << format_double(bytes_per_sec_to_mbps(topo.peak_aggregate_throughput(
                          link_bandwidth_bytes_per_sec)),
                      1)
     << " Mbps\n";
  return os.str();
}

std::string to_dot(const Topology& topo) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  std::ostringstream os;
  os << "graph cluster {\n  graph [rankdir=TB];\n";
  for (NodeId node = 0; node < topo.node_count(); ++node) {
    if (topo.is_machine(node)) {
      os << "  \"" << topo.name(node) << "\" [shape=ellipse];\n";
    } else {
      os << "  \"" << topo.name(node)
         << "\" [shape=box, style=filled, fillcolor=lightgray];\n";
    }
  }
  const std::int64_t bottleneck_load =
      topo.machine_count() >= 2 ? topo.aapc_load() : 0;
  for (LinkId link = 0; link < topo.link_count(); ++link) {
    const auto [a, b] = topo.link_endpoints(link);
    os << "  \"" << topo.name(a) << "\" -- \"" << topo.name(b) << "\"";
    if (topo.machine_count() >= 2) {
      const std::int64_t load = topo.aapc_link_load(link);
      os << " [label=\"" << load << "\"";
      if (load == bottleneck_load) {
        os << ", penwidth=3";
      }
      os << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace aapc::topology
