// Unified metrics layer: one thread-safe registry of named series
// (monotonic counters, gauges, fixed-bucket histograms) shared by every
// subsystem, with hot-path recording that is a single relaxed atomic
// operation — no lock is ever taken on increment/observe.
//
// Design:
//  * Registration (Registry::counter/gauge/histogram) is mutex-guarded
//    and idempotent: the same (name, labels) pair always returns the
//    same instrument, so callers resolve handles once and record
//    lock-free afterwards. Instruments live behind unique_ptr in the
//    registry, so returned references stay valid for the registry's
//    lifetime.
//  * Series identity is the metric name plus its sorted label pairs,
//    following the Prometheus data model; names and label keys are
//    validated against the Prometheus charset so the text exposition
//    (obs/exposition.hpp) is always well-formed.
//  * Reading is snapshot-based: Registry::snapshot() copies every
//    series into plain structs (RegistrySnapshot) which the exporters
//    and quantile extraction work from. Snapshots of concurrently
//    updated instruments are internally consistent per atomic word
//    (counts never go backwards) but are not a cross-series barrier.
//
// Metric-name conventions are documented in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace aapc::obs {

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

/// "counter" / "gauge" / "histogram" (the TYPE line of the text
/// exposition).
const char* metric_type_name(MetricType type);

/// Label pairs of one series, sorted by key (canonical order).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count. inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Mirrors an externally maintained monotonic total into this
  /// counter (used by subsystems that already keep their own counts,
  /// e.g. the schedule cache): the counter advances to `total` and
  /// never moves backwards, so concurrent mirrors of a monotonic
  /// source stay monotonic.
  void set_total(std::int64_t total) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (current < total && !value_.compare_exchange_weak(
                                  current, total, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A value that can go up and down (current depth, high-water mark,
/// utilization). Stored as the bit pattern of a double so set/add are
/// plain atomics without locks.
class Gauge {
 public:
  void set(double value) {
    bits_.store(to_bits(value), std::memory_order_relaxed);
  }
  void add(double delta) {
    std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(bits, to_bits(from_bits(bits) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `value` if larger (high-water marks).
  void set_max(double value) {
    std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    while (from_bits(bits) < value &&
           !bits_.compare_exchange_weak(bits, to_bits(value),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t to_bits(double value);
  static double from_bits(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};  // bit pattern of 0.0
};

/// Plain-data copy of a histogram's state; quantile extraction and the
/// exporters work from this (also what the JSON snapshot parser
/// produces, so round-tripped snapshots expose the same API).
struct HistogramSnapshot {
  /// Finite upper bounds, ascending; bucket i counts observations
  /// <= bounds[i]. One implicit +Inf bucket follows.
  std::vector<double> bounds;
  /// bounds.size() + 1 entries (last is the +Inf bucket).
  std::vector<std::int64_t> buckets;
  std::int64_t count = 0;
  double sum = 0;
  double max = 0;

  /// Quantile estimate by linear interpolation inside the owning
  /// bucket (the standard fixed-bucket estimator); observations in the
  /// +Inf bucket resolve to the recorded maximum. q in [0, 1];
  /// returns 0 on an empty histogram.
  double quantile(double q) const;
};

/// Fixed-bucket histogram. observe() is a handful of relaxed atomic
/// operations (bucket increment, count, sum, max) — no locks.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double max() const;
  /// See HistogramSnapshot::quantile.
  double quantile(double q) const { return snapshot_state().quantile(q); }
  HistogramSnapshot snapshot_state() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds_ + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
  std::atomic<std::uint64_t> max_bits_{0};
};

/// 1-2-5 decade bounds from 1 microsecond to 10 seconds — the default
/// for latency/duration histograms.
std::vector<double> default_latency_bounds();

/// One series as plain data.
struct SeriesSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  /// Counter value (counters are integral end to end).
  std::int64_t counter = 0;
  /// Gauge value.
  double gauge = 0;
  /// Histogram state (type == kHistogram only).
  HistogramSnapshot histogram;

  /// counter or gauge value as a double (histograms: the sum).
  double number() const;
};

struct RegistrySnapshot {
  /// Registration order (stable across snapshots of one registry).
  std::vector<SeriesSnapshot> series;

  /// Series by exact (name, labels); nullptr when absent.
  const SeriesSnapshot* find(std::string_view name,
                             const Labels& labels = {}) const;
  /// find()->number(); 0 when absent.
  double value(std::string_view name, const Labels& labels = {}) const;
  /// Sum of number() over every series with this name (all label sets).
  double total(std::string_view name) const;
};

/// Thread-safe instrument registry. See file comment for the
/// concurrency model.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the instrument registered under (name, labels), creating
  /// it on first use. Throws InvalidArgument on a malformed name/label
  /// or when the name is already registered with a different type (or,
  /// for histograms, different bounds).
  Counter& counter(std::string_view name, std::string_view help = "",
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = "",
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help = "",
                       std::vector<double> bounds = default_latency_bounds(),
                       Labels labels = {});

  RegistrySnapshot snapshot() const;
  std::size_t series_count() const;

 private:
  struct Series {
    std::string name;
    std::string help;
    MetricType type;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& find_or_create(std::string_view name, std::string_view help,
                         MetricType type, Labels&& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Series>> series_;
  /// (name + canonical labels) -> index in series_.
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace aapc::obs
