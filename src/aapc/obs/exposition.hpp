// Exporters for obs::RegistrySnapshot: Prometheus-style text
// exposition and a JSON snapshot (plus its parser, so snapshots can be
// round-tripped by tests and validated by CI smokes).
//
// Formats are documented in docs/OBSERVABILITY.md. Both exporters are
// locale-independent: numbers are rendered with the shortest
// round-tripping decimal form (common/strings.hpp,
// format_double_roundtrip), so an exported snapshot parses back to
// bit-identical values.
#pragma once

#include <string>
#include <string_view>

#include "aapc/obs/metrics.hpp"

namespace aapc::obs {

/// Prometheus text exposition (format version 0.0.4): one `# HELP` /
/// `# TYPE` block per metric name, one sample line per series;
/// histograms expand into cumulative `_bucket{le=...}` samples plus
/// `_sum` / `_count` (and a non-standard `_max` gauge sample, since
/// the registry tracks the exact maximum).
std::string to_prometheus_text(const RegistrySnapshot& snapshot);

/// JSON snapshot: {"metrics":[{"name":...,"type":...,...}]}. Counters
/// stay integral; histograms carry bounds, cumulative-free per-bucket
/// counts, count, sum, and max. Parse back with snapshot_from_json.
std::string to_json(const RegistrySnapshot& snapshot);

/// Strict parser for to_json output (unknown fields are rejected, so
/// format drift fails loudly). Throws InvalidArgument on malformed
/// input.
RegistrySnapshot snapshot_from_json(std::string_view json);

}  // namespace aapc::obs
