#include "aapc/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_key(std::string_view key) {
  // Like a metric name but without ':' (reserved for recording rules).
  return valid_metric_name(key) && key.find(':') == std::string_view::npos;
}

/// Canonical series key: name + 0x1f-separated sorted label pairs
/// (0x1f/0x1e cannot appear in validated names/keys, and label values
/// are length-delimited by the separators).
std::string series_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key.append(k);
    key.push_back('\x1e');
    key.append(v);
  }
  return key;
}

}  // namespace

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

std::uint64_t Gauge::to_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

double Gauge::from_bits(std::uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

double HistogramSnapshot::quantile(double q) const {
  AAPC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile " << q << " outside [0, 1]");
  if (count <= 0) return 0;
  // Rank of the target observation (1-based), then walk the cumulative
  // bucket counts to the bucket that holds it.
  const double target = std::max(1.0, q * static_cast<double>(count));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::int64_t in_bucket = buckets[i];
    if (in_bucket <= 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= bounds.size()) return max;  // +Inf bucket
      const double upper = bounds[i];
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      // Never report beyond the recorded maximum (tight single-bucket
      // populations would otherwise overestimate).
      return std::min(lower + (upper - lower) * into, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  AAPC_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    AAPC_REQUIRE(std::isfinite(bounds_[i]),
                 "histogram bucket bounds must be finite");
    AAPC_REQUIRE(i == 0 || bounds_[i - 1] < bounds_[i],
                 "histogram bucket bounds must be strictly ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current = 0;
    std::memcpy(&current, &bits, sizeof current);
    const double next = current + value;
    std::uint64_t next_bits = 0;
    std::memcpy(&next_bits, &next, sizeof next_bits);
    if (sum_bits_.compare_exchange_weak(bits, next_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
  bits = max_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current = 0;
    std::memcpy(&current, &bits, sizeof current);
    if (current >= value) break;
    std::uint64_t value_bits = 0;
    std::memcpy(&value_bits, &value, sizeof value_bits);
    if (max_bits_.compare_exchange_weak(bits, value_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double value = 0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

double Histogram::max() const {
  const std::uint64_t bits = max_bits_.load(std::memory_order_relaxed);
  double value = 0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

HistogramSnapshot Histogram::snapshot_state() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count();
  snap.sum = sum();
  snap.max = max();
  return snap;
}

std::vector<double> default_latency_bounds() {
  // Literal decades, not accumulated multiplication: 1e-6 * 10 * ... is
  // off by an ulp from the decimal literal, which would leak as
  // le="4.9999999999999996e-06" in the text exposition.
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4,
          5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
          2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0};
}

double SeriesSnapshot::number() const {
  switch (type) {
    case MetricType::kCounter: return static_cast<double>(counter);
    case MetricType::kGauge: return gauge;
    case MetricType::kHistogram: return histogram.sum;
  }
  return 0;
}

const SeriesSnapshot* RegistrySnapshot::find(std::string_view name,
                                             const Labels& labels) const {
  for (const SeriesSnapshot& s : series) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double RegistrySnapshot::value(std::string_view name,
                               const Labels& labels) const {
  const SeriesSnapshot* s = find(name, labels);
  return s != nullptr ? s->number() : 0.0;
}

double RegistrySnapshot::total(std::string_view name) const {
  double sum = 0;
  for (const SeriesSnapshot& s : series) {
    if (s.name == name) sum += s.number();
  }
  return sum;
}

// Requires mutex_ held by the caller: the instrument pointer is
// installed after this returns and must not race with snapshot().
Registry::Series& Registry::find_or_create(std::string_view name,
                                           std::string_view help,
                                           MetricType type, Labels&& labels) {
  AAPC_REQUIRE(valid_metric_name(name),
               "invalid metric name '" << name << "'");
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    AAPC_REQUIRE(valid_label_key(labels[i].first),
                 "invalid label key '" << labels[i].first << "' on metric '"
                                       << name << "'");
    AAPC_REQUIRE(i == 0 || labels[i - 1].first != labels[i].first,
                 "duplicate label key '" << labels[i].first << "' on metric '"
                                         << name << "'");
  }
  const std::string key = series_key(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Series& existing = *series_[it->second];
    AAPC_REQUIRE(existing.type == type,
                 "metric '" << name << "' already registered as "
                            << metric_type_name(existing.type));
    return existing;
  }
  // All series of one name must share a type (the exposition emits one
  // TYPE line per name).
  for (const auto& existing : series_) {
    AAPC_REQUIRE(existing->name != name || existing->type == type,
                 "metric '" << name << "' already registered as "
                            << metric_type_name(existing->type));
  }
  auto series = std::make_unique<Series>();
  series->name = std::string(name);
  series->help = std::string(help);
  series->type = type;
  series->labels = std::move(labels);
  index_.emplace(key, series_.size());
  series_.push_back(std::move(series));
  return *series_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      find_or_create(name, help, MetricType::kCounter, std::move(labels));
  if (series.counter == nullptr) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      find_or_create(name, help, MetricType::kGauge, std::move(labels));
  if (series.gauge == nullptr) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      find_or_create(name, help, MetricType::kHistogram, std::move(labels));
  if (series.histogram == nullptr) {
    series.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else {
    AAPC_REQUIRE(series.histogram->bounds() == bounds,
                 "histogram '" << name
                               << "' already registered with different "
                                  "bucket bounds");
  }
  return *series.histogram;
}

RegistrySnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.series.reserve(series_.size());
  for (const auto& series : series_) {
    SeriesSnapshot s;
    s.name = series->name;
    s.help = series->help;
    s.type = series->type;
    s.labels = series->labels;
    switch (series->type) {
      case MetricType::kCounter:
        s.counter = series->counter->value();
        break;
      case MetricType::kGauge:
        s.gauge = series->gauge->value();
        break;
      case MetricType::kHistogram:
        s.histogram = series->histogram->snapshot_state();
        break;
    }
    snap.series.push_back(std::move(s));
  }
  return snap;
}

std::size_t Registry::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

}  // namespace aapc::obs
