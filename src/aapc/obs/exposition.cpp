#include "aapc/obs/exposition.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc::obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// HELP-line escaping: backslash and newline only (quotes are legal).
std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// {k="v",...} with an optional extra label appended (histogram `le`).
std::string label_block(const Labels& labels, std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += std::string(extra_key) + "=\"" + std::string(extra_value) + "\"";
  }
  out.push_back('}');
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Strict reader for the to_json grammar — same policy as
/// faults::fault_plan_from_json: known keys only, numbers parsed
/// locale-independently via common/strings parse_json_number.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_space();
    AAPC_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                 "metrics JSON: expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        AAPC_REQUIRE(pos_ < text_.size(),
                     "metrics JSON: dangling escape at offset " << pos_);
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            AAPC_REQUIRE(pos_ + 4 <= text_.size(),
                         "metrics JSON: truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              unsigned digit = 0;
              if (h >= '0' && h <= '9') {
                digit = static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                digit = static_cast<unsigned>(h - 'a') + 10;
              } else if (h >= 'A' && h <= 'F') {
                digit = static_cast<unsigned>(h - 'A') + 10;
              } else {
                throw InvalidArgument("metrics JSON: bad \\u escape");
              }
              code = code * 16 + digit;
            }
            AAPC_REQUIRE(code <= 0x7f,
                         "metrics JSON: only ASCII \\u escapes supported");
            c = static_cast<char>(code);
            break;
          }
          default:
            throw InvalidArgument("metrics JSON: unknown escape");
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  std::string key() {
    std::string out = string_value();
    expect(':');
    return out;
  }

  /// One number token: the double value plus its raw text, so callers
  /// that need exact 64-bit integers (counter values can exceed 2^53,
  /// where a double round-trip silently rounds) can reparse the text.
  struct NumberToken {
    std::string text;
    double value = 0;
  };

  NumberToken number_token() {
    skip_space();
    const ParsedNumber parsed = parse_json_number(text_.substr(pos_));
    AAPC_REQUIRE(parsed.length > 0,
                 "metrics JSON: expected number at offset " << pos_);
    AAPC_REQUIRE(!parsed.out_of_range,
                 "metrics JSON: number out of range at offset " << pos_);
    NumberToken token{std::string(text_.substr(pos_, parsed.length)),
                      parsed.value};
    pos_ += parsed.length;
    return token;
  }

  double number() { return number_token().value; }

  std::int64_t integer() {
    const double value = number();
    const auto as_int = static_cast<std::int64_t>(value);
    AAPC_REQUIRE(static_cast<double>(as_int) == value,
                 "metrics JSON: expected integer, got " << value);
    return as_int;
  }

  void finish() {
    skip_space();
    AAPC_REQUIRE(pos_ == text_.size(),
                 "metrics JSON: trailing content at offset " << pos_);
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_prometheus_text(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  std::string open_block;  // metric name whose HELP/TYPE was emitted last
  for (const SeriesSnapshot& s : snapshot.series) {
    if (s.name != open_block) {
      if (!s.help.empty()) {
        os << "# HELP " << s.name << ' ' << escape_help(s.help) << '\n';
      }
      os << "# TYPE " << s.name << ' ' << metric_type_name(s.type) << '\n';
      open_block = s.name;
    }
    switch (s.type) {
      case MetricType::kCounter:
        os << s.name << label_block(s.labels) << ' ' << s.counter << '\n';
        break;
      case MetricType::kGauge:
        os << s.name << label_block(s.labels) << ' '
           << format_double_roundtrip(s.gauge) << '\n';
        break;
      case MetricType::kHistogram: {
        std::int64_t cumulative = 0;
        for (std::size_t i = 0; i < s.histogram.buckets.size(); ++i) {
          cumulative += s.histogram.buckets[i];
          const std::string le =
              i < s.histogram.bounds.size()
                  ? format_double_roundtrip(s.histogram.bounds[i])
                  : "+Inf";
          os << s.name << "_bucket" << label_block(s.labels, "le", le) << ' '
             << cumulative << '\n';
        }
        os << s.name << "_sum" << label_block(s.labels) << ' '
           << format_double_roundtrip(s.histogram.sum) << '\n';
        os << s.name << "_count" << label_block(s.labels) << ' '
           << s.histogram.count << '\n';
        os << s.name << "_max" << label_block(s.labels) << ' '
           << format_double_roundtrip(s.histogram.max) << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string to_json(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"metrics\":[";
  for (std::size_t i = 0; i < snapshot.series.size(); ++i) {
    const SeriesSnapshot& s = snapshot.series[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"type\":\""
       << metric_type_name(s.type) << "\"";
    if (!s.help.empty()) {
      os << ",\"help\":\"" << json_escape(s.help) << "\"";
    }
    if (!s.labels.empty()) {
      os << ",\"labels\":{";
      for (std::size_t l = 0; l < s.labels.size(); ++l) {
        if (l > 0) os << ',';
        os << '"' << json_escape(s.labels[l].first) << "\":\""
           << json_escape(s.labels[l].second) << '"';
      }
      os << '}';
    }
    switch (s.type) {
      case MetricType::kCounter:
        os << ",\"value\":" << s.counter;
        break;
      case MetricType::kGauge:
        os << ",\"value\":" << format_double_roundtrip(s.gauge);
        break;
      case MetricType::kHistogram: {
        os << ",\"count\":" << s.histogram.count
           << ",\"sum\":" << format_double_roundtrip(s.histogram.sum)
           << ",\"max\":" << format_double_roundtrip(s.histogram.max)
           << ",\"bounds\":[";
        for (std::size_t b = 0; b < s.histogram.bounds.size(); ++b) {
          if (b > 0) os << ',';
          os << format_double_roundtrip(s.histogram.bounds[b]);
        }
        os << "],\"buckets\":[";
        for (std::size_t b = 0; b < s.histogram.buckets.size(); ++b) {
          if (b > 0) os << ',';
          os << s.histogram.buckets[b];
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

RegistrySnapshot snapshot_from_json(std::string_view json) {
  Reader reader(json);
  RegistrySnapshot snapshot;
  reader.expect('{');
  bool saw_metrics = false;
  do {
    const std::string field = reader.key();
    AAPC_REQUIRE(field == "metrics",
                 "metrics JSON: unknown field '" << field << "'");
    saw_metrics = true;
    reader.expect('[');
    if (!reader.consume(']')) {
      do {
        reader.expect('{');
        SeriesSnapshot s;
        std::string type_name;
        Reader::NumberToken value_token;
        bool saw_value = false;
        do {
          const std::string name = reader.key();
          if (name == "name") {
            s.name = reader.string_value();
          } else if (name == "type") {
            type_name = reader.string_value();
          } else if (name == "help") {
            s.help = reader.string_value();
          } else if (name == "labels") {
            reader.expect('{');
            do {
              const std::string label_key = reader.key();
              s.labels.emplace_back(label_key, reader.string_value());
            } while (reader.consume(','));
            reader.expect('}');
          } else if (name == "value") {
            // Deferred: counters reparse the raw text as int64 once the
            // type is known (a double round-trip rounds above 2^53).
            value_token = reader.number_token();
            saw_value = true;
          } else if (name == "count") {
            s.histogram.count = reader.integer();
          } else if (name == "sum") {
            s.histogram.sum = reader.number();
          } else if (name == "max") {
            s.histogram.max = reader.number();
          } else if (name == "bounds") {
            reader.expect('[');
            if (!reader.consume(']')) {
              do {
                s.histogram.bounds.push_back(reader.number());
              } while (reader.consume(','));
              reader.expect(']');
            }
          } else if (name == "buckets") {
            reader.expect('[');
            if (!reader.consume(']')) {
              do {
                s.histogram.buckets.push_back(reader.integer());
              } while (reader.consume(','));
              reader.expect(']');
            }
          } else {
            throw InvalidArgument("metrics JSON: unknown field '" + name +
                                  "'");
          }
        } while (reader.consume(','));
        reader.expect('}');
        if (type_name == "counter") {
          s.type = MetricType::kCounter;
          if (saw_value) {
            const char* first = value_token.text.data();
            const char* last = first + value_token.text.size();
            const auto [end, ec] =
                std::from_chars(first, last, s.counter);
            AAPC_REQUIRE(ec == std::errc() && end == last,
                         "metrics JSON: counter '"
                             << s.name << "' value is not a 64-bit integer: "
                             << value_token.text);
          }
        } else if (type_name == "gauge") {
          s.type = MetricType::kGauge;
          if (saw_value) s.gauge = value_token.value;
        } else if (type_name == "histogram") {
          s.type = MetricType::kHistogram;
          AAPC_REQUIRE(
              s.histogram.buckets.size() == s.histogram.bounds.size() + 1,
              "metrics JSON: histogram '"
                  << s.name << "' has " << s.histogram.buckets.size()
                  << " buckets for " << s.histogram.bounds.size()
                  << " bounds");
        } else {
          throw InvalidArgument("metrics JSON: unknown type '" + type_name +
                                "'");
        }
        AAPC_REQUIRE(!s.name.empty(), "metrics JSON: series missing 'name'");
        snapshot.series.push_back(std::move(s));
      } while (reader.consume(','));
      reader.expect(']');
    }
  } while (reader.consume(','));
  reader.expect('}');
  reader.finish();
  AAPC_REQUIRE(saw_metrics, "metrics JSON: missing 'metrics'");
  return snapshot;
}

}  // namespace aapc::obs
