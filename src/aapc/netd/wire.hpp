// Wire protocol of the schedule-compilation front-end (aapc_netd).
//
// Compact length-prefixed binary frames, little-endian, versioned. A
// frame is a fixed 20-byte header followed by `payload_length` payload
// bytes; payload layouts are per frame type. The request carries the
// caller's topology serialized in the docs/FORMATS.md §1 text format
// and the response carries the relabeled schedule artifact as the §2
// JSON plus the caller->canonical rank permutation, so the wire
// preserves exactly the relabeling semantics of docs/SERVICE.md — a
// response is byte-identical to serializing the schedule an in-process
// ScheduleService::compile would have returned for the same topology
// and size class (asserted end-to-end by tests/netd_server_test.cpp).
//
// Framing is defensive: the decoder is incremental (frames may arrive
// byte-by-byte or many per read), rejects bad magic/version/type and
// oversized declared lengths before buffering a payload, and reports
// malformed frames as ProtocolError so the server can answer with a
// structured kProtocol error frame and close. Layout, error codes, and
// semantics are specified in docs/NETD.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/units.hpp"
#include "aapc/core/collectives.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::netd {

/// "AAPC" as bytes on the wire (read back as a little-endian u32).
inline constexpr std::uint32_t kMagic = 0x43504141u;
/// v3: request frames carry a collective kind byte and (for
/// sparse_alltoall) per-rank neighbor sets. v2 request frames are still
/// accepted and mean alltoall, and every non-request frame type keeps
/// its v2 layout and version byte, so v2 clients interoperate
/// unchanged. v1 peers are rejected at the header (the response layout
/// changed shape in v2, so speaking both is not possible on one
/// connection). History: docs/FORMATS.md §4.
inline constexpr std::uint8_t kProtocolVersion = 3;
/// Oldest version this build still accepts (and the version every
/// non-request frame is emitted at).
inline constexpr std::uint8_t kLegacyProtocolVersion = 2;
/// Fixed header size: magic u32, version u8, type u8, reserved u16,
/// request_id u64, payload_length u32.
inline constexpr std::size_t kHeaderSize = 20;
/// Upper bound on payload_length; larger declared lengths are a
/// protocol error rejected before any buffering (a hostile peer cannot
/// make the server allocate from a 4 GiB length field).
inline constexpr std::uint32_t kMaxPayload = 16u << 20;
/// Tenant ids are short identifiers, not documents.
inline constexpr std::size_t kMaxTenantLength = 256;

enum class FrameType : std::uint8_t {
  kRequest = 1,          // compile request
  kResponse = 2,         // compiled artifact
  kError = 3,            // structured failure, request-scoped
  kMetricsRequest = 4,   // ask for the server's registry snapshot
  kMetricsResponse = 5,  // obs JSON snapshot payload
  kChurnEvent = 6,       // physical link rate change (operator feed)
  kChurnAck = 7,         // epoch/invalidation accounting for the event
};

enum class ErrorCode : std::uint32_t {
  kInvalidRequest = 1,   // malformed topology / size / tenant
  kOverloaded = 2,       // dispatch queue or compiler pool saturated
  kQuotaExceeded = 3,    // tenant token bucket empty
  kConnectionLimit = 4,  // connection admission refused
  kShuttingDown = 5,     // server draining, resubmit elsewhere/later
  kInternal = 6,         // unexpected server-side failure
  kProtocol = 7,         // malformed frame; connection closes after this
};

/// Human-readable name of an error code ("overloaded", ...).
const char* error_code_name(ErrorCode code);

/// A malformed frame (bad magic, unsupported version, unknown type,
/// oversized declared payload, payload that fails to parse). The server
/// answers kProtocol and closes; the client surfaces it to the caller.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  /// Protocol version the frame was framed at (in
  /// [kLegacyProtocolVersion, kProtocolVersion]); payload decoders
  /// branch on it for layout.
  std::uint8_t version = kProtocolVersion;
  /// Echoed verbatim in the response/error frame, so clients may
  /// pipeline multiple requests per connection.
  std::uint64_t request_id = 0;
  std::uint32_t payload_length = 0;
};

/// One fully received frame.
struct Frame {
  FrameHeader header;
  std::string payload;
};

struct RequestFrame {
  std::uint64_t request_id = 0;
  /// Message size in bytes; the server buckets it into a size class.
  Bytes message_bytes = 0;
  /// Admission-control identity (token-bucket key).
  std::string tenant;
  /// docs/FORMATS.md §1 text serialization of the caller's topology.
  std::string topology_text;
  /// Collective to compile (v3 field; a decoded v2 frame always reads
  /// back alltoall).
  core::CollectiveKind kind = core::CollectiveKind::kAlltoall;
  /// Per-rank neighbor sets in the caller's ranks (sparse_alltoall
  /// only; must be empty for every other kind).
  core::SparseNeighbors neighbors;
};

struct ResponseFrame {
  std::uint64_t request_id = 0;
  bool cache_hit = false;
  bool coalesced = false;
  /// The artifact predates the last topology event on its links: it is
  /// the greedy-patched repair served stale-while-revalidate; a
  /// follow-up request returns the recompiled schedule once the
  /// background refresh lands (docs/SERVICE.md §churn).
  bool stale = false;
  /// Backend shard (canonical hash % shard count) that served this.
  std::uint32_t shard = 0;
  /// Canonical-topology hash (the sharding key; see docs/SERVICE.md).
  std::uint64_t canonical_hash = 0;
  /// Topology epoch at serve time (bumps once per churn event).
  std::uint64_t epoch = 0;
  /// caller rank -> canonical rank of the shared artifact.
  std::vector<topology::Rank> to_canonical;
  /// docs/FORMATS.md §2 JSON of the schedule in the caller's labeling.
  std::string schedule_json;
};

struct ErrorFrame {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::kInternal;
  /// Backoff hint in milliseconds (0 = none); carries
  /// ServiceOverloaded::retry_after_seconds across the wire.
  std::uint32_t retry_after_ms = 0;
  std::string message;
};

enum class ChurnKind : std::uint8_t {
  kLinkDegrade = 1,  // residual factor in (0, 1)
  kLinkDown = 2,     // factor forced to 0 (triggers re-election)
  kLinkUp = 3,       // factor forced back to 1
};

/// Operator-driven link event against the server's bridge fabric:
/// `link` indexes the fabric's bridge links (stp::BridgeNetwork
/// ordering), `factor` the residual relative rate. The server trial-runs
/// the 802.1D re-election first and rejects events that would disconnect
/// the fabric, so a bad feed cannot wedge the serving state.
struct ChurnEventFrame {
  std::uint64_t request_id = 0;
  ChurnKind kind = ChurnKind::kLinkDegrade;
  std::int32_t link = -1;
  double factor = 1.0;
};

/// Accounting for one applied churn event.
struct ChurnAckFrame {
  std::uint64_t request_id = 0;
  /// Topology epoch after the event (uniform across shards: every event
  /// is applied to each shard's feed in order).
  std::uint64_t epoch = 0;
  /// Cache entries invalidated, summed over shards.
  std::uint64_t invalidated = 0;
  /// The event changed the elected spanning tree (the serving topology
  /// was re-bound to the new canonical hash).
  bool reelected = false;
};

// ---- encoding ----

std::string encode_request(const RequestFrame& request);
/// Legacy v2 request layout (no kind/neighbors block) — what a v2
/// client puts on the wire. Kept for interoperability tests; requires
/// an alltoall request with no neighbor sets.
std::string encode_request_v2(const RequestFrame& request);
std::string encode_response(const ResponseFrame& response);
std::string encode_error(const ErrorFrame& error);
std::string encode_metrics_request(std::uint64_t request_id);
std::string encode_metrics_response(std::uint64_t request_id,
                                    std::string_view json);
std::string encode_churn_event(const ChurnEventFrame& event);
std::string encode_churn_ack(const ChurnAckFrame& ack);

// ---- payload decoding (header already validated) ----

/// Decodes a v2 or v3 request frame (layout chosen by the header's
/// version). A syntactically well-formed v3 frame whose kind byte is
/// out of range, or that carries neighbor sets for a non-sparse kind,
/// throws InvalidArgument — a bad *request*, answerable with a
/// structured error frame — not ProtocolError, which would poison the
/// connection.
RequestFrame decode_request(const Frame& frame);
ResponseFrame decode_response(const Frame& frame);
ErrorFrame decode_error(const Frame& frame);
/// Returns the JSON payload of a kMetricsResponse frame.
std::string decode_metrics_response(const Frame& frame);
ChurnEventFrame decode_churn_event(const Frame& frame);
ChurnAckFrame decode_churn_ack(const Frame& frame);

/// Incremental frame decoder: feed() arbitrary byte chunks as they
/// arrive from the socket, next() yields complete frames in order.
/// Malformed input throws ProtocolError and poisons the decoder (the
/// connection is past saving — the stream cannot be resynchronized).
class FrameDecoder {
 public:
  /// Appends received bytes to the internal buffer.
  void feed(std::string_view bytes);

  /// Returns the next complete frame, or nullopt when more bytes are
  /// needed. Throws ProtocolError on bad magic/version/type or a
  /// payload_length above kMaxPayload.
  std::optional<Frame> next();

  /// Bytes buffered but not yet returned as frames (a nonzero value at
  /// connection close means the peer hung up mid-frame).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

/// Parses and validates a frame header from exactly kHeaderSize bytes.
FrameHeader decode_header(std::string_view bytes);

}  // namespace aapc::netd
