// aapc_netd: TCP serving front-end for the schedule-compilation
// service (the wire behind docs/SERVICE.md; protocol in netd/wire.hpp,
// spec in docs/NETD.md).
//
// Threading model (non-blocking, edge-triggered epoll):
//
//   acceptor thread      accept4(), connection admission, round-robin
//                        hand-off to an event loop
//   N event loops        epoll_wait per loop; reads bytes, decodes
//                        frames, answers protocol/quota/drain errors
//                        inline, enqueues compile work
//   M dispatchers        parse topology, canonicalize, route to the
//                        backend shard canonical_hash % shards, run
//                        ScheduleService::compile, encode the response
//                        and hand it back to the connection's loop
//
// Backend sharding: the server owns `shards` independent
// ScheduleService instances; a request is dispatched by its canonical
// topology hash, so isomorphic (relabeled) topologies always land on
// the same shard and its cache, and shard count scales the compile
// backend horizontally behind one listening socket.
//
// Pressure valves, outermost first — every rejection is a structured
// error frame with a retry-after hint, never a dropped connection:
//   1. connection cap            kConnectionLimit (frame, then close)
//   2. per-tenant token bucket   kQuotaExceeded
//   3. bounded dispatch queue    kOverloaded
//   4. compiler-pool saturation  kOverloaded (ServiceOverloaded's hint)
//
// Shutdown drains: stop() closes the listener, fails *new* requests
// with kShuttingDown, but lets everything already dispatched finish
// (bounded by ServerOptions::drain_deadline_seconds) and flushes the
// responses before closing connections — in-flight compilations are
// never abandoned mid-future. SIGPIPE is ignored process-wide on
// start(); client disconnect mid-response shows up as a counted
// EPIPE/ECONNRESET drop, not a crash.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "aapc/netd/admission.hpp"
#include "aapc/netd/wire.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/service/service.hpp"
#include "aapc/stp/stp.hpp"

namespace aapc::netd {

struct ServerOptions {
  /// Listen address. Loopback by default: the front-end is meant to
  /// sit behind a deployment's own ingress, not on the open internet.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with Server::port().
  std::uint16_t port = 0;
  /// Event-loop (epoll) threads.
  std::int32_t event_loops = 2;
  /// Compile-dispatch worker threads, shared across shards.
  std::int32_t dispatch_threads = 4;
  /// Independent ScheduleService backend instances.
  std::int32_t shards = 2;
  /// Requests queued for dispatch before kOverloaded rejections.
  std::int32_t dispatch_queue_capacity = 256;
  /// Connection cap and per-tenant token buckets.
  AdmissionOptions admission;
  /// Configuration applied to every backend shard.
  service::ServiceOptions service;
  /// stop() waits at most this long for dispatched requests to finish
  /// before failing the not-yet-started remainder with kShuttingDown.
  double drain_deadline_seconds = 10;
  /// Optional bridged fabric behind the serving path. When set, start()
  /// runs the 802.1D election, canonicalizes the elected machine-leaf
  /// tree, and binds its canonical hash into every shard's
  /// TopologyEpochs feed; kChurnEvent frames then drive live link-rate
  /// churn (trial re-election first, so a disconnecting event is
  /// rejected without touching serving state). Null disables churn
  /// handling — kChurnEvent answers kInvalidRequest.
  std::shared_ptr<const stp::BridgeNetwork> fabric;
};

class Server {
 public:
  explicit Server(const ServerOptions& options = {});
  /// Stops (gracefully, see stop()) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns acceptor + event loops + dispatchers.
  void start();

  /// Graceful shutdown: close the listener, drain in-flight requests
  /// (bounded by drain_deadline_seconds), flush responses, close
  /// connections, join every thread. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after start()).
  std::uint16_t port() const;
  std::int64_t active_connections() const;

  /// Merged registry snapshot: the netd front-end series plus every
  /// backend shard's aapc_service_* series labeled {shard="<i>"} —
  /// one document for the obs exporters (docs/OBSERVABILITY.md).
  obs::RegistrySnapshot metrics_snapshot() const;

  /// Backend shard access for tests (count = options().shards).
  service::ScheduleService& shard(std::int32_t index);

  const ServerOptions& options() const { return options_; }

 private:
  friend class EventLoop;
  friend class Dispatcher;
  struct Impl;

  ServerOptions options_;
  std::atomic<bool> running_{false};
  std::unique_ptr<Impl> impl_;
};

}  // namespace aapc::netd
