#include "aapc/netd/wire.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <utility>

#include "aapc/common/bytes.hpp"

namespace aapc::netd {

namespace {

/// Largest rank-permutation element count a response may declare.
/// Bounded by what fits in the payload anyway; checked explicitly so a
/// corrupt count fails with a clear message instead of a truncation.
constexpr std::uint32_t kMaxRanks = 1u << 20;

std::string finish_frame(FrameType type, std::uint64_t request_id,
                         std::string payload,
                         std::uint8_t version = kLegacyProtocolVersion) {
  AAPC_REQUIRE(payload.size() <= kMaxPayload,
               "frame payload of " << payload.size()
                                   << " bytes exceeds kMaxPayload");
  ByteWriter w;
  w.u32(kMagic);
  w.u8(version);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // reserved
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  return w.take();
}

/// Re-throws payload parse failures as ProtocolError with context, so
/// transport callers only have to catch one type for malformed frames.
template <typename Fn>
auto parse_payload(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const ProtocolError&) {
    throw;
  } catch (const Error& e) {
    throw ProtocolError(std::string("malformed ") + what + " payload: " +
                        e.what());
  }
}

void require_type(const Frame& frame, FrameType expected, const char* what) {
  if (frame.header.type != expected) {
    throw ProtocolError(std::string("expected a ") + what + " frame, got "
                        "type " +
                        std::to_string(static_cast<int>(frame.header.type)));
  }
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidRequest:
      return "invalid_request";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kQuotaExceeded:
      return "quota_exceeded";
    case ErrorCode::kConnectionLimit:
      return "connection_limit";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kProtocol:
      return "protocol";
  }
  return "unknown";
}

std::string encode_request(const RequestFrame& request) {
  AAPC_REQUIRE(request.kind == core::CollectiveKind::kSparseAlltoall ||
                   request.neighbors.empty(),
               "neighbor sets are only meaningful for sparse_alltoall");
  ByteWriter w;
  w.u64(request.message_bytes);
  w.str(request.tenant);
  w.str(request.topology_text);
  // v3 extension: kind byte + neighbor block (count 0 when non-sparse).
  w.u8(static_cast<std::uint8_t>(request.kind));
  w.u8(0);  // reserved
  w.u16(0);
  w.u32(static_cast<std::uint32_t>(request.neighbors.size()));
  for (const auto& set : request.neighbors) {
    w.u32(static_cast<std::uint32_t>(set.size()));
    for (const topology::Rank v : set) {
      w.u32(static_cast<std::uint32_t>(v));
    }
  }
  return finish_frame(FrameType::kRequest, request.request_id, w.take(),
                      kProtocolVersion);
}

std::string encode_request_v2(const RequestFrame& request) {
  AAPC_REQUIRE(request.kind == core::CollectiveKind::kAlltoall &&
                   request.neighbors.empty(),
               "the v2 request layout can only express alltoall");
  ByteWriter w;
  w.u64(request.message_bytes);
  w.str(request.tenant);
  w.str(request.topology_text);
  return finish_frame(FrameType::kRequest, request.request_id, w.take(),
                      kLegacyProtocolVersion);
}

std::string encode_response(const ResponseFrame& response) {
  ByteWriter w;
  w.u8(response.cache_hit ? 1 : 0);
  w.u8(response.coalesced ? 1 : 0);
  w.u8(response.stale ? 1 : 0);
  w.u8(0);  // reserved
  w.u32(response.shard);
  w.u64(response.canonical_hash);
  w.u64(response.epoch);
  w.u32(static_cast<std::uint32_t>(response.to_canonical.size()));
  for (const topology::Rank rank : response.to_canonical) {
    w.u32(static_cast<std::uint32_t>(rank));
  }
  w.str(response.schedule_json);
  return finish_frame(FrameType::kResponse, response.request_id, w.take());
}

std::string encode_error(const ErrorFrame& error) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(error.code));
  w.u32(error.retry_after_ms);
  w.str(error.message);
  return finish_frame(FrameType::kError, error.request_id, w.take());
}

std::string encode_metrics_request(std::uint64_t request_id) {
  return finish_frame(FrameType::kMetricsRequest, request_id, std::string());
}

std::string encode_metrics_response(std::uint64_t request_id,
                                    std::string_view json) {
  ByteWriter w;
  w.str(json);
  return finish_frame(FrameType::kMetricsResponse, request_id, w.take());
}

RequestFrame decode_request(const Frame& frame) {
  require_type(frame, FrameType::kRequest, "request");
  std::uint8_t raw_kind = 0;
  RequestFrame request = parse_payload("request", [&] {
    ByteReader r(frame.payload);
    RequestFrame req;
    req.request_id = frame.header.request_id;
    req.message_bytes = r.u64();
    req.tenant = r.str(kMaxTenantLength);
    req.topology_text = r.str(kMaxPayload);
    if (frame.header.version >= 3) {
      raw_kind = r.u8();
      (void)r.u8();  // reserved
      (void)r.u16();
      const std::uint32_t ranks = r.u32();
      if (ranks > kMaxRanks) {
        throw ProtocolError("request declares " + std::to_string(ranks) +
                            " neighbor sets, above the protocol bound");
      }
      req.neighbors.resize(ranks);
      for (std::uint32_t i = 0; i < ranks; ++i) {
        const std::uint32_t degree = r.u32();
        if (degree > ranks) {
          throw ProtocolError("neighbor set of rank " + std::to_string(i) +
                              " declares " + std::to_string(degree) +
                              " entries, above the rank count");
        }
        req.neighbors[i].reserve(degree);
        for (std::uint32_t j = 0; j < degree; ++j) {
          req.neighbors[i].push_back(static_cast<topology::Rank>(r.u32()));
        }
      }
    }
    r.expect_done("request payload");
    return req;
  });
  // Semantic validation runs outside parse_payload on purpose: a
  // well-framed request with a bad kind byte (or a neighbor block on a
  // non-sparse kind) is a bad *request* — the stream is intact, so the
  // server answers a structured kInvalidRequest and keeps the
  // connection, mirroring the churn-event validation. Truncation and
  // length-bound violations above still poison as ProtocolError.
  if (!core::collective_kind_valid(raw_kind)) {
    throw InvalidArgument("unknown collective kind byte " +
                          std::to_string(raw_kind));
  }
  request.kind = static_cast<core::CollectiveKind>(raw_kind);
  if (request.kind != core::CollectiveKind::kSparseAlltoall) {
    for (const auto& set : request.neighbors) {
      if (!set.empty()) {
        throw InvalidArgument(
            std::string("neighbor sets are only meaningful for "
                        "sparse_alltoall, not ") +
            core::collective_kind_name(request.kind));
      }
    }
    request.neighbors.clear();
  }
  return request;
}

ResponseFrame decode_response(const Frame& frame) {
  require_type(frame, FrameType::kResponse, "response");
  return parse_payload("response", [&] {
    ByteReader r(frame.payload);
    ResponseFrame response;
    response.request_id = frame.header.request_id;
    response.cache_hit = r.u8() != 0;
    response.coalesced = r.u8() != 0;
    response.stale = r.u8() != 0;
    (void)r.u8();  // reserved
    response.shard = r.u32();
    response.canonical_hash = r.u64();
    response.epoch = r.u64();
    const std::uint32_t ranks = r.u32();
    if (ranks > kMaxRanks) {
      throw ProtocolError("response declares " + std::to_string(ranks) +
                          " ranks, above the protocol bound");
    }
    response.to_canonical.reserve(ranks);
    for (std::uint32_t i = 0; i < ranks; ++i) {
      response.to_canonical.push_back(
          static_cast<topology::Rank>(r.u32()));
    }
    response.schedule_json = r.str(kMaxPayload);
    r.expect_done("response payload");
    return response;
  });
}

ErrorFrame decode_error(const Frame& frame) {
  require_type(frame, FrameType::kError, "error");
  return parse_payload("error", [&] {
    ByteReader r(frame.payload);
    ErrorFrame error;
    error.request_id = frame.header.request_id;
    const std::uint32_t code = r.u32();
    if (code < 1 || code > 7) {
      throw ProtocolError("unknown error code " + std::to_string(code));
    }
    error.code = static_cast<ErrorCode>(code);
    error.retry_after_ms = r.u32();
    error.message = r.str(kMaxPayload);
    r.expect_done("error payload");
    return error;
  });
}

std::string encode_churn_event(const ChurnEventFrame& event) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.u8(0);  // reserved
  w.u16(0);
  w.u32(static_cast<std::uint32_t>(event.link));
  // f64 crosses the wire as its IEEE-754 bit pattern in a u64.
  w.u64(std::bit_cast<std::uint64_t>(event.factor));
  return finish_frame(FrameType::kChurnEvent, event.request_id, w.take());
}

std::string encode_churn_ack(const ChurnAckFrame& ack) {
  ByteWriter w;
  w.u64(ack.epoch);
  w.u64(ack.invalidated);
  w.u8(ack.reelected ? 1 : 0);
  return finish_frame(FrameType::kChurnAck, ack.request_id, w.take());
}

ChurnEventFrame decode_churn_event(const Frame& frame) {
  require_type(frame, FrameType::kChurnEvent, "churn event");
  return parse_payload("churn event", [&] {
    ByteReader r(frame.payload);
    ChurnEventFrame event;
    event.request_id = frame.header.request_id;
    const std::uint8_t kind = r.u8();
    if (kind < 1 || kind > 3) {
      throw ProtocolError("unknown churn kind " + std::to_string(kind));
    }
    event.kind = static_cast<ChurnKind>(kind);
    (void)r.u8();  // reserved
    (void)r.u16();
    event.link = static_cast<std::int32_t>(r.u32());
    event.factor = std::bit_cast<double>(r.u64());
    r.expect_done("churn event payload");
    if (!std::isfinite(event.factor) || event.factor < 0 ||
        event.factor > 1.0) {
      throw ProtocolError("churn factor must be a finite value in [0, 1]");
    }
    return event;
  });
}

ChurnAckFrame decode_churn_ack(const Frame& frame) {
  require_type(frame, FrameType::kChurnAck, "churn ack");
  return parse_payload("churn ack", [&] {
    ByteReader r(frame.payload);
    ChurnAckFrame ack;
    ack.request_id = frame.header.request_id;
    ack.epoch = r.u64();
    ack.invalidated = r.u64();
    ack.reelected = r.u8() != 0;
    r.expect_done("churn ack payload");
    return ack;
  });
}

std::string decode_metrics_response(const Frame& frame) {
  require_type(frame, FrameType::kMetricsResponse, "metrics response");
  return parse_payload("metrics response", [&] {
    ByteReader r(frame.payload);
    std::string json = r.str(kMaxPayload);
    r.expect_done("metrics response payload");
    return json;
  });
}

FrameHeader decode_header(std::string_view bytes) {
  AAPC_CHECK(bytes.size() == kHeaderSize);
  ByteReader r(bytes);
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    throw ProtocolError("bad frame magic (got 0x" + [magic] {
      char buf[9];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }() + ", want 0x43504141); not an aapc_netd peer?");
  }
  const std::uint8_t version = r.u8();
  if (version < kLegacyProtocolVersion || version > kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version) + " (this build speaks " +
                        std::to_string(kLegacyProtocolVersion) + "-" +
                        std::to_string(kProtocolVersion) + ")");
  }
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 7) {
    throw ProtocolError("unknown frame type " + std::to_string(type));
  }
  (void)r.u16();  // reserved, ignored for forward compatibility
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.version = version;
  header.request_id = r.u64();
  header.payload_length = r.u32();
  if (header.payload_length > kMaxPayload) {
    throw ProtocolError("declared payload of " +
                        std::to_string(header.payload_length) +
                        " bytes exceeds the " +
                        std::to_string(kMaxPayload) + "-byte frame limit");
  }
  return header;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (poisoned_) return;  // stream already unrecoverable
  // Compact once the consumed prefix dominates, so long-lived
  // connections do not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) {
    throw ProtocolError("frame stream already failed; connection is "
                        "unrecoverable");
  }
  if (buffered() < kHeaderSize) return std::nullopt;
  FrameHeader header;
  try {
    header = decode_header(
        std::string_view(buffer_).substr(consumed_, kHeaderSize));
  } catch (const ProtocolError&) {
    poisoned_ = true;
    throw;
  }
  if (buffered() < kHeaderSize + header.payload_length) return std::nullopt;
  Frame frame;
  frame.header = header;
  frame.payload =
      buffer_.substr(consumed_ + kHeaderSize, header.payload_length);
  consumed_ += kHeaderSize + header.payload_length;
  return frame;
}

}  // namespace aapc::netd
