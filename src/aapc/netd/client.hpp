// Blocking client for the aapc_netd wire protocol (netd/wire.hpp,
// docs/NETD.md): one TCP connection, synchronous request/response.
// Used by examples/aapc_loadgen.cpp, aapc_serviced --connect, and the
// loopback tests. Error frames from the server surface as RemoteError
// carrying the structured code and retry-after hint, so callers can
// implement the documented backoff contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "aapc/common/error.hpp"
#include "aapc/common/units.hpp"
#include "aapc/netd/wire.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::netd {

/// The server answered with an error frame.
class RemoteError : public Error {
 public:
  explicit RemoteError(ErrorFrame frame)
      : Error(std::string(error_code_name(frame.code)) + ": " +
              frame.message),
        frame_(std::move(frame)) {}

  ErrorCode code() const { return frame_.code; }
  double retry_after_seconds() const { return frame_.retry_after_ms / 1e3; }
  const ErrorFrame& frame() const { return frame_; }

 private:
  ErrorFrame frame_;
};

struct ClientOptions {
  /// Transparent reconnect attempts per request when the transport
  /// fails (connection refused, server closed the connection, reset
  /// mid-frame). 0 disables reconnection — every transport error
  /// surfaces immediately, the pre-churn behavior.
  std::int32_t max_reconnects = 5;
  /// Backoff before the first reconnect attempt; doubles per attempt.
  double initial_backoff_seconds = 0.05;
  /// Backoff cap for the exponential schedule.
  double max_backoff_seconds = 1.0;
  /// Also retry kOverloaded / kShuttingDown error frames (sleeping the
  /// server's retry-after hint, floored by the backoff schedule).
  /// Off by default: load generators usually want to *count* rejects.
  bool retry_on_overload = false;
};

class Client {
 public:
  /// Connects immediately; throws aapc::Error on failure.
  Client(const std::string& host, std::uint16_t port,
         const ClientOptions& options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Requests the routine for `topo` at `message_bytes` under `tenant`
  /// and blocks for the response. Transport failures (server closed
  /// the connection, reset mid-frame) trigger transparent
  /// reconnect-and-resend with capped exponential backoff, up to
  /// ClientOptions::max_reconnects; past that the aapc::Error
  /// surfaces. Throws RemoteError on an error frame (unless
  /// retry_on_overload covers it), ProtocolError on a malformed
  /// response.
  ResponseFrame compile(const topology::Topology& topo, Bytes message_bytes,
                        const std::string& tenant = "default",
                        core::CollectiveKind kind =
                            core::CollectiveKind::kAlltoall,
                        const core::SparseNeighbors& neighbors = {});

  /// Same with a pre-serialized docs/FORMATS.md §1 topology (loadgen
  /// serializes each pool entry once instead of per request).
  ResponseFrame compile_serialized(const std::string& topology_text,
                                   Bytes message_bytes,
                                   const std::string& tenant = "default",
                                   core::CollectiveKind kind =
                                       core::CollectiveKind::kAlltoall,
                                   const core::SparseNeighbors& neighbors = {});

  /// Fetches the server's merged obs registry snapshot as JSON.
  /// Reconnects on transport failure like compile().
  std::string fetch_metrics_json();

  /// Feeds one fabric link event to the server and blocks for the
  /// accounting ack. Throws RemoteError (kInvalidRequest) when the
  /// server has no fabric, the link index is bad, or the event would
  /// disconnect the bridge graph. Not retried: churn is not
  /// idempotent (a replayed event double-bumps the epoch).
  ChurnAckFrame churn(ChurnKind kind, std::int32_t link, double factor = 1.0);

  /// Raw frame I/O for protocol tests: sends arbitrary bytes, reads
  /// the next frame (or throws when the server closes first).
  void send_raw(std::string_view bytes);
  Frame read_frame();

  /// Half-close test support: shuts down the write side.
  void shutdown_write();

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Reconnect attempts taken over the client's lifetime (tests assert
  /// the transparent-retry path actually exercised).
  std::int64_t reconnects() const { return reconnects_; }

 private:
  void dial();
  /// Runs `op` with the reconnect/backoff policy: transport errors
  /// redial and retry, overload error frames optionally sleep the hint
  /// and retry, everything else surfaces.
  template <typename Fn>
  auto with_retry(Fn&& op) -> decltype(op());
  ResponseFrame roundtrip(const std::string& frame_bytes,
                          std::uint64_t request_id);

  std::string host_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::int64_t reconnects_ = 0;
  FrameDecoder decoder_;
};

}  // namespace aapc::netd
