// Blocking client for the aapc_netd wire protocol (netd/wire.hpp,
// docs/NETD.md): one TCP connection, synchronous request/response.
// Used by examples/aapc_loadgen.cpp, aapc_serviced --connect, and the
// loopback tests. Error frames from the server surface as RemoteError
// carrying the structured code and retry-after hint, so callers can
// implement the documented backoff contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "aapc/common/error.hpp"
#include "aapc/common/units.hpp"
#include "aapc/netd/wire.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::netd {

/// The server answered with an error frame.
class RemoteError : public Error {
 public:
  explicit RemoteError(ErrorFrame frame)
      : Error(std::string(error_code_name(frame.code)) + ": " +
              frame.message),
        frame_(std::move(frame)) {}

  ErrorCode code() const { return frame_.code; }
  double retry_after_seconds() const { return frame_.retry_after_ms / 1e3; }
  const ErrorFrame& frame() const { return frame_; }

 private:
  ErrorFrame frame_;
};

class Client {
 public:
  /// Connects immediately; throws aapc::Error on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Requests the routine for `topo` at `message_bytes` under `tenant`
  /// and blocks for the response. Throws RemoteError on an error
  /// frame, ProtocolError on a malformed response, aapc::Error on
  /// transport failure (server closed the connection, short write...).
  ResponseFrame compile(const topology::Topology& topo, Bytes message_bytes,
                        const std::string& tenant = "default");

  /// Same with a pre-serialized docs/FORMATS.md §1 topology (loadgen
  /// serializes each pool entry once instead of per request).
  ResponseFrame compile_serialized(const std::string& topology_text,
                                   Bytes message_bytes,
                                   const std::string& tenant = "default");

  /// Fetches the server's merged obs registry snapshot as JSON.
  std::string fetch_metrics_json();

  /// Raw frame I/O for protocol tests: sends arbitrary bytes, reads
  /// the next frame (or throws when the server closes first).
  void send_raw(std::string_view bytes);
  Frame read_frame();

  /// Half-close test support: shuts down the write side.
  void shutdown_write();

  bool connected() const { return fd_ >= 0; }
  void close();

 private:
  ResponseFrame roundtrip(const std::string& frame_bytes,
                          std::uint64_t request_id);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace aapc::netd
