#include "aapc/netd/admission.hpp"

#include <algorithm>

#include "aapc/common/error.hpp"

namespace aapc::netd {

void TokenBucket::refill(double now_seconds) {
  if (now_seconds <= last_refill_seconds_) return;
  tokens_ = std::min(burst_,
                     tokens_ + rate_ * (now_seconds - last_refill_seconds_));
  last_refill_seconds_ = now_seconds;
}

bool TokenBucket::try_acquire(double now_seconds,
                              double* retry_after_seconds) {
  refill(now_seconds);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  if (retry_after_seconds != nullptr) {
    *retry_after_seconds =
        rate_ > 0 ? (1.0 - tokens_) / rate_ : 1.0;
  }
  return false;
}

double TokenBucket::tokens_at(double now_seconds) const {
  TokenBucket copy = *this;
  copy.refill(now_seconds);
  return copy.tokens_;
}

AdmissionControl::AdmissionControl(const AdmissionOptions& options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  AAPC_REQUIRE(options.tenant_rate <= 0 || options.tenant_burst >= 0,
               "tenant_burst must be non-negative");
}

double AdmissionControl::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

bool AdmissionControl::try_admit_connection() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (options_.max_connections > 0 &&
      active_connections_ >= options_.max_connections) {
    return false;
  }
  ++active_connections_;
  return true;
}

void AdmissionControl::release_connection() {
  const std::lock_guard<std::mutex> lock(mutex_);
  --active_connections_;
  AAPC_CHECK(active_connections_ >= 0);
}

std::int64_t AdmissionControl::active_connections() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return active_connections_;
}

bool AdmissionControl::try_admit_request(const std::string& tenant,
                                         double* retry_after_seconds) {
  if (options_.tenant_rate <= 0) return true;
  const double now = now_seconds();
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(tenant,
                      TokenBucket(options_.tenant_rate,
                                  std::max(1.0, options_.tenant_burst)))
             .first;
  }
  return it->second.try_acquire(now, retry_after_seconds);
}

}  // namespace aapc::netd
