// Admission control for the netd front-end: per-tenant token-bucket
// request quotas and a global connection cap, enforced *before* a
// request reaches the dispatch queue or a backend shard. This is the
// outermost of the three pressure valves (tenant quota -> dispatch
// queue bound -> compiler-pool backpressure); each rejects with a
// structured error frame carrying a retry-after hint rather than
// dropping the connection. Semantics are documented in docs/NETD.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace aapc::netd {

/// Classic token bucket: `rate` tokens accrue per second up to `burst`;
/// each admitted request spends one token. Time is passed in by the
/// caller (monotonic seconds) so tests can drive it deterministically.
class TokenBucket {
 public:
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  /// Tries to spend one token at time `now_seconds`. On refusal,
  /// `retry_after_seconds` is set to the time until a full token has
  /// accrued.
  bool try_acquire(double now_seconds, double* retry_after_seconds);

  double tokens_at(double now_seconds) const;

 private:
  void refill(double now_seconds);

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_seconds_ = 0;
};

struct AdmissionOptions {
  /// Concurrent connections admitted; further accepts receive a
  /// kConnectionLimit error frame and are closed. <= 0 disables.
  std::int64_t max_connections = 4096;
  /// Per-tenant steady-state requests per second. <= 0 disables
  /// tenant quotas entirely (no buckets are kept).
  double tenant_rate = 0;
  /// Per-tenant burst allowance (bucket capacity), floored at 1 token
  /// when quotas are enabled.
  double tenant_burst = 64;
};

/// Thread-safe admission state shared by acceptor and event loops.
class AdmissionControl {
 public:
  explicit AdmissionControl(const AdmissionOptions& options);

  /// Connection accounting. try_admit_connection() returns false when
  /// the cap is reached (the caller sends kConnectionLimit and closes).
  bool try_admit_connection();
  void release_connection();
  std::int64_t active_connections() const;

  /// Tenant quota check at request admission; `retry_after_seconds`
  /// is set on refusal. Unknown tenants get a fresh full bucket.
  bool try_admit_request(const std::string& tenant,
                         double* retry_after_seconds);

  const AdmissionOptions& options() const { return options_; }

 private:
  double now_seconds() const;

  AdmissionOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::int64_t active_connections_ = 0;
  std::unordered_map<std::string, TokenBucket> buckets_;
};

}  // namespace aapc::netd
