#include "aapc/netd/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "aapc/topology/io.hpp"

namespace aapc::netd {

Client::Client(const std::string& host, std::uint16_t port,
               const ClientOptions& options)
    : host_(host), port_(port), options_(options) {
  dial();
}

Client::~Client() { close(); }

void Client::dial() {
  close();
  // A fresh connection starts a fresh frame stream; bytes of a response
  // the old server never finished must not prefix the new one.
  decoder_ = FrameDecoder();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  AAPC_CHECK_MSG(fd_ >= 0, "socket: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  AAPC_REQUIRE(::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) == 1,
               "invalid address '" << host_ << "'");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("connect " + host_ + ":" + std::to_string(port_) + ": " +
                std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::shutdown_write() {
  AAPC_REQUIRE(fd_ >= 0, "client is not connected");
  ::shutdown(fd_, SHUT_WR);
}

template <typename Fn>
auto Client::with_retry(Fn&& op) -> decltype(op()) {
  double backoff = options_.initial_backoff_seconds;
  std::int32_t attempts = 0;
  const auto sleep_and_advance = [&](double seconds) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::max(0.0, seconds)));
    backoff = std::min(backoff * 2, options_.max_backoff_seconds);
  };
  while (true) {
    try {
      if (fd_ < 0) dial();  // the previous attempt tore the socket down
      return op();
    } catch (const ProtocolError&) {
      throw;  // malformed stream: resynchronization is impossible
    } catch (const RemoteError& e) {
      // The connection is healthy — the server said no. Only the
      // transient codes are retryable, and only when asked.
      const bool transient = e.code() == ErrorCode::kOverloaded ||
                             e.code() == ErrorCode::kShuttingDown;
      if (!options_.retry_on_overload || !transient ||
          attempts >= options_.max_reconnects) {
        throw;
      }
      ++attempts;
      sleep_and_advance(std::max(e.retry_after_seconds(), backoff));
    } catch (const Error&) {
      // Transport failure: connection refused, server closed the
      // connection (possibly mid-frame), ECONNRESET on read/write.
      if (attempts >= options_.max_reconnects) throw;
      ++attempts;
      ++reconnects_;
      close();
      sleep_and_advance(backoff);
    }
  }
}

void Client::send_raw(std::string_view bytes) {
  AAPC_REQUIRE(fd_ >= 0, "client is not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

Frame Client::read_frame() {
  AAPC_REQUIRE(fd_ >= 0, "client is not connected");
  while (true) {
    if (std::optional<Frame> frame = decoder_.next()) return *frame;
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) throw Error(std::string("recv: ") + std::strerror(errno));
    throw Error("server closed the connection" +
                std::string(decoder_.buffered() > 0 ? " mid-frame" : ""));
  }
}

ResponseFrame Client::roundtrip(const std::string& frame_bytes,
                                std::uint64_t request_id) {
  send_raw(frame_bytes);
  const Frame frame = read_frame();
  if (frame.header.type == FrameType::kError) {
    throw RemoteError(decode_error(frame));
  }
  ResponseFrame response = decode_response(frame);
  if (response.request_id != request_id) {
    throw ProtocolError("response for request " +
                        std::to_string(response.request_id) +
                        " while waiting on " + std::to_string(request_id));
  }
  return response;
}

ResponseFrame Client::compile(const topology::Topology& topo,
                              Bytes message_bytes, const std::string& tenant,
                              core::CollectiveKind kind,
                              const core::SparseNeighbors& neighbors) {
  return compile_serialized(topology::serialize_topology(topo), message_bytes,
                            tenant, kind, neighbors);
}

ResponseFrame Client::compile_serialized(const std::string& topology_text,
                                         Bytes message_bytes,
                                         const std::string& tenant,
                                         core::CollectiveKind kind,
                                         const core::SparseNeighbors& neighbors) {
  return with_retry([&] {
    RequestFrame request;
    request.request_id = next_request_id_++;
    request.message_bytes = message_bytes;
    request.tenant = tenant;
    request.topology_text = topology_text;
    request.kind = kind;
    request.neighbors = neighbors;
    return roundtrip(encode_request(request), request.request_id);
  });
}

std::string Client::fetch_metrics_json() {
  return with_retry([&]() -> std::string {
    const std::uint64_t request_id = next_request_id_++;
    send_raw(encode_metrics_request(request_id));
    const Frame frame = read_frame();
    if (frame.header.type == FrameType::kError) {
      throw RemoteError(decode_error(frame));
    }
    return decode_metrics_response(frame);
  });
}

ChurnAckFrame Client::churn(ChurnKind kind, std::int32_t link,
                            double factor) {
  ChurnEventFrame event;
  event.request_id = next_request_id_++;
  event.kind = kind;
  event.link = link;
  event.factor = kind == ChurnKind::kLinkDegrade ? factor
                 : kind == ChurnKind::kLinkDown  ? 0.0
                                                 : 1.0;
  send_raw(encode_churn_event(event));
  const Frame frame = read_frame();
  if (frame.header.type == FrameType::kError) {
    throw RemoteError(decode_error(frame));
  }
  ChurnAckFrame ack = decode_churn_ack(frame);
  if (ack.request_id != event.request_id) {
    throw ProtocolError("churn ack for request " +
                        std::to_string(ack.request_id) +
                        " while waiting on " +
                        std::to_string(event.request_id));
  }
  return ack;
}

}  // namespace aapc::netd
