#include "aapc/netd/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "aapc/common/log.hpp"
#include "aapc/core/schedule_io.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/faults/repair.hpp"
#include "aapc/obs/exposition.hpp"
#include "aapc/service/canonical.hpp"
#include "aapc/topology/io.hpp"

namespace aapc::netd {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint32_t to_retry_ms(double seconds) {
  const double ms = seconds * 1e3;
  if (ms <= 0) return 0;
  if (ms >= 4e9) return 4'000'000'000u;
  return static_cast<std::uint32_t>(ms) + 1;  // round up: hints are floors
}

/// Frame-size histogram bounds: 64 B .. 16 MiB in powers of four.
std::vector<double> frame_bytes_bounds() {
  std::vector<double> bounds;
  for (double b = 64; b <= 16.0 * 1024 * 1024; b *= 4) bounds.push_back(b);
  return bounds;
}

}  // namespace

class EventLoop;
class Dispatcher;

/// One accepted socket. The event loop owns reads and all socket
/// teardown; dispatchers only append encoded response bytes under
/// `mutex` and ask the loop to flush. Once `closed` flips (peer hung
/// up, write error, shutdown) appends are dropped and counted — a
/// client that disconnects mid-response costs a counter, not a crash.
struct Connection {
  int fd = -1;
  EventLoop* loop = nullptr;
  /// Loop-thread only: incremental input framing.
  FrameDecoder decoder;

  std::mutex mutex;  // guards everything below
  std::string out;
  std::size_t out_offset = 0;
  bool closed = false;
  bool close_after_flush = false;
  bool flush_queued = false;

  /// Requests dispatched but not yet answered (teardown keeps the
  /// Connection alive through shared_ptr until these resolve).
  std::atomic<std::int32_t> in_flight{0};
};

using ConnectionPtr = std::shared_ptr<Connection>;

struct DispatchItem {
  ConnectionPtr conn;
  RequestFrame request;
  Clock::time_point arrival{};
  std::size_t request_frame_bytes = 0;
};

struct Server::Impl {
  explicit Impl(const ServerOptions& opts);
  ~Impl();

  // acceptor
  void accept_loop();
  void refuse_connection(int fd, ErrorCode code, const std::string& message);

  // dispatcher side
  void handle_compile(const DispatchItem& item);
  void deliver(const ConnectionPtr& conn, std::string bytes);
  void fail_request(const ConnectionPtr& conn, std::uint64_t request_id,
                    ErrorCode code, double retry_after_seconds,
                    const std::string& message);

  // fabric churn (event-loop threads, serialized by fabric_mutex)
  void bind_elected_tree();  // fabric_mutex held
  ChurnAckFrame apply_churn(const ChurnEventFrame& event);

  obs::Counter& reject_counter(ErrorCode code);
  obs::RegistrySnapshot merged_snapshot() const;
  double overload_retry_hint() const;

  ServerOptions options;
  AdmissionControl admission;

  mutable obs::Registry registry;
  obs::Counter& connections_total;
  obs::Gauge& connections_active;
  obs::Counter& midframe_disconnects;
  obs::Counter& response_drops;
  obs::Histogram& request_frame_bytes;
  obs::Histogram& response_frame_bytes;
  std::vector<obs::Counter*> shard_requests;
  std::vector<obs::Histogram*> shard_request_seconds;

  obs::Counter& churn_events;
  obs::Counter& churn_rejects;
  obs::Counter& reelections;

  std::vector<std::unique_ptr<service::ScheduleService>> services;
  std::vector<std::unique_ptr<EventLoop>> loops;
  std::unique_ptr<Dispatcher> dispatcher;

  /// Serving-fabric state: the committed fault timeline (event times are
  /// a synthetic sequence number — churn frames carry no clock), the
  /// tree its last election produced, and the canonical hash currently
  /// bound into the shards' epoch feeds.
  std::mutex fabric_mutex;
  faults::FaultPlan fabric_plan;
  stp::SpanningTree fabric_tree;
  std::uint64_t fabric_hash = 0;
  std::int64_t fabric_seq = 0;

  std::thread acceptor;
  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::atomic<bool> accept_stop{false};
  std::atomic<bool> draining{false};
  std::atomic<std::int64_t> in_flight_requests{0};
  std::atomic<std::size_t> next_loop{0};
};

// ---------------------------------------------------------------------------
// Event loop

class EventLoop {
 public:
  explicit EventLoop(Server::Impl* server) : server_(server) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    AAPC_CHECK_MSG(epoll_fd_ >= 0,
                   "epoll_create1: " << std::strerror(errno));
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    AAPC_CHECK_MSG(wake_fd_ >= 0, "eventfd: " << std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    AAPC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
  }

  ~EventLoop() {
    if (thread_.joinable()) {
      begin_stop();
      thread_.join();
    }
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void begin_stop() {
    stopping_.store(true, std::memory_order_release);
    wake();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Acceptor hand-off: the loop thread registers the fd on its next
  /// iteration (epoll registration stays single-threaded per loop).
  void adopt(int fd) {
    {
      const std::lock_guard<std::mutex> lock(pending_mutex_);
      new_fds_.push_back(fd);
    }
    wake();
  }

  /// Any thread: the connection has fresh output to write. Appending
  /// bytes alone is not enough under edge-triggered epoll — a socket
  /// that has been writable all along produces no new EPOLLOUT edge,
  /// so the loop must attempt the write itself.
  void request_flush(const ConnectionPtr& conn) {
    {
      const std::lock_guard<std::mutex> conn_lock(conn->mutex);
      if (conn->closed || conn->flush_queued) return;
      conn->flush_queued = true;
    }
    {
      const std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_flushes_.push_back(conn);
    }
    wake();
  }

 private:
  void wake() {
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the poller; short writes are
    // impossible for 8 bytes.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  void run() {
    std::vector<epoll_event> events(128);
    while (true) {
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()),
                                 /*timeout ms=*/100);
      if (n < 0 && errno != EINTR) {
        AAPC_WARN("epoll_wait failed: " << std::strerror(errno));
        break;
      }
      for (int i = 0; i < std::max(n, 0); ++i) {
        const epoll_event& ev = events[static_cast<std::size_t>(i)];
        if (ev.data.fd == wake_fd_) {
          std::uint64_t drain;
          while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
          }
          continue;
        }
        const auto it = conns_.find(ev.data.fd);
        if (it == conns_.end()) continue;
        ConnectionPtr conn = it->second;  // keep alive across teardown
        if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(conn);
          continue;
        }
        if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0) {
          handle_readable(conn);
        }
        if ((ev.events & EPOLLOUT) != 0) flush(conn);
      }
      process_pending();
      if (stopping_.load(std::memory_order_acquire)) {
        // Graceful exit: one best-effort flush so drained responses
        // reach sockets, then teardown.
        std::vector<ConnectionPtr> open;
        open.reserve(conns_.size());
        for (const auto& [fd, conn] : conns_) open.push_back(conn);
        for (const ConnectionPtr& conn : open) flush(conn);
        for (const ConnectionPtr& conn : open) close_connection(conn);
        return;
      }
    }
  }

  void process_pending() {
    std::vector<int> fds;
    std::vector<ConnectionPtr> flushes;
    {
      const std::lock_guard<std::mutex> lock(pending_mutex_);
      fds.swap(new_fds_);
      flushes.swap(pending_flushes_);
    }
    for (const int fd : fds) register_connection(fd);
    for (const ConnectionPtr& conn : flushes) {
      {
        const std::lock_guard<std::mutex> lock(conn->mutex);
        conn->flush_queued = false;
      }
      flush(conn);
    }
  }

  void register_connection(int fd) {
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->loop = this;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      AAPC_WARN("epoll_ctl(ADD) failed: " << std::strerror(errno));
      ::close(fd);
      server_->admission.release_connection();
      server_->connections_active.add(-1);
      return;
    }
    conns_.emplace(fd, std::move(conn));
  }

  void handle_readable(const ConnectionPtr& conn) {
    char buf[64 * 1024];
    bool peer_closed = false;
    while (true) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_closed = true;  // ECONNRESET and friends
      break;
    }
    try {
      while (std::optional<Frame> frame = conn->decoder.next()) {
        handle_frame(conn, *frame);
        bool closed;
        {
          const std::lock_guard<std::mutex> lock(conn->mutex);
          closed = conn->closed || conn->close_after_flush;
        }
        if (closed) return;
      }
    } catch (const ProtocolError& e) {
      // Malformed stream: answer with a structured error, then close.
      // The decoder is poisoned, so no further frames are parsed.
      server_->reject_counter(ErrorCode::kProtocol).inc();
      ErrorFrame error;
      error.code = ErrorCode::kProtocol;
      error.message = e.what();
      send_from_loop(conn, encode_error(error), /*close_after=*/true);
      return;
    }
    if (peer_closed) {
      if (conn->decoder.buffered() > 0) {
        // Disconnect mid-frame: bytes of a frame that never completed.
        server_->midframe_disconnects.inc();
      }
      close_connection(conn);
    }
  }

  void handle_frame(const ConnectionPtr& conn, const Frame& frame) {
    switch (frame.header.type) {
      case FrameType::kRequest: {
        RequestFrame request;
        try {
          request = decode_request(frame);
        } catch (const ProtocolError&) {
          throw;  // framing damage: poison + close (caller handles)
        } catch (const InvalidArgument& e) {
          // Well-framed request with bad semantics (out-of-range kind
          // byte, neighbor sets on a non-sparse kind): the stream is
          // intact, so answer structurally and keep the connection —
          // the same contract as churn-event validation below.
          server_->reject_counter(ErrorCode::kInvalidRequest).inc();
          reply_error(conn, frame.header.request_id,
                      ErrorCode::kInvalidRequest, 0, e.what());
          return;
        }
        if (server_->draining.load(std::memory_order_acquire)) {
          server_->reject_counter(ErrorCode::kShuttingDown).inc();
          reply_error(conn, request.request_id, ErrorCode::kShuttingDown,
                      /*retry_after_seconds=*/1.0, "server is draining");
          return;
        }
        double retry_after = 0;
        if (!server_->admission.try_admit_request(request.tenant,
                                                  &retry_after)) {
          server_->reject_counter(ErrorCode::kQuotaExceeded).inc();
          reply_error(conn, request.request_id, ErrorCode::kQuotaExceeded,
                      retry_after,
                      "tenant '" + request.tenant + "' exceeded its "
                      "request quota");
          return;
        }
        DispatchItem item;
        item.conn = conn;
        item.request = request;
        item.arrival = Clock::now();
        item.request_frame_bytes = kHeaderSize + frame.payload.size();
        if (!submit_to_dispatcher(std::move(item))) {
          server_->reject_counter(ErrorCode::kOverloaded).inc();
          reply_error(conn, request.request_id, ErrorCode::kOverloaded,
                      server_->overload_retry_hint(),
                      "dispatch queue is full");
        }
        return;
      }
      case FrameType::kMetricsRequest: {
        send_from_loop(conn,
                       encode_metrics_response(
                           frame.header.request_id,
                           obs::to_json(server_->merged_snapshot())),
                       /*close_after=*/false);
        return;
      }
      case FrameType::kChurnEvent: {
        // Applied inline on the loop thread: churn is an operator feed
        // (a handful of events per incident), and applying before the
        // next read guarantees compile requests later on this
        // connection observe the bumped epoch.
        const ChurnEventFrame event = decode_churn_event(frame);
        try {
          ChurnAckFrame ack = server_->apply_churn(event);
          ack.request_id = event.request_id;
          send_from_loop(conn, encode_churn_ack(ack),
                         /*close_after=*/false);
        } catch (const InvalidArgument& e) {
          server_->churn_rejects.inc();
          server_->reject_counter(ErrorCode::kInvalidRequest).inc();
          reply_error(conn, event.request_id, ErrorCode::kInvalidRequest, 0,
                      e.what());
        }
        return;
      }
      default:
        throw ProtocolError(
            "frame type " +
            std::to_string(static_cast<int>(frame.header.type)) +
            " is not valid from a client");
    }
  }

  bool submit_to_dispatcher(DispatchItem item);  // defined after Dispatcher

  void reply_error(const ConnectionPtr& conn, std::uint64_t request_id,
                   ErrorCode code, double retry_after_seconds,
                   const std::string& message) {
    ErrorFrame error;
    error.request_id = request_id;
    error.code = code;
    error.retry_after_ms = to_retry_ms(retry_after_seconds);
    error.message = message;
    send_from_loop(conn, encode_error(error), /*close_after=*/false);
  }

  void send_from_loop(const ConnectionPtr& conn, std::string bytes,
                      bool close_after) {
    {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closed) return;
      conn->out.append(bytes);
      conn->close_after_flush = conn->close_after_flush || close_after;
    }
    flush(conn);
  }

  /// Writes pending output until done or EAGAIN (loop thread only).
  void flush(const ConnectionPtr& conn) {
    bool should_close = false;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closed) return;
      while (conn->out_offset < conn->out.size()) {
        const ssize_t n =
            ::send(conn->fd, conn->out.data() + conn->out_offset,
                   conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
        if (n >= 0) {
          conn->out_offset += static_cast<std::size_t>(n);
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        // EPIPE/ECONNRESET: the peer vanished mid-response. SIGPIPE is
        // ignored process-wide, so this is a clean error path.
        server_->response_drops.inc();
        should_close = true;
        break;
      }
      if (!should_close) {
        if (conn->out_offset == conn->out.size()) {
          conn->out.clear();
          conn->out_offset = 0;
          should_close = conn->close_after_flush;
        } else if (conn->out_offset > (1u << 20)) {
          conn->out.erase(0, conn->out_offset);
          conn->out_offset = 0;
        }
      }
    }
    if (should_close) close_connection(conn);
  }

  void close_connection(const ConnectionPtr& conn) {
    {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closed) return;
      conn->closed = true;
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conns_.erase(conn->fd);
    server_->admission.release_connection();
    server_->connections_active.add(-1);
  }

  Server::Impl* server_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  /// Loop-thread only.
  std::unordered_map<int, ConnectionPtr> conns_;

  std::mutex pending_mutex_;
  std::vector<int> new_fds_;
  std::vector<ConnectionPtr> pending_flushes_;
};

// ---------------------------------------------------------------------------
// Dispatcher

/// Bounded MPMC queue + worker threads running the compile pipeline.
/// try_submit() is the third pressure valve: a full queue rejects
/// immediately (the event loop answers kOverloaded) instead of letting
/// slow compilations back the sockets up invisibly.
class Dispatcher {
 public:
  Dispatcher(Server::Impl* server, std::int32_t threads,
             std::int32_t queue_capacity)
      : server_(server),
        capacity_(static_cast<std::size_t>(std::max(1, queue_capacity))) {
    const std::int32_t count = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(count));
    for (std::int32_t i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }

  ~Dispatcher() { stop_and_join(/*abandon_remaining=*/true); }

  bool try_submit(DispatchItem item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(item));
    }
    server_->in_flight_requests.fetch_add(1, std::memory_order_acq_rel);
    work_available_.notify_one();
    return true;
  }

  std::int64_t queue_depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::int64_t>(queue_.size());
  }

  /// Stops workers. Items already *executing* always run to completion
  /// (ScheduleService never abandons a compilation mid-future); items
  /// still queued are failed with kShuttingDown when
  /// `abandon_remaining` — the caller decides by first waiting out the
  /// drain deadline.
  void stop_and_join(bool abandon_remaining) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_ && workers_.empty()) return;
      stopping_ = true;
      abandon_ = abandon_remaining;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }

 private:
  void worker() {
    while (true) {
      DispatchItem item;
      bool abandon;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(lock,
                             [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, nothing left
        item = std::move(queue_.front());
        queue_.pop_front();
        abandon = abandon_;
      }
      if (abandon) {
        server_->reject_counter(ErrorCode::kShuttingDown).inc();
        server_->fail_request(item.conn, item.request.request_id,
                              ErrorCode::kShuttingDown, 1.0,
                              "server shut down before this request was "
                              "dispatched");
      } else {
        server_->handle_compile(item);
      }
      item.conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      server_->in_flight_requests.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  Server::Impl* server_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<DispatchItem> queue_;
  bool stopping_ = false;
  bool abandon_ = false;
  std::vector<std::thread> workers_;
};

bool EventLoop::submit_to_dispatcher(DispatchItem item) {
  const ConnectionPtr conn = item.conn;
  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  if (server_->dispatcher->try_submit(std::move(item))) return true;
  conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  return false;
}

// ---------------------------------------------------------------------------
// Server::Impl

Server::Impl::Impl(const ServerOptions& opts)
    : options(opts),
      admission(opts.admission),
      connections_total(registry.counter("aapc_netd_connections_total",
                                         "TCP connections accepted")),
      connections_active(registry.gauge("aapc_netd_connections_active",
                                        "Currently admitted connections")),
      midframe_disconnects(registry.counter(
          "aapc_netd_midframe_disconnects_total",
          "Peers that hung up with a partial frame buffered")),
      response_drops(registry.counter(
          "aapc_netd_response_drops_total",
          "Responses dropped because the client disconnected first "
          "(EPIPE/ECONNRESET or closed before delivery)")),
      request_frame_bytes(registry.histogram(
          "aapc_netd_request_frame_bytes",
          "Size of received request frames (header + payload)",
          frame_bytes_bounds())),
      response_frame_bytes(registry.histogram(
          "aapc_netd_response_frame_bytes",
          "Size of sent response frames (header + payload)",
          frame_bytes_bounds())),
      churn_events(registry.counter("aapc_netd_churn_events_total",
                                    "Fabric link events applied")),
      churn_rejects(registry.counter(
          "aapc_netd_churn_rejects_total",
          "Fabric link events rejected (no fabric, bad link, or the "
          "event would disconnect the bridge graph)")),
      reelections(registry.counter(
          "aapc_netd_reelections_total",
          "Churn events that changed the elected spanning tree")) {
  AAPC_REQUIRE(options.shards >= 1, "ServerOptions::shards must be >= 1");
  AAPC_REQUIRE(options.event_loops >= 1,
               "ServerOptions::event_loops must be >= 1");
  services.reserve(static_cast<std::size_t>(options.shards));
  for (std::int32_t i = 0; i < options.shards; ++i) {
    services.push_back(
        std::make_unique<service::ScheduleService>(options.service));
    const obs::Labels labels{{"shard", std::to_string(i)}};
    shard_requests.push_back(&registry.counter(
        "aapc_netd_requests_total", "Requests dispatched, by backend shard",
        labels));
    shard_request_seconds.push_back(&registry.histogram(
        "aapc_netd_request_seconds",
        "Dispatch-to-response latency, by backend shard",
        obs::default_latency_bounds(), labels));
  }
  if (options.fabric != nullptr) {
    const std::lock_guard<std::mutex> lock(fabric_mutex);
    fabric_tree = stp::compute_spanning_tree(*options.fabric);
    bind_elected_tree();
  }
}

/// Re-canonicalizes the elected tree and (re)binds its hash into every
/// shard's epoch feed: one LinkBinding per forwarding bridge link,
/// translated bridge link -> tree LinkId -> canonical LinkId. Machine
/// access links are not bound (churn frames script bridge links, same
/// convention as FaultPlan).
void Server::Impl::bind_elected_tree() {
  const service::Canonicalization canon =
      service::canonicalize(fabric_tree.topology);
  std::vector<service::TopologyEpochs::LinkBinding> bindings;
  const std::vector<bool>& forwarding = fabric_tree.forwarding;
  for (std::size_t b = 0; b < forwarding.size(); ++b) {
    if (!forwarding[b]) continue;
    const topology::LinkId tree_link =
        fabric_tree.link_of_bridge_link[b];
    if (tree_link < 0) continue;
    bindings.push_back({static_cast<std::int32_t>(b),
                        canon.link_to_canonical[tree_link]});
  }
  for (const std::unique_ptr<service::ScheduleService>& service : services) {
    if (fabric_hash != 0 && fabric_hash != canon.hash) {
      service->epochs().unbind(fabric_hash);
    }
    service->epochs().bind(canon.hash, bindings,
                           fabric_tree.topology.link_count());
  }
  fabric_hash = canon.hash;
}

ChurnAckFrame Server::Impl::apply_churn(const ChurnEventFrame& event) {
  AAPC_REQUIRE(options.fabric != nullptr,
               "this server has no bridged fabric configured; churn "
               "events have nothing to act on");
  const stp::BridgeNetwork& fabric = *options.fabric;
  AAPC_REQUIRE(event.link >= 0 && event.link < fabric.bridge_link_count(),
               "churn event names bridge link " << event.link
                   << " but the fabric has " << fabric.bridge_link_count());

  const std::lock_guard<std::mutex> lock(fabric_mutex);
  const SimTime when = static_cast<SimTime>(fabric_seq + 1);
  faults::FaultEvent fault;
  double factor = 1.0;
  switch (event.kind) {
    case ChurnKind::kLinkDegrade:
      AAPC_REQUIRE(event.factor > 0 && event.factor <= 1.0,
                   "degrade factor must be in (0, 1], got " << event.factor);
      fault = faults::FaultEvent::link_degrade(when, event.link, event.factor);
      factor = event.factor;
      break;
    case ChurnKind::kLinkDown:
      fault = faults::FaultEvent::link_down(when, event.link);
      factor = 0;
      break;
    case ChurnKind::kLinkUp:
      fault = faults::FaultEvent::link_up(when, event.link);
      factor = 1.0;
      break;
  }

  // Trial first: elect_residual throws InvalidArgument when the event
  // disconnects the bridge graph. Nothing below runs in that case, so a
  // bad operator feed cannot wedge the serving state.
  faults::FaultPlan candidate = fabric_plan;
  candidate.add(fault);
  stp::SpanningTree elected =
      faults::elect_residual(fabric, candidate, when);

  // Commit: record the event, feed every shard's epoch layer, rebind if
  // the election moved traffic onto different physical links.
  fabric_plan = std::move(candidate);
  fabric_seq += 1;
  churn_events.inc();
  ChurnAckFrame ack;
  for (const std::unique_ptr<service::ScheduleService>& service : services) {
    const service::TopologyEpochs::EventResult result =
        service->epochs().link_event(event.link, factor);
    ack.epoch = result.epoch;  // uniform: events reach shards in order
    ack.invalidated += static_cast<std::uint64_t>(result.invalidated);
  }
  const bool tree_changed =
      elected.forwarding != fabric_tree.forwarding ||
      elected.link_of_bridge_link != fabric_tree.link_of_bridge_link;
  if (tree_changed) {
    fabric_tree = std::move(elected);
    bind_elected_tree();
    ack.reelected = true;
    reelections.inc();
  }
  return ack;
}

Server::Impl::~Impl() = default;

obs::Counter& Server::Impl::reject_counter(ErrorCode code) {
  // Registration is idempotent and cheap after first use; causes are a
  // small closed set so the series stay bounded.
  return registry.counter("aapc_netd_rejects_total",
                          "Requests answered with an error frame, by cause",
                          obs::Labels{{"cause", error_code_name(code)}});
}

double Server::Impl::overload_retry_hint() const {
  // Expected queue drain time: depth x a nominal 50 ms compile over the
  // dispatcher width. Deliberately coarse — the precise hint for pool
  // saturation comes from ServiceOverloaded itself; this one only
  // covers the front-end queue filling faster than dispatch.
  const double depth =
      static_cast<double>(dispatcher != nullptr ? dispatcher->queue_depth()
                                                : 0);
  const double workers = static_cast<double>(std::max(
      1, options.dispatch_threads));
  return 0.05 * (depth + workers) / workers;
}

void Server::Impl::refuse_connection(int fd, ErrorCode code,
                                     const std::string& message) {
  reject_counter(code).inc();
  ErrorFrame error;
  error.code = code;
  error.retry_after_ms = to_retry_ms(0.5);
  error.message = message;
  const std::string bytes = encode_error(error);
  // Best-effort: the socket buffer of a fresh connection always holds
  // one small frame, so the client sees a structured refusal rather
  // than a bare RST.
  [[maybe_unused]] const ssize_t n =
      ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  ::close(fd);
}

void Server::Impl::accept_loop() {
  while (!accept_stop.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout ms=*/100);
    if (ready <= 0) continue;
    while (true) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        if (accept_stop.load(std::memory_order_acquire)) return;
        AAPC_WARN("accept4 failed: " << std::strerror(errno));
        break;
      }
      connections_total.inc();
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (!admission.try_admit_connection()) {
        refuse_connection(fd, ErrorCode::kConnectionLimit,
                          "connection limit reached");
        continue;
      }
      connections_active.add(1);
      const std::size_t loop_index =
          next_loop.fetch_add(1, std::memory_order_relaxed) % loops.size();
      loops[loop_index]->adopt(fd);
    }
  }
}

void Server::Impl::deliver(const ConnectionPtr& conn, std::string bytes) {
  bool dropped;
  {
    const std::lock_guard<std::mutex> lock(conn->mutex);
    dropped = conn->closed;
    if (!dropped) conn->out.append(bytes);
  }
  if (dropped) {
    response_drops.inc();
    return;
  }
  conn->loop->request_flush(conn);
}

void Server::Impl::fail_request(const ConnectionPtr& conn,
                                std::uint64_t request_id, ErrorCode code,
                                double retry_after_seconds,
                                const std::string& message) {
  ErrorFrame error;
  error.request_id = request_id;
  error.code = code;
  error.retry_after_ms = to_retry_ms(retry_after_seconds);
  error.message = message;
  deliver(conn, encode_error(error));
}

void Server::Impl::handle_compile(const DispatchItem& item) {
  const RequestFrame& request = item.request;
  topology::Topology topo;
  service::Canonicalization canon;
  try {
    topo = topology::parse_topology(request.topology_text);
    canon = service::canonicalize(topo);
  } catch (const Error& e) {
    reject_counter(ErrorCode::kInvalidRequest).inc();
    fail_request(item.conn, request.request_id, ErrorCode::kInvalidRequest, 0,
                 std::string("malformed topology: ") + e.what());
    return;
  }
  const std::uint32_t shard = static_cast<std::uint32_t>(
      canon.hash % static_cast<std::uint64_t>(services.size()));
  shard_requests[shard]->inc();
  try {
    const service::CompiledRoutine routine =
        services[shard]->compile(topo, request.message_bytes, canon,
                                 request.kind, request.neighbors);
    ResponseFrame response;
    response.request_id = request.request_id;
    response.cache_hit = routine.cache_hit;
    response.coalesced = routine.coalesced;
    response.stale = routine.stale;
    response.epoch = routine.epoch;
    response.shard = shard;
    response.canonical_hash = canon.hash;
    response.to_canonical = routine.to_canonical;
    response.schedule_json =
        core::schedule_to_json(routine.schedule, topo.machine_count());
    std::string bytes = encode_response(response);
    request_frame_bytes.observe(
        static_cast<double>(item.request_frame_bytes));
    response_frame_bytes.observe(static_cast<double>(bytes.size()));
    shard_request_seconds[shard]->observe(seconds_since(item.arrival));
    deliver(item.conn, std::move(bytes));
  } catch (const service::ServiceOverloaded& overloaded) {
    reject_counter(ErrorCode::kOverloaded).inc();
    fail_request(item.conn, request.request_id, ErrorCode::kOverloaded,
                 overloaded.retry_after_seconds(), overloaded.what());
  } catch (const InvalidArgument& e) {
    reject_counter(ErrorCode::kInvalidRequest).inc();
    fail_request(item.conn, request.request_id, ErrorCode::kInvalidRequest, 0,
                 e.what());
  } catch (const std::exception& e) {
    reject_counter(ErrorCode::kInternal).inc();
    fail_request(item.conn, request.request_id, ErrorCode::kInternal, 0,
                 std::string("internal error: ") + e.what());
  }
}

obs::RegistrySnapshot Server::Impl::merged_snapshot() const {
  obs::RegistrySnapshot merged = registry.snapshot();
  for (std::size_t i = 0; i < services.size(); ++i) {
    obs::RegistrySnapshot shard_snapshot = services[i]->metrics_snapshot();
    for (obs::SeriesSnapshot& series : shard_snapshot.series) {
      series.labels.emplace_back("shard", std::to_string(i));
      std::sort(series.labels.begin(), series.labels.end());
      merged.series.push_back(std::move(series));
    }
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Server

Server::Server(const ServerOptions& options) : options_(options) {}

Server::~Server() { stop(); }

std::uint16_t Server::port() const {
  AAPC_REQUIRE(impl_ != nullptr, "Server::port() before start()");
  return impl_->bound_port;
}

std::int64_t Server::active_connections() const {
  AAPC_REQUIRE(impl_ != nullptr, "Server::active_connections() before "
                                 "start()");
  return impl_->admission.active_connections();
}

obs::RegistrySnapshot Server::metrics_snapshot() const {
  AAPC_REQUIRE(impl_ != nullptr, "Server::metrics_snapshot() before start()");
  return impl_->merged_snapshot();
}

service::ScheduleService& Server::shard(std::int32_t index) {
  AAPC_REQUIRE(impl_ != nullptr, "Server::shard() before start()");
  AAPC_REQUIRE(index >= 0 &&
                   static_cast<std::size_t>(index) < impl_->services.size(),
               "shard index " << index << " out of range");
  return *impl_->services[static_cast<std::size_t>(index)];
}

void Server::start() {
  AAPC_REQUIRE(!running(), "Server::start() called twice");
  // A client that disappears mid-write must surface as EPIPE on the
  // send, not kill the process (lifecycle satellite, docs/NETD.md §6).
  ::signal(SIGPIPE, SIG_IGN);

  impl_ = std::make_unique<Impl>(options_);
  Impl& impl = *impl_;

  impl.listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  AAPC_CHECK_MSG(impl.listen_fd >= 0, "socket: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(impl.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  AAPC_REQUIRE(::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) ==
                   1,
               "invalid listen address '" << options_.host << "'");
  AAPC_REQUIRE(::bind(impl.listen_fd,
                      reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind " << options_.host << ":" << options_.port << ": "
                       << std::strerror(errno));
  AAPC_CHECK_MSG(::listen(impl.listen_fd, 1024) == 0,
                 "listen: " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  AAPC_CHECK(::getsockname(impl.listen_fd,
                           reinterpret_cast<sockaddr*>(&bound),
                           &bound_len) == 0);
  impl.bound_port = ntohs(bound.sin_port);

  for (std::int32_t i = 0; i < options_.event_loops; ++i) {
    impl.loops.push_back(std::make_unique<EventLoop>(&impl));
  }
  for (const std::unique_ptr<EventLoop>& loop : impl.loops) loop->start();
  impl.dispatcher = std::make_unique<Dispatcher>(
      &impl, options_.dispatch_threads, options_.dispatch_queue_capacity);
  impl.acceptor = std::thread([this] { impl_->accept_loop(); });
  running_.store(true, std::memory_order_release);
  AAPC_INFO("aapc_netd listening on " << options_.host << ":"
                                      << impl.bound_port << " ("
                                      << options_.shards << " shards, "
                                      << options_.event_loops
                                      << " event loops)");
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  Impl& impl = *impl_;

  // 1. Stop admitting: no new connections, new requests get
  //    kShuttingDown error frames.
  impl.draining.store(true, std::memory_order_release);
  impl.accept_stop.store(true, std::memory_order_release);
  if (impl.acceptor.joinable()) impl.acceptor.join();
  ::close(impl.listen_fd);
  impl.listen_fd = -1;

  // 2. Drain: wait (bounded) for everything already dispatched. The
  //    compiler pools keep running, so in-flight compilations complete
  //    rather than being abandoned mid-future.
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(options_.drain_deadline_seconds));
  while (impl.in_flight_requests.load(std::memory_order_acquire) > 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::int64_t abandoned =
      impl.in_flight_requests.load(std::memory_order_acquire);
  if (abandoned > 0) {
    AAPC_WARN("drain deadline reached with " << abandoned
                                             << " requests still queued; "
                                                "failing them with "
                                                "kShuttingDown");
  }

  // 3. Join dispatchers: executing items finish, queued items (only
  //    present when the deadline was hit) are failed with structured
  //    kShuttingDown frames instead of silent drops.
  impl.dispatcher->stop_and_join(/*abandon_remaining=*/true);

  // 4. Stop event loops; each flushes pending responses best-effort
  //    and closes its connections on the way out.
  for (const std::unique_ptr<EventLoop>& loop : impl.loops) {
    loop->begin_stop();
  }
  for (const std::unique_ptr<EventLoop>& loop : impl.loops) loop->join();
}

}  // namespace aapc::netd
