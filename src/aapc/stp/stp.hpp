// Spanning tree election for bridged Ethernet LANs.
//
// §3 of the paper assumes "switches use a spanning tree algorithm to
// determine forwarding paths ... thus, the physical topology of the
// network is always a tree". This module implements that assumption:
// given an arbitrary (possibly cyclic, multi-path) switch graph with
// IEEE-802.1D-style bridge IDs and port costs, it elects the root
// bridge, selects each bridge's root port, blocks redundant links, and
// produces the machine-leaf `topology::Topology` the scheduler consumes.
//
// Election rules (802.1D distilled):
//   1. Root bridge: smallest bridge id (priority then MAC).
//   2. Root port of bridge b: neighbor link minimizing
//      (root path cost, neighbor bridge id, link id).
//   3. A bridge-to-bridge link forwards iff it is some bridge's root
//      port; all other switch links are blocked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aapc/topology/topology.hpp"

namespace aapc::stp {

using BridgeId = std::int32_t;

/// A bridged LAN under construction: bridges (switches running STP),
/// weighted bridge-to-bridge links, and machines attached to bridges.
class BridgeNetwork {
 public:
  /// `bridge_identifier` is the concatenated (priority, MAC) value used
  /// for root election; lower wins. Must be unique.
  BridgeId add_bridge(std::string name, std::uint64_t bridge_identifier);

  /// Adds a (possibly redundant) bridge link with an STP path cost
  /// (e.g. 19 for 100 Mbps in classic 802.1D). Parallel links allowed.
  std::int32_t add_bridge_link(BridgeId a, BridgeId b, std::int32_t cost = 19);

  /// Attaches a machine (end host; never blocks, never elected).
  void add_machine(std::string name, BridgeId bridge);

  std::int32_t bridge_count() const {
    return static_cast<std::int32_t>(names_.size());
  }
  std::int32_t bridge_link_count() const {
    return static_cast<std::int32_t>(links_.size());
  }
  std::int32_t machine_count() const {
    return static_cast<std::int32_t>(machines_.size());
  }

  struct BridgeLink {
    BridgeId a;
    BridgeId b;
    std::int32_t cost;
  };
  struct Machine {
    std::string name;
    BridgeId bridge;
  };

  const std::string& bridge_name(BridgeId id) const { return names_[id]; }
  std::uint64_t bridge_identifier(BridgeId id) const { return ids_[id]; }
  const std::vector<BridgeLink>& links() const { return links_; }
  const std::vector<Machine>& machines() const { return machines_; }

 private:
  std::vector<std::string> names_;
  std::vector<std::uint64_t> ids_;
  std::vector<BridgeLink> links_;
  std::vector<Machine> machines_;
};

/// Result of the election.
struct SpanningTree {
  /// The derived tree topology (bridges become switches, machines become
  /// leaves); finalized.
  topology::Topology topology;
  /// Index of the elected root bridge.
  BridgeId root_bridge = -1;
  /// forwarding[i] == true iff bridge link i is in the spanning tree.
  std::vector<bool> forwarding;
  /// Root path cost per bridge.
  std::vector<std::int32_t> root_path_cost;
  /// Per bridge link: the topology LinkId realizing it, or -1 when
  /// blocked. Lets fault plans written against bridge links translate
  /// to the tree a given election produced (and to a repaired tree).
  std::vector<topology::LinkId> link_of_bridge_link;
  /// Per machine (rank order): the topology LinkId of its access link.
  std::vector<topology::LinkId> machine_access_link;

  /// Inverse of link_of_bridge_link: the bridge link this topology
  /// link realizes, or -1 (machine access links and unknown links).
  /// Lets a diagnosis on the elected tree (flight::analyze verdicts)
  /// name the physical bridge link a fault plan was written against.
  std::int32_t bridge_link_of(topology::LinkId link) const;
};

/// Runs the election. Requires a connected bridge graph with at least
/// one bridge and one machine; throws InvalidArgument otherwise.
SpanningTree compute_spanning_tree(const BridgeNetwork& network);

}  // namespace aapc::stp
