#include "aapc/stp/stp.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "aapc/common/error.hpp"

namespace aapc::stp {

BridgeId BridgeNetwork::add_bridge(std::string name,
                                   std::uint64_t bridge_identifier) {
  for (const std::uint64_t existing : ids_) {
    AAPC_REQUIRE(existing != bridge_identifier,
                 "duplicate bridge identifier " << bridge_identifier);
  }
  names_.push_back(std::move(name));
  ids_.push_back(bridge_identifier);
  return static_cast<BridgeId>(names_.size() - 1);
}

std::int32_t BridgeNetwork::add_bridge_link(BridgeId a, BridgeId b,
                                            std::int32_t cost) {
  AAPC_REQUIRE(a >= 0 && a < bridge_count(), "bad bridge id " << a);
  AAPC_REQUIRE(b >= 0 && b < bridge_count(), "bad bridge id " << b);
  AAPC_REQUIRE(a != b, "self link on bridge " << names_[a]);
  AAPC_REQUIRE(cost > 0, "link cost must be positive");
  links_.push_back(BridgeLink{a, b, cost});
  return static_cast<std::int32_t>(links_.size() - 1);
}

void BridgeNetwork::add_machine(std::string name, BridgeId bridge) {
  AAPC_REQUIRE(bridge >= 0 && bridge < bridge_count(),
               "bad bridge id " << bridge);
  machines_.push_back(Machine{std::move(name), bridge});
}

SpanningTree compute_spanning_tree(const BridgeNetwork& network) {
  AAPC_REQUIRE(network.bridge_count() >= 1, "need at least one bridge");
  AAPC_REQUIRE(network.machine_count() >= 1, "need at least one machine");
  const std::int32_t bridges = network.bridge_count();

  // 1. Root election: smallest bridge identifier.
  BridgeId root = 0;
  for (BridgeId b = 1; b < bridges; ++b) {
    if (network.bridge_identifier(b) < network.bridge_identifier(root)) {
      root = b;
    }
  }

  // Adjacency: (neighbor, link index).
  std::vector<std::vector<std::pair<BridgeId, std::int32_t>>> adjacency(
      bridges);
  for (std::size_t l = 0; l < network.links().size(); ++l) {
    const auto& link = network.links()[l];
    adjacency[link.a].emplace_back(link.b, static_cast<std::int32_t>(l));
    adjacency[link.b].emplace_back(link.a, static_cast<std::int32_t>(l));
  }

  // 2. Root path costs (Dijkstra; 802.1D converges to least-cost paths).
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> cost(bridges, kInf);
  cost[root] = 0;
  using QueueEntry = std::pair<std::int64_t, BridgeId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  queue.emplace(0, root);
  while (!queue.empty()) {
    const auto [c, b] = queue.top();
    queue.pop();
    if (c > cost[b]) continue;
    for (const auto& [neighbor, link] : adjacency[b]) {
      const std::int64_t via = c + network.links()[link].cost;
      if (via < cost[neighbor]) {
        cost[neighbor] = via;
        queue.emplace(via, neighbor);
      }
    }
  }
  for (BridgeId b = 0; b < bridges; ++b) {
    AAPC_REQUIRE(cost[b] != kInf, "bridge " << network.bridge_name(b)
                                            << " is disconnected from the "
                                            << "root bridge");
  }

  // 3. Root port per non-root bridge: neighbor minimizing
  //    (neighbor root cost + link cost, neighbor bridge id, link id).
  SpanningTree result;
  result.root_bridge = root;
  result.forwarding.assign(network.links().size(), false);
  result.root_path_cost.assign(bridges, 0);
  for (BridgeId b = 0; b < bridges; ++b) {
    result.root_path_cost[b] = static_cast<std::int32_t>(cost[b]);
    if (b == root) continue;
    std::int32_t best_link = -1;
    std::int64_t best_cost = kInf;
    std::uint64_t best_neighbor_id = 0;
    for (const auto& [neighbor, link] : adjacency[b]) {
      const std::int64_t via = cost[neighbor] + network.links()[link].cost;
      const std::uint64_t neighbor_id = network.bridge_identifier(neighbor);
      const bool better =
          via < best_cost ||
          (via == best_cost && (best_link == -1 ||
                                neighbor_id < best_neighbor_id ||
                                (neighbor_id == best_neighbor_id &&
                                 link < best_link)));
      if (better) {
        best_cost = via;
        best_link = link;
        best_neighbor_id = neighbor_id;
      }
    }
    AAPC_CHECK(best_link >= 0);
    AAPC_CHECK_MSG(best_cost == cost[b],
                   "root port of " << network.bridge_name(b)
                                   << " does not realize its root cost");
    result.forwarding[static_cast<std::size_t>(best_link)] = true;
  }

  // 4. Materialize the machine-leaf tree.
  topology::Topology topo;
  std::vector<topology::NodeId> bridge_node(bridges);
  for (BridgeId b = 0; b < bridges; ++b) {
    bridge_node[b] = topo.add_switch(network.bridge_name(b));
  }
  result.link_of_bridge_link.assign(network.links().size(), -1);
  for (std::size_t l = 0; l < network.links().size(); ++l) {
    if (result.forwarding[l]) {
      const auto& link = network.links()[l];
      result.link_of_bridge_link[l] =
          topo.add_link(bridge_node[link.a], bridge_node[link.b]);
    }
  }
  for (const auto& machine : network.machines()) {
    const topology::NodeId node = topo.add_machine(machine.name);
    result.machine_access_link.push_back(
        topo.add_link(node, bridge_node[machine.bridge]));
  }
  topo.finalize();
  result.topology = std::move(topo);
  return result;
}

std::int32_t SpanningTree::bridge_link_of(topology::LinkId link) const {
  if (link < 0) return -1;
  for (std::size_t l = 0; l < link_of_bridge_link.size(); ++l) {
    if (link_of_bridge_link[l] == link) return static_cast<std::int32_t>(l);
  }
  return -1;
}

}  // namespace aapc::stp
