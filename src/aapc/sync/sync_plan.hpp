// Pair-wise synchronization planning (§5).
//
// The phases of a schedule are only contention-free if they do not bleed
// into one another. Rather than a barrier per phase, the paper inserts a
// *pair-wise synchronization* for every pair of messages (m1 in phase p,
// m2 in phase q > p) that share a directed edge: the sender of m1 sends
// a small token to the sender of m2 after m1 completes, and m2 starts
// only after the token arrives. Synchronizations implied by others
// (transitively) are *redundant* and removed, minimizing token traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/core/schedule.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::sync {

/// A dependency: message `from` (index into Schedule::messages) must
/// complete before message `to` starts.
struct SyncEdge {
  std::int32_t from = -1;
  std::int32_t to = -1;

  friend bool operator==(const SyncEdge&, const SyncEdge&) = default;
  friend auto operator<=>(const SyncEdge&, const SyncEdge&) = default;
};

struct SyncPlanOptions {
  /// Remove transitively implied synchronizations (§5's "redundant
  /// synchronizations"). Off only for the ablation benchmark.
  bool remove_redundant = true;

  enum class Construction {
    /// The paper's §5 procedure: test every message pair, then reduce.
    /// O(n^2) pair tests — exact, fine up to a few thousand messages.
    kAllPairs,
    /// Scalable equivalent: for each directed edge, chain its users in
    /// phase order (consecutive pairs only). The transitive closure —
    /// i.e. which pairs end up ordered — is identical to kAllPairs, so
    /// the serialization guarantee is unchanged; the unreduced edge
    /// count is near-minimal already. O(messages x path length).
    kEdgeChains,
    /// kAllPairs for small schedules, kEdgeChains beyond ~4000 messages.
    kAuto,
  };
  Construction construction = Construction::kAuto;
};

struct SyncPlan {
  /// Surviving dependencies, sorted by (from, to).
  std::vector<SyncEdge> edges;
  /// Count before redundancy removal (the full dependence graph).
  std::int64_t edges_before_reduction = 0;
  /// Edges whose two messages have different senders — these cost a
  /// network token; same-sender edges lower to a local wait.
  std::int64_t cross_node_edges = 0;
};

/// Builds the contention-dependence graph of `schedule` on `topo` and
/// (optionally) removes redundant synchronizations. Messages must be
/// sorted by phase (as produced by core::assign_messages).
SyncPlan build_sync_plan(const topology::Topology& topo,
                         const core::Schedule& schedule,
                         const SyncPlanOptions& options = {});

/// Structural analysis of a plan: how deep the dependency chains are and
/// how the serialization load is distributed. The critical path bounds
/// the run below by (chain length) x (per-message time) — it explains
/// why per-phase overheads multiply on trunk-bound topologies.
struct PlanAnalysis {
  /// Vertices on the longest dependency chain (messages, inclusive).
  std::int32_t critical_path_messages = 0;
  /// Maximum in/out degree over messages.
  std::int32_t max_in_degree = 0;
  std::int32_t max_out_degree = 0;
  /// Edges per message (mean).
  double avg_degree = 0;
};

/// Analyzes `plan` for a schedule of `message_count` messages.
PlanAnalysis analyze_plan(const SyncPlan& plan, std::int64_t message_count);

/// In/out neighbor lists of the dependence graph, indexed by message.
/// Shared by the lowering (which walks predecessors/successors to emit
/// waits and tokens) and flight::analyze() (which replays the graph to
/// compute ready times and slack from recorded completions).
struct PlanAdjacency {
  std::vector<std::vector<std::int32_t>> in;
  std::vector<std::vector<std::int32_t>> out;
};

/// Builds the adjacency lists of `plan` over `message_count` messages;
/// validates that every edge is forward and in range.
PlanAdjacency build_adjacency(const SyncPlan& plan,
                              std::int64_t message_count);

}  // namespace aapc::sync
