#include "aapc/sync/sync_plan.hpp"

#include <algorithm>

#include "aapc/common/error.hpp"

namespace aapc::sync {

namespace {

/// Fixed-width bitset over dynamic word count (std::vector<bool> is too
/// slow for the O(n^2) intersection tests below).
class BitRows {
 public:
  BitRows(std::size_t rows, std::size_t bits)
      : words_per_row_((bits + 63) / 64),
        data_(rows * words_per_row_, 0) {}

  void set(std::size_t row, std::size_t bit) {
    data_[row * words_per_row_ + bit / 64] |= (1ull << (bit % 64));
  }

  bool test(std::size_t row, std::size_t bit) const {
    return (data_[row * words_per_row_ + bit / 64] >> (bit % 64)) & 1ull;
  }

  bool rows_intersect(std::size_t a, std::size_t b) const {
    const std::uint64_t* pa = &data_[a * words_per_row_];
    const std::uint64_t* pb = &data_[b * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      if (pa[w] & pb[w]) return true;
    }
    return false;
  }

  /// row_a |= row_b.
  void merge_into(std::size_t a, std::size_t b) {
    std::uint64_t* pa = &data_[a * words_per_row_];
    const std::uint64_t* pb = &data_[b * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      pa[w] |= pb[w];
    }
  }

 private:
  std::size_t words_per_row_;
  std::vector<std::uint64_t> data_;
};

}  // namespace

SyncPlan build_sync_plan(const topology::Topology& topo,
                         const core::Schedule& schedule,
                         const SyncPlanOptions& options) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const auto n = static_cast<std::size_t>(schedule.messages.size());
  for (std::size_t i = 1; i < n; ++i) {
    AAPC_REQUIRE(schedule.messages[i - 1].phase <= schedule.messages[i].phase,
                 "schedule messages must be sorted by phase");
  }

  const bool all_pairs =
      options.construction == SyncPlanOptions::Construction::kAllPairs ||
      (options.construction == SyncPlanOptions::Construction::kAuto &&
       n <= 4000);

  std::vector<std::vector<std::int32_t>> succ(n);
  std::vector<topology::EdgeId> path;
  SyncPlan plan;
  if (all_pairs) {
    // Path bitmask per message over directed edges. Built only on this
    // branch: at n messages and E directed edges it costs n*E bits —
    // ~20 GB for a 4096-rank schedule — while the edge-chain
    // construction below never needs it.
    BitRows paths(n, static_cast<std::size_t>(topo.directed_edge_count()));
    for (std::size_t i = 0; i < n; ++i) {
      const core::Message& m = schedule.messages[i].message;
      topo.path_into(topo.machine_node(m.src), topo.machine_node(m.dst),
                     path);
      for (const topology::EdgeId e : path) {
        paths.set(i, static_cast<std::size_t>(e));
      }
    }
    // Full dependence graph (§5): edge i -> j for i < j in phase order
    // when the paths intersect and the phases differ. (Messages are
    // phase-sorted; intra-phase pairs are contention-free by
    // construction.)
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (schedule.messages[i].phase == schedule.messages[j].phase) {
          continue;
        }
        if (paths.rows_intersect(i, j)) {
          succ[i].push_back(static_cast<std::int32_t>(j));
          ++plan.edges_before_reduction;
        }
      }
    }
  } else {
    // Scalable construction: per directed edge, chain consecutive users
    // in message (= phase) order. Orders exactly the same pairs
    // transitively as the all-pairs graph. Deduplicate edges arising
    // from multiple shared links.
    std::vector<std::int32_t> last_user(
        static_cast<std::size_t>(topo.directed_edge_count()), -1);
    std::vector<std::vector<std::int32_t>> pred_dedupe(n);
    for (std::size_t j = 0; j < n; ++j) {
      const core::Message& m = schedule.messages[j].message;
      topo.path_into(topo.machine_node(m.src), topo.machine_node(m.dst),
                     path);
      for (const topology::EdgeId e : path) {
        const std::int32_t i = last_user[static_cast<std::size_t>(e)];
        last_user[static_cast<std::size_t>(e)] =
            static_cast<std::int32_t>(j);
        if (i < 0) continue;
        if (schedule.messages[static_cast<std::size_t>(i)].phase ==
            schedule.messages[j].phase) {
          continue;
        }
        auto& preds = pred_dedupe[j];
        if (std::find(preds.begin(), preds.end(), i) == preds.end()) {
          preds.push_back(i);
          succ[static_cast<std::size_t>(i)].push_back(
              static_cast<std::int32_t>(j));
          ++plan.edges_before_reduction;
        }
      }
    }
    for (auto& successors : succ) {
      std::sort(successors.begin(), successors.end());
    }
  }

  // The bitset reduction is O(n^2) bits of memory; for very large
  // schedules the edge-chain construction is already near-minimal, so
  // skip the reduction there rather than allocating gigabytes.
  const bool reduce = options.remove_redundant && n > 0 && n <= 20000;
  if (reduce) {
    // reach[i] = vertices reachable from i via >= 1 edge. Processing in
    // reverse index order works because all edges go forward in index.
    BitRows reach(n, n);
    for (std::size_t i = n; i-- > 0;) {
      for (const std::int32_t j : succ[i]) {
        reach.set(i, static_cast<std::size_t>(j));
        reach.merge_into(i, static_cast<std::size_t>(j));
      }
    }
    // Edge (i, j) is redundant iff some other direct successor v of i
    // reaches j (then i -> v -> ... -> j orders the pair without it).
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::int32_t j : succ[i]) {
        bool redundant = false;
        for (const std::int32_t v : succ[i]) {
          if (v != j && reach.test(static_cast<std::size_t>(v),
                                   static_cast<std::size_t>(j))) {
            redundant = true;
            break;
          }
        }
        if (!redundant) {
          plan.edges.push_back(SyncEdge{static_cast<std::int32_t>(i), j});
        }
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::int32_t j : succ[i]) {
        plan.edges.push_back(SyncEdge{static_cast<std::int32_t>(i), j});
      }
    }
  }

  std::sort(plan.edges.begin(), plan.edges.end());
  for (const SyncEdge& e : plan.edges) {
    if (schedule.messages[static_cast<std::size_t>(e.from)].message.src !=
        schedule.messages[static_cast<std::size_t>(e.to)].message.src) {
      ++plan.cross_node_edges;
    }
  }
  return plan;
}

PlanAnalysis analyze_plan(const SyncPlan& plan,
                          std::int64_t message_count) {
  PlanAnalysis analysis;
  if (message_count <= 0) return analysis;
  const auto n = static_cast<std::size_t>(message_count);
  std::vector<std::int32_t> in_degree(n, 0);
  std::vector<std::int32_t> out_degree(n, 0);
  // Longest chain: edges go forward in message index, so one pass of
  // dynamic programming over edges sorted by source suffices.
  std::vector<std::int32_t> depth(n, 1);
  for (const SyncEdge& e : plan.edges) {
    AAPC_REQUIRE(e.from >= 0 && e.to >= 0 &&
                     e.from < message_count && e.to < message_count &&
                     e.from < e.to,
                 "plan edge out of range or not forward");
    ++out_degree[static_cast<std::size_t>(e.from)];
    ++in_degree[static_cast<std::size_t>(e.to)];
  }
  for (const SyncEdge& e : plan.edges) {
    depth[static_cast<std::size_t>(e.to)] =
        std::max(depth[static_cast<std::size_t>(e.to)],
                 depth[static_cast<std::size_t>(e.from)] + 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    analysis.critical_path_messages =
        std::max(analysis.critical_path_messages, depth[i]);
    analysis.max_in_degree = std::max(analysis.max_in_degree, in_degree[i]);
    analysis.max_out_degree =
        std::max(analysis.max_out_degree, out_degree[i]);
  }
  analysis.avg_degree =
      static_cast<double>(plan.edges.size()) / static_cast<double>(n);
  return analysis;
}

PlanAdjacency build_adjacency(const SyncPlan& plan,
                              std::int64_t message_count) {
  AAPC_REQUIRE(message_count >= 0, "negative message count");
  PlanAdjacency adjacency;
  const auto n = static_cast<std::size_t>(message_count);
  adjacency.in.resize(n);
  adjacency.out.resize(n);
  for (const SyncEdge& e : plan.edges) {
    AAPC_REQUIRE(e.from >= 0 && e.to >= 0 &&
                     e.from < message_count && e.to < message_count &&
                     e.from < e.to,
                 "plan edge out of range or not forward");
    adjacency.in[static_cast<std::size_t>(e.to)].push_back(e.from);
    adjacency.out[static_cast<std::size_t>(e.from)].push_back(e.to);
  }
  return adjacency;
}

}  // namespace aapc::sync
