// Segment-level packet simulator: the first-principles counterpart of
// the fluid model.
//
// Where `simnet` *assumes* calibrated contention losses (incast, trunk
// congestion), this module derives them: messages are split into
// MTU-sized segments that traverse store-and-forward switches with
// finite drop-tail output queues; senders keep a fixed window of
// segments outstanding and recover losses by retransmission after a
// timeout — a deliberately simple transport (fixed window + RTO,
// stop-and-repeat) that captures the two phenomena behind the paper's
// measurements:
//   * incast: many windows converging on one output port overflow its
//     buffer; timeouts idle the senders and goodput collapses;
//   * contention-free transfers: a single flow per link streams at wire
//     speed minus header overhead.
//
// It is used by bench_model_validation to check that the fluid model's
// eta(k) curves have the right shape, and by tests as an independent
// reference for small scenarios. It is intentionally NOT plugged into
// the mpisim executor: the fluid model remains the measurement
// substrate (it is ~1000x faster); the packet model is the instrument
// that justifies it.
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::packetsim {

struct PacketNetworkParams {
  /// Raw link bandwidth (both directions independently).
  double link_bandwidth_bytes_per_sec = mbps_to_bytes_per_sec(100.0);
  /// Segment payload (MTU minus headers).
  Bytes segment_payload = 1460;
  /// Wire bytes per segment (payload + Ethernet/IP/TCP headers).
  Bytes segment_overhead = 78;
  /// Output-queue capacity per directed edge, in segments (~48 KB —
  /// era-appropriate for unmanaged 100 Mbps switches; together with the
  /// 40 ms timeout this reproduces the fluid model's calibrated incast
  /// curve almost exactly, see bench_model_validation).
  std::int32_t queue_capacity_segments = 32;
  /// Fixed per-link propagation/processing latency.
  SimTime link_latency = microseconds(5.0);
  /// Segments a sender keeps outstanding per message (fixed window, or
  /// the initial/maximum bounds of the AIMD window).
  std::int32_t window_segments = 12;

  enum class Transport {
    /// Fixed sliding window + RTO: the simplest transport exhibiting
    /// incast timeout collapse.
    kFixedWindow,
    /// TCP-flavoured congestion control: additive increase (one segment
    /// per window of in-order deliveries), multiplicative decrease
    /// (halve on timeout), starting from 2 segments up to
    /// `window_segments`. Adapts under trunk multiplexing the way real
    /// flows do.
    kAimd,
  };
  Transport transport = Transport::kFixedWindow;
  /// Retransmission timeout after injecting a segment.
  SimTime retransmit_timeout = milliseconds(40.0);
  /// Latency of the (unmodelled) ack path: the sender learns about a
  /// delivery this long after it happens.
  SimTime ack_latency = microseconds(120.0);
};

/// One message to transfer.
struct PacketMessage {
  topology::Rank src = -1;
  topology::Rank dst = -1;
  Bytes bytes = 0;
  SimTime start = 0;
};

struct PacketResult {
  /// Per-message completion times (all segments delivered).
  std::vector<SimTime> completion;
  /// Time the last message completed.
  SimTime makespan = 0;
  std::int64_t segments_sent = 0;     // includes retransmissions
  std::int64_t segments_dropped = 0;
  std::int64_t retransmissions = 0;
  /// Delivered payload bytes / makespan.
  double goodput_bytes_per_sec = 0;
};

/// Runs the scenario to completion. Deterministic: ties are broken by
/// (event time, sequence). Throws InvalidArgument on malformed
/// messages; guards against livelock with an internal event cap.
PacketResult simulate_packets(const topology::Topology& topo,
                              const std::vector<PacketMessage>& messages,
                              const PacketNetworkParams& params = {});

}  // namespace aapc::packetsim
