// Segment-level packet simulator: the first-principles counterpart of
// the fluid model.
//
// Where `simnet` *assumes* calibrated contention losses (incast, trunk
// congestion), this module derives them: messages are split into
// MTU-sized segments that traverse store-and-forward switches with
// finite drop-tail output queues; senders keep a window of segments
// outstanding and recover losses by retransmission. Three transports
// are modelled:
//   * kFixedWindow — fixed sliding window + RTO (stop-and-repeat): the
//     simplest transport exhibiting incast timeout collapse;
//   * kAimd — TCP-flavoured congestion control (additive increase,
//     multiplicative decrease, dup-ack fast retransmit);
//   * kSelectiveRepeat — per-segment SACK: the window counts
//     outstanding segments instead of spanning [base, base+W), so a
//     hole never stalls new transmissions, and fast retransmit repairs
//     it without waiting for the RTO. Goodput degrades gracefully under
//     random loss instead of RTO-collapsing.
//
// Beyond deterministic queue-overflow drops, the simulator injects
// *stochastic* network faults driven by the seeded deterministic RNG in
// common/rng (every run is exactly reproducible from its seed):
// per-directed-link Bernoulli loss, Gilbert-Elliott burst loss,
// checksum-detected segment corruption (counted separately from
// drops/losses), and jitter-induced reordering. A configuration with
// every rate at zero performs no RNG draws at all and is bit-identical
// to the fault-free simulator.
//
// The simulator has two entry points: the batch `simulate_packets`
// (used by bench_model_validation and tests) and the incremental
// `PacketNetwork` class, which exposes the same event-driven interface
// as `simnet::FluidNetwork` (add/advance/cancel) so the mpisim executor
// can run generated schedules end-to-end over the packet model via the
// `mpisim::NetworkBackend` seam.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <vector>

#include "aapc/common/rng.hpp"
#include "aapc/common/units.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::packetsim {

/// Stochastic network-fault model. All probabilities are per segment
/// per directed-link traversal; all randomness flows from `seed`
/// through one deterministic stream, so a (config, seed) pair
/// reproduces a run bit for bit. Defaults are fully inert: with every
/// rate at zero no RNG draw is performed and the simulation is
/// bit-identical to the fault-free model.
struct PacketFaultParams {
  /// Uniform Bernoulli segment-loss probability per directed-link
  /// traversal, in [0, 1).
  double loss_rate = 0.0;
  /// Per-directed-edge overrides of `loss_rate` (EdgeId, probability).
  /// Lets tests and experiments concentrate loss on one trunk
  /// direction.
  std::vector<std::pair<topology::EdgeId, double>> edge_loss;

  /// Gilbert-Elliott burst loss: each directed link carries a two-state
  /// (good/bad) Markov chain stepped once per segment traversal. The
  /// chain is active only when `ge_p_good_to_bad > 0`.
  double ge_p_good_to_bad = 0.0;
  double ge_p_bad_to_good = 0.1;
  /// Loss probability while the link is in the bad state (burst) and in
  /// the good state (background).
  double ge_loss_rate = 0.0;
  double ge_good_loss_rate = 0.0;

  /// Probability that a segment arrives at its destination corrupted.
  /// The receiver's checksum detects it and discards the segment
  /// (counted in PacketResult::segments_corrupted, separately from
  /// drops and losses); the transport recovers it like a loss.
  double corruption_rate = 0.0;

  /// Jitter-induced reordering: every link traversal adds a uniform
  /// [0, jitter_max) delay on top of link_latency, so segments can
  /// overtake each other across queues.
  SimTime jitter_max = 0.0;

  /// Seed of the deterministic fault stream.
  std::uint64_t seed = 0x5EEDF00Dull;

  /// True when any mechanism can fire (some rate is nonzero).
  bool active() const {
    if (loss_rate > 0 || corruption_rate > 0 || jitter_max > 0) return true;
    if (ge_p_good_to_bad > 0 && (ge_loss_rate > 0 || ge_good_loss_rate > 0)) {
      return true;
    }
    for (const auto& [edge, rate] : edge_loss) {
      if (rate > 0) return true;
    }
    return false;
  }
};

struct PacketNetworkParams {
  /// Raw link bandwidth (both directions independently).
  double link_bandwidth_bytes_per_sec = mbps_to_bytes_per_sec(100.0);
  /// Segment payload (MTU minus headers).
  Bytes segment_payload = 1460;
  /// Wire bytes per segment (payload + Ethernet/IP/TCP headers).
  Bytes segment_overhead = 78;
  /// Output-queue capacity per directed edge, in segments (~48 KB —
  /// era-appropriate for unmanaged 100 Mbps switches; together with the
  /// 40 ms timeout this reproduces the fluid model's calibrated incast
  /// curve almost exactly, see bench_model_validation).
  std::int32_t queue_capacity_segments = 32;
  /// Fixed per-link propagation/processing latency.
  SimTime link_latency = microseconds(5.0);
  /// Segments a sender keeps outstanding per message (fixed window, or
  /// the initial/maximum bounds of the AIMD window).
  std::int32_t window_segments = 12;

  enum class Transport {
    /// Fixed sliding window + RTO: the simplest transport exhibiting
    /// incast timeout collapse.
    kFixedWindow,
    /// TCP-flavoured congestion control: additive increase (one segment
    /// per window of in-order deliveries), multiplicative decrease
    /// (halve on timeout), starting from 2 segments up to
    /// `window_segments`. Adapts under trunk multiplexing the way real
    /// flows do.
    kAimd,
    /// Per-segment SACK + fast retransmit: the window bounds the number
    /// of outstanding (sent, unacked) segments, so a lost segment never
    /// blocks new transmissions; three deliveries above a hole resend
    /// the hole immediately. Degrades gracefully under random loss
    /// where kFixedWindow RTO-collapses.
    kSelectiveRepeat,
  };
  Transport transport = Transport::kFixedWindow;
  /// Retransmission timeout after injecting a segment.
  SimTime retransmit_timeout = milliseconds(40.0);
  /// Latency of the (unmodelled) ack path: the sender learns about a
  /// delivery this long after it happens.
  SimTime ack_latency = microseconds(120.0);

  /// Stochastic loss/corruption/reordering model (inert by default).
  PacketFaultParams faults;

  /// Livelock guard: the simulation throws a diagnostic error (naming
  /// the stuck messages and their outstanding segments) after this many
  /// events. Generous but finite.
  std::int64_t max_events = 400'000'000;
};

/// Human-readable transport name ("fixed-window", "aimd",
/// "selective-repeat").
const char* transport_name(PacketNetworkParams::Transport transport);

/// One message to transfer.
struct PacketMessage {
  topology::Rank src = -1;
  topology::Rank dst = -1;
  Bytes bytes = 0;
  SimTime start = 0;
};

struct PacketResult {
  /// Per-message completion times (all segments delivered); 0 for
  /// incomplete or canceled messages.
  std::vector<SimTime> completion;
  /// Time the last message completed.
  SimTime makespan = 0;
  std::int64_t segments_sent = 0;     // includes retransmissions
  std::int64_t segments_dropped = 0;  // queue-overflow drops
  std::int64_t retransmissions = 0;
  /// Segments destroyed by the stochastic link-loss model (Bernoulli +
  /// Gilbert-Elliott), separately from queue overflow.
  std::int64_t segments_lost = 0;
  /// Segments discarded by the receiver's checksum (corruption model).
  std::int64_t segments_corrupted = 0;
  /// Delivered payload bytes / makespan.
  double goodput_bytes_per_sec = 0;
  /// Retransmissions per message (which flows suffered, not just how
  /// much total).
  std::vector<std::int32_t> message_retransmissions;
  /// Peak waiting-queue depth per directed edge, in segments (the
  /// serializing segment not included).
  std::vector<std::int32_t> peak_queue_segments;
  /// max over peak_queue_segments: the most congested port's high-water
  /// mark.
  std::int32_t peak_queue_occupancy = 0;
};

/// Incremental, event-driven packet simulator. Deterministic: ties are
/// broken by (event time, sequence); stochastic faults draw from one
/// seeded stream in event order. Messages can be added while the
/// simulation runs (start >= now()), which is what lets the mpisim
/// executor drive it as a network backend.
class PacketNetwork {
 public:
  using MessageId = std::int32_t;

  /// `kNoEvent` from next_event_time(): nothing scheduled.
  static constexpr SimTime kNoEvent = std::numeric_limits<double>::infinity();

  PacketNetwork(const topology::Topology& topo,
                const PacketNetworkParams& params);

  /// Current simulated time (high-water mark of processed events /
  /// advance_to targets).
  SimTime now() const { return now_; }

  /// Registers a message of `bytes` payload from rank `src` to rank
  /// `dst`, with its initial window injected at `start` (>= now()).
  MessageId add_message(topology::Rank src, topology::Rank dst, Bytes bytes,
                        SimTime start);

  /// Earliest pending internal event; kNoEvent when the event heap is
  /// empty. Note stale retransmission timers of already-delivered
  /// segments count as events (they are discarded when processed).
  SimTime next_event_time() const;

  /// Processes every event with time <= `when` (which must be >=
  /// now()); ids of messages that completed are appended to
  /// `completed`. Throws a diagnostic error if the event cap is hit.
  void advance_to(SimTime when, std::vector<MessageId>& completed);

  /// Runs until the event heap drains.
  void run_to_completion();

  /// Cancels an incomplete message: its segments evaporate at their
  /// next hop and no further (re)transmissions happen. Returns false
  /// when the message already completed or was already canceled.
  bool cancel_message(MessageId id);

  bool message_complete(MessageId id) const;
  /// Payload bytes not yet delivered; 0 once complete or canceled.
  double message_remaining_bytes(MessageId id) const;
  /// Directed edges on the message's path.
  std::int32_t message_hops(MessageId id) const;
  std::int32_t message_count() const {
    return static_cast<std::int32_t>(messages_.size());
  }
  /// Completed messages so far (canceled ones never complete).
  std::int32_t completed_count() const { return completed_messages_; }

  /// Aggregate result snapshot (completion vector, counters, peaks).
  PacketResult result() const;

 private:
  enum class EventKind : std::uint8_t {
    kInject,   // sender puts segment (a=message, b=segment) on its uplink
    kDequeue,  // edge (a) finished serializing its head segment
    kTimeout,  // retransmit check for (a=message, b=segment)
  };

  struct Event {
    SimTime time;
    std::int64_t sequence;  // tie-break: deterministic FIFO ordering
    EventKind kind;
    std::int32_t a = 0;
    std::int32_t b = 0;

    friend bool operator>(const Event& lhs, const Event& rhs) {
      if (lhs.time != rhs.time) return lhs.time > rhs.time;
      return lhs.sequence > rhs.sequence;
    }
  };

  struct Segment {
    std::int32_t message;
    std::int32_t segment;
    std::int32_t hop;  // index into the message's path
  };

  enum class SegmentState : std::uint8_t { kUnsent, kInflight, kDelivered };

  struct MessageState {
    topology::Rank src = -1;
    topology::Rank dst = -1;
    Bytes bytes = 0;
    std::vector<topology::EdgeId> path;
    std::int32_t total_segments = 0;
    std::int32_t delivered = 0;
    /// Congestion window (AIMD mode); fixed at window_segments
    /// otherwise.
    double cwnd = 0;
    /// Out-of-order deliveries since `base` last advanced (fast
    /// retransmit after 3, the dup-ack analogue).
    std::int32_t dup_deliveries = 0;
    /// Lowest undelivered segment: the fixed/AIMD window is [base, base
    /// + W). A dropped base segment stalls those flows until its
    /// retransmission lands — the mechanism behind incast timeout
    /// collapse. Selective repeat only uses `base` to locate the hole
    /// for fast retransmit.
    std::int32_t base = 0;
    std::int32_t next_unsent = 0;
    std::vector<SegmentState> state;
    SimTime last_delivery = 0;
    Bytes last_segment_payload = 0;
    double delivered_payload = 0;
    std::int32_t retransmissions = 0;
    bool canceled = false;
    bool complete = false;
  };

  struct EdgeState {
    std::deque<Segment> queue;
    bool busy = false;
    std::int32_t peak_queue = 0;
  };

  void start_edge_if_idle(topology::EdgeId edge, SimTime time);
  bool enqueue(topology::EdgeId edge, const Segment& segment, SimTime time);
  void inject(std::int32_t m, std::int32_t s, SimTime time, bool retransmit);
  void process_event(const Event& event, std::vector<MessageId>& completed);
  void handle_delivery(const Segment& segment, MessageState& msg,
                       SimTime arrival, std::vector<MessageId>& completed);
  /// True when the stochastic model destroys a segment traversing
  /// `edge` (Bernoulli draw, then Gilbert-Elliott draw + chain step).
  bool draw_link_loss(topology::EdgeId edge);
  [[noreturn]] void throw_event_cap_diagnostic() const;

  const topology::Topology& topo_;
  PacketNetworkParams params_;
  double wire_time_ = 0;
  SimTime now_ = 0;
  std::vector<MessageState> messages_;
  std::vector<EdgeState> edge_state_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::int64_t sequence_ = 0;
  std::int64_t processed_ = 0;
  std::int32_t completed_messages_ = 0;
  double delivered_payload_ = 0;
  SimTime makespan_ = 0;
  // Aggregate fault/transport counters (mirrored into PacketResult).
  std::int64_t segments_sent_ = 0;
  std::int64_t segments_dropped_ = 0;
  std::int64_t retransmissions_ = 0;
  std::int64_t segments_lost_ = 0;
  std::int64_t segments_corrupted_ = 0;
  // Stochastic fault machinery. Inactive mechanisms perform no draws,
  // so an all-zero config leaves the event stream bit-identical to the
  // fault-free simulator.
  Rng fault_rng_;
  bool loss_active_ = false;
  bool ge_active_ = false;
  bool jitter_active_ = false;
  bool corruption_active_ = false;
  std::vector<double> edge_loss_rate_;   // dense, when loss_active_
  std::vector<std::uint8_t> ge_bad_;     // Gilbert-Elliott state per edge
};

/// Runs the scenario to completion. Deterministic: ties are broken by
/// (event time, sequence). Throws InvalidArgument on malformed
/// messages; guards against livelock with the params event cap
/// (diagnostic error naming the stuck messages).
PacketResult simulate_packets(const topology::Topology& topo,
                              const std::vector<PacketMessage>& messages,
                              const PacketNetworkParams& params = {});

}  // namespace aapc::packetsim
