#include "aapc/packetsim/packet_network.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "aapc/common/error.hpp"

namespace aapc::packetsim {

namespace {

enum class EventKind : std::uint8_t {
  kInject,    // sender puts segment (a=message, b=segment) on its uplink
  kDequeue,   // edge (a) finished serializing its head segment
  kTimeout,   // retransmit check for (a=message, b=segment)
};

struct Event {
  SimTime time;
  std::int64_t sequence;  // tie-break: deterministic FIFO ordering
  EventKind kind;
  std::int32_t a = 0;
  std::int32_t b = 0;

  friend bool operator>(const Event& lhs, const Event& rhs) {
    if (lhs.time != rhs.time) return lhs.time > rhs.time;
    return lhs.sequence > rhs.sequence;
  }
};

struct Segment {
  std::int32_t message;
  std::int32_t segment;
  std::int32_t hop;  // index into the message's path
};

enum class SegmentState : std::uint8_t { kUnsent, kInflight, kDelivered };

struct MessageState {
  std::vector<topology::EdgeId> path;
  std::int32_t total_segments = 0;
  std::int32_t delivered = 0;
  /// Congestion window (AIMD mode); fixed at window_segments otherwise.
  double cwnd = 0;
  /// Out-of-order deliveries since `base` last advanced (AIMD fast
  /// retransmit after 3, the dup-ack analogue).
  std::int32_t dup_deliveries = 0;
  /// Lowest undelivered segment: the window is [base, base + W). A
  /// dropped base segment stalls the flow until its retransmission
  /// lands — the mechanism behind incast timeout collapse.
  std::int32_t base = 0;
  std::int32_t next_unsent = 0;
  std::vector<SegmentState> state;
  SimTime last_delivery = 0;
  Bytes last_segment_payload = 0;
};

struct EdgeState {
  std::deque<Segment> queue;
  bool busy = false;
};

}  // namespace

PacketResult simulate_packets(const topology::Topology& topo,
                              const std::vector<PacketMessage>& messages,
                              const PacketNetworkParams& params) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  AAPC_REQUIRE(params.segment_payload >= 1, "segment payload must be > 0");
  AAPC_REQUIRE(params.window_segments >= 1, "window must be >= 1");
  AAPC_REQUIRE(params.queue_capacity_segments >= 1, "queue capacity >= 1");

  const double wire_time =
      static_cast<double>(params.segment_payload + params.segment_overhead) /
      params.link_bandwidth_bytes_per_sec;

  std::vector<MessageState> message_state(messages.size());
  std::vector<EdgeState> edge_state(
      static_cast<std::size_t>(topo.directed_edge_count()));

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::int64_t sequence = 0;
  PacketResult result;
  result.completion.assign(messages.size(), 0);

  for (std::size_t m = 0; m < messages.size(); ++m) {
    const PacketMessage& message = messages[m];
    AAPC_REQUIRE(message.src >= 0 && message.src < topo.machine_count() &&
                     message.dst >= 0 && message.dst < topo.machine_count() &&
                     message.src != message.dst,
                 "malformed packet message " << m);
    AAPC_REQUIRE(message.bytes >= 1, "empty packet message " << m);
    MessageState& state = message_state[m];
    state.path = topo.path(topo.machine_node(message.src),
                           topo.machine_node(message.dst));
    state.total_segments = static_cast<std::int32_t>(
        (message.bytes + params.segment_payload - 1) /
        params.segment_payload);
    state.last_segment_payload =
        message.bytes - static_cast<Bytes>(state.total_segments - 1) *
                            params.segment_payload;
    state.state.assign(static_cast<std::size_t>(state.total_segments),
                       SegmentState::kUnsent);
    // Open the initial window.
    state.cwnd =
        params.transport == PacketNetworkParams::Transport::kAimd
            ? 2.0
            : static_cast<double>(params.window_segments);
    const std::int32_t initial = std::min(
        static_cast<std::int32_t>(state.cwnd), state.total_segments);
    for (std::int32_t s = 0; s < initial; ++s) {
      events.push(Event{message.start, sequence++, EventKind::kInject,
                        static_cast<std::int32_t>(m), s});
    }
    state.next_unsent = initial;
  }

  auto start_edge_if_idle = [&](topology::EdgeId edge, SimTime now) {
    EdgeState& state = edge_state[static_cast<std::size_t>(edge)];
    if (!state.busy && !state.queue.empty()) {
      state.busy = true;
      events.push(Event{now + wire_time, sequence++, EventKind::kDequeue,
                        edge, 0});
    }
  };

  // Enqueue a segment on an edge; returns false (and counts a drop) when
  // the output queue is full.
  auto enqueue = [&](topology::EdgeId edge, const Segment& segment,
                     SimTime now) -> bool {
    EdgeState& state = edge_state[static_cast<std::size_t>(edge)];
    // The segment being serialized occupies the port too; the queue
    // capacity covers waiting segments.
    if (static_cast<std::int32_t>(state.queue.size()) >=
        params.queue_capacity_segments) {
      ++result.segments_dropped;
      return false;
    }
    state.queue.push_back(segment);
    start_edge_if_idle(edge, now);
    return true;
  };

  auto inject = [&](std::int32_t m, std::int32_t s, SimTime now,
                    bool retransmit) {
    MessageState& state = message_state[static_cast<std::size_t>(m)];
    if (state.state[static_cast<std::size_t>(s)] == SegmentState::kDelivered) {
      return;  // stale timeout
    }
    if (retransmit) ++result.retransmissions;
    ++result.segments_sent;
    state.state[static_cast<std::size_t>(s)] = SegmentState::kInflight;
    // Drop at the first hop is possible too (source NIC queue).
    enqueue(state.path.front(), Segment{m, s, 0}, now);
    // Retransmission timer runs regardless of the drop above — that is
    // exactly how the loss is recovered.
    events.push(Event{now + params.retransmit_timeout, sequence++,
                      EventKind::kTimeout, m, s});
  };

  // Livelock guard: generous but finite.
  std::int64_t processed = 0;
  const std::int64_t event_cap = 400'000'000;

  std::int64_t completed_messages = 0;
  double delivered_payload = 0;

  while (!events.empty()) {
    AAPC_CHECK_MSG(++processed < event_cap,
                   "packet simulation exceeded the event cap (livelock?)");
    const Event event = events.top();
    events.pop();
    switch (event.kind) {
      case EventKind::kInject:
        inject(event.a, event.b, event.time, false);
        break;
      case EventKind::kTimeout: {
        MessageState& state =
            message_state[static_cast<std::size_t>(event.a)];
        if (state.state[static_cast<std::size_t>(event.b)] !=
            SegmentState::kDelivered) {
          if (params.transport ==
              PacketNetworkParams::Transport::kAimd) {
            state.cwnd = std::max(1.0, state.cwnd / 2.0);  // MD
          }
          inject(event.a, event.b, event.time, true);
        }
        break;
      }
      case EventKind::kDequeue: {
        const topology::EdgeId edge = event.a;
        EdgeState& edge_st = edge_state[static_cast<std::size_t>(edge)];
        AAPC_CHECK(edge_st.busy && !edge_st.queue.empty());
        const Segment segment = edge_st.queue.front();
        edge_st.queue.pop_front();
        edge_st.busy = false;
        start_edge_if_idle(edge, event.time);

        MessageState& msg =
            message_state[static_cast<std::size_t>(segment.message)];
        const SimTime arrival = event.time + params.link_latency;
        const bool last_hop =
            segment.hop + 1 == static_cast<std::int32_t>(msg.path.size());
        if (!last_hop) {
          // Forward to the next hop's output queue (dropped on
          // overflow; the timeout recovers it).
          enqueue(msg.path[static_cast<std::size_t>(segment.hop + 1)],
                  Segment{segment.message, segment.segment, segment.hop + 1},
                  arrival);
          break;
        }
        // Delivered (duplicates from spurious retransmits are ignored).
        SegmentState& seg_state =
            msg.state[static_cast<std::size_t>(segment.segment)];
        if (seg_state == SegmentState::kDelivered) break;
        seg_state = SegmentState::kDelivered;
        msg.last_delivery = std::max(msg.last_delivery, arrival);
        delivered_payload += static_cast<double>(
            segment.segment + 1 == msg.total_segments
                ? msg.last_segment_payload
                : params.segment_payload);
        if (++msg.delivered == msg.total_segments) {
          result.completion[static_cast<std::size_t>(segment.message)] =
              msg.last_delivery;
          result.makespan = std::max(result.makespan, msg.last_delivery);
          ++completed_messages;
          break;
        }
        // Sender learns after the ack delay and slides the sequential
        // window: only in-order delivery advances `base`, so a missing
        // low segment stalls the whole flow until its retransmission
        // lands (the timeout-collapse mechanism).
        while (msg.base < msg.total_segments &&
               msg.state[static_cast<std::size_t>(msg.base)] ==
                   SegmentState::kDelivered) {
          ++msg.base;
        }
        if (params.transport == PacketNetworkParams::Transport::kAimd) {
          // AI: one segment per window of deliveries, capped.
          msg.cwnd = std::min(
              static_cast<double>(params.window_segments),
              msg.cwnd + 1.0 / std::max(1.0, msg.cwnd));
          // Fast retransmit: three out-of-order deliveries above a hole
          // signal a loss; resend the hole now and halve, instead of
          // idling until the RTO (the dup-ack mechanism that keeps real
          // TCP trunks busy under moderate loss).
          const bool advanced = segment.segment < msg.base;
          if (advanced) {
            msg.dup_deliveries = 0;
          } else if (msg.base < msg.total_segments &&
                     msg.state[static_cast<std::size_t>(msg.base)] !=
                         SegmentState::kDelivered &&
                     ++msg.dup_deliveries >= 3) {
            msg.dup_deliveries = 0;
            msg.cwnd = std::max(1.0, msg.cwnd / 2.0);
            inject(segment.message, msg.base,
                   arrival + params.ack_latency, true);
          }
        }
        const std::int32_t allowed = std::min(
            msg.total_segments,
            msg.base + static_cast<std::int32_t>(msg.cwnd));
        while (msg.next_unsent < allowed) {
          const std::int32_t next = msg.next_unsent++;
          if (msg.state[static_cast<std::size_t>(next)] ==
              SegmentState::kUnsent) {
            events.push(Event{arrival + params.ack_latency, sequence++,
                              EventKind::kInject, segment.message, next});
          }
        }
        break;
      }
    }
  }

  AAPC_CHECK_MSG(completed_messages ==
                     static_cast<std::int64_t>(messages.size()),
                 "packet simulation ended with "
                     << completed_messages << "/" << messages.size()
                     << " messages complete");
  result.goodput_bytes_per_sec =
      result.makespan > 0 ? delivered_payload / result.makespan : 0.0;
  return result;
}

}  // namespace aapc::packetsim
