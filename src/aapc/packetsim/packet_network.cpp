#include "aapc/packetsim/packet_network.hpp"

#include <algorithm>
#include <sstream>

#include "aapc/common/error.hpp"

namespace aapc::packetsim {

const char* transport_name(PacketNetworkParams::Transport transport) {
  switch (transport) {
    case PacketNetworkParams::Transport::kFixedWindow: return "fixed-window";
    case PacketNetworkParams::Transport::kAimd: return "aimd";
    case PacketNetworkParams::Transport::kSelectiveRepeat:
      return "selective-repeat";
  }
  return "?";
}

PacketNetwork::PacketNetwork(const topology::Topology& topo,
                             const PacketNetworkParams& params)
    : topo_(topo), params_(params), fault_rng_(params.faults.seed) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  AAPC_REQUIRE(params.segment_payload >= 1, "segment payload must be > 0");
  AAPC_REQUIRE(params.window_segments >= 1, "window must be >= 1");
  AAPC_REQUIRE(params.queue_capacity_segments >= 1, "queue capacity >= 1");
  AAPC_REQUIRE(params.max_events >= 1, "event cap must be positive");

  wire_time_ =
      static_cast<double>(params.segment_payload + params.segment_overhead) /
      params.link_bandwidth_bytes_per_sec;
  edge_state_.resize(static_cast<std::size_t>(topo.directed_edge_count()));

  const PacketFaultParams& faults = params.faults;
  auto check_rate = [](double rate, const char* what) {
    AAPC_REQUIRE(rate >= 0.0 && rate < 1.0,
                 what << " must be in [0, 1), got " << rate);
  };
  check_rate(faults.loss_rate, "loss_rate");
  check_rate(faults.ge_loss_rate, "ge_loss_rate");
  check_rate(faults.ge_good_loss_rate, "ge_good_loss_rate");
  check_rate(faults.corruption_rate, "corruption_rate");
  AAPC_REQUIRE(faults.ge_p_good_to_bad >= 0.0 && faults.ge_p_good_to_bad <= 1.0,
               "ge_p_good_to_bad must be in [0, 1]");
  AAPC_REQUIRE(faults.ge_p_bad_to_good >= 0.0 && faults.ge_p_bad_to_good <= 1.0,
               "ge_p_bad_to_good must be in [0, 1]");
  AAPC_REQUIRE(faults.jitter_max >= 0, "jitter_max must be >= 0");

  const bool any_edge_override = [&] {
    for (const auto& [edge, rate] : faults.edge_loss) {
      AAPC_REQUIRE(edge >= 0 && edge < topo.directed_edge_count(),
                   "edge_loss override for nonexistent directed edge "
                       << edge);
      check_rate(rate, "edge_loss rate");
      if (rate > 0) return true;
    }
    return false;
  }();
  loss_active_ = faults.loss_rate > 0 || any_edge_override;
  ge_active_ = faults.ge_p_good_to_bad > 0 &&
               (faults.ge_loss_rate > 0 || faults.ge_good_loss_rate > 0);
  jitter_active_ = faults.jitter_max > 0;
  corruption_active_ = faults.corruption_rate > 0;
  if (loss_active_) {
    edge_loss_rate_.assign(
        static_cast<std::size_t>(topo.directed_edge_count()),
        faults.loss_rate);
    for (const auto& [edge, rate] : faults.edge_loss) {
      edge_loss_rate_[static_cast<std::size_t>(edge)] = rate;
    }
  }
  if (ge_active_) {
    ge_bad_.assign(static_cast<std::size_t>(topo.directed_edge_count()), 0);
  }
}

PacketNetwork::MessageId PacketNetwork::add_message(topology::Rank src,
                                                    topology::Rank dst,
                                                    Bytes bytes,
                                                    SimTime start) {
  const auto m = static_cast<MessageId>(messages_.size());
  AAPC_REQUIRE(src >= 0 && src < topo_.machine_count() && dst >= 0 &&
                   dst < topo_.machine_count() && src != dst,
               "malformed packet message " << m);
  AAPC_REQUIRE(bytes >= 1, "empty packet message " << m);
  AAPC_REQUIRE(start >= now_, "message " << m << " starts at " << start
                                         << " < now() = " << now_);
  messages_.emplace_back();
  MessageState& state = messages_.back();
  state.src = src;
  state.dst = dst;
  state.bytes = bytes;
  state.path = topo_.path(topo_.machine_node(src), topo_.machine_node(dst));
  state.total_segments = static_cast<std::int32_t>(
      (bytes + params_.segment_payload - 1) / params_.segment_payload);
  state.last_segment_payload =
      bytes - static_cast<Bytes>(state.total_segments - 1) *
                  params_.segment_payload;
  state.state.assign(static_cast<std::size_t>(state.total_segments),
                     SegmentState::kUnsent);
  // Open the initial window.
  state.cwnd = params_.transport == PacketNetworkParams::Transport::kAimd
                   ? 2.0
                   : static_cast<double>(params_.window_segments);
  const std::int32_t initial =
      std::min(static_cast<std::int32_t>(state.cwnd), state.total_segments);
  for (std::int32_t s = 0; s < initial; ++s) {
    events_.push(Event{start, sequence_++, EventKind::kInject, m, s});
  }
  state.next_unsent = initial;
  return m;
}

SimTime PacketNetwork::next_event_time() const {
  return events_.empty() ? kNoEvent : events_.top().time;
}

void PacketNetwork::start_edge_if_idle(topology::EdgeId edge, SimTime time) {
  EdgeState& state = edge_state_[static_cast<std::size_t>(edge)];
  if (!state.busy && !state.queue.empty()) {
    state.busy = true;
    events_.push(
        Event{time + wire_time_, sequence_++, EventKind::kDequeue, edge, 0});
  }
}

// Enqueue a segment on an edge; returns false (and counts a drop) when
// the output queue is full.
bool PacketNetwork::enqueue(topology::EdgeId edge, const Segment& segment,
                            SimTime time) {
  EdgeState& state = edge_state_[static_cast<std::size_t>(edge)];
  // The segment being serialized occupies the port too; the queue
  // capacity covers waiting segments.
  if (static_cast<std::int32_t>(state.queue.size()) >=
      params_.queue_capacity_segments) {
    ++segments_dropped_;
    return false;
  }
  state.queue.push_back(segment);
  state.peak_queue = std::max(
      state.peak_queue, static_cast<std::int32_t>(state.queue.size()));
  start_edge_if_idle(edge, time);
  return true;
}

void PacketNetwork::inject(std::int32_t m, std::int32_t s, SimTime time,
                           bool retransmit) {
  MessageState& state = messages_[static_cast<std::size_t>(m)];
  if (state.canceled) return;
  if (state.state[static_cast<std::size_t>(s)] == SegmentState::kDelivered) {
    return;  // stale timeout
  }
  if (retransmit) {
    ++retransmissions_;
    ++state.retransmissions;
  }
  ++segments_sent_;
  state.state[static_cast<std::size_t>(s)] = SegmentState::kInflight;
  // Drop at the first hop is possible too (source NIC queue).
  enqueue(state.path.front(), Segment{m, s, 0}, time);
  // Retransmission timer runs regardless of the drop above — that is
  // exactly how the loss is recovered.
  events_.push(Event{time + params_.retransmit_timeout, sequence_++,
                     EventKind::kTimeout, m, s});
}

bool PacketNetwork::draw_link_loss(topology::EdgeId edge) {
  bool lost = false;
  if (loss_active_) {
    const double rate = edge_loss_rate_[static_cast<std::size_t>(edge)];
    if (rate > 0 && fault_rng_.next_double() < rate) lost = true;
  }
  if (ge_active_) {
    const auto idx = static_cast<std::size_t>(edge);
    const bool bad = ge_bad_[idx] != 0;
    const double rate = bad ? params_.faults.ge_loss_rate
                            : params_.faults.ge_good_loss_rate;
    if (rate > 0 && fault_rng_.next_double() < rate) lost = true;
    // Step the chain once per traversal.
    if (bad) {
      if (fault_rng_.next_double() < params_.faults.ge_p_bad_to_good) {
        ge_bad_[idx] = 0;
      }
    } else if (fault_rng_.next_double() < params_.faults.ge_p_good_to_bad) {
      ge_bad_[idx] = 1;
    }
  }
  return lost;
}

void PacketNetwork::handle_delivery(const Segment& segment, MessageState& msg,
                                    SimTime arrival,
                                    std::vector<MessageId>& completed) {
  // Checksum-detected corruption: the receiver discards the segment;
  // the transport recovers it like a loss.
  if (corruption_active_ &&
      fault_rng_.next_double() < params_.faults.corruption_rate) {
    ++segments_corrupted_;
    return;
  }
  // Delivered (duplicates from spurious retransmits are ignored).
  SegmentState& seg_state =
      msg.state[static_cast<std::size_t>(segment.segment)];
  if (seg_state == SegmentState::kDelivered) return;
  seg_state = SegmentState::kDelivered;
  msg.last_delivery = std::max(msg.last_delivery, arrival);
  const double payload = static_cast<double>(
      segment.segment + 1 == msg.total_segments ? msg.last_segment_payload
                                                : params_.segment_payload);
  msg.delivered_payload += payload;
  delivered_payload_ += payload;
  if (++msg.delivered == msg.total_segments) {
    msg.complete = true;
    makespan_ = std::max(makespan_, msg.last_delivery);
    ++completed_messages_;
    completed.push_back(segment.message);
    return;
  }
  // Sender learns after the ack delay and slides the sequential
  // window: only in-order delivery advances `base`, so a missing
  // low segment stalls fixed/AIMD flows until its retransmission
  // lands (the timeout-collapse mechanism). Selective repeat uses
  // `base` only as the fast-retransmit hole pointer.
  while (msg.base < msg.total_segments &&
         msg.state[static_cast<std::size_t>(msg.base)] ==
             SegmentState::kDelivered) {
    ++msg.base;
  }
  if (params_.transport == PacketNetworkParams::Transport::kAimd) {
    // AI: one segment per window of deliveries, capped.
    msg.cwnd = std::min(static_cast<double>(params_.window_segments),
                        msg.cwnd + 1.0 / std::max(1.0, msg.cwnd));
    // Fast retransmit: three out-of-order deliveries above a hole
    // signal a loss; resend the hole now and halve, instead of
    // idling until the RTO (the dup-ack mechanism that keeps real
    // TCP trunks busy under moderate loss).
    const bool advanced = segment.segment < msg.base;
    if (advanced) {
      msg.dup_deliveries = 0;
    } else if (msg.base < msg.total_segments &&
               msg.state[static_cast<std::size_t>(msg.base)] !=
                   SegmentState::kDelivered &&
               ++msg.dup_deliveries >= 3) {
      msg.dup_deliveries = 0;
      msg.cwnd = std::max(1.0, msg.cwnd / 2.0);
      inject(segment.message, msg.base, arrival + params_.ack_latency, true);
    }
  }
  if (params_.transport == PacketNetworkParams::Transport::kSelectiveRepeat) {
    // SACK fast retransmit: three deliveries above the hole resend it
    // without halving anything — the window is per-segment, so the
    // hole was never blocking new transmissions anyway.
    const bool advanced = segment.segment < msg.base;
    if (advanced) {
      msg.dup_deliveries = 0;
    } else if (msg.base < msg.total_segments &&
               msg.state[static_cast<std::size_t>(msg.base)] !=
                   SegmentState::kDelivered &&
               ++msg.dup_deliveries >= 3) {
      msg.dup_deliveries = 0;
      inject(segment.message, msg.base, arrival + params_.ack_latency, true);
    }
    // The window counts outstanding segments (sent, not yet delivered):
    // each delivery frees exactly one slot regardless of order.
    while (msg.next_unsent < msg.total_segments &&
           msg.next_unsent - msg.delivered < params_.window_segments) {
      const std::int32_t next = msg.next_unsent++;
      if (msg.state[static_cast<std::size_t>(next)] == SegmentState::kUnsent) {
        events_.push(Event{arrival + params_.ack_latency, sequence_++,
                           EventKind::kInject, segment.message, next});
      }
    }
    return;
  }
  const std::int32_t allowed = std::min(
      msg.total_segments, msg.base + static_cast<std::int32_t>(msg.cwnd));
  while (msg.next_unsent < allowed) {
    const std::int32_t next = msg.next_unsent++;
    if (msg.state[static_cast<std::size_t>(next)] == SegmentState::kUnsent) {
      events_.push(Event{arrival + params_.ack_latency, sequence_++,
                         EventKind::kInject, segment.message, next});
    }
  }
}

void PacketNetwork::process_event(const Event& event,
                                  std::vector<MessageId>& completed) {
  switch (event.kind) {
    case EventKind::kInject:
      inject(event.a, event.b, event.time, false);
      break;
    case EventKind::kTimeout: {
      MessageState& state = messages_[static_cast<std::size_t>(event.a)];
      if (state.canceled) break;
      if (state.state[static_cast<std::size_t>(event.b)] !=
          SegmentState::kDelivered) {
        if (params_.transport == PacketNetworkParams::Transport::kAimd) {
          state.cwnd = std::max(1.0, state.cwnd / 2.0);  // MD
        }
        inject(event.a, event.b, event.time, true);
      }
      break;
    }
    case EventKind::kDequeue: {
      const topology::EdgeId edge = event.a;
      EdgeState& edge_st = edge_state_[static_cast<std::size_t>(edge)];
      AAPC_CHECK(edge_st.busy && !edge_st.queue.empty());
      const Segment segment = edge_st.queue.front();
      edge_st.queue.pop_front();
      edge_st.busy = false;
      start_edge_if_idle(edge, event.time);

      MessageState& msg = messages_[static_cast<std::size_t>(segment.message)];
      if (msg.canceled) break;  // canceled mid-flight: segment evaporates
      // Stochastic link faults strike as the segment leaves the port.
      if ((loss_active_ || ge_active_) && draw_link_loss(edge)) {
        ++segments_lost_;  // the RTO (or fast retransmit) recovers it
        break;
      }
      SimTime arrival = event.time + params_.link_latency;
      if (jitter_active_) {
        arrival += fault_rng_.next_double() * params_.faults.jitter_max;
      }
      const bool last_hop =
          segment.hop + 1 == static_cast<std::int32_t>(msg.path.size());
      if (!last_hop) {
        // Forward to the next hop's output queue (dropped on
        // overflow; the timeout recovers it).
        enqueue(msg.path[static_cast<std::size_t>(segment.hop + 1)],
                Segment{segment.message, segment.segment, segment.hop + 1},
                arrival);
        break;
      }
      handle_delivery(segment, msg, arrival, completed);
      break;
    }
  }
}

void PacketNetwork::throw_event_cap_diagnostic() const {
  std::ostringstream os;
  std::int32_t incomplete = 0;
  for (const MessageState& msg : messages_) {
    if (!msg.complete && !msg.canceled) ++incomplete;
  }
  os << "packet simulation exceeded the event cap (" << params_.max_events
     << " events) — livelock? " << incomplete << " of " << messages_.size()
     << " message(s) incomplete at t=" << now_ << " s";
  std::int32_t listed = 0;
  for (std::size_t m = 0; m < messages_.size(); ++m) {
    const MessageState& msg = messages_[m];
    if (msg.complete || msg.canceled) continue;
    if (listed >= 8) {
      os << "\n  ... " << (incomplete - listed) << " more stuck message(s)";
      break;
    }
    ++listed;
    os << "\n  message " << m << ": rank " << msg.src << " -> rank "
       << msg.dst << ", delivered " << msg.delivered << "/"
       << msg.total_segments << " segments, " << msg.retransmissions
       << " retransmission(s), outstanding segments: [";
    std::int32_t shown = 0;
    std::int32_t outstanding = 0;
    for (std::size_t s = 0; s < msg.state.size(); ++s) {
      if (msg.state[s] != SegmentState::kInflight) continue;
      ++outstanding;
      if (shown < 8) {
        if (shown > 0) os << ", ";
        os << s;
        ++shown;
      }
    }
    if (outstanding > shown) os << ", ... " << (outstanding - shown) << " more";
    os << "]";
  }
  throw Error(os.str());
}

void PacketNetwork::advance_to(SimTime when,
                               std::vector<MessageId>& completed) {
  AAPC_REQUIRE(when >= now_, "advance_to(" << when << ") is before now() = "
                                           << now_);
  while (!events_.empty() && events_.top().time <= when) {
    if (++processed_ >= params_.max_events) throw_event_cap_diagnostic();
    const Event event = events_.top();
    events_.pop();
    now_ = event.time;
    process_event(event, completed);
  }
  now_ = when;
}

void PacketNetwork::run_to_completion() {
  std::vector<MessageId> completed;
  while (!events_.empty()) {
    if (++processed_ >= params_.max_events) throw_event_cap_diagnostic();
    const Event event = events_.top();
    events_.pop();
    now_ = event.time;
    process_event(event, completed);
  }
}

bool PacketNetwork::cancel_message(MessageId id) {
  AAPC_REQUIRE(id >= 0 && id < message_count(), "cancel of unknown message "
                                                    << id);
  MessageState& msg = messages_[static_cast<std::size_t>(id)];
  if (msg.complete || msg.canceled) return false;
  msg.canceled = true;
  return true;
}

bool PacketNetwork::message_complete(MessageId id) const {
  AAPC_REQUIRE(id >= 0 && id < message_count(), "unknown message " << id);
  return messages_[static_cast<std::size_t>(id)].complete;
}

double PacketNetwork::message_remaining_bytes(MessageId id) const {
  AAPC_REQUIRE(id >= 0 && id < message_count(), "unknown message " << id);
  const MessageState& msg = messages_[static_cast<std::size_t>(id)];
  if (msg.complete || msg.canceled) return 0;
  return static_cast<double>(msg.bytes) - msg.delivered_payload;
}

std::int32_t PacketNetwork::message_hops(MessageId id) const {
  AAPC_REQUIRE(id >= 0 && id < message_count(), "unknown message " << id);
  return static_cast<std::int32_t>(
      messages_[static_cast<std::size_t>(id)].path.size());
}

PacketResult PacketNetwork::result() const {
  PacketResult result;
  result.completion.assign(messages_.size(), 0);
  result.message_retransmissions.assign(messages_.size(), 0);
  for (std::size_t m = 0; m < messages_.size(); ++m) {
    const MessageState& msg = messages_[m];
    if (msg.complete) result.completion[m] = msg.last_delivery;
    result.message_retransmissions[m] = msg.retransmissions;
  }
  result.makespan = makespan_;
  result.segments_sent = segments_sent_;
  result.segments_dropped = segments_dropped_;
  result.retransmissions = retransmissions_;
  result.segments_lost = segments_lost_;
  result.segments_corrupted = segments_corrupted_;
  result.goodput_bytes_per_sec =
      makespan_ > 0 ? delivered_payload_ / makespan_ : 0.0;
  result.peak_queue_segments.assign(edge_state_.size(), 0);
  for (std::size_t e = 0; e < edge_state_.size(); ++e) {
    result.peak_queue_segments[e] = edge_state_[e].peak_queue;
    result.peak_queue_occupancy =
        std::max(result.peak_queue_occupancy, edge_state_[e].peak_queue);
  }
  return result;
}

PacketResult simulate_packets(const topology::Topology& topo,
                              const std::vector<PacketMessage>& messages,
                              const PacketNetworkParams& params) {
  PacketNetwork network(topo, params);
  for (const PacketMessage& message : messages) {
    network.add_message(message.src, message.dst, message.bytes,
                        message.start);
  }
  network.run_to_completion();
  AAPC_CHECK_MSG(network.completed_count() ==
                     static_cast<std::int32_t>(messages.size()),
                 "packet simulation ended with "
                     << network.completed_count() << "/" << messages.size()
                     << " messages complete");
  return network.result();
}

}  // namespace aapc::packetsim
