#include "aapc/packetsim/metrics.hpp"

namespace aapc::packetsim {

void publish_packet_result(obs::Registry& registry,
                           const PacketResult& result) {
  registry
      .counter("aapc_packet_segments_sent_total",
               "Segments injected, retransmissions included")
      .inc(result.segments_sent);
  const char* drops_help = "Segments destroyed or discarded, by mechanism";
  registry
      .counter("aapc_packet_segments_dropped_total", drops_help,
               {{"mechanism", "queue_overflow"}})
      .inc(result.segments_dropped);
  registry
      .counter("aapc_packet_segments_dropped_total", drops_help,
               {{"mechanism", "link_loss"}})
      .inc(result.segments_lost);
  registry
      .counter("aapc_packet_segments_dropped_total", drops_help,
               {{"mechanism", "corruption"}})
      .inc(result.segments_corrupted);
  registry
      .counter("aapc_packet_retransmissions_total",
               "Segments resent after a timeout or fast retransmit")
      .inc(result.retransmissions);
  registry
      .gauge("aapc_packet_peak_queue_segments",
             "High-water mark of the most congested port's queue")
      .set_max(static_cast<double>(result.peak_queue_occupancy));
  registry
      .gauge("aapc_packet_goodput_bytes_per_second",
             "Delivered payload bytes over the run makespan")
      .set(result.goodput_bytes_per_sec);
}

}  // namespace aapc::packetsim
