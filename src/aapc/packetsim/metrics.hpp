// Publishes packet-simulator results into an obs::Registry under the
// aapc_packet_* series (docs/OBSERVABILITY.md). Drops are labelled by
// mechanism — queue_overflow (deterministic drop-tail), link_loss
// (stochastic Bernoulli / Gilbert-Elliott) and corruption (checksum
// discards) — so a loss sweep can tell congestion from injected faults
// in one query. Publish-time only; the event loop never touches the
// registry.
#pragma once

#include "aapc/obs/metrics.hpp"
#include "aapc/packetsim/packet_network.hpp"

namespace aapc::packetsim {

/// Adds one run's PacketResult counters to `registry` (counters
/// accumulate across runs sharing a registry; the peak-queue gauge
/// takes the max).
void publish_packet_result(obs::Registry& registry,
                           const PacketResult& result);

}  // namespace aapc::packetsim
