// Resilience experiment: quantifies what a scripted fault timeline
// costs an AAPC run and what schedule repair wins back.
//
// Four legs, all on the same bridged LAN:
//   healthy   — the paper's schedule on the fault-free tree (baseline);
//   stale     — same programs with the fault plan injected: the
//               schedule built for the healthy tree keeps routing over
//               the degraded links (or stalls/aborts on a down link);
//   prefix    — phases [0, splice) on the healthy tree: the work done
//               before the fault bites;
//   remainder — phases [splice, end) rescheduled by repair_schedule on
//               the residual tree, run at the residual capacities.
// The repaired completion is
//   prefix + detection_latency + repair_overhead + remainder,
// i.e. a fail-over at a phase boundary with an explicit detection /
// reconvergence budget. Wall-clock repair cost (the actual re-election
// plus rescheduling time) is reported separately so the simulated
// timeline stays deterministic.
#pragma once

#include <string>

#include "aapc/common/units.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/faults/repair.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/stp/stp.hpp"

namespace aapc::harness {

struct ResilienceScenario {
  std::string title = "resilience";
  Bytes msize = 64_KiB;
  /// Fault timeline scripted in BRIDGE-LINK indices of the network the
  /// scenario runs on (translated onto each elected tree via
  /// SpanningTree::link_of_bridge_link).
  faults::FaultPlan plan;
  /// Simulated time between fault onset and the repair decision
  /// (failure detection — STP hello timeouts, transfer watchdogs).
  SimTime detection_latency = milliseconds(2.0);
  /// Extra simulated reconvergence budget charged to the repaired
  /// timeline (e.g. RSTP proposal/agreement), on top of the measured
  /// wall-clock repair cost which is reported but not charged.
  SimTime repair_overhead = milliseconds(1.0);
  /// Phase boundary where repair splices in; -1 picks the first
  /// boundary after the fault-onset fraction of the healthy run.
  std::int32_t splice_phase = -1;
  lowering::LoweringOptions lowering;
  simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
};

struct ResilienceReport {
  std::string title;
  Bytes msize = 0;
  // -- completion times (simulated seconds) --
  SimTime healthy_completion = 0;
  /// Stale schedule under the fault plan. Meaningful only when
  /// stale_completed; a down link without a watchdog stalls instead.
  SimTime stale_completion = 0;
  bool stale_completed = false;
  /// ExecutionStalled / TransferAborted message when !stale_completed.
  std::string stale_failure;
  SimTime prefix_completion = 0;
  SimTime remainder_completion = 0;
  /// prefix + detection_latency + repair_overhead + remainder.
  SimTime repaired_completion = 0;
  // -- repair cost --
  double repair_wall_seconds = 0;
  std::int32_t splice_phase = 0;
  std::int32_t healthy_phases = 0;
  std::int32_t remainder_phases = 0;
  // -- capacity bounds (payload Mbps, faults::aapc_peak_throughput) --
  double healthy_peak_mbps = 0;
  /// Peak of the ORIGINAL tree at post-fault capacities: what the stale
  /// schedule can at best sustain.
  double degraded_peak_mbps = 0;
  /// Peak of the residual (re-elected) tree at post-fault capacities:
  /// what repair can at best sustain.
  double residual_peak_mbps = 0;
  // -- achieved throughput (payload Mbps) --
  double healthy_mbps = 0;
  double stale_mbps = 0;
  double repaired_mbps = 0;

  /// Ratio helpers for the acceptance check: throughput kept by the
  /// repaired run vs the best the degraded original tree allows.
  double recovered_ratio() const {
    return healthy_mbps > 0 ? repaired_mbps / healthy_mbps : 0;
  }
  double degraded_peak_ratio() const {
    return healthy_peak_mbps > 0 ? degraded_peak_mbps / healthy_peak_mbps : 0;
  }

  std::string to_string() const;
};

/// Runs the four legs on `network` (election, schedule, lowering, and
/// execution all derive from it). Throws InvalidArgument when the plan
/// leaves the bridge graph disconnected at repair time.
ResilienceReport run_resilience(const stp::BridgeNetwork& network,
                                const ResilienceScenario& scenario);

}  // namespace aapc::harness
