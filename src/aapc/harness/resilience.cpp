#include "aapc/harness/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/scheduler.hpp"

namespace aapc::harness {
namespace {

SimTime run_programs(const topology::Topology& topo,
                     const simnet::NetworkParams& net,
                     const mpisim::ExecutorParams& exec,
                     const mpisim::ProgramSet& set) {
  mpisim::Executor executor(topo, net, exec);
  return executor.run(set).completion_time;
}

/// Phases [begin, end) of `schedule`, renumbered from 0. The arena is
/// phase-major, so a slice is one contiguous copy plus shifted offsets.
core::Schedule slice_phases(const core::Schedule& schedule, std::int32_t begin,
                            std::int32_t end) {
  core::Schedule result;
  const std::int64_t first = schedule.phase_begin[begin];
  result.messages.assign(
      schedule.messages.begin() + static_cast<std::ptrdiff_t>(first),
      schedule.messages.begin() +
          static_cast<std::ptrdiff_t>(schedule.phase_begin[end]));
  for (core::ScheduledMessage& shifted : result.messages) {
    shifted.phase -= begin;
  }
  result.phase_begin.reserve(static_cast<std::size_t>(end - begin) + 1);
  for (std::int32_t p = begin; p <= end; ++p) {
    result.phase_begin.push_back(schedule.phase_begin[p] - first);
  }
  return result;
}

std::string first_line(const std::string& text) {
  const std::size_t eol = text.find('\n');
  return eol == std::string::npos ? text : text.substr(0, eol);
}

}  // namespace

std::string ResilienceReport::to_string() const {
  std::ostringstream os;
  os << title << " (msize " << format_size(msize) << "B, splice at phase "
     << splice_phase << "/" << healthy_phases << ", remainder "
     << remainder_phases << " phases)\n";
  os << "  completion: healthy "
     << format_double(to_milliseconds(healthy_completion), 2) << "ms | stale ";
  if (stale_completed) {
    os << format_double(to_milliseconds(stale_completion), 2) << "ms";
  } else {
    os << "FAILED (" << first_line(stale_failure) << ")";
  }
  os << " | repaired " << format_double(to_milliseconds(repaired_completion), 2)
     << "ms\n";
  os << "    repaired = prefix "
     << format_double(to_milliseconds(prefix_completion), 2) << " + detect "
     << format_double(
            to_milliseconds(repaired_completion - prefix_completion -
                            remainder_completion),
            2)
     << " + remainder " << format_double(to_milliseconds(remainder_completion), 2)
     << " ms\n";
  os << "  peak Mbps: healthy " << format_double(healthy_peak_mbps, 1)
     << " | degraded(original tree) " << format_double(degraded_peak_mbps, 1)
     << " | residual(repaired tree) " << format_double(residual_peak_mbps, 1)
     << "\n";
  os << "  achieved Mbps: healthy " << format_double(healthy_mbps, 1)
     << " | stale " << (stale_completed ? format_double(stale_mbps, 1) : "-")
     << " | repaired " << format_double(repaired_mbps, 1) << "\n";
  os << "  recovered ratio " << format_double(recovered_ratio(), 3)
     << " vs degraded peak ratio " << format_double(degraded_peak_ratio(), 3)
     << "; repair wall clock "
     << format_double(repair_wall_seconds * 1e3, 3) << " ms\n";
  return os.str();
}

ResilienceReport run_resilience(const stp::BridgeNetwork& network,
                                const ResilienceScenario& scenario) {
  scenario.plan.validate();
  const stp::SpanningTree tree = stp::compute_spanning_tree(network);
  const topology::Topology& topo = tree.topology;
  const core::Schedule schedule = core::build_aapc_schedule(topo);

  ResilienceReport report;
  report.title = scenario.title;
  report.msize = scenario.msize;
  report.healthy_phases = schedule.phase_count();

  const double machines = static_cast<double>(topo.machine_count());
  const double payload =
      machines * (machines - 1) * static_cast<double>(scenario.msize);

  // Leg 1: healthy baseline.
  const mpisim::ProgramSet programs =
      lowering::lower_schedule(topo, schedule, scenario.msize,
                               scenario.lowering);
  report.healthy_completion =
      run_programs(topo, scenario.net, scenario.exec, programs);
  report.healthy_mbps = bytes_per_sec_to_mbps(
      report.healthy_completion > 0 ? payload / report.healthy_completion : 0);

  // Leg 2: the stale schedule under the fault plan — same programs, the
  // compiled fault timeline injected into the executor.
  const faults::CompiledFaults compiled =
      faults::compile(scenario.plan, scenario.net, topo.link_count(),
                      tree.link_of_bridge_link);
  mpisim::ExecutorParams stale_exec = scenario.exec;
  compiled.apply(stale_exec);
  try {
    report.stale_completion =
        run_programs(topo, scenario.net, stale_exec, programs);
    report.stale_completed = true;
    report.stale_mbps = bytes_per_sec_to_mbps(
        report.stale_completion > 0 ? payload / report.stale_completion : 0);
  } catch (const mpisim::TransferAborted& aborted) {
    report.stale_failure = aborted.what();
  } catch (const mpisim::ExecutionStalled& stalled) {
    report.stale_failure = stalled.what();
  }

  // Splice phase: scripted, or the first boundary after the fault-onset
  // fraction of the healthy timeline.
  const SimTime onset = scenario.plan.onset();
  std::int32_t splice = scenario.splice_phase;
  if (splice < 0) {
    const double fraction = report.healthy_completion > 0
                                ? onset / report.healthy_completion
                                : 0.0;
    splice = static_cast<std::int32_t>(
        std::ceil(fraction * static_cast<double>(schedule.phase_count())));
    splice = std::clamp(splice, 1, schedule.phase_count());
  }
  AAPC_REQUIRE(splice >= 1 && splice <= schedule.phase_count(),
               "splice phase " << splice << " outside schedule with "
                               << schedule.phase_count() << " phases");
  report.splice_phase = splice;

  // Leg 3: prefix phases on the healthy tree (the fault bites at the
  // splice boundary in this model).
  const core::Schedule prefix = slice_phases(schedule, 0, splice);
  report.prefix_completion = run_programs(
      topo, scenario.net, scenario.exec,
      lowering::lower_schedule(topo, prefix, scenario.msize,
                               scenario.lowering));

  // Repair: re-elect on the residual bridge graph, reschedule the tail.
  const SimTime repair_time = onset + scenario.detection_latency;
  const faults::RepairResult repair = faults::repair_schedule(
      network, schedule, splice, scenario.plan, repair_time);
  report.repair_wall_seconds = repair.repair_wall_seconds;
  report.remainder_phases = repair.remainder.phase_count();

  // Leg 4: remainder on the residual tree at the capacities in force at
  // repair time (frozen — later scripted recoveries are not credited).
  // The self copy already happened in the prefix.
  lowering::LoweringOptions remainder_lowering = scenario.lowering;
  remainder_lowering.include_self_copy = false;
  const mpisim::ProgramSet remainder_programs =
      lowering::lower_schedule(repair.residual.topology, repair.remainder,
                               scenario.msize, remainder_lowering);
  const std::vector<double> residual_caps = faults::residual_link_capacities(
      repair.residual, scenario.net, scenario.plan, repair_time);
  simnet::NetworkParams residual_net = scenario.net;
  residual_net.link_bandwidth_overrides.clear();
  for (std::size_t l = 0; l < residual_caps.size(); ++l) {
    residual_net.link_bandwidth_overrides.emplace_back(
        static_cast<std::int32_t>(l), residual_caps[l]);
  }
  report.remainder_completion =
      run_programs(repair.residual.topology, residual_net, scenario.exec,
                   remainder_programs);
  report.repaired_completion = report.prefix_completion +
                               scenario.detection_latency +
                               scenario.repair_overhead +
                               report.remainder_completion;
  report.repaired_mbps = bytes_per_sec_to_mbps(
      report.repaired_completion > 0 ? payload / report.repaired_completion
                                     : 0);

  // Capacity bounds.
  report.healthy_peak_mbps = bytes_per_sec_to_mbps(faults::aapc_peak_throughput(
      topo, scenario.net, scenario.net.link_capacities(topo.link_count())));
  report.degraded_peak_mbps =
      bytes_per_sec_to_mbps(faults::aapc_peak_throughput(
          topo, scenario.net,
          faults::residual_link_capacities(tree, scenario.net, scenario.plan,
                                           repair_time)));
  report.residual_peak_mbps =
      bytes_per_sec_to_mbps(faults::aapc_peak_throughput(
          repair.residual.topology, scenario.net, residual_caps));
  return report;
}

}  // namespace aapc::harness
