#include "aapc/harness/experiment.hpp"

#include <cstdio>
#include <memory>
#include <sstream>

#include "aapc/baselines/baselines.hpp"
#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/obs/exposition.hpp"

namespace aapc::harness {

std::string RunReport::to_json() const {
  std::string escaped;
  for (const char c : title) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
      escaped.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      escaped += buffer;
    } else {
      escaped.push_back(c);
    }
  }
  // obs::to_json renders {"metrics":[...]}; splice the title ahead of
  // the metrics key so the array stays byte-identical to the obs form.
  const std::string metrics_json = obs::to_json(metrics);
  return "{\"title\":\"" + escaped + "\"," + metrics_json.substr(1);
}

TextTable ExperimentReport::completion_table() const {
  TextTable table;
  std::vector<std::string> header{"msize"};
  for (const std::string& algo : algorithms) header.push_back(algo);
  table.set_header(std::move(header));
  for (std::size_t s = 0; s < msizes.size(); ++s) {
    std::vector<std::string> row{format_size(msizes[s]) + "B"};
    for (const RunResult& r : results[s]) {
      row.push_back(format_double(to_milliseconds(r.completion), 1) + "ms");
    }
    table.add_row(std::move(row));
  }
  return table;
}

TextTable ExperimentReport::throughput_table() const {
  TextTable table;
  std::vector<std::string> header{"msize"};
  for (const std::string& algo : algorithms) header.push_back(algo);
  header.push_back("Peak");
  table.set_header(std::move(header));
  for (std::size_t s = 0; s < msizes.size(); ++s) {
    std::vector<std::string> row{format_size(msizes[s]) + "B"};
    for (const RunResult& r : results[s]) {
      row.push_back(format_double(r.throughput_mbps, 1));
    }
    row.push_back(format_double(peak_mbps, 1));
    table.add_row(std::move(row));
  }
  return table;
}

std::string ExperimentReport::to_string() const {
  std::ostringstream os;
  os << title << "\n\n(a) completion time\n"
     << completion_table().render()
     << "\n(b) aggregate throughput (Mbps)\n"
     << throughput_table().render();
  return os.str();
}

RunResult run_algorithm(const topology::Topology& topo,
                        const NamedAlgorithm& algorithm, Bytes msize,
                        const ExperimentConfig& config) {
  AAPC_REQUIRE(config.iterations >= 1, "need at least one iteration");
  const mpisim::ProgramSet set = algorithm.build(msize);
  SimTime total = 0;
  std::int64_t messages = 0;
  for (std::int32_t i = 0; i < config.iterations; ++i) {
    mpisim::ExecutorParams exec_params = config.exec;
    exec_params.jitter_seed = config.exec.jitter_seed +
                              static_cast<std::uint64_t>(i) * 0x9e37ull;
    mpisim::Executor executor(topo, config.net, exec_params);
    const mpisim::ExecutionResult exec = executor.run(set);
    total += exec.completion_time;
    messages = exec.message_count;
  }
  const SimTime completion = total / config.iterations;
  const double machines = topo.machine_count();
  const double payload = machines * (machines - 1) * static_cast<double>(msize);
  RunResult result;
  result.algorithm = algorithm.name;
  result.msize = msize;
  result.completion = completion;
  result.throughput_mbps =
      bytes_per_sec_to_mbps(completion > 0 ? payload / completion : 0.0);
  result.messages = messages;
  return result;
}

std::vector<NamedAlgorithm> standard_suite(
    const topology::Topology& topo,
    const lowering::LoweringOptions& ours_options) {
  const std::int32_t ranks = topo.machine_count();
  std::vector<NamedAlgorithm> suite;
  suite.push_back(NamedAlgorithm{
      "LAM", [ranks](Bytes msize) {
        return baselines::lam_alltoall(ranks, msize);
      }});
  suite.push_back(NamedAlgorithm{
      "MPICH", [ranks](Bytes msize) {
        return baselines::mpich_alltoall(ranks, msize);
      }});
  // The generated routine: schedule once, verify once, lower per size.
  auto schedule = std::make_shared<core::Schedule>(
      core::build_aapc_schedule(topo));
  const core::VerifyReport report = core::verify_schedule(topo, *schedule);
  AAPC_CHECK_MSG(report.ok, report.summary());
  suite.push_back(NamedAlgorithm{
      "Ours", [&topo, schedule, ours_options](Bytes msize) {
        return lowering::lower_schedule(topo, *schedule, msize,
                                        ours_options);
      }});
  return suite;
}

ExperimentReport run_experiment(const topology::Topology& topo,
                                const std::string& title,
                                const std::vector<NamedAlgorithm>& algorithms,
                                const ExperimentConfig& config) {
  ExperimentReport report;
  report.title = title;
  report.peak_mbps = bytes_per_sec_to_mbps(topo.peak_aggregate_throughput(
      config.net.link_bandwidth_bytes_per_sec));
  report.msizes = config.msizes;
  for (const NamedAlgorithm& algo : algorithms) {
    report.algorithms.push_back(algo.name);
  }
  // Every run of the sweep exports into one registry — the caller's if
  // ExperimentConfig wired one in, else a sweep-local one — and the
  // final snapshot ships in the report.
  obs::Registry sweep_registry;
  ExperimentConfig metered = config;
  if (metered.exec.metrics == nullptr) {
    metered.exec.metrics = &sweep_registry;
  }
  for (const Bytes msize : config.msizes) {
    std::vector<RunResult> row;
    row.reserve(algorithms.size());
    for (const NamedAlgorithm& algo : algorithms) {
      row.push_back(run_algorithm(topo, algo, msize, metered));
    }
    report.results.push_back(std::move(row));
  }
  report.telemetry.title = title;
  report.telemetry.metrics = metered.exec.metrics->snapshot();
  return report;
}

}  // namespace aapc::harness
