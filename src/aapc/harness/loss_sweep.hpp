// Loss-sweep experiment: the generated, pair-wise-synchronized
// alltoall executed end-to-end over the segment-level packet model
// (mpisim::PacketBackend) while the stochastic loss rate rises — the
// repo's answer to "does the paper's schedule survive a real, lossy
// Ethernet?".
//
// For each (transport, loss rate) cell the schedule is run over the
// packet backend with per-link Bernoulli loss at that rate; the cell
// records the completion time, its inflation over the same transport's
// zero-loss run, the packet-level loss/retransmission counters, and the
// end-to-end integrity verdict (every block delivered exactly once —
// mpisim::DeliveryLedger). The interesting comparison is kFixedWindow
// (whose window stalls behind a lost segment until the 40 ms RTO,
// collapsing under even modest loss) against kSelectiveRepeat (whose
// per-segment SACK window degrades gracefully).
#pragma once

#include <string>
#include <vector>

#include "aapc/common/table.hpp"
#include "aapc/common/units.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/packetsim/packet_network.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::harness {

struct LossSweepConfig {
  /// Bernoulli per-link segment-loss rates to sweep.
  std::vector<double> loss_rates = {0.0, 1e-5, 1e-4, 1e-3, 1e-2};
  /// Transports to sweep (the RTO-collapse vs SACK comparison).
  std::vector<packetsim::PacketNetworkParams::Transport> transports = {
      packetsim::PacketNetworkParams::Transport::kFixedWindow,
      packetsim::PacketNetworkParams::Transport::kSelectiveRepeat,
  };
  Bytes msize = 32_KiB;
  /// Base packet-model parameters; transport and faults.loss_rate are
  /// overwritten per cell.
  packetsim::PacketNetworkParams packet;
  simnet::NetworkParams net;
  mpisim::ExecutorParams exec;  // backend forced to kPacket per cell
  lowering::LoweringOptions lowering;
};

/// One (transport, loss rate) run.
struct LossSweepCell {
  packetsim::PacketNetworkParams::Transport transport =
      packetsim::PacketNetworkParams::Transport::kFixedWindow;
  double loss_rate = 0;
  SimTime completion = 0;
  /// completion / (same transport at loss 0).
  double inflation = 1.0;
  std::int64_t segments_sent = 0;
  std::int64_t segments_lost = 0;
  std::int64_t segments_dropped = 0;
  std::int64_t retransmissions = 0;
  bool integrity_ok = false;
  std::string integrity_summary;
};

struct LossSweepReport {
  std::string title;
  Bytes msize = 0;
  std::int64_t messages_per_run = 0;  // matched transfers (incl. sync)
  std::vector<LossSweepCell> cells;   // transport-major, loss-rate order

  /// True when every cell delivered every block exactly once.
  bool all_ok() const;
  /// Completion/inflation/integrity table, one row per cell.
  TextTable table() const;
  std::string to_string() const;
};

/// Builds the generated schedule for `topo`, lowers it once per
/// transport sweep, and executes it over the packet backend for every
/// (transport, loss rate) cell. Integrity violations are captured in
/// the cell (not thrown), so a sweep always renders.
LossSweepReport run_loss_sweep(const topology::Topology& topo,
                               const std::string& title,
                               const LossSweepConfig& config = {});

}  // namespace aapc::harness
