// Churn experiment: quantifies the serving path's three answers to a
// live link-rate change, in the order a client sees them.
//
// When a fabric link degrades mid-load, a cached schedule goes through
// three states (service/epochs.hpp, docs/SERVICE.md §churn):
//   stale       — the pre-churn paper-optimal schedule keeps running on
//                 the degraded link (what a cache with no invalidation
//                 would serve forever);
//   patched     — the stale-while-revalidate inline repair: a
//                 rate-blind greedy reschedule (exactly what
//                 ScheduleService::patch_stale_entry serves with
//                 stale=true);
//   revalidated — the background weighted recompilation
//                 (core::build_aapc_schedule_weighted at the degraded
//                 rates) that replaces the patch once it lands.
// run_churn() executes all three on the degraded network, plus the
// healthy baseline, and reports completion times, throughputs, and the
// weighted-model costs (core/weighted.hpp) next to the weighted
// bottleneck-load lower bound — so "revalidation recovers strictly more
// than the patch" is a measurable, gateable claim (bench_churn.cpp).
//
// The experiment deliberately keeps the elected tree fixed: plans here
// are degrade/restore only (a down link is repair territory,
// harness/resilience.hpp). Every leg runs the full AAPC at the
// capacities in force after the last scripted event.
#pragma once

#include <string>

#include "aapc/common/units.hpp"
#include "aapc/core/weighted.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/stp/stp.hpp"

namespace aapc::harness {

struct ChurnScenario {
  std::string title = "churn";
  Bytes msize = 64_KiB;
  /// Degrade/restore timeline in BRIDGE-LINK indices of the network the
  /// scenario runs on. Link-down events are rejected (no re-election in
  /// this experiment; see file comment).
  faults::FaultPlan plan;
  /// Time at which the post-churn link state is sampled; -1 = just
  /// after the last scripted event (the steady degraded state).
  SimTime observe_at = -1;
  lowering::LoweringOptions lowering;
  simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
};

struct ChurnReport {
  std::string title;
  Bytes msize = 0;
  std::int32_t machines = 0;

  // -- completion times (simulated seconds) --
  SimTime healthy_completion = 0;      // paper schedule, nominal links
  SimTime stale_completion = 0;        // paper schedule, degraded links
  SimTime patched_completion = 0;      // rate-blind greedy, degraded
  SimTime revalidated_completion = 0;  // weighted schedule, degraded

  // -- achieved throughput (payload Mbps) --
  double healthy_mbps = 0;
  double stale_mbps = 0;
  double patched_mbps = 0;
  double revalidated_mbps = 0;

  // -- schedule shape --
  std::int32_t healthy_phases = 0;
  std::int32_t patched_phases = 0;
  std::int32_t revalidated_phases = 0;
  /// build_aapc_schedule_weighted picked its weighted greedy over the
  /// rate-blind optimal (false = the optimal already matched the bound).
  bool weighted_schedule_won = false;

  // -- weighted cost model (core/weighted.hpp), at the degraded rates --
  double weighted_load = 0;  // lower bound on any schedule's cost
  double stale_cost = 0;
  double patched_cost = 0;
  double revalidated_cost = 0;

  // -- capacity bounds (payload Mbps, faults::aapc_peak_throughput) --
  double healthy_peak_mbps = 0;
  double degraded_peak_mbps = 0;

  /// The acceptance ratio: >1 means the background revalidation
  /// recovers strictly more throughput than the inline greedy patch.
  double revalidated_over_patched() const {
    return patched_mbps > 0 ? revalidated_mbps / patched_mbps : 0;
  }
  /// Throughput kept by the revalidated schedule vs the degraded peak.
  double revalidated_peak_ratio() const {
    return degraded_peak_mbps > 0 ? revalidated_mbps / degraded_peak_mbps : 0;
  }

  std::string to_string() const;
};

/// Runs the four legs on `network`. Throws InvalidArgument on plans
/// with non-link or link-down events.
ChurnReport run_churn(const stp::BridgeNetwork& network,
                      const ChurnScenario& scenario);

}  // namespace aapc::harness
