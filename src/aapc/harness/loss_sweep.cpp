#include "aapc/harness/loss_sweep.hpp"

#include <cmath>
#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"

namespace aapc::harness {

namespace {

std::string format_rate(double rate) {
  if (rate == 0) return "0";
  std::ostringstream os;
  os << rate;
  return os.str();
}

std::string format_ms(SimTime seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << seconds * 1e3;
  return os.str();
}

std::string format_x(double factor) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << factor;
  return os.str();
}

}  // namespace

bool LossSweepReport::all_ok() const {
  for (const LossSweepCell& cell : cells) {
    if (!cell.integrity_ok) return false;
  }
  return !cells.empty();
}

TextTable LossSweepReport::table() const {
  TextTable table;
  table.set_header({"transport", "loss rate", "completion (ms)", "inflation",
                    "sent", "lost", "dropped", "retx", "integrity"});
  for (const LossSweepCell& cell : cells) {
    table.add_row({packetsim::transport_name(cell.transport),
                   format_rate(cell.loss_rate), format_ms(cell.completion),
                   format_x(cell.inflation), str_cat(cell.segments_sent),
                   str_cat(cell.segments_lost), str_cat(cell.segments_dropped),
                   str_cat(cell.retransmissions),
                   cell.integrity_ok ? "ok" : "VIOLATION"});
  }
  return table;
}

std::string LossSweepReport::to_string() const {
  std::ostringstream os;
  os << title << " — scheduled alltoall over the packet backend, msize="
     << msize << " B, " << messages_per_run << " transfers per run\n"
     << table().render();
  for (const LossSweepCell& cell : cells) {
    if (!cell.integrity_ok) {
      os << "\n" << packetsim::transport_name(cell.transport) << " @ "
         << format_rate(cell.loss_rate) << ": " << cell.integrity_summary;
    }
  }
  return os.str();
}

LossSweepReport run_loss_sweep(const topology::Topology& topo,
                               const std::string& title,
                               const LossSweepConfig& config) {
  AAPC_REQUIRE(!config.loss_rates.empty(), "empty loss-rate sweep");
  AAPC_REQUIRE(!config.transports.empty(), "empty transport sweep");

  LossSweepReport report;
  report.title = title;
  report.msize = config.msize;

  // Schedule and lower once: every cell executes the identical program
  // set, so differences are purely transport + loss.
  const core::Schedule schedule = core::build_aapc_schedule(topo);
  const mpisim::ProgramSet programs =
      lowering::lower_schedule(topo, schedule, config.msize, config.lowering);

  for (const packetsim::PacketNetworkParams::Transport transport :
       config.transports) {
    SimTime baseline = 0;
    for (const double rate : config.loss_rates) {
      mpisim::ExecutorParams exec = config.exec;
      exec.backend = mpisim::NetworkBackendKind::kPacket;
      exec.packet = config.packet;
      exec.packet.transport = transport;
      exec.packet.faults.loss_rate = rate;

      LossSweepCell cell;
      cell.transport = transport;
      cell.loss_rate = rate;
      try {
        mpisim::Executor executor(topo, config.net, exec);
        const mpisim::ExecutionResult result = executor.run(programs);
        cell.completion = result.completion_time;
        cell.segments_sent = result.packet.segments_sent;
        cell.segments_lost = result.packet.segments_lost;
        cell.segments_dropped = result.packet.segments_dropped;
        cell.retransmissions = result.packet.retransmissions;
        cell.integrity_ok = result.integrity.ok();
        cell.integrity_summary = result.integrity.summary();
        report.messages_per_run = result.message_count;
      } catch (const Error& error) {
        // Executor-level integrity/livelock failures become a sweep
        // verdict instead of aborting the whole experiment.
        cell.integrity_ok = false;
        cell.integrity_summary = error.what();
      }
      if (rate == 0 && cell.completion > 0) baseline = cell.completion;
      cell.inflation = (baseline > 0 && cell.completion > 0)
                           ? cell.completion / baseline
                           : 1.0;
      report.cells.push_back(cell);
    }
  }
  return report;
}

}  // namespace aapc::harness
