// Benchmark harness: runs AAPC algorithms over simulated clusters and
// renders the paper's evaluation artifacts — a completion-time table
// (Figures 6a/7a/8a) and an aggregate-throughput series with the
// theoretical peak (Figures 6b/7b/8b).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "aapc/common/table.hpp"
#include "aapc/common/units.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/mpisim/program.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::harness {

struct ExperimentConfig {
  simnet::NetworkParams net;
  mpisim::ExecutorParams exec;
  /// The paper's sweep: 8 KB .. 256 KB.
  std::vector<Bytes> msizes = {8_KiB, 16_KiB, 32_KiB, 64_KiB, 128_KiB,
                               256_KiB};
  /// Measurement repetitions: each iteration runs with a distinct OS
  /// jitter seed (exec.jitter_seed + i) and the completion time is the
  /// average — the simulation analogue of the paper's "10 iterations of
  /// MPI_Alltoall ... average execution time".
  std::int32_t iterations = 3;
};

/// An algorithm entry: display name + builder from message size to the
/// program set (the topology is bound when the entry is created).
struct NamedAlgorithm {
  std::string name;
  std::function<mpisim::ProgramSet(Bytes)> build;
};

/// One algorithm at one message size.
struct RunResult {
  std::string algorithm;
  Bytes msize = 0;
  SimTime completion = 0;
  double throughput_mbps = 0;  // aggregate payload throughput
  std::int64_t messages = 0;   // matched point-to-point messages
};

/// Telemetry of one sweep: every series the runs exported into the
/// experiment's registry (aapc_executor_*, aapc_simnet_* /
/// aapc_packet_*), snapshot once when the sweep finishes.
struct RunReport {
  std::string title;
  obs::RegistrySnapshot metrics;

  /// {"title":"...","metrics":[...]} — the metrics array is exactly
  /// obs::to_json's, so obs::snapshot_from_json accepts the "metrics"
  /// portion unchanged.
  std::string to_json() const;
};

/// A full sweep over algorithms x message sizes on one topology.
struct ExperimentReport {
  std::string title;
  double peak_mbps = 0;
  std::vector<Bytes> msizes;
  std::vector<std::string> algorithms;
  std::vector<std::vector<RunResult>> results;  // [msize][algorithm]
  /// Aggregated run telemetry (see RunReport). When
  /// ExperimentConfig::exec.metrics is set the series also accumulate
  /// into that caller-owned registry; otherwise a sweep-local registry
  /// backs this snapshot.
  RunReport telemetry;

  /// Paper-style completion table: one row per msize, ms per algorithm.
  TextTable completion_table() const;
  /// Throughput table: one row per msize, Mbps per algorithm + Peak.
  TextTable throughput_table() const;
  /// Both tables with headers, ready to print.
  std::string to_string() const;
};

/// Runs one program set and computes completion/throughput. The
/// `payload_bytes` used for throughput is |M| * (|M|-1) * msize
/// regardless of any synchronization traffic.
RunResult run_algorithm(const topology::Topology& topo,
                        const NamedAlgorithm& algorithm, Bytes msize,
                        const ExperimentConfig& config);

/// LAM, MPICH (adaptive), and the generated routine bound to `topo`.
/// The generated routine's schedule and sync plan are computed once and
/// shared across message sizes.
std::vector<NamedAlgorithm> standard_suite(
    const topology::Topology& topo,
    const lowering::LoweringOptions& ours_options = {});

/// Sweeps every algorithm over config.msizes.
ExperimentReport run_experiment(const topology::Topology& topo,
                                const std::string& title,
                                const std::vector<NamedAlgorithm>& algorithms,
                                const ExperimentConfig& config = {});

}  // namespace aapc::harness
