#include "aapc/harness/churn.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/greedy.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/faults/repair.hpp"

namespace aapc::harness {
namespace {

SimTime run_programs(const topology::Topology& topo,
                     const simnet::NetworkParams& net,
                     const mpisim::ExecutorParams& exec,
                     const mpisim::ProgramSet& set) {
  mpisim::Executor executor(topo, net, exec);
  return executor.run(set).completion_time;
}

double mbps_of(double payload, SimTime completion) {
  return bytes_per_sec_to_mbps(completion > 0 ? payload / completion : 0);
}

}  // namespace

std::string ChurnReport::to_string() const {
  std::ostringstream os;
  os << title << " (" << machines << " machines, msize "
     << format_size(msize) << "B)\n";
  os << "  completion ms: healthy "
     << format_double(to_milliseconds(healthy_completion), 2) << " | stale "
     << format_double(to_milliseconds(stale_completion), 2) << " | patched "
     << format_double(to_milliseconds(patched_completion), 2)
     << " | revalidated "
     << format_double(to_milliseconds(revalidated_completion), 2) << "\n";
  os << "  achieved Mbps: healthy " << format_double(healthy_mbps, 1)
     << " | stale " << format_double(stale_mbps, 1) << " | patched "
     << format_double(patched_mbps, 1) << " | revalidated "
     << format_double(revalidated_mbps, 1) << "\n";
  os << "  phases: healthy " << healthy_phases << " | patched "
     << patched_phases << " | revalidated " << revalidated_phases
     << (weighted_schedule_won ? " (weighted greedy won)"
                               : " (rate-blind optimal kept)")
     << "\n";
  os << "  weighted cost: stale " << format_double(stale_cost, 2)
     << " | patched " << format_double(patched_cost, 2) << " | revalidated "
     << format_double(revalidated_cost, 2) << " | load bound "
     << format_double(weighted_load, 2) << "\n";
  os << "  peak Mbps: healthy " << format_double(healthy_peak_mbps, 1)
     << " | degraded " << format_double(degraded_peak_mbps, 1)
     << "; revalidated/patched "
     << format_double(revalidated_over_patched(), 3)
     << ", revalidated/degraded-peak "
     << format_double(revalidated_peak_ratio(), 3) << "\n";
  return os.str();
}

ChurnReport run_churn(const stp::BridgeNetwork& network,
                      const ChurnScenario& scenario) {
  scenario.plan.validate();
  for (const faults::FaultEvent& event : scenario.plan.events) {
    AAPC_REQUIRE(event.kind == faults::FaultKind::kLinkDegrade ||
                     event.kind == faults::FaultKind::kLinkUp,
                 "churn experiments take degrade/restore timelines only "
                 "(link-down re-election is harness/resilience.hpp)");
    AAPC_REQUIRE(event.link >= 0 && event.link < network.bridge_link_count(),
                 "plan names bridge link " << event.link << " but the "
                     "network has " << network.bridge_link_count());
  }

  const stp::SpanningTree tree = stp::compute_spanning_tree(network);
  const topology::Topology& topo = tree.topology;
  const core::Schedule healthy = core::build_aapc_schedule(topo);

  ChurnReport report;
  report.title = scenario.title;
  report.msize = scenario.msize;
  report.machines = topo.machine_count();
  report.healthy_phases = healthy.phase_count();

  const double machines = static_cast<double>(topo.machine_count());
  const double payload =
      machines * (machines - 1) * static_cast<double>(scenario.msize);

  // The degraded steady state: bridge-link factors at observe time,
  // translated onto the elected tree. Rates feed the weighted
  // scheduler; capacities feed the executor — same numbers, two units.
  SimTime observe = scenario.observe_at;
  if (observe < 0) {
    observe = 0;
    for (const faults::FaultEvent& event : scenario.plan.events) {
      observe = std::max(observe, event.when);
    }
  }
  const std::vector<double> factors = faults::link_factors_at(
      scenario.plan, observe, network.bridge_link_count());
  core::LinkRates rates(static_cast<std::size_t>(topo.link_count()), 1.0);
  for (std::size_t b = 0; b < factors.size(); ++b) {
    const topology::LinkId link =
        tree.link_of_bridge_link[static_cast<std::ptrdiff_t>(b)];
    if (link >= 0) rates[static_cast<std::size_t>(link)] = factors[b];
  }
  const std::vector<double> degraded_caps = faults::residual_link_capacities(
      tree, scenario.net, scenario.plan, observe);
  simnet::NetworkParams degraded_net = scenario.net;
  degraded_net.link_bandwidth_overrides.clear();
  for (std::size_t l = 0; l < degraded_caps.size(); ++l) {
    degraded_net.link_bandwidth_overrides.emplace_back(
        static_cast<std::int32_t>(l), degraded_caps[l]);
  }

  // Leg 1: healthy baseline at nominal capacities.
  const mpisim::ProgramSet healthy_programs = lowering::lower_schedule(
      topo, healthy, scenario.msize, scenario.lowering);
  report.healthy_completion =
      run_programs(topo, scenario.net, scenario.exec, healthy_programs);
  report.healthy_mbps = mbps_of(payload, report.healthy_completion);

  // Leg 2: the same pre-churn schedule on the degraded links.
  report.stale_completion =
      run_programs(topo, degraded_net, scenario.exec, healthy_programs);
  report.stale_mbps = mbps_of(payload, report.stale_completion);

  // Leg 3: the SWR inline patch — rate-blind greedy, exactly what
  // ScheduleService::patch_stale_entry serves with stale=true.
  const core::Pattern pattern = core::aapc_pattern(topo);
  const core::Schedule patched = core::greedy_schedule(topo, pattern);
  report.patched_phases = patched.phase_count();
  report.patched_completion = run_programs(
      topo, degraded_net, scenario.exec,
      lowering::lower_schedule(topo, patched, scenario.msize,
                               scenario.lowering));
  report.patched_mbps = mbps_of(payload, report.patched_completion);

  // Leg 4: the background revalidation — weighted scheduling at the
  // degraded rates.
  const core::Schedule revalidated =
      core::build_aapc_schedule_weighted(topo, rates);
  report.revalidated_phases = revalidated.phase_count();
  report.revalidated_completion = run_programs(
      topo, degraded_net, scenario.exec,
      lowering::lower_schedule(topo, revalidated, scenario.msize,
                               scenario.lowering));
  report.revalidated_mbps = mbps_of(payload, report.revalidated_completion);

  // Weighted cost model.
  report.weighted_load = core::weighted_pattern_load(topo, pattern, rates);
  report.stale_cost = core::weighted_schedule_cost(topo, healthy, rates);
  report.patched_cost = core::weighted_schedule_cost(topo, patched, rates);
  report.revalidated_cost =
      core::weighted_schedule_cost(topo, revalidated, rates);
  report.weighted_schedule_won =
      report.revalidated_cost < report.stale_cost;

  // Capacity bounds.
  report.healthy_peak_mbps = bytes_per_sec_to_mbps(
      faults::aapc_peak_throughput(
          topo, scenario.net,
          scenario.net.link_capacities(topo.link_count())));
  report.degraded_peak_mbps = bytes_per_sec_to_mbps(
      faults::aapc_peak_throughput(topo, scenario.net, degraded_caps));
  return report;
}

}  // namespace aapc::harness
