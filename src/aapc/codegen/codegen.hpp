// C code generation: the §5 "automatic routine generator".
//
// Takes the same lowered per-rank programs the simulator executes and
// emits a self-contained, compile-ready C routine built on MPI
// point-to-point primitives — a customized MPI_Alltoall for one specific
// topology, with the pair-wise synchronization messages inlined. The
// emitted routine and the simulated ProgramSet come from one source of
// truth (lowering), so what we measure is what we generate.
#pragma once

#include <string>

#include "aapc/core/schedule.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/program.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::codegen {

struct CodegenOptions {
  /// Name of the emitted function.
  std::string function_name = "AAPC_Alltoall";
  lowering::LoweringOptions lowering;
};

/// Emits C source for a topology-customized MPI_Alltoall. The routine
/// has the signature
///   int <name>(const void* sendbuf, int scount, MPI_Datatype stype,
///              void* recvbuf, int rcount, MPI_Datatype rtype,
///              MPI_Comm comm);
/// and refuses communicators whose size differs from the topology's
/// machine count. `schedule` must be a verified schedule for `topo`.
std::string generate_alltoall_c(const topology::Topology& topo,
                                const core::Schedule& schedule,
                                const CodegenOptions& options = {});

/// Emits C source directly from an already-lowered program set (used by
/// generate_alltoall_c; exposed for tests and for generating baseline
/// routines).
std::string generate_programs_c(const topology::Topology& topo,
                                const mpisim::ProgramSet& set,
                                const std::string& function_name);

}  // namespace aapc::codegen
